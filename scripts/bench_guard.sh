#!/usr/bin/env sh
# Bench-regression guard: regenerates BENCH_runtime.json with the full
# perf_report and compares end_to_end.fast_serial_s against the number
# committed in the repository.
#
#   scripts/bench_guard.sh [tolerance-percent]
#
# Fails (exit 1) when the fresh fast-serial time regresses by more than
# the tolerance (default 15 %). Speedups and small wobbles are
# informational only — the committed file is never modified; run
# `cargo run --release -p emsc-examples --example perf_report` from the
# repository root and commit the result to re-baseline deliberately.
#
# POSIX sh + awk only, so it runs in CI images and the dev container
# without extra tooling.
set -eu

TOLERANCE="${1:-15}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
COMMITTED="$ROOT/BENCH_runtime.json"

[ -f "$COMMITTED" ] || { echo "bench_guard: no committed $COMMITTED"; exit 1; }

extract() {
    # First "fast_serial_s" value in the file (it only appears in the
    # end_to_end section).
    awk -F: '/"fast_serial_s"/ { gsub(/[ ,]/, "", $2); print $2; exit }' "$1"
}

BASELINE="$(extract "$COMMITTED")"
[ -n "$BASELINE" ] || { echo "bench_guard: no fast_serial_s in committed baseline"; exit 1; }

FRESH_DIR="$(mktemp -d)"
trap 'rm -rf "$FRESH_DIR"' EXIT INT TERM

# perf_report writes BENCH_runtime.json into the current directory, so
# run it from the scratch dir to leave the committed baseline untouched.
(cd "$FRESH_DIR" && cargo run --release --quiet \
    --manifest-path "$ROOT/Cargo.toml" -p emsc-examples --example perf_report)

FRESH="$(extract "$FRESH_DIR/BENCH_runtime.json")"
[ -n "$FRESH" ] || { echo "bench_guard: perf_report produced no fast_serial_s"; exit 1; }

awk -v base="$BASELINE" -v fresh="$FRESH" -v tol="$TOLERANCE" 'BEGIN {
    delta = (fresh - base) / base * 100.0
    printf "bench_guard: end_to_end.fast_serial_s committed %.3fs, fresh %.3fs (%+.1f%%, tolerance +%s%%)\n",
           base, fresh, delta, tol
    if (delta > tol + 0.0) {
        printf "bench_guard: REGRESSION — fresh run is %.1f%% slower than the committed baseline\n", delta
        exit 1
    }
    if (delta < -tol - 0.0) {
        # Markedly faster is not a failure, but the baseline is stale.
        printf "bench_guard: note — fresh run is much faster; consider re-baselining BENCH_runtime.json\n"
    }
    exit 0
}'
