//! Performance report for the experiment runtime and DSP hot paths.
//!
//! ```text
//! cargo run --release -p emsc-examples --example perf_report
//! ```
//!
//! Times three layers and writes the results to `BENCH_runtime.json`
//! in the current directory:
//!
//! 1. **Synthesis** — `render_train` LUT/incremental-phasor fast path
//!    vs the exact scalar reference, single-threaded and on the pool.
//! 2. **FFT** — repeated transforms through the thread-local plan
//!    cache vs rebuilding the plan every call.
//! 3. **End to end** — Table II (the biggest `reproduce` grid) with
//!    `with_threads(1)` vs the full worker pool.
//! 4. **Streaming** — the chunked streaming receiver vs the batch
//!    receiver on the same capture: steady-state throughput in
//!    Msamples/s plus per-chunk heap allocations (counted by a
//!    wrapping global allocator).
//! 5. **Sessions** — the multi-tenant registry multiplexing several
//!    bounded-buffer streams (including a poisoned one): wall time
//!    plus the per-session cumulative counters (chunks accepted and
//!    rejected, stream errors, last error kind).
//! 6. **Fused TX chain** — one chain run's TX side, staged (full
//!    analog materialised, then a second digitise sweep) vs the fused
//!    blockwise producer: pass times, blocks/s and peak resident
//!    samples, with the bit-identity of the two captures checked.
//!
//! All timed paths produce bit-identical outputs (see the determinism
//! tests in `emsc-runtime` and `emsc-emfield`), so the speedups come
//! for free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::experiments::tables::{measure_channel_grid, TableScale};
use emsc_core::fused::{ChainStream, FUSED_BLOCK};
use emsc_core::laptop::Laptop;
use emsc_covert::rx::{Receiver, RxConfig};
use emsc_covert::stream::StreamingReceiver;
use emsc_emfield::synth::{render_train, render_train_exact, SynthConfig, SynthMode};
use emsc_pmu::workload::Program;
use emsc_runtime::{current_threads, with_threads};
use emsc_sdr::fft::{plan_for, FftPlan};
use emsc_sdr::frontend::DigitizeMode;
use emsc_sdr::iq::Complex;
use emsc_sdr::Capture;
use emsc_vrm::train::{Pulse, SwitchingTrain};

/// Allocation-counting wrapper around the system allocator, so the
/// streaming bench can report allocations per pushed chunk. The
/// counter only ever increments; benches read deltas.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap allocations so far (monotonic).
fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

/// A jittered 1 MHz switching train: the synthesis workload every
/// chain stage feeds the SDR front end.
fn bench_train(duration_s: f64) -> SwitchingTrain {
    let f_sw = 1.0e6;
    let period = 1.0 / f_sw;
    let n = (duration_s * f_sw) as usize;
    let pulses = (0..n)
        .map(|k| {
            // Deterministic ±3 % period jitter and ±20 % load swing,
            // so the fractional-offset LUT actually gets exercised.
            let jitter = (((k as u64).wrapping_mul(0x9E37_79B9)) % 61) as f64 / 1000.0 - 0.03;
            let load = 1.0 + 0.2 * ((k as f64) * 0.013).sin();
            Pulse { t_s: (k as f64 + jitter) * period, charge_c: 2.0e-6 * load }
        })
        .collect();
    SwitchingTrain { pulses, nominal_period_s: period, duration_s }
}

/// On-off-keyed covert capture at the corpus tuning (centre tuned to
/// the switching line, so the carrier sits at baseband DC): the
/// streaming-bench input. Deterministic xorshift noise floor.
fn streaming_capture(n: usize) -> Capture {
    let bit_samples = 600; // 250 us at 2.4 Msps
    let mut state = 0x2020_u64;
    let samples = (0..n)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = ((state & 0xFFFF) as f64 / 65535.0 - 0.5) * 0.05;
            let amp = if (i / bit_samples).is_multiple_of(2) { 0.5 } else { 0.02 };
            Complex::new(amp + noise, noise)
        })
        .collect();
    Capture { samples, sample_rate: 2.4e6, center_freq: 250e3 }
}

fn main() {
    // `--quick` shrinks every section to a CI-smoke scale: the whole
    // report runs in a few seconds, still exercising every code path
    // (including the bit-identity checks), but the timings are too
    // noisy to publish — so quick mode never writes BENCH_runtime.json.
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let threads = current_threads();
    println!(
        "perf_report — {threads} worker threads available{}\n",
        if quick { " (--quick smoke scale)" } else { "" }
    );

    // 1. Synthesis: exact reference vs LUT fast path.
    let synth_dur = if quick { 0.01 } else { 0.05 };
    let train = bench_train(synth_dur);
    let config = SynthConfig::rtl_sdr_for(1.0e6);
    let n_samples = (synth_dur * config.sample_rate) as usize;
    let (exact_s, exact_iq) = time_best(reps, || render_train_exact(&train, config, n_samples));
    let (fast_1t_s, fast_iq) =
        time_best(reps, || with_threads(1, || render_train(&train, config, n_samples)));
    let (fast_pool_s, _) = time_best(reps, || render_train(&train, config, n_samples));
    let rms: f64 =
        (exact_iq.iter().map(|z| z.norm_sqr()).sum::<f64>() / exact_iq.len() as f64).sqrt();
    let err: f64 = (exact_iq.iter().zip(&fast_iq).map(|(a, b)| (*a - *b).norm_sqr()).sum::<f64>()
        / exact_iq.len() as f64)
        .sqrt();
    let err_db = 20.0 * (err / rms).log10(); // amplitude ratio in dB
    let synth_1t = exact_s / fast_1t_s;
    let synth_pool = exact_s / fast_pool_s;
    println!("synthesis ({n_samples} samples, {} pulses):", train.pulses.len());
    println!("  exact reference      {exact_s:>9.4} s");
    println!("  fast, 1 thread       {fast_1t_s:>9.4} s   ({synth_1t:.2}x)");
    println!("  fast, pool           {fast_pool_s:>9.4} s   ({synth_pool:.2}x)");
    println!("  fast-vs-exact error  {err_db:>9.1} dB\n");

    // 2. FFT plan cache: plan_for() (cached) vs a fresh plan per call
    //    (same per-call buffer clone on both arms, so the difference
    //    is purely plan construction).
    let fft_n = 4096;
    let fft_reps = if quick { 40 } else { 400 };
    let buf: Vec<Complex> = (0..fft_n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect();
    let (uncached_s, _) = time_best(reps, || {
        let mut acc = 0.0;
        for _ in 0..fft_reps {
            let mut b = buf.clone();
            FftPlan::new(fft_n).forward(&mut b);
            acc += b[1].re;
        }
        acc
    });
    let (cached_s, _) = time_best(reps, || {
        let mut acc = 0.0;
        for _ in 0..fft_reps {
            let mut b = buf.clone();
            plan_for(fft_n).forward(&mut b);
            acc += b[1].re;
        }
        acc
    });
    let fft_speedup = uncached_s / cached_s;
    println!("fft ({fft_reps} x {fft_n}-point):");
    println!("  fresh plan per call  {uncached_s:>9.4} s");
    println!("  thread-local cache   {cached_s:>9.4} s   ({fft_speedup:.2}x)\n");

    // 3. End to end: the Table II grid (the biggest `reproduce`
    //    artefact), at a reduced scale that keeps the report under a
    //    minute. Three configurations:
    //      legacy    — exact scalar synthesis and digitiser, one
    //                  thread (the pre-runtime pipeline);
    //      serial    — fast synthesis, one thread;
    //      pool      — fast synthesis, all workers.
    let scale = if quick {
        TableScale { payload_bytes: 16, runs: 1 }
    } else {
        TableScale { payload_bytes: 32, runs: 4 }
    };
    let seed = 2020;
    let scenarios = || -> Vec<(String, CovertScenario)> {
        Laptop::all()
            .iter()
            .map(|laptop| {
                let chain = Chain::new(laptop, Setup::NearField);
                (laptop.model.to_string(), CovertScenario::for_laptop(laptop, chain))
            })
            .collect()
    };
    let mut legacy_scenarios = scenarios();
    for (_, s) in &mut legacy_scenarios {
        s.chain.scene.synth.mode = SynthMode::Exact;
        s.chain.frontend.mode = DigitizeMode::Exact;
    }
    let fast_scenarios = scenarios();
    // Reps interleave across the three rows (legacy, serial, pool)
    // and each row keeps its best: paired sampling, so slow drift in
    // the host's available throughput hits every row's epochs alike
    // instead of biasing whichever row it coincides with.
    let e2e_reps = if quick { 1 } else { 3 };
    let mut legacy_s = f64::INFINITY;
    let mut serial_s = f64::INFINITY;
    let mut parallel_s = f64::INFINITY;
    let mut serial_rows = Vec::new();
    let mut parallel_rows = Vec::new();
    for _ in 0..e2e_reps {
        let (t, _) = time_best(1, || {
            with_threads(1, || measure_channel_grid(&legacy_scenarios, scale, seed))
        });
        legacy_s = legacy_s.min(t);
        let (t, rows) =
            time_best(1, || with_threads(1, || measure_channel_grid(&fast_scenarios, scale, seed)));
        serial_s = serial_s.min(t);
        serial_rows = rows;
        let (t, rows) = time_best(1, || measure_channel_grid(&fast_scenarios, scale, seed));
        parallel_s = parallel_s.min(t);
        parallel_rows = rows;
    }
    let identical = serial_rows.len() == parallel_rows.len()
        && serial_rows.iter().zip(&parallel_rows).all(|(a, b)| {
            a.ber.to_bits() == b.ber.to_bits() && a.tr_bps.to_bits() == b.tr_bps.to_bits()
        });
    let e2e_1t = legacy_s / serial_s;
    let e2e_speedup = legacy_s / parallel_s;
    println!("end-to-end (Table II grid, {} cells):", 6 * scale.runs);
    println!("  legacy (exact, 1t)   {legacy_s:>9.3} s");
    println!("  fast, 1 thread       {serial_s:>9.3} s   ({e2e_1t:.2}x)");
    println!("  fast, {threads} thread(s)    {parallel_s:>9.3} s   ({e2e_speedup:.2}x)");
    println!("  rows bit-identical   {identical}");
    if threads < 4 {
        println!("  (pool speedup is bounded by the {threads} core(s) available here)");
    }
    println!();

    // 4. Streaming receive chain: steady-state throughput of the
    //    chunked StreamingReceiver vs the batch receiver on the same
    //    capture, plus heap allocations per pushed chunk once the
    //    internal buffers have warmed up.
    let stream_cfg = RxConfig::new(250e3, 250e-6);
    let stream_cap = streaming_capture(if quick { 300_000 } else { 1_200_000 });
    let stream_chunk = 16 * 1024;
    let (batch_rx_s, batch_report) =
        time_best(reps, || Receiver::new(stream_cfg.clone()).receive(&stream_cap));
    let (stream_rx_s, stream_report) = time_best(reps, || {
        let mut rx = StreamingReceiver::new(
            stream_cfg.clone(),
            stream_cap.sample_rate,
            stream_cap.center_freq,
        )
        .expect("bench config is valid");
        for c in stream_cap.samples.chunks(stream_chunk) {
            rx.push(c);
        }
        rx.finish()
    });
    let stream_msps = stream_cap.samples.len() as f64 / stream_rx_s / 1e6;
    let stream_identical = stream_report == batch_report;

    // Steady-state allocation count: the first half of the chunks
    // warms the grow-only buffers, the second half is measured.
    let mut warm_rx =
        StreamingReceiver::new(stream_cfg.clone(), stream_cap.sample_rate, stream_cap.center_freq)
            .expect("bench config is valid");
    let chunks: Vec<&[Complex]> = stream_cap.samples.chunks(stream_chunk).collect();
    let warm = chunks.len() / 2;
    for c in &chunks[..warm] {
        warm_rx.push(c);
    }
    let alloc_before = allocations();
    for c in &chunks[warm..] {
        warm_rx.push(c);
    }
    let allocs_per_chunk = (allocations() - alloc_before) as f64 / (chunks.len() - warm) as f64;

    println!("streaming ({} samples, {stream_chunk}-sample chunks):", stream_cap.samples.len());
    println!("  batch receive        {batch_rx_s:>9.4} s");
    println!("  streamed receive     {stream_rx_s:>9.4} s   ({stream_msps:.1} Msamples/s)");
    println!("  allocs per chunk     {allocs_per_chunk:>9.2}   (steady state)");
    println!("  report bit-identical {stream_identical}\n");

    // 5. Multi-tenant session registry: the bench capture multiplexed
    //    through bounded-buffer sessions at two chunk sizes, next to a
    //    poisoned stream that fails with a typed error. The per-session
    //    cumulative counters (satellite of the service layer) land in
    //    the table below and in the JSON.
    use emsc_core::session::SessionRegistry;
    let poisoned_cap = Capture {
        samples: vec![Complex::new(f64::NAN, f64::NAN); 50_000],
        sample_rate: stream_cap.sample_rate,
        center_freq: stream_cap.center_freq,
    };
    let tenants: Vec<(&str, &Capture, usize)> = vec![
        ("covert 16k-chunk", &stream_cap, 16 * 1024),
        ("covert 4k-chunk", &stream_cap, 4 * 1024),
        ("poisoned stream", &poisoned_cap, 8 * 1024),
    ];
    let (session_s, session_rows) = time_best(reps, || {
        let mut registry = SessionRegistry::new(seed, 1 << 16);
        let ids: Vec<_> = tenants
            .iter()
            .map(|(_, cap, _)| {
                registry
                    .open_covert(stream_cfg.clone(), cap.sample_rate, cap.center_freq)
                    .expect("bench session admits")
            })
            .collect();
        let mut offsets = vec![0usize; tenants.len()];
        loop {
            let mut progressed = false;
            for (k, (_, cap, chunk)) in tenants.iter().enumerate() {
                if offsets[k] >= cap.samples.len() {
                    continue;
                }
                let end = (offsets[k] + chunk).min(cap.samples.len());
                while registry.offer(ids[k], &cap.samples[offsets[k]..end]).is_err() {
                    registry.pump();
                }
                offsets[k] = end;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        registry.pump();
        ids.into_iter()
            .map(|id| registry.finish(id).expect("bench session closes").stats)
            .collect::<Vec<_>>()
    });
    println!("sessions ({} tenants, shared registry):", tenants.len());
    println!("  multiplexed replay   {session_s:>9.4} s");
    println!(
        "  {:<18} {:>8} {:>8} {:>12} {:>7} last error",
        "session", "accepted", "rejected", "samples", "errors"
    );
    for ((label, _, _), stats) in tenants.iter().zip(&session_rows) {
        println!(
            "  {:<18} {:>8} {:>8} {:>12} {:>7} {}",
            label,
            stats.chunks_accepted,
            stats.chunks_rejected,
            stats.samples_processed,
            stats.stream_errors,
            stats.last_error.unwrap_or("-")
        );
    }
    println!();

    // 6. Fused TX chain: one chain run's TX side (trace → train →
    //    analog → capture), staged vs fused. The staged arm renders
    //    the full analog waveform and digitises it in a second sweep;
    //    the fused arm streams cache-resident blocks and never
    //    materialises the capture. Both runs are timed on the same
    //    pre-built trace so the PMU/VRM stages stay out of the
    //    comparison, and the captures are checked bit for bit.
    let fused_laptop = Laptop::dell_inspiron();
    let fused_chain = Chain::new(&fused_laptop, Setup::NearField);
    let fused_program = Program::alternating(
        500e-6,
        500e-6,
        if quick { 10 } else { 100 },
        fused_chain.machine.steady_state_ips(),
    );
    let fused_trace = with_threads(1, || fused_chain.machine.run(&fused_program, seed));
    let (staged_tx_s, staged_run) = time_best(reps, || {
        with_threads(1, || fused_chain.run_trace_staged(fused_trace.clone(), seed))
    });
    let fused_samples = staged_run.capture.samples.len();
    let fused_blocks = fused_samples.div_ceil(FUSED_BLOCK);
    let (fused_tx_s, _) = time_best(reps, || {
        with_threads(1, || {
            let mut stream = fused_chain.stream_trace(fused_trace.clone(), seed);
            let mut checksum = 0.0f64;
            while let Some(block) = stream.next_block() {
                checksum += block[0].re;
            }
            std::hint::black_box(checksum);
            stream.into_trace_train()
        })
    });
    let fused_identical =
        {
            let fused_run = ChainStream::new(&fused_chain, fused_trace.clone(), seed).into_run();
            fused_run.capture.samples.len() == fused_samples
                && fused_run.capture.samples.iter().zip(&staged_run.capture.samples).all(
                    |(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                )
        };
    let fused_speedup = staged_tx_s / fused_tx_s;
    let fused_blocks_per_s = fused_blocks as f64 / fused_tx_s;
    // Peak resident complex samples: staged holds analog + capture;
    // fused holds the analog arena + one digitised block.
    let staged_resident = 2 * fused_samples;
    let fused_resident = fused_samples + FUSED_BLOCK.min(fused_samples);
    println!("fused TX chain ({fused_samples} samples, {FUSED_BLOCK}-sample blocks):");
    println!("  staged pass          {staged_tx_s:>9.4} s");
    println!("  fused pass           {fused_tx_s:>9.4} s   ({fused_speedup:.2}x, {fused_blocks_per_s:.0} blocks/s)");
    println!("  peak resident        {staged_resident} samples staged, {fused_resident} fused");
    println!("  capture bit-identical {fused_identical}\n");

    let sessions_json = {
        let entries: Vec<String> = tenants
            .iter()
            .zip(&session_rows)
            .map(|((label, _, chunk), s)| {
                format!(
                    concat!(
                        "{{ \"label\": \"{}\", \"chunk_samples\": {}, ",
                        "\"chunks_accepted\": {}, \"chunks_rejected\": {}, ",
                        "\"samples_processed\": {}, \"stream_errors\": {}, \"last_error\": {} }}"
                    ),
                    label,
                    chunk,
                    s.chunks_accepted,
                    s.chunks_rejected,
                    s.samples_processed,
                    s.stream_errors,
                    s.last_error.map(|e| format!("\"{e}\"")).unwrap_or_else(|| "null".to_string()),
                )
            })
            .collect();
        format!("[\n      {}\n    ]", entries.join(",\n      "))
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"threads\": {},\n",
            "  \"synthesis\": {{\n",
            "    \"samples\": {},\n",
            "    \"exact_s\": {:.6},\n",
            "    \"fast_single_thread_s\": {:.6},\n",
            "    \"fast_pool_s\": {:.6},\n",
            "    \"single_thread_speedup\": {:.3},\n",
            "    \"pool_speedup\": {:.3},\n",
            "    \"error_db\": {:.1}\n",
            "  }},\n",
            "  \"fft\": {{\n",
            "    \"size\": {},\n",
            "    \"reps\": {},\n",
            "    \"uncached_s\": {:.6},\n",
            "    \"cached_s\": {:.6},\n",
            "    \"speedup\": {:.3}\n",
            "  }},\n",
            "  \"streaming\": {{\n",
            "    \"samples\": {},\n",
            "    \"chunk_samples\": {},\n",
            "    \"batch_s\": {:.6},\n",
            "    \"stream_s\": {:.6},\n",
            "    \"msamples_per_s\": {:.3},\n",
            "    \"allocs_per_chunk\": {:.2},\n",
            "    \"report_bit_identical\": {}\n",
            "  }},\n",
            "  \"sessions\": {{\n",
            "    \"multiplexed_replay_s\": {:.6},\n",
            "    \"tenants\": {}\n",
            "  }},\n",
            "  \"fused\": {{\n",
            "    \"samples\": {},\n",
            "    \"block_samples\": {},\n",
            "    \"staged_s\": {:.6},\n",
            "    \"fused_s\": {:.6},\n",
            "    \"speedup\": {:.3},\n",
            "    \"blocks_per_s\": {:.0},\n",
            "    \"peak_resident_samples_staged\": {},\n",
            "    \"peak_resident_samples_fused\": {},\n",
            "    \"capture_bit_identical\": {}\n",
            "  }},\n",
            "  \"end_to_end\": {{\n",
            "    \"experiment\": \"table2\",\n",
            "    \"cells\": {},\n",
            "    \"legacy_exact_serial_s\": {:.6},\n",
            "    \"fast_serial_s\": {:.6},\n",
            "    \"fast_parallel_s\": {:.6},\n",
            "    \"single_thread_speedup\": {:.3},\n",
            "    \"speedup\": {:.3},\n",
            "    \"rows_bit_identical\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        threads,
        n_samples,
        exact_s,
        fast_1t_s,
        fast_pool_s,
        synth_1t,
        synth_pool,
        err_db,
        fft_n,
        fft_reps,
        uncached_s,
        cached_s,
        fft_speedup,
        stream_cap.samples.len(),
        stream_chunk,
        batch_rx_s,
        stream_rx_s,
        stream_msps,
        allocs_per_chunk,
        stream_identical,
        session_s,
        sessions_json,
        fused_samples,
        FUSED_BLOCK,
        staged_tx_s,
        fused_tx_s,
        fused_speedup,
        fused_blocks_per_s,
        staged_resident,
        fused_resident,
        fused_identical,
        6 * scale.runs,
        legacy_s,
        serial_s,
        parallel_s,
        e2e_1t,
        e2e_speedup,
        identical,
    );
    if quick {
        // Smoke mode still validates the equivalence invariants the
        // full report publishes, without clobbering the committed
        // numbers with noisy short-run timings.
        assert!(identical, "--quick: grid rows not thread-count bit-identical");
        assert!(stream_identical, "--quick: streaming report != batch report");
        assert!(fused_identical, "--quick: fused capture != staged capture");
        println!("--quick: invariants hold, BENCH_runtime.json left untouched");
    } else {
        std::fs::write("BENCH_runtime.json", &json).expect("write BENCH_runtime.json");
        println!("wrote BENCH_runtime.json");
    }
}
