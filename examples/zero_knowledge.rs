//! Zero-knowledge interception: demodulate a covert transmission
//! knowing *nothing* about the victim machine or the transmitter's
//! parameters.
//!
//! ```text
//! cargo run --release -p emsc-examples --example zero_knowledge
//! ```
//!
//! Pipeline: ① locate the VRM spike by peak detection (§V-C's
//! standard trick), ② estimate the bit clock from the energy
//! signal's autocorrelation (what the §IV-C1 sync preamble enables),
//! ③ run the batch receiver, ④ deframe.

use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::laptop::Laptop;
use emsc_covert::frame::{deframe, FrameConfig};
use emsc_covert::rx::{find_switching_frequency, Receiver, RxConfig};

fn main() {
    // The victim: chosen "secretly" — the attacker code below never
    // reads `laptop` or the transmitter configuration.
    let laptop = Laptop::lenovo_thinkpad();
    let secret = b"nobody briefed the attacker";
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    let outcome = scenario.run(secret, 0x2E20);
    let capture = outcome.chain_run.capture;
    println!("attacker gets: {:.0} ms of I/Q at 2.4 Msps. Nothing else.", capture.duration() * 1e3);

    // ① Where does this laptop's VRM sing?
    let f_sw =
        find_switching_frequency(&capture, 200e3, 1.3e6).expect("a VRM spike must be present");
    println!("① spectral peak at {:.0} kHz — that's the switching frequency", f_sw / 1e3);

    // ② + ③ Blind demodulation: the receiver is primed with a
    // deliberately wrong bit-period guess and recovers the real one
    // from the signal.
    let rx = Receiver::new(RxConfig::new(f_sw, 1e-3 /* wrong guess */));
    let report = rx.demodulate_blind(&capture);
    println!(
        "②③ recovered bit clock: {:.0} µs ({:.0} bps), {} bits demodulated",
        report.bit_period_s * 1e6,
        report.transmission_rate_bps(),
        report.bits.len()
    );

    // ④ Deframe.
    match deframe(&report.bits, FrameConfig::default(), 1) {
        Some(d) => {
            println!("④ payload: {:?}", String::from_utf8_lossy(&d.payload));
            if d.payload == secret {
                println!("   exact recovery — zero prior knowledge needed");
            }
        }
        None => println!("④ frame marker not found"),
    }
}
