//! Model validation: print the physical quantities the simulation is
//! built on, next to what the paper's §II narrative predicts.
//!
//! ```text
//! cargo run --release -p emsc-examples --example physics_check
//! ```

use emsc_core::laptop::Laptop;
use emsc_emfield::path::Path;
use emsc_emfield::scene::Scene;
use emsc_pmu::energy::EnergyReport;
use emsc_pmu::sim::Machine;
use emsc_pmu::trace::{ActivityKind, PowerTrace};
use emsc_pmu::workload::Program;
use emsc_vrm::buck::{Buck, BuckConfig};

fn main() {
    println!("== VRM pulse skipping vs. load (§II) ==");
    println!("{:>10} {:>16} {:>14}", "load (A)", "firing fraction", "pulse rate");
    let buck = Buck::new(BuckConfig::laptop(970e3));
    for load in [0.04, 0.1, 0.5, 2.0, 8.5] {
        let mut t = PowerTrace::new();
        t.push(5e-3, 0, 0, load, 1.1, ActivityKind::Work);
        let train = buck.convert(&t);
        println!(
            "{:>10.2} {:>15.1}% {:>11.0} kHz",
            load,
            train.firing_fraction() * 100.0,
            train.pulse_rate_hz() / 1e3
        );
    }
    println!("(full-rate switching under load, deep skipping at idle — the OOK mechanism)\n");

    println!("== Active/idle current contrast per laptop ==");
    for laptop in Laptop::all() {
        let m = laptop.machine();
        let active = m.table.active_current_a(m.table.p0());
        let idle = m.table.cstates.last().map(|c| m.table.idle_current_a(*c)).unwrap_or(0.0);
        println!(
            "{:<24} active {:>5.2} A, deep idle {:>5.3} A  ({:.0}x)",
            laptop.model,
            active,
            idle,
            active / idle
        );
    }
    println!();

    println!("== Path gains (near-field 1/r³, §IV-C) ==");
    for (label, path) in [
        ("coil probe, 10 cm", Path::near_field()),
        ("loop, 1 m", Path::line_of_sight(1.0)),
        ("loop, 1.5 m", Path::line_of_sight(1.5)),
        ("loop, 2.5 m", Path::line_of_sight(2.5)),
        ("loop, 1.5 m + wall", Path::through_wall()),
    ] {
        println!("{:<22} {:>7.1} dB", label, path.gain_db());
    }
    println!();

    println!("== Link budget: bin SNR at 8 A modulation depth ==");
    for (label, scene) in [
        ("near field", Scene::near_field(970e3)),
        ("1 m", Scene::line_of_sight(970e3, 1.0)),
        ("2.5 m", Scene::line_of_sight(970e3, 2.5)),
        ("through wall", Scene::through_wall(970e3)),
    ] {
        println!("{:<14} {:>6.1} dB (1024-point bin)", label, scene.bin_snr_db(8.0, 1024));
    }
    println!();

    println!("== Energy cost of the Fig. 1 micro-benchmark (RAPL-style) ==");
    let m = Machine::intel_laptop();
    let p = Program::alternating(5e-3, 5e-3, 50, m.steady_state_ips());
    let r = EnergyReport::from_trace(&m.run(&p, 1));
    println!(
        "mean {:.2} W, peak {:.2} W over {:.0} ms (work {:.2} J, idle {:.3} J, overhead {:.3} J)",
        r.mean_w, r.peak_w, 500.0, r.work_j, r.idle_j, r.overhead_j
    );
}
