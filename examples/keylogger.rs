//! Keystroke logging from across the room (§V).
//!
//! ```text
//! cargo run --release -p emsc-examples --example keylogger
//! ```
//!
//! A victim types a sentence into a browser on an otherwise idle
//! laptop; every keypress briefly wakes the processor, flaring the
//! VRM's emanation. The attacker's detector counts the keystrokes,
//! times them, and groups them into words — the Fig. 11 demonstration.

use emsc_core::chain::{Chain, Setup};
use emsc_core::keylog_run::KeylogScenario;
use emsc_core::laptop::Laptop;
use emsc_keylog::identify::search_space_reduction;
use emsc_keylog::typist::Typist;

fn main() {
    let sentence = "can you hear me";
    let laptop = Laptop::dell_precision();
    println!("victim    : {} ({})", laptop.model, laptop.os.name());
    println!("receiver  : loop antenna at 2 m");
    println!("typing    : {sentence:?}");

    let chain = Chain::new(&laptop, Setup::LineOfSight(2.0));
    let scenario = KeylogScenario::standard(chain);
    let outcome = scenario.run(sentence, 0xBEE5);

    println!();
    println!("ground truth: {} keystrokes", outcome.keystrokes.len());
    println!(
        "detected    : {} bursts ({} rejected by the 30 ms filter)",
        outcome.detection.bursts.len(),
        outcome.detection.rejected.len()
    );
    println!(
        "chars       : TPR {:.0} %, FPR {:.1} %",
        outcome.chars.tpr() * 100.0,
        outcome.chars.fpr() * 100.0
    );
    println!(
        "words       : {} predicted of {} (precision {:.0} %, recall {:.0} %)",
        outcome.words.predicted,
        outcome.words.actual,
        outcome.words.precision() * 100.0,
        outcome.words.recall() * 100.0
    );

    // §V-B: inter-key timing shrinks the key-identification search
    // space even before any content analysis.
    let detected: Vec<f64> = outcome.detection.bursts.iter().map(|b| b.start_s).collect();
    let reduction = search_space_reduction(&Typist::default(), &detected, 0.2);
    println!(
        "timing      : inter-key intervals reveal {:.1} bits of key-guessing work ({:.2} bits/keystroke)",
        reduction.total_bits,
        reduction.total_bits / reduction.per_interval_bits.len().max(1) as f64
    );

    // Timeline: keystroke presses vs. detected bursts.
    println!();
    println!("timeline (| = true keypress, * = detected burst):");
    let end = outcome.keystrokes.last().map(|k| k.release_s + 0.5).unwrap_or(1.0);
    let cols = 96;
    let mut truth_line = vec![' '; cols];
    let mut det_line = vec![' '; cols];
    for k in &outcome.keystrokes {
        let c = ((k.press_s / end) * cols as f64) as usize;
        truth_line[c.min(cols - 1)] = '|';
    }
    for b in &outcome.detection.bursts {
        let c = ((b.start_s / end) * cols as f64) as usize;
        det_line[c.min(cols - 1)] = '*';
    }
    println!("  typed   {}", truth_line.iter().collect::<String>());
    println!("  heard   {}", det_line.iter().collect::<String>());
}
