//! Exfiltrate a multi-packet "file" from an air-gapped machine.
//!
//! ```text
//! cargo run --release -p emsc-examples --example exfiltrate_file
//! ```
//!
//! The threat model of §IV-A: a user-level process that can read a
//! secret file but has no network. It sends the file as a train of
//! independently-framed packets (§IV-C1: "the data can be sent in
//! packets or continuously") — a bit insertion or deletion then costs
//! one packet instead of everything after it. The attacker's receiver
//! sits at 1 m with the briefcase loop antenna.

use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::laptop::Laptop;
use emsc_covert::packets::{depacketize, packetize, PacketConfig};

fn main() {
    let file = b"BEGIN RSA PRIVATE KEY simulated contents 0123456789abcdef END";
    let laptop = Laptop::lenovo_thinkpad();
    let config = PacketConfig::default();
    let n_packets = file.len().div_ceil(config.packet_bytes);
    println!("victim    : {} ({})", laptop.model, laptop.os.name());
    println!("receiver  : AOR LA390 loop antenna at 1 m (briefcase)");
    println!("file      : {} bytes in {} packets", file.len(), n_packets);

    let chain = Chain::new(&laptop, Setup::LineOfSight(1.0));
    let scenario = CovertScenario::for_laptop(&laptop, chain);

    let bits = packetize(file, config);
    let (rx_bits, report) = scenario.run_bits(&bits, 0xF12B);
    let out = depacketize(&rx_bits, config, Some(n_packets));

    println!();
    println!(
        "link      : {} on-air bits at ~{:.0} bps",
        bits.len(),
        report.transmission_rate_bps()
    );
    println!(
        "packets   : {}/{} recovered (missing: {:?})",
        out.packets.len(),
        n_packets,
        out.missing
    );
    let total_corrections: usize = out.packets.iter().map(|p| p.corrections).sum();
    println!("parity    : {} corrections applied", total_corrections);
    println!("recovered : {:?}", String::from_utf8_lossy(&out.payload));
    if out.payload == file {
        println!("result    : file recovered exactly");
    }
}
