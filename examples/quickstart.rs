//! Quickstart: exfiltrate a secret across the air gap and read it back.
//!
//! ```text
//! cargo run --release -p emsc-examples --example quickstart
//! ```
//!
//! Builds the full chain — a simulated Linux laptop running the Fig. 3
//! transmitter, its buck VRM, the EM scene with a coin probe at 10 cm,
//! an RTL-SDR front end — then demodulates the capture with the
//! paper's batch receiver and prints what came out.

use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::laptop::Laptop;

fn main() {
    let secret = b"meet at the usual place, 23:00";
    let laptop = Laptop::dell_inspiron();
    println!("victim    : {} ({} / {})", laptop.model, laptop.os.name(), laptop.microarch.name());
    println!("receiver  : RTL-SDR v3 + coin probe, 10 cm");
    println!("secret    : {:?}", String::from_utf8_lossy(secret));

    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    let outcome = scenario.run(secret, 2);

    println!();
    println!(
        "on-air    : {} bits at {:.0} bps ({} VRM pulses over {:.0} ms)",
        outcome.tx_bits.len(),
        outcome.transmission_rate_bps,
        outcome.chain_run.train.pulses.len(),
        outcome.chain_run.capture.duration() * 1e3,
    );
    println!(
        "channel   : BER {:.2e}, {} insertions, {} deletions",
        outcome.alignment.ber(),
        outcome.alignment.insertions,
        outcome.alignment.deletions,
    );
    match &outcome.deframed {
        Some(d) => {
            println!(
                "received  : {:?} ({} parity corrections)",
                String::from_utf8_lossy(&d.payload),
                d.corrections
            );
            if d.payload == secret {
                println!("result    : secret recovered exactly — the air gap is crossed");
            } else {
                println!("result    : partially corrupted (indels shift the stream)");
            }
        }
        None => println!("received  : frame marker not found"),
    }
}
