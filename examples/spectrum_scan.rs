//! Locating the VRM spike without prior knowledge of the laptop —
//! the peak-detection step the paper mentions in §V-C (and the core
//! of the FASE methodology the authors cite as closest prior work).
//!
//! ```text
//! cargo run --release -p emsc-examples --example spectrum_scan
//! ```

use emsc_core::chain::{Chain, Setup};
use emsc_core::laptop::Laptop;
use emsc_covert::rx::find_switching_frequency;
use emsc_pmu::workload::Program;

fn main() {
    println!("scanning 200 kHz – 1.3 MHz for each laptop's VRM spike\n");
    for laptop in Laptop::all() {
        let chain = Chain::new(&laptop, Setup::NearField);
        // Drive the Fig. 1 micro-benchmark so the spike is modulated.
        let program = Program::alternating(2e-3, 2e-3, 20, chain.machine.steady_state_ips());
        let run = chain.run_program(&program, 1);
        match find_switching_frequency(&run.capture, 200e3, 1.3e6) {
            Some(f) => println!(
                "{:<24} true f_sw {:7.0} kHz, found {:7.0} kHz ({:+.1} kHz)",
                laptop.model,
                laptop.switching_freq_hz / 1e3,
                f / 1e3,
                (f - laptop.switching_freq_hz) / 1e3
            ),
            None => println!("{:<24} spike not found", laptop.model),
        }
    }
}
