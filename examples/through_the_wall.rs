//! The Fig. 10 scenario: exfiltration through a 35 cm office wall,
//! with a printer and a refrigerator polluting the spectrum.
//!
//! ```text
//! cargo run --release -p emsc-examples --example through_the_wall
//! ```

use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::laptop::Laptop;
use emsc_covert::tx::TxConfig;

fn main() {
    let secret = b"NLoS: wall is not an air gap";
    let laptop = Laptop::dell_inspiron();
    println!("victim    : {} in the office", laptop.model);
    println!("receiver  : loop antenna in the next room (1.5 m, 35 cm wall)");
    println!("interferers: laser printer (310 kHz), refrigerator inverter (64 kHz)");

    // The paper backs the rate off until the link is reliable (821 bps).
    let chain = Chain::new(&laptop, Setup::ThroughWall);
    let stretch = 5.2;
    let tx = TxConfig::calibrated_with_overhead(
        &chain.machine,
        laptop.tx_active_period_s() * stretch,
        laptop.tx_sleep_period_s() * stretch,
        laptop.tx_overhead_s(),
    );
    let expected = tx.expected_bit_period_on(&chain.machine);
    let rx = emsc_covert::rx::RxConfig::new(chain.switching_freq_hz(), expected);
    let scenario = CovertScenario { chain, tx, rx };

    let outcome = scenario.run(secret, 0x0A11);
    println!();
    println!(
        "link      : {:.0} bps, BER {:.1e}, {} ins, {} del",
        outcome.transmission_rate_bps,
        outcome.alignment.ber(),
        outcome.alignment.insertions,
        outcome.alignment.deletions
    );
    match &outcome.deframed {
        Some(d) => println!("received  : {:?}", String::from_utf8_lossy(&d.payload)),
        None => println!("received  : frame lost"),
    }

    // Compare with the same payload at line of sight, same distance.
    let los_chain = Chain::new(&laptop, Setup::LineOfSight(1.5));
    let los = CovertScenario::for_laptop(&laptop, los_chain).run(secret, 0x0A11);
    println!();
    println!(
        "for reference, line-of-sight at 1.5 m runs {:.0} bps at BER {:.1e}",
        los.transmission_rate_bps,
        los.alignment.ber()
    );
}
