//! Link-budget report: effective information rate and energy cost of
//! every operating point in the paper's evaluation.
//!
//! ```text
//! cargo run --release -p emsc-examples --example link_budget
//! ```
//!
//! Combines the measured BER/IP/DP with the BSC capacity bound
//! (`emsc_covert::capacity`) and RAPL-style energy accounting
//! (`emsc_pmu::energy`) — numbers the paper does not report but a
//! defender doing risk assessment would want.

use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::laptop::Laptop;
use emsc_covert::capacity::{bsc_capacity, effective_rate_bps, shannon_capacity_bps};
use emsc_covert::tx::TxConfig;
use emsc_pmu::energy::EnergyReport;

fn main() {
    let payload: Vec<u8> = (0..48u8).map(|i| i.wrapping_mul(37)).collect();
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>9} {:>11}",
        "operating point", "TR(bps)", "BER", "eff(bps)", "mean(W)", "energy/bit"
    );

    let laptop = Laptop::dell_inspiron();
    let points: Vec<(String, CovertScenario)> = vec![
        (
            "10 cm probe".into(),
            CovertScenario::for_laptop(&laptop, Chain::new(&laptop, Setup::NearField)),
        ),
        ("1 m loop".into(), stretched(&laptop, Setup::LineOfSight(1.0), 2.0)),
        ("2.5 m loop".into(), stretched(&laptop, Setup::LineOfSight(2.5), 3.75)),
        ("1.5 m + wall".into(), stretched(&laptop, Setup::ThroughWall, 5.2)),
    ];

    for (label, scenario) in points {
        let outcome = scenario.run(&payload, 11);
        let a = &outcome.alignment;
        let eff = effective_rate_bps(
            outcome.transmission_rate_bps,
            a.ber().min(0.5),
            a.insertion_probability(),
            a.deletion_probability(),
        );
        let energy = EnergyReport::from_trace(&outcome.chain_run.trace);
        println!(
            "{:<26} {:>8.0} {:>10.1e} {:>10.0} {:>9.2} {:>8.2} µJ",
            label,
            outcome.transmission_rate_bps,
            a.ber(),
            eff,
            energy.mean_w,
            energy.energy_per_bit_j(outcome.tx_bits.len()) * 1e6
        );
    }

    println!();
    println!(
        "BSC capacity at the paper's worst Table II BER (3e-2): {:.2} bit/use",
        bsc_capacity(3e-2)
    );
    println!(
        "Shannon ceiling for a 2.4 kHz bit-bandwidth at 30 dB: {:.0} bps",
        shannon_capacity_bps(2400.0, 30.0)
    );
}

fn stretched(laptop: &Laptop, setup: Setup, stretch: f64) -> CovertScenario {
    let chain = Chain::new(laptop, setup);
    let tx = TxConfig::calibrated_with_overhead(
        &chain.machine,
        laptop.tx_active_period_s() * stretch,
        laptop.tx_sleep_period_s() * stretch,
        laptop.tx_overhead_s(),
    );
    let expected = tx.expected_bit_period_on(&chain.machine);
    let rx = emsc_covert::rx::RxConfig::new(chain.switching_freq_hz(), expected);
    CovertScenario { chain, tx, rx }
}
