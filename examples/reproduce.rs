//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p emsc-examples --example reproduce            # everything
//! cargo run --release -p emsc-examples --example reproduce -- table2  # one artefact
//! ```
//!
//! Artefact names: fig2, bios, fig4, fig5, fig6, fig7, fig8, table1,
//! table2, background, fig9, table3, fig10, fig11, table4, extensions,
//! impairments, streaming, service, robust.
//!
//! Independent artefacts fan out across the `emsc-runtime` worker
//! pool (the big grids — Table II, Table III, the background stress —
//! additionally flatten their own cells when run alone). Output order
//! and content are identical to a serial run; set `EMSC_THREADS=1` to
//! force one.
//!
//! The output of a full run is recorded in `EXPERIMENTS.md` next to
//! the paper's numbers.

use emsc_core::experiments::covert_figs;
use emsc_core::experiments::impairments::{impairment_sweep, render_impairment_rows};
use emsc_core::experiments::keylog_table::{render_table4, table4, KeylogScale};
use emsc_core::experiments::robust::{render_robust_rows, robust_sweep};
use emsc_core::experiments::spectral::{fig11, fig2, fig2_bios, render_bios, Scale};
use emsc_core::experiments::streaming::{render_streaming_rows, streaming_sessions};
use emsc_core::experiments::tables::{
    fig10_nlos, fig9, render_channel_rows, render_fig9, table1, table2, table2_background, table3,
    TableScale,
};
use emsc_runtime::par_map;

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| filter.is_empty() || filter.iter().any(|f| f == name);
    let seed = 2020; // HPCA 2020

    // Table II runs first on the full pool (6 laptops × 5 runs of
    // cells) because Fig. 9 needs its best measured rate.
    let table2_rows = if want("table2") { Some(table2(TableScale::paper(), seed)) } else { None };
    let best_tr = table2_rows
        .as_ref()
        .map(|rows| rows.iter().map(|r| r.tr_bps).fold(0.0, f64::max))
        .unwrap_or(3700.0);

    // Every remaining artefact is an independent closure; they fan out
    // across the pool and print in this fixed order regardless of
    // which finishes first.
    type Artefact<'a> = (&'static str, Box<dyn Fn() -> String + Send + Sync + 'a>);
    let mut artefacts: Vec<Artefact> = Vec::new();
    if want("fig2") {
        artefacts.push(("fig2", Box::new(move || fig2(Scale::Paper, seed).render())));
    }
    if want("bios") {
        artefacts.push(("bios", Box::new(move || render_bios(&fig2_bios(Scale::Paper, seed)))));
    }
    if want("fig4") {
        artefacts.push(("fig4", Box::new(move || covert_figs::fig4(seed).render())));
    }
    if want("fig5") {
        artefacts.push((
            "fig5",
            Box::new(move || {
                let f = covert_figs::fig5(seed);
                format!(
                    "Fig. 5 — edge detection: {:.0} % of bit starts found in the first pass",
                    f.raw_edge_coverage * 100.0
                )
            }),
        ));
    }
    if want("fig6") {
        artefacts.push(("fig6", Box::new(move || covert_figs::fig6(seed).render())));
    }
    if want("fig7") {
        artefacts.push(("fig7", Box::new(move || covert_figs::fig7(seed).render())));
    }
    if want("fig8") {
        artefacts.push(("fig8", Box::new(move || covert_figs::fig8(seed).render())));
    }
    if want("table1") {
        artefacts.push(("table1", Box::new(table1)));
    }
    if let Some(rows) = &table2_rows {
        artefacts.push((
            "table2",
            Box::new(move || {
                render_channel_rows("Table II — near-field covert channel (10 cm probe)", rows)
            }),
        ));
    }
    if want("background") {
        artefacts.push((
            "background",
            Box::new(move || {
                render_channel_rows(
                    "§IV-C2 — background-activity stress (Dell Inspiron)",
                    &table2_background(TableScale::paper(), seed),
                )
            }),
        ));
    }
    if want("fig9") {
        artefacts.push((
            "fig9",
            Box::new(move || {
                let (baselines, measured) = fig9(best_tr);
                render_fig9(&baselines, measured)
            }),
        ));
    }
    if want("table3") {
        artefacts.push((
            "table3",
            Box::new(move || {
                render_channel_rows(
                    "Table III — distance sweep (Dell Inspiron, loop antenna)",
                    &table3(TableScale::paper(), seed),
                )
            }),
        ));
    }
    if want("fig10") {
        artefacts.push((
            "fig10",
            Box::new(move || {
                render_channel_rows(
                    "Fig. 10 / §IV-C3 — NLoS through the wall (interferers on)",
                    &[fig10_nlos(TableScale::paper(), seed)],
                )
            }),
        ));
    }
    if want("fig11") {
        artefacts.push(("fig11", Box::new(move || fig11(seed).render())));
    }
    if want("table4") {
        artefacts
            .push(("table4", Box::new(move || render_table4(&table4(KeylogScale::paper(), seed)))));
    }
    if want("impairments") {
        artefacts.push((
            "impairments",
            Box::new(move || render_impairment_rows(&impairment_sweep(TableScale::paper(), seed))),
        ));
    }
    if want("streaming") {
        artefacts.push((
            "streaming",
            Box::new(move || render_streaming_rows(&streaming_sessions(seed))),
        ));
    }
    if want("robust") {
        artefacts.push((
            "robust",
            Box::new(move || render_robust_rows(&robust_sweep(TableScale::paper(), seed))),
        ));
    }
    if want("service") {
        artefacts.push((
            "service",
            Box::new(move || emsc_service::render_soak_rows(&emsc_service::soak(seed))),
        ));
    }
    if want("extensions") {
        artefacts.push((
            "extensions",
            Box::new(move || {
                use emsc_core::experiments::extensions::{fingerprint_accuracy, timing_analysis};
                format!(
                    "{}\n\n{}",
                    fingerprint_accuracy(4, seed).render(),
                    timing_analysis("the quick brown fox jumps over the lazy dog", seed).render()
                )
            }),
        ));
    }

    let outputs = par_map(&artefacts, |(_, run)| run());
    for output in outputs {
        println!("{output}\n");
    }
}
