//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p emsc-examples --example reproduce            # everything
//! cargo run --release -p emsc-examples --example reproduce -- table2  # one artefact
//! ```
//!
//! Artefact names: fig2, bios, fig4, fig5, fig6, fig7, fig8, table1,
//! table2, background, fig9, table3, fig10, fig11, table4, extensions.
//!
//! The output of a full run is recorded in `EXPERIMENTS.md` next to
//! the paper's numbers.

use emsc_core::experiments::keylog_table::{render_table4, table4, KeylogScale};
use emsc_core::experiments::spectral::{fig2, fig2_bios, fig11, render_bios, Scale};
use emsc_core::experiments::tables::{
    fig10_nlos, fig9, render_channel_rows, render_fig9, table1, table2, table2_background, table3,
    TableScale,
};
use emsc_core::experiments::covert_figs;

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| filter.is_empty() || filter.iter().any(|f| f == name);
    let seed = 2020; // HPCA 2020

    if want("fig2") {
        println!("{}\n", fig2(Scale::Paper, seed).render());
    }
    if want("bios") {
        println!("{}\n", render_bios(&fig2_bios(Scale::Paper, seed)));
    }
    if want("fig4") {
        println!("{}\n", covert_figs::fig4(seed).render());
    }
    if want("fig5") {
        let f = covert_figs::fig5(seed);
        println!(
            "Fig. 5 — edge detection: {:.0} % of bit starts found in the first pass\n",
            f.raw_edge_coverage * 100.0
        );
    }
    if want("fig6") {
        println!("{}\n", covert_figs::fig6(seed).render());
    }
    if want("fig7") {
        println!("{}\n", covert_figs::fig7(seed).render());
    }
    if want("fig8") {
        println!("{}\n", covert_figs::fig8(seed).render());
    }
    if want("table1") {
        println!("{}\n", table1());
    }
    let mut best_tr: f64 = 3700.0;
    if want("table2") {
        let rows = table2(TableScale::paper(), seed);
        best_tr = rows.iter().map(|r| r.tr_bps).fold(0.0, f64::max);
        println!(
            "{}\n",
            render_channel_rows("Table II — near-field covert channel (10 cm probe)", &rows)
        );
    }
    if want("background") {
        println!(
            "{}\n",
            render_channel_rows(
                "§IV-C2 — background-activity stress (Dell Inspiron)",
                &table2_background(TableScale::paper(), seed)
            )
        );
    }
    if want("fig9") {
        let (baselines, measured) = fig9(best_tr);
        println!("{}\n", render_fig9(&baselines, measured));
    }
    if want("table3") {
        println!(
            "{}\n",
            render_channel_rows(
                "Table III — distance sweep (Dell Inspiron, loop antenna)",
                &table3(TableScale::paper(), seed)
            )
        );
    }
    if want("fig10") {
        println!(
            "{}\n",
            render_channel_rows(
                "Fig. 10 / §IV-C3 — NLoS through the wall (interferers on)",
                &[fig10_nlos(TableScale::paper(), seed)]
            )
        );
    }
    if want("fig11") {
        println!("{}\n", fig11(seed).render());
    }
    if want("table4") {
        println!("{}\n", render_table4(&table4(KeylogScale::paper(), seed)));
    }
    if want("extensions") {
        use emsc_core::experiments::extensions::{fingerprint_accuracy, timing_analysis};
        println!("{}\n", fingerprint_accuracy(4, seed).render());
        println!(
            "{}\n",
            timing_analysis("the quick brown fox jumps over the lazy dog", seed).render()
        );
    }
}
