//! Evaluate the §III/§VI countermeasures against the covert channel.
//!
//! ```text
//! cargo run --release -p emsc-examples --example countermeasures
//! ```
//!
//! Expected shape: disabling either C-states *or* P-states leaves the
//! channel alive; disabling both kills it; VRM randomisation and
//! shielding degrade it progressively.

use emsc_core::chain::{Chain, Setup};
use emsc_core::countermeasure::Countermeasure;
use emsc_core::covert_run::CovertScenario;
use emsc_core::laptop::Laptop;

fn main() {
    let payload = b"does this still leak?";
    let laptop = Laptop::dell_inspiron();
    println!("victim: {}, probe at 10 cm\n", laptop.model);
    println!("{:<34} {:>9} {:>9} {:>10}", "configuration", "BER", "rx bits", "recovered");

    let configs: Vec<(String, Chain)> = vec![
        ("baseline (all states enabled)".to_string(), Chain::new(&laptop, Setup::NearField)),
        cm(Countermeasure::DisableCStates, &laptop),
        cm(Countermeasure::DisablePStates, &laptop),
        cm(Countermeasure::DisableBoth, &laptop),
        cm(Countermeasure::RandomizeVrm { spread: 0.2 }, &laptop),
        cm(Countermeasure::RandomizeVrm { spread: 0.45 }, &laptop),
        cm(Countermeasure::Shielding { attenuation_db: 20.0 }, &laptop),
        cm(Countermeasure::Shielding { attenuation_db: 40.0 }, &laptop),
        cm(Countermeasure::Shielding { attenuation_db: 60.0 }, &laptop),
        cm(Countermeasure::Blinking { period_s: 1e-3, duty: 0.5 }, &laptop),
        cm(Countermeasure::Blinking { period_s: 1e-3, duty: 0.9 }, &laptop),
    ];

    for (label, chain) in configs {
        let scenario = CovertScenario::for_laptop(&laptop, chain);
        let outcome = scenario.run(payload, 7);
        println!(
            "{:<34} {:>9.1e} {:>9} {:>10}",
            label,
            outcome.alignment.ber(),
            outcome.report.bits.len(),
            if outcome.recovered(payload) { "yes" } else { "NO" }
        );
    }
    println!("\n(the paper's §III observation: only disabling *both* families removes");
    println!(" the modulation — the VRM then stays in its high-power mode permanently)");
}

fn cm(c: Countermeasure, laptop: &Laptop) -> (String, Chain) {
    (c.label(), c.apply(Chain::new(laptop, Setup::NearField)))
}
