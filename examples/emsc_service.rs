//! The capture daemon, CLI-fronted: supervise a fleet of sensors with
//! restart policies, watchdogs, quarantine and deterministic fault
//! injection.
//!
//! ```text
//! # E5 soak fleet (ten sensors, escalating fault schedule):
//! cargo run --release -p emsc-examples --example emsc_service
//! cargo run --release -p emsc-examples --example emsc_service -- --seed 7 --events
//!
//! # Supervise a spooled rtl_sdr u8 recording with a blind receiver:
//! cargo run --release -p emsc-examples --example emsc_service -- \
//!     --spool capture.bin --sample-rate 2400000 --center-freq 1455000
//! ```
//!
//! Everything is deterministic: the soak's faults, restarts and
//! backoff jitter derive from `--seed`, so two invocations with the
//! same arguments print byte-identical output at any `EMSC_THREADS`.

use emsc_covert::rx::RxConfig;
use emsc_service::{
    render_soak_rows, soak, FaultPlan, SensorKind, SensorPolicy, SensorSpec, ServiceConfig,
    SpoolSource, Supervisor,
};

/// Returns the value following `--name`, if present.
fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn parse_f64(args: &[String], name: &str, default: f64) -> f64 {
    flag_value(args, name).map(|v| v.parse().unwrap_or_else(|_| die(name))).unwrap_or(default)
}

fn parse_u64(args: &[String], name: &str, default: u64) -> u64 {
    flag_value(args, name).map(|v| v.parse().unwrap_or_else(|_| die(name))).unwrap_or(default)
}

fn die(name: &str) -> ! {
    eprintln!("invalid value for {name}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parse_u64(&args, "--seed", 2020);

    if let Some(path) = flag_value(&args, "--spool") {
        supervise_spool(&args, seed, &path);
        return;
    }

    // Default mode: the E5 soak fleet.
    let outcome = soak(seed);
    print!("{}", render_soak_rows(&outcome));
    if args.iter().any(|a| a == "--events") {
        println!("\nsupervision event log:");
        for e in &outcome.report.events {
            println!("  t={:<5} sensor {:<2} {}", e.tick, e.sensor, e.what);
        }
    } else {
        println!("(run with --events for the full supervision log)");
    }
}

/// Supervises a single spooled `rtl_sdr` interleaved-u8 recording with
/// a blind covert receiver (bit period estimated from the capture).
fn supervise_spool(args: &[String], seed: u64, path: &str) {
    let sample_rate = parse_f64(args, "--sample-rate", 2.4e6);
    let center_freq = parse_f64(args, "--center-freq", 1.455e6);
    let switching_freq = parse_f64(args, "--switching-freq", 970e3);
    let bit_period = parse_f64(args, "--bit-period", 1e-3);
    let chunk = parse_u64(args, "--chunk", 4096) as usize;
    let max_ticks = parse_u64(args, "--ticks", 100_000);

    let source =
        match SpoolSource::from_file(std::path::Path::new(path), sample_rate, center_freq, chunk) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open spool {path}: {e}");
                std::process::exit(1);
            }
        };

    let config = ServiceConfig { base_seed: seed, max_ticks, ..ServiceConfig::default() };
    let mut daemon = Supervisor::new(config, FaultPlan::none());
    daemon.add_sensor(SensorSpec {
        label: path.to_string(),
        kind: SensorKind::BlindCovert(RxConfig::new(switching_freq, bit_period)),
        source: Box::new(source),
        policy: SensorPolicy::default(),
    });
    let report = daemon.run();

    for s in &report.sensors {
        println!(
            "{}: state={} uptime {}/{} ticks, {} restart(s), {} session(s), \
             {} samples, {} bits decoded{}",
            s.label,
            s.state.label(),
            s.uptime_ticks,
            s.active_ticks,
            s.restarts,
            s.sessions.len(),
            s.samples_processed,
            s.decoded_bits,
            s.last_error.map(|e| format!(", last error: {e}")).unwrap_or_default(),
        );
    }
    for e in &report.events {
        println!("  t={:<5} {}", e.tick, e.what);
    }
}
