//! Runnable example applications for the PMU EM side-channel library.
//!
//! This library target is intentionally empty — everything lives in
//! the example binaries:
//!
//! | Example | Run with `cargo run --release -p emsc-examples --example …` |
//! |---|---|
//! | `quickstart` | one covert transfer across the air gap |
//! | `exfiltrate_file` | packetised multi-frame exfiltration at 1 m |
//! | `keylogger` | keystroke detection, word grouping, timing analysis |
//! | `through_the_wall` | the Fig. 10 NLoS link with interferers |
//! | `countermeasures` | the §III/§VI mitigation sweep |
//! | `fingerprinting` | website fingerprinting from 2 m |
//! | `spectrum_scan` | locating an unknown laptop's VRM spike |
//! | `link_budget` | effective rate + energy cost per operating point |
//! | `zero_knowledge` | interception with no prior knowledge at all |
//! | `reproduce` | every table and figure of the paper |
//! | `emsc_service` | the supervised capture daemon: E5 soak fleet or a spooled recording |
//! | `perf_report` | runtime/DSP benchmarks, written to `BENCH_runtime.json` |
