//! Website fingerprinting via the PMU EM side channel (the §III
//! attack-model extension the paper describes but does not evaluate).
//!
//! ```text
//! cargo run --release -p emsc-examples --example fingerprinting
//! ```
//!
//! The attacker watches the victim browse from 2 m away, times the
//! processor-activity bursts of each page load, and classifies which
//! site was visited with a k-NN over the burst features.

use emsc_core::chain::{Chain, Setup};
use emsc_core::fingerprint_run::FingerprintScenario;
use emsc_core::laptop::Laptop;
use emsc_fingerprint::workload::site_library;

fn main() {
    let laptop = Laptop::dell_precision();
    println!("victim    : {} browsing", laptop.model);
    println!("receiver  : loop antenna at 2 m");

    let sites = site_library();
    println!("site library ({}):", sites.len());
    for s in &sites {
        println!(
            "  {:<12} {} bursts, {:.2} s active over {:.2} s",
            s.name,
            s.bursts.len(),
            s.total_active_s(),
            s.load_time_s()
        );
    }

    let chain = Chain::new(&laptop, Setup::LineOfSight(2.0));
    let scenario = FingerprintScenario::standard(chain, sites);
    let visits_per_site = 4;
    println!("\nobserving {} visits per site...", visits_per_site);
    let outcome = scenario.run(visits_per_site, 0xF16E);

    println!(
        "leave-one-out accuracy: {:.0} % (chance {:.0} %)",
        outcome.accuracy * 100.0,
        outcome.chance * 100.0
    );
    for v in outcome.visits.iter().take(5) {
        if let Some(f) = v.features {
            println!(
                "  e.g. {:<12} → {} bursts, {:.2} s active, {:.2} s span",
                v.label, v.bursts, f.values[0], f.values[1]
            );
        }
    }
}
