//! Reusable buffer arena for allocation-free steady-state DSP.
//!
//! Every hot kernel in this crate has an `_into(&mut out, &mut
//! scratch)` variant that writes its result into a caller-owned buffer
//! and borrows its temporaries from a [`DspScratch`]. A streaming
//! consumer allocates one scratch up front, threads it through every
//! kernel call, and the per-chunk steady state performs no heap
//! allocation at all (pinned by `tests/tests/alloc.rs`).
//!
//! # Contract
//!
//! - **Lanes are clobbered.** A kernel may overwrite any lane it
//!   documents using; lane contents are unspecified between kernel
//!   calls. Never stash data in a lane across a kernel call.
//! - **Capacity is monotone.** Kernels only grow lanes (via
//!   `clear` + `resize`/`extend`), so after a warm-up call with the
//!   largest input, subsequent same-sized calls are allocation-free.
//! - **No aliasing with outputs.** `out` buffers passed to `_into`
//!   kernels must be distinct from the scratch (guaranteed by the
//!   borrow checker — the scratch owns its lanes).
//! - **Exact-vs-fast dispatch is unaffected.** Scratch variants are
//!   bit-identical to their allocating wrappers: the wrapper is a thin
//!   `let mut out = Vec::new(); kernel_into(.., &mut out, ..); out`.
//!
//! The arena is deliberately dumb: four named lanes, two complex and
//! two real, sized for the deepest kernel nesting in the receive chain
//! (a packed real-FFT inside a Welch segment inside a detector). Each
//! kernel documents which lanes it uses so callers composing kernels
//! by hand can check for collisions statically.

use crate::iq::Complex;

/// Reusable scratch lanes for the `_into` kernel variants.
///
/// See the [module docs](self) for the ownership and reuse rules.
#[derive(Debug, Default, Clone)]
pub struct DspScratch {
    /// First complex lane (FFT work buffers, mixer/ring snapshots).
    pub c0: Vec<Complex>,
    /// Second complex lane (half-size packing for the real FFT).
    pub c1: Vec<Complex>,
    /// First real lane (prefix sums, magnitudes, sort buffers).
    pub f0: Vec<f64>,
    /// Second real lane (secondary reductions).
    pub f1: Vec<f64>,
}

impl DspScratch {
    /// An empty scratch; lanes grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-grown so that kernels operating on inputs of up
    /// to `n` samples will not allocate even on their first call.
    pub fn with_capacity(n: usize) -> Self {
        DspScratch {
            c0: Vec::with_capacity(n),
            c1: Vec::with_capacity(n),
            f0: Vec::with_capacity(n),
            f1: Vec::with_capacity(n),
        }
    }

    /// Total heap bytes currently reserved across all lanes.
    pub fn reserved_bytes(&self) -> usize {
        self.c0.capacity() * std::mem::size_of::<Complex>()
            + self.c1.capacity() * std::mem::size_of::<Complex>()
            + self.f0.capacity() * std::mem::size_of::<f64>()
            + self.f1.capacity() * std::mem::size_of::<f64>()
    }
}

/// Clears `buf` and resizes it to `n` zeros without shrinking its
/// capacity. The standard warm-up-then-steady-state idiom used by
/// every `_into` kernel.
pub(crate) fn reset_f64(buf: &mut Vec<f64>, n: usize) {
    buf.clear();
    buf.resize(n, 0.0);
}

/// Complex counterpart of [`reset_f64`].
pub(crate) fn reset_complex(buf: &mut Vec<Complex>, n: usize) {
    buf.clear();
    buf.resize(n, Complex::ZERO);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_capacity_reserves_all_lanes() {
        let s = DspScratch::with_capacity(128);
        assert!(s.reserved_bytes() >= 128 * (2 * 16 + 2 * 8));
        assert!(s.c0.is_empty() && s.f1.is_empty());
    }

    #[test]
    fn reset_keeps_capacity() {
        let mut v = Vec::with_capacity(64);
        reset_f64(&mut v, 64);
        let cap = v.capacity();
        reset_f64(&mut v, 16);
        assert_eq!(v.len(), 16);
        assert_eq!(v.capacity(), cap);
    }
}
