//! FIR filter design and decimation.
//!
//! The RTL-SDR delivers 2.4 Msps, but the covert channel's information
//! lives in a few kHz around each VRM harmonic. A windowed-sinc
//! low-pass plus decimation is the standard front-end step for
//! narrowband work; this module provides both, from scratch, for
//! receivers that want to trade the sliding DFT for a classic
//! filter-and-decimate chain.

use crate::iq::Complex;
use crate::window::Window;

/// A finite-impulse-response filter with real taps (applied to
/// complex samples component-wise).
#[derive(Debug, Clone, PartialEq)]
pub struct Fir {
    taps: Vec<f64>,
}

impl Fir {
    /// Designs a windowed-sinc low-pass with the given normalised
    /// cutoff (`0 < cutoff < 0.5`, as a fraction of the sample rate)
    /// and `taps` coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is zero/even or `cutoff` is out of `(0, 0.5)`.
    pub fn low_pass(taps: usize, cutoff: f64, window: Window) -> Self {
        assert!(taps > 0 && taps % 2 == 1, "tap count must be odd");
        assert!(cutoff > 0.0 && cutoff < 0.5, "cutoff must be in (0, 0.5)");
        let m = (taps - 1) as f64 / 2.0;
        let win = window.symmetric_coefficients(taps);
        let mut coeffs: Vec<f64> = (0..taps)
            .map(|i| {
                let x = i as f64 - m;
                let sinc = if x.abs() < 1e-12 {
                    2.0 * cutoff
                } else {
                    (2.0 * std::f64::consts::PI * cutoff * x).sin() / (std::f64::consts::PI * x)
                };
                sinc * win[i]
            })
            .collect();
        // Normalise to unity DC gain.
        let sum: f64 = coeffs.iter().sum();
        for c in &mut coeffs {
            *c /= sum;
        }
        Fir { taps: coeffs }
    }

    /// The filter coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Filter group delay in samples (linear-phase symmetric FIR).
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Magnitude response at normalised frequency `f` (fraction of the
    /// sample rate).
    pub fn response_at(&self, f: f64) -> f64 {
        let mut acc = Complex::ZERO;
        for (i, &t) in self.taps.iter().enumerate() {
            acc += Complex::cis(-2.0 * std::f64::consts::PI * f * i as f64).scale(t);
        }
        acc.abs()
    }

    /// Filters a complex signal with "same" alignment: output index
    /// `i` corresponds to input index `i` (the symmetric filter's
    /// group delay is compensated). Edges use the available partial
    /// overlap.
    pub fn filter(&self, signal: &[Complex]) -> Vec<Complex> {
        let n = signal.len();
        let delay = self.group_delay() as isize;
        let mut out = vec![Complex::ZERO; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for (j, &t) in self.taps.iter().enumerate() {
                let idx = i as isize + delay - j as isize;
                if (0..n as isize).contains(&idx) {
                    acc += signal[idx as usize].scale(t);
                }
            }
            *slot = acc;
        }
        out
    }

    /// Filters and keeps every `factor`-th output sample — the
    /// classic decimating FIR (anti-alias filter + downsample).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn decimate(&self, signal: &[Complex], factor: usize) -> Vec<Complex> {
        assert!(factor > 0, "decimation factor must be positive");
        self.filter(signal).into_iter().step_by(factor).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::cis(2.0 * std::f64::consts::PI * f * i as f64)).collect()
    }

    #[test]
    fn dc_gain_is_unity() {
        let fir = Fir::low_pass(63, 0.1, Window::Hamming);
        assert!((fir.taps().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((fir.response_at(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn passband_and_stopband() {
        let fir = Fir::low_pass(101, 0.1, Window::Blackman);
        assert!(fir.response_at(0.02) > 0.95, "passband droop");
        assert!(fir.response_at(0.25) < 1e-3, "stopband leak {}", fir.response_at(0.25));
        assert!(fir.response_at(0.45) < 1e-3);
    }

    #[test]
    fn filters_out_a_high_tone() {
        let fir = Fir::low_pass(101, 0.05, Window::Blackman);
        let low = tone(0.01, 1024);
        let high = tone(0.3, 1024);
        let mixed: Vec<Complex> = low.iter().zip(&high).map(|(a, b)| *a + *b).collect();
        let filtered = fir.filter(&mixed);
        // Compare energy in the steady-state middle.
        let mid = &filtered[200..800];
        let energy: f64 = mid.iter().map(|z| z.norm_sqr()).sum::<f64>() / mid.len() as f64;
        // The low tone passes at ~unit amplitude; the high tone is gone.
        assert!((energy - 1.0).abs() < 0.05, "energy {energy}");
    }

    #[test]
    fn taps_are_symmetric() {
        let fir = Fir::low_pass(51, 0.2, Window::Hann);
        let t = fir.taps();
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12, "asymmetry at {i}");
        }
        assert_eq!(fir.group_delay(), 25);
    }

    #[test]
    fn decimation_preserves_a_passband_tone() {
        let fir = Fir::low_pass(101, 0.05, Window::Blackman);
        let x = tone(0.01, 4096);
        let y = fir.decimate(&x, 8);
        assert_eq!(y.len(), 512);
        // Tone at 0.01 of the old rate = 0.08 of the new rate; still a
        // clean unit-amplitude phasor in steady state.
        let mid = &y[100..400];
        for s in mid {
            assert!((s.abs() - 1.0).abs() < 0.05, "amp {}", s.abs());
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_tap_count_panics() {
        Fir::low_pass(64, 0.1, Window::Hann);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn invalid_cutoff_panics() {
        Fir::low_pass(63, 0.6, Window::Hann);
    }
}
