//! FIR filter design and decimation.
//!
//! The RTL-SDR delivers 2.4 Msps, but the covert channel's information
//! lives in a few kHz around each VRM harmonic. A windowed-sinc
//! low-pass plus decimation is the standard front-end step for
//! narrowband work; this module provides both, from scratch, for
//! receivers that want to trade the sliding DFT for a classic
//! filter-and-decimate chain.
//!
//! The hot path is [`Fir::decimate_into`]: the input is split once
//! into planar re/im scratch lanes, each kept output is two contiguous
//! real dot products (lane-chunked via [`crate::simd::dot`]), and —
//! unlike the classic filter-then-downsample formulation — the
//! `factor − 1` discarded outputs per kept sample are never computed
//! at all.

use crate::iq::Complex;
use crate::scratch::{reset_f64, DspScratch};
use crate::simd::dot;
use crate::window::Window;

/// A finite-impulse-response filter with real taps (applied to
/// complex samples component-wise).
#[derive(Debug, Clone, PartialEq)]
pub struct Fir {
    taps: Vec<f64>,
    /// Taps in reversed order: convolution at output `i` is then a
    /// forward dot product against `signal[i − delay ..]`, which is
    /// the contiguous-memory form the lane-chunked kernel wants.
    /// (Symmetric designs make this a copy of `taps`, but the kernel
    /// does not rely on symmetry.)
    taps_rev: Vec<f64>,
}

impl Fir {
    /// Designs a windowed-sinc low-pass with the given normalised
    /// cutoff (`0 < cutoff < 0.5`, as a fraction of the sample rate)
    /// and `taps` coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is zero/even or `cutoff` is out of `(0, 0.5)`.
    pub fn low_pass(taps: usize, cutoff: f64, window: Window) -> Self {
        assert!(taps > 0 && taps % 2 == 1, "tap count must be odd");
        assert!(cutoff > 0.0 && cutoff < 0.5, "cutoff must be in (0, 0.5)");
        let m = (taps - 1) as f64 / 2.0;
        let win = window.symmetric_coefficients(taps);
        let mut coeffs: Vec<f64> = (0..taps)
            .map(|i| {
                let x = i as f64 - m;
                let sinc = if x.abs() < 1e-12 {
                    2.0 * cutoff
                } else {
                    (2.0 * std::f64::consts::PI * cutoff * x).sin() / (std::f64::consts::PI * x)
                };
                sinc * win[i]
            })
            .collect();
        // Normalise to unity DC gain.
        let sum: f64 = coeffs.iter().sum();
        for c in &mut coeffs {
            *c /= sum;
        }
        let taps_rev: Vec<f64> = coeffs.iter().rev().copied().collect();
        Fir { taps: coeffs, taps_rev }
    }

    /// The filter coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Filter group delay in samples (linear-phase symmetric FIR).
    pub fn group_delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Magnitude response at normalised frequency `f` (fraction of the
    /// sample rate).
    pub fn response_at(&self, f: f64) -> f64 {
        let mut acc = Complex::ZERO;
        for (i, &t) in self.taps.iter().enumerate() {
            acc += Complex::cis(-2.0 * std::f64::consts::PI * f * i as f64).scale(t);
        }
        acc.abs()
    }

    /// Filters a complex signal with "same" alignment: output index
    /// `i` corresponds to input index `i` (the symmetric filter's
    /// group delay is compensated). Edges use the available partial
    /// overlap. Allocating wrapper around [`Fir::filter_into`].
    pub fn filter(&self, signal: &[Complex]) -> Vec<Complex> {
        let mut out = Vec::new();
        self.filter_into(signal, &mut out, &mut DspScratch::new());
        out
    }

    /// [`Fir::filter`] into a caller-owned buffer. Equivalent to
    /// `decimate_into(signal, 1, ..)`. Uses `scratch.f0`/`scratch.f1`.
    pub fn filter_into(&self, signal: &[Complex], out: &mut Vec<Complex>, scr: &mut DspScratch) {
        self.decimate_into(signal, 1, out, scr);
    }

    /// Filters and keeps every `factor`-th output sample — the
    /// classic decimating FIR (anti-alias filter + downsample).
    /// Allocating wrapper around [`Fir::decimate_into`].
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn decimate(&self, signal: &[Complex], factor: usize) -> Vec<Complex> {
        let mut out = Vec::new();
        self.decimate_into(signal, factor, &mut out, &mut DspScratch::new());
        out
    }

    /// Decimating filter into a caller-owned buffer: computes only the
    /// kept outputs (indices `0, factor, 2·factor, …` of the "same"
    /// alignment), each as two lane-chunked real dot products over the
    /// planar re/im copies of the input held in `scratch.f0`/`f1`.
    ///
    /// After a warm-up call at the largest input size, steady-state
    /// calls perform no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn decimate_into(
        &self,
        signal: &[Complex],
        factor: usize,
        out: &mut Vec<Complex>,
        scr: &mut DspScratch,
    ) {
        assert!(factor > 0, "decimation factor must be positive");
        let n = signal.len();
        out.clear();
        if n == 0 {
            return;
        }
        // Planar split: two contiguous real planes vectorize the tap
        // loop; the interleaved form would load with stride 2.
        reset_f64(&mut scr.f0, n);
        reset_f64(&mut scr.f1, n);
        for ((re, im), z) in scr.f0.iter_mut().zip(scr.f1.iter_mut()).zip(signal) {
            *re = z.re;
            *im = z.im;
        }
        let (re_plane, im_plane) = (&scr.f0[..], &scr.f1[..]);

        let t = self.taps.len();
        let delay = self.group_delay();
        out.reserve(n.div_ceil(factor));
        let mut i = 0usize;
        while i < n {
            // Output i covers inputs [i − delay, i − delay + t).
            let lo = i as isize - delay as isize;
            if lo >= 0 && lo as usize + t <= n {
                let base = lo as usize;
                let re = dot(&self.taps_rev, &re_plane[base..base + t]);
                let im = dot(&self.taps_rev, &im_plane[base..base + t]);
                out.push(Complex::new(re, im));
            } else {
                // Edge: only the overlapping taps contribute.
                let mut acc = Complex::ZERO;
                for (j, &tap) in self.taps.iter().enumerate() {
                    let idx = i as isize + delay as isize - j as isize;
                    if (0..n as isize).contains(&idx) {
                        acc += signal[idx as usize].scale(tap);
                    }
                }
                out.push(acc);
            }
            i += factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::cis(2.0 * std::f64::consts::PI * f * i as f64)).collect()
    }

    /// The pre-rewrite reference implementation: full "same"-aligned
    /// scalar convolution, then take every `factor`-th output.
    fn filter_then_downsample(fir: &Fir, signal: &[Complex], factor: usize) -> Vec<Complex> {
        let n = signal.len();
        let delay = fir.group_delay() as isize;
        let mut full = vec![Complex::ZERO; n];
        for (i, slot) in full.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for (j, &t) in fir.taps().iter().enumerate() {
                let idx = i as isize + delay - j as isize;
                if (0..n as isize).contains(&idx) {
                    acc += signal[idx as usize].scale(t);
                }
            }
            *slot = acc;
        }
        full.into_iter().step_by(factor).collect()
    }

    #[test]
    fn dc_gain_is_unity() {
        let fir = Fir::low_pass(63, 0.1, Window::Hamming);
        assert!((fir.taps().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((fir.response_at(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn passband_and_stopband() {
        let fir = Fir::low_pass(101, 0.1, Window::Blackman);
        assert!(fir.response_at(0.02) > 0.95, "passband droop");
        assert!(fir.response_at(0.25) < 1e-3, "stopband leak {}", fir.response_at(0.25));
        assert!(fir.response_at(0.45) < 1e-3);
    }

    #[test]
    fn filters_out_a_high_tone() {
        let fir = Fir::low_pass(101, 0.05, Window::Blackman);
        let low = tone(0.01, 1024);
        let high = tone(0.3, 1024);
        let mixed: Vec<Complex> = low.iter().zip(&high).map(|(a, b)| *a + *b).collect();
        let filtered = fir.filter(&mixed);
        // Compare energy in the steady-state middle.
        let mid = &filtered[200..800];
        let energy: f64 = mid.iter().map(|z| z.norm_sqr()).sum::<f64>() / mid.len() as f64;
        // The low tone passes at ~unit amplitude; the high tone is gone.
        assert!((energy - 1.0).abs() < 0.05, "energy {energy}");
    }

    #[test]
    fn taps_are_symmetric() {
        let fir = Fir::low_pass(51, 0.2, Window::Hann);
        let t = fir.taps();
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12, "asymmetry at {i}");
        }
        assert_eq!(fir.group_delay(), 25);
    }

    #[test]
    fn decimation_preserves_a_passband_tone() {
        let fir = Fir::low_pass(101, 0.05, Window::Blackman);
        let x = tone(0.01, 4096);
        let y = fir.decimate(&x, 8);
        assert_eq!(y.len(), 512);
        // Tone at 0.01 of the old rate = 0.08 of the new rate; still a
        // clean unit-amplitude phasor in steady state.
        let mid = &y[100..400];
        for s in mid {
            assert!((s.abs() - 1.0).abs() < 0.05, "amp {}", s.abs());
        }
    }

    #[test]
    fn lane_chunked_kernel_matches_scalar_reference_below_minus_120_db() {
        let fir = Fir::low_pass(63, 0.08, Window::Hamming);
        let x: Vec<Complex> = (0..2000)
            .map(|i| {
                let a = (i as f64 * 0.713).sin() + 0.3 * (i as f64 * 2.9).cos();
                let b = (i as f64 * 0.311).cos();
                Complex::new(a, b)
            })
            .collect();
        for factor in [1usize, 3, 8, 24] {
            let fast = fir.decimate(&x, factor);
            let reference = filter_then_downsample(&fir, &x, factor);
            assert_eq!(fast.len(), reference.len(), "factor {factor}");
            let err: f64 = fast.iter().zip(&reference).map(|(a, b)| (*a - *b).norm_sqr()).sum();
            let sig: f64 = reference.iter().map(|z| z.norm_sqr()).sum();
            let db = 10.0 * (err.max(1e-300) / sig.max(1e-300)).log10();
            assert!(db <= -120.0, "factor {factor}: kernel error {db:.1} dB");
        }
    }

    #[test]
    fn decimate_never_computes_discarded_outputs_but_keeps_edges_right() {
        // Short signal: every output touches an edge; both paths must
        // still agree.
        let fir = Fir::low_pass(31, 0.1, Window::Hann);
        let x = tone(0.02, 20);
        let fast = fir.decimate(&x, 4);
        let reference = filter_then_downsample(&fir, &x, 4);
        assert_eq!(fast.len(), reference.len());
        for (a, b) in fast.iter().zip(&reference) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn decimate_into_is_allocation_free_after_warmup() {
        let fir = Fir::low_pass(63, 0.1, Window::Hamming);
        let x = tone(0.01, 4096);
        let mut out = Vec::new();
        let mut scr = DspScratch::new();
        fir.decimate_into(&x, 8, &mut out, &mut scr);
        let caps = (out.capacity(), scr.f0.capacity(), scr.f1.capacity());
        fir.decimate_into(&x, 8, &mut out, &mut scr);
        assert_eq!(caps, (out.capacity(), scr.f0.capacity(), scr.f1.capacity()));
    }

    #[test]
    fn empty_signal_filters_to_empty() {
        let fir = Fir::low_pass(31, 0.1, Window::Hann);
        assert!(fir.filter(&[]).is_empty());
        assert!(fir.decimate(&[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_tap_count_panics() {
        Fir::low_pass(64, 0.1, Window::Hann);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn invalid_cutoff_panics() {
        Fir::low_pass(63, 0.6, Window::Hann);
    }
}
