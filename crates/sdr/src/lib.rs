//! Software-defined-radio receiver model and from-scratch DSP library.
//!
//! This crate is the signal-processing substrate for reproducing the
//! HPCA 2020 paper *"A New Side-Channel Vulnerability on Modern
//! Computers by Exploiting Electromagnetic Emanations from the Power
//! Management Unit"*. The paper's receiver is an RTL-SDR v3 (8-bit,
//! 2.4 Msps) feeding a MATLAB detection pipeline; this crate provides
//! the Rust equivalents of every primitive it needs:
//!
//! - [`iq`]: the [`iq::Complex`] I/Q sample type,
//! - [`fft`]: a from-scratch radix-2 FFT ([`fft::FftPlan`]),
//! - [`window`]/[`stft`]: windowed short-time analysis and
//!   [`stft::Spectrogram`]s (Fig. 2, Fig. 11),
//! - [`sliding`]: per-sample tracking of selected bins — the paper's
//!   Eq. (1) energy signal at "maximum overlap" cost `O(|S|)`/sample,
//! - [`dsp`]: convolution, the edge-detection kernel of §IV-B2, peak
//!   finding,
//! - [`stats`]: histograms, medians, Rayleigh fits (Fig. 6) and
//!   bimodal threshold selection (Fig. 7),
//! - [`frontend`]: the RTL-SDR front-end imperfection model (8-bit
//!   quantisation, crystal ppm error, DC spur, AGC),
//! - [`record`]: the `rtl_sdr` interleaved-u8 capture format, so the
//!   pipeline also runs against real dongle recordings,
//! - [`goertzel`]: block-wise single-bin evaluation (an alternative
//!   to the sliding DFT for tone tracking),
//! - [`scratch`]: the [`scratch::DspScratch`] buffer arena behind the
//!   allocation-free `_into` kernel variants,
//! - [`simd`]: lane-chunked (autovectorizable) reductions with exact
//!   scalar oracles.
//!
//! # Examples
//!
//! Locating a strong spectral spike the way the paper's receiver finds
//! the VRM switching frequency:
//!
//! ```
//! use emsc_sdr::iq::Complex;
//! use emsc_sdr::stft::{stft, StftConfig};
//! use emsc_sdr::window::Window;
//! use emsc_sdr::fft::bin_frequency;
//!
//! let fs = 2.4e6;
//! let f_sw = 970e3 - 1.4e6; // 970 kHz at a 1.4 MHz tuner = -430 kHz baseband
//! let capture: Vec<Complex> = (0..16_384)
//!     .map(|n| Complex::cis(2.0 * std::f64::consts::PI * f_sw * n as f64 / fs))
//!     .collect();
//! let spec = stft(&capture, fs, &StftConfig::new(1024, 512, Window::Hann));
//! let bin = spec.dominant_bin_in(-1.2e6, 1.2e6).unwrap();
//! let found = bin_frequency(bin, 1024, fs);
//! assert!((found - f_sw).abs() < fs / 1024.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod dsp;
pub mod error;
pub mod fft;
pub mod fir;
pub mod frontend;
pub mod goertzel;
pub mod impair;
pub mod iq;
pub mod mix;
pub mod record;
pub mod scratch;
pub mod simd;
pub mod sliding;
pub mod spectrum;
pub mod stats;
pub mod stft;
pub mod stream;
pub mod window;

pub use error::{CaptureError, StatsError};
pub use frontend::{Capture, Frontend, FrontendConfig};
pub use iq::Complex;
pub use scratch::DspScratch;
