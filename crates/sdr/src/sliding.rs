//! Sliding discrete Fourier transform for per-sample bin tracking.
//!
//! The paper's receiver (§IV-B, Eq. (1)) computes, for *every* sample
//! position `n`, the sum of FFT-bin magnitudes over the set `S` of
//! VRM-related frequency components — an STFT with "maximum
//! overlapping" (hop = 1). Computing a full 1024-point FFT per sample
//! is wasteful when only two or three bins are needed, so this module
//! implements the classic sliding-DFT recursion
//!
//! ```text
//! F_{n+1}[k] = (F_n[k] + x[n+1] − x[n+1−M]) · e^{+2πik/M}
//! ```
//!
//! with periodic exact re-summation to keep floating-point drift
//! bounded. The result is numerically equal (to ~1e-9) to evaluating a
//! rectangular-windowed DFT at every sample, at `O(|S|)` per sample.

use crate::error::CaptureError;
use crate::fft::frequency_bin;
use crate::iq::Complex;
use crate::scratch::{reset_complex, DspScratch};

/// Tracks the complex value of selected DFT bins over a sliding
/// rectangular window of `M` samples.
#[derive(Debug, Clone)]
pub struct SlidingDft {
    window: usize,
    bins: Vec<usize>,
    /// Per-bin phase rotator `e^{+2πik/M}`.
    rotators: Vec<Complex>,
    /// Exact-resummation twiddles `e^{-2πikm/M}`, row-major per bin —
    /// precomputed so the periodic [`refresh`](Self::push) costs no
    /// trig at runtime.
    refresh_twiddles: Vec<Complex>,
    /// Per-bin current value `F_n[k]`.
    values: Vec<Complex>,
    /// Ring buffer of the last `M` input samples.
    ring: Vec<Complex>,
    head: usize,
    seen: usize,
    since_refresh: usize,
}

impl SlidingDft {
    /// Creates a tracker over a window of `window` samples for the
    /// given bin indices.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero, `bins` is empty, or any bin index
    /// is `>= window`.
    pub fn new(window: usize, bins: &[usize]) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(!bins.is_empty(), "at least one bin must be tracked");
        assert!(bins.iter().all(|&k| k < window), "bin index out of range");
        Self::build(window, bins)
    }

    /// Fallible variant of [`SlidingDft::new`]: reports the violated
    /// precondition as a [`CaptureError::InvalidConfig`] instead of
    /// panicking. An empty `bins` slice is what the receiver sees when
    /// no tracked harmonic falls inside the captured band, so callers
    /// can map that case to a "no carrier" decode failure.
    pub fn try_new(window: usize, bins: &[usize]) -> Result<Self, CaptureError> {
        if window == 0 {
            return Err(CaptureError::InvalidConfig("window must be positive"));
        }
        if bins.is_empty() {
            return Err(CaptureError::InvalidConfig("at least one bin must be tracked"));
        }
        if bins.iter().any(|&k| k >= window) {
            return Err(CaptureError::InvalidConfig("bin index out of range"));
        }
        Ok(Self::build(window, bins))
    }

    fn build(window: usize, bins: &[usize]) -> Self {
        let rotators = bins
            .iter()
            .map(|&k| Complex::cis(2.0 * std::f64::consts::PI * k as f64 / window as f64))
            .collect();
        let refresh_twiddles = bins
            .iter()
            .flat_map(|&k| {
                (0..window).map(move |m| {
                    Complex::cis(-2.0 * std::f64::consts::PI * k as f64 * m as f64 / window as f64)
                })
            })
            .collect();
        SlidingDft {
            window,
            bins: bins.to_vec(),
            rotators,
            refresh_twiddles,
            values: vec![Complex::ZERO; bins.len()],
            ring: vec![Complex::ZERO; window],
            head: 0,
            seen: 0,
            since_refresh: 0,
        }
    }

    /// Convenience constructor taking baseband frequencies instead of
    /// bin indices (frequencies are snapped to the nearest bin).
    pub fn for_frequencies(window: usize, frequencies: &[f64], sample_rate: f64) -> Self {
        let bins: Vec<usize> =
            frequencies.iter().map(|&f| frequency_bin(f, window, sample_rate)).collect();
        SlidingDft::new(window, &bins)
    }

    /// Window length `M`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Tracked bin indices.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Pushes one sample and updates every tracked bin.
    pub fn push(&mut self, x: Complex) {
        let oldest = self.ring[self.head];
        self.ring[self.head] = x;
        self.head += 1;
        if self.head == self.window {
            self.head = 0;
        }
        self.seen += 1;
        self.since_refresh += 1;
        if self.since_refresh >= self.window {
            self.refresh();
        } else {
            for (v, r) in self.values.iter_mut().zip(&self.rotators) {
                *v = (*v + x - oldest) * *r;
            }
        }
    }

    /// Exactly recomputes every tracked bin from the ring buffer,
    /// clearing accumulated floating-point drift. Twiddles come from
    /// the table built in [`SlidingDft::new`] and the ring is walked
    /// as two contiguous runs, so the summation order — and therefore
    /// every bit of the result — matches the original modular-index,
    /// trig-per-term loop.
    fn refresh(&mut self) {
        self.since_refresh = 0;
        let w = self.window;
        // Ring order: ring[head] is the oldest sample (index 0 of the
        // window). Bins interleave at each `m` so the independent
        // accumulator chains overlap in the pipeline; each bin's own
        // `acc += x · tw[m]` sequence — and therefore every result
        // bit — is unchanged from a bin-at-a-time walk.
        for v in self.values.iter_mut() {
            *v = Complex::ZERO;
        }
        let tw = &self.refresh_twiddles[..];
        let mut m = 0;
        for run in [&self.ring[self.head..], &self.ring[..self.head]] {
            for &x in run {
                for (bi, v) in self.values.iter_mut().enumerate() {
                    *v += x * tw[bi * w + m];
                }
                m += 1;
            }
        }
    }

    /// Advances the tracker over a whole block of (already finite)
    /// samples, appending one Eq. (1) energy value — the bin-order
    /// [`SlidingDft::magnitude_sum`] fold — for every primed position
    /// on the `decimation` grid, exactly as a
    /// [`SlidingDft::push`]-per-sample loop would.
    ///
    /// **Bit-identical by construction** (the chunk-equivalence suite
    /// pins it): each step replays exactly `push`'s bin-interleaved
    /// `((v + x) − oldest) · r` update, and the emitted sums still
    /// fold `|F[k]|` in bin order from `0.0`; the independent per-bin
    /// chains overlap in the pipeline, so the block walk costs roughly
    /// one complex-multiply *throughput* (not latency) per bin per
    /// sample. Evicted samples are snapshotted from the ring into
    /// `scratch.c0` before the run overwrites it. Exact re-summation
    /// still fires every `window`-th push via the unchanged
    /// [`refresh`](Self::push) path.
    ///
    /// The decimation grid is anchored at the priming sample: an
    /// output is emitted after push number `s` (counted from the
    /// tracker's birth) iff `s ≥ window` and
    /// `(s − window) % decimation == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `decimation` is zero.
    pub fn process_into(
        &mut self,
        chunk: &[Complex],
        decimation: usize,
        out: &mut Vec<f64>,
        scr: &mut DspScratch,
    ) {
        assert!(decimation > 0, "decimation must be positive");
        let w = self.window;
        let mut consumed = 0usize;
        while consumed < chunk.len() {
            // Pushes until (and including) the next exact re-summation.
            let steps_to_refresh = w - self.since_refresh;
            let run = (chunk.len() - consumed).min(steps_to_refresh);
            let refreshes = run == steps_to_refresh;
            // The refresh push replaces its incremental update.
            let inc = if refreshes { run - 1 } else { run };
            let block = &chunk[consumed..consumed + run];
            consumed += run;

            // Snapshot the samples each push will evict (ring slot
            // (head + t) mod w is read at step t and first written at
            // step t, so gathering all of them up front is exact),
            // then write the whole run into the ring.
            reset_complex(&mut scr.c0, inc);
            let first = (w - self.head).min(inc);
            scr.c0[..first].copy_from_slice(&self.ring[self.head..self.head + first]);
            scr.c0[first..].copy_from_slice(&self.ring[..inc - first]);
            let first = (w - self.head).min(run);
            self.ring[self.head..self.head + first].copy_from_slice(&block[..first]);
            self.ring[..run - first].copy_from_slice(&block[first..]);
            self.head = (self.head + run) % w;

            // Emission schedule over the incremental steps: local step
            // t corresponds to push number seen0 + t + 1.
            let seen0 = self.seen;
            let first_emit = {
                let t_prime = w.saturating_sub(seen0 + 1);
                if t_prime >= inc {
                    usize::MAX
                } else {
                    let phase = (seen0 + t_prime + 1 - w) % decimation;
                    let t = t_prime + (decimation - phase) % decimation;
                    if t < inc {
                        t
                    } else {
                        usize::MAX
                    }
                }
            };
            let out_base = out.len();
            if first_emit != usize::MAX {
                let emits = (inc - 1 - first_emit) / decimation + 1;
                out.resize(out_base + emits, 0.0);
            }

            // Bin-interleaved replay: each step applies the same
            // `((v + x) − oldest) · r` update per bin as `push`, so the
            // per-bin floating-point sequence is unchanged, while the
            // independent bin chains overlap in the pipeline instead of
            // serialising one bin's multiply-latency chain at a time.
            let (values, rotators) = (&mut self.values[..], &self.rotators[..]);
            let mut next = first_emit;
            let mut slot = out_base;
            for (t, (&x, &old)) in block[..inc].iter().zip(&scr.c0[..inc]).enumerate() {
                for (v, &r) in values.iter_mut().zip(rotators) {
                    *v = (*v + x - old) * r;
                }
                if t == next {
                    // Bin-order fold from 0.0 — exactly `magnitude_sum`.
                    out[slot] = values.iter().map(|v| v.abs()).sum();
                    slot += 1;
                    next = next.saturating_add(decimation);
                }
            }
            self.seen += inc;
            self.since_refresh += inc;

            if refreshes {
                self.seen += 1;
                self.since_refresh += 1;
                self.refresh();
                if self.seen >= w && (self.seen - w).is_multiple_of(decimation) {
                    out.push(self.magnitude_sum());
                }
            }
        }
    }

    /// Returns `true` once at least one full window has been seen, so
    /// the tracked values describe a fully-populated window.
    pub fn is_primed(&self) -> bool {
        self.seen >= self.window
    }

    /// Current complex value of each tracked bin.
    pub fn values(&self) -> &[Complex] {
        &self.values
    }

    /// Sum of the magnitudes of all tracked bins — one sample of the
    /// paper's Eq. (1) energy signal `Y[n]`.
    pub fn magnitude_sum(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }
}

/// Computes the paper's Eq. (1) energy signal for an entire capture:
/// `Y[n] = Σ_{k∈S} |F_n[k]|`, one value per input sample once the
/// window is primed, optionally decimated by `decimation` to keep
/// downstream processing tractable.
///
/// Returns `(signal, effective_sample_rate_divisor)` where the signal
/// has one entry per `decimation` input samples.
///
/// # Panics
///
/// Panics if `decimation` is zero (see [`SlidingDft::new`] for the
/// window/bin preconditions).
///
/// # Examples
///
/// ```
/// use emsc_sdr::iq::Complex;
/// use emsc_sdr::sliding::energy_signal;
///
/// let fs = 1024.0;
/// let tone: Vec<Complex> = (0..4096)
///     .map(|n| Complex::cis(2.0 * std::f64::consts::PI * 128.0 * n as f64 / fs))
///     .collect();
/// let y = energy_signal(&tone, 256, &[32], 4);
/// // steady tone ⇒ steady energy ≈ window size
/// assert!(y.iter().all(|&v| (v - 256.0).abs() < 1.0));
/// ```
pub fn energy_signal(
    samples: &[Complex],
    window: usize,
    bins: &[usize],
    decimation: usize,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(samples.len().saturating_sub(window) / decimation + 1);
    energy_signal_into(samples, window, bins, decimation, &mut out, &mut DspScratch::new());
    out
}

/// [`energy_signal`] into a caller-owned buffer, via the blocked
/// [`SlidingDft::process_into`] path (bit-identical to a
/// push-per-sample loop). The `SlidingDft` tables are still built per
/// call; hold a [`SlidingDft`] (or an [`crate::stream::EnergyStream`])
/// across captures for fully allocation-free steady state.
///
/// # Panics
///
/// Panics if `decimation` is zero (see [`SlidingDft::new`] for the
/// window/bin preconditions).
pub fn energy_signal_into(
    samples: &[Complex],
    window: usize,
    bins: &[usize],
    decimation: usize,
    out: &mut Vec<f64>,
    scr: &mut DspScratch,
) {
    assert!(decimation > 0, "decimation must be positive");
    let mut sdft = SlidingDft::new(window, bins);
    out.clear();
    sdft.process_into(samples, decimation, out, scr);
}

/// Result of [`try_energy_signal`]: the energy samples plus how many
/// non-finite input samples had to be zeroed before analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergySignal {
    /// The decimated Eq. (1) energy signal.
    pub samples: Vec<f64>,
    /// Number of NaN/infinite input samples replaced with zero.
    pub sanitized: usize,
}

/// Fallible variant of [`energy_signal`] for captures of unknown
/// provenance. Reports degenerate input as a typed [`CaptureError`]
/// instead of panicking or silently propagating NaN:
///
/// - an empty capture is [`CaptureError::Empty`],
/// - a capture shorter than one analysis window is
///   [`CaptureError::TooShort`],
/// - a capture where **more than half** the samples are NaN/infinite
///   is [`CaptureError::NonFinite`] (nothing useful survives),
/// - a minority of non-finite samples is *sanitized*: each is replaced
///   with zero (a dropout, exactly what a dongle glitch produces) and
///   counted in [`EnergySignal::sanitized`].
///
/// A fully-finite capture takes the same code path as
/// [`energy_signal`], so the hot loop costs nothing extra.
///
/// # Errors
///
/// See above; configuration violations (zero window/decimation, empty
/// or out-of-range bins) are [`CaptureError::InvalidConfig`].
pub fn try_energy_signal(
    samples: &[Complex],
    window: usize,
    bins: &[usize],
    decimation: usize,
) -> Result<EnergySignal, CaptureError> {
    if decimation == 0 {
        return Err(CaptureError::InvalidConfig("decimation must be positive"));
    }
    // Validate window/bins before looking at the data so config errors
    // win over capture errors (they are the caller's bug, not the
    // channel's).
    SlidingDft::try_new(window, bins)?;
    if samples.is_empty() {
        return Err(CaptureError::Empty);
    }
    if samples.len() < window {
        return Err(CaptureError::TooShort { needed: window, got: samples.len() });
    }
    let non_finite = samples.iter().filter(|x| !(x.re.is_finite() && x.im.is_finite())).count();
    if non_finite * 2 > samples.len() {
        return Err(CaptureError::NonFinite { count: non_finite, total: samples.len() });
    }
    if non_finite == 0 {
        return Ok(EnergySignal {
            samples: energy_signal(samples, window, bins, decimation),
            sanitized: 0,
        });
    }
    let cleaned: Vec<Complex> = samples
        .iter()
        .map(|&x| if x.re.is_finite() && x.im.is_finite() { x } else { Complex::ZERO })
        .collect();
    Ok(EnergySignal {
        samples: energy_signal(&cleaned, window, bins, decimation),
        sanitized: non_finite,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::plan_for;

    /// Direct windowed DFT of the window ending at sample `end`
    /// (inclusive), for cross-checking the recursion.
    fn direct_bin(samples: &[Complex], end: usize, window: usize, k: usize) -> Complex {
        let start = end + 1 - window;
        let mut acc = Complex::ZERO;
        for m in 0..window {
            acc += samples[start + m]
                * Complex::cis(-2.0 * std::f64::consts::PI * k as f64 * m as f64 / window as f64);
        }
        acc
    }

    fn chirpy_signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Complex::new(
                    (0.013 * t).sin() + 0.2 * (0.11 * t).cos(),
                    (0.007 * t * t * 1e-3).sin(),
                )
            })
            .collect()
    }

    #[test]
    fn matches_direct_dft_everywhere() {
        let samples = chirpy_signal(700);
        let window = 128;
        let bins = [5usize, 31, 64];
        let mut sdft = SlidingDft::new(window, &bins);
        for (n, &x) in samples.iter().enumerate() {
            sdft.push(x);
            if sdft.is_primed() {
                for (i, &k) in bins.iter().enumerate() {
                    let want = direct_bin(&samples, n, window, k);
                    let got = sdft.values()[i];
                    assert!((want - got).abs() < 1e-8, "bin {k} at n={n}: want {want}, got {got}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_full_fft_at_window_boundary() {
        let samples = chirpy_signal(256);
        let window = 256;
        let mut sdft = SlidingDft::new(window, &[3, 17]);
        for &x in &samples {
            sdft.push(x);
        }
        let mut spectrum = samples.clone();
        plan_for(spectrum.len()).forward(&mut spectrum);
        assert!((sdft.values()[0] - spectrum[3]).abs() < 1e-8);
        assert!((sdft.values()[1] - spectrum[17]).abs() < 1e-8);
    }

    #[test]
    fn drift_stays_bounded_over_long_runs() {
        // 50k samples, window 64: the periodic refresh must keep the
        // recursion glued to the direct computation.
        let samples = chirpy_signal(50_000);
        let window = 64;
        let k = 9;
        let mut sdft = SlidingDft::new(window, &[k]);
        let mut worst = 0.0f64;
        for (n, &x) in samples.iter().enumerate() {
            sdft.push(x);
            if sdft.is_primed() && n % 997 == 0 {
                let err = (sdft.values()[0] - direct_bin(&samples, n, window, k)).abs();
                worst = worst.max(err);
            }
        }
        assert!(worst < 1e-7, "worst drift {worst}");
    }

    #[test]
    fn energy_signal_tracks_onoff_keying() {
        let fs = 2048.0;
        let f = 512.0;
        let mut samples: Vec<Complex> = (0..8192)
            .map(|n| Complex::cis(2.0 * std::f64::consts::PI * f * n as f64 / fs))
            .collect();
        for s in samples.iter_mut().skip(4096) {
            *s = Complex::ZERO;
        }
        let y = energy_signal(&samples, 256, &[frequency_bin(f, 256, fs)], 1);
        // Energy high in the "on" region, low in the "off" region.
        assert!(y[1000] > 250.0);
        assert!(y[y.len() - 100] < 1.0);
        // Transition is a ramp of exactly `window` samples.
        let hi = y[3500];
        let lo = y[4600];
        assert!(hi / (lo + 1e-12) > 1e3);
    }

    #[test]
    fn decimation_reduces_length() {
        let samples = chirpy_signal(4096);
        let full = energy_signal(&samples, 128, &[7], 1);
        let dec = energy_signal(&samples, 128, &[7], 8);
        assert_eq!(full.len(), 4096 - 128 + 1);
        assert_eq!(dec.len(), (4096 - 128) / 8 + 1);
        // Decimated values are a strict subsequence of the full ones.
        for (i, &v) in dec.iter().enumerate() {
            assert!((v - full[i * 8]).abs() < 1e-12);
        }
    }

    #[test]
    fn process_into_is_bit_identical_to_push_per_sample() {
        let samples = chirpy_signal(3001);
        for (window, decimation) in [(64usize, 1usize), (64, 7), (128, 24), (1, 1), (3, 2)] {
            let bins: Vec<usize> =
                [0usize, 5, 31].iter().copied().filter(|&k| k < window).collect();
            // Reference: the per-sample push loop.
            let mut reference_sdft = SlidingDft::new(window, &bins);
            let mut reference = Vec::new();
            for (n, &x) in samples.iter().enumerate() {
                reference_sdft.push(x);
                if reference_sdft.is_primed() && (n + 1 - window).is_multiple_of(decimation) {
                    reference.push(reference_sdft.magnitude_sum());
                }
            }
            // Blocked path at awkward chunk boundaries.
            for chunk in [1usize, 7, 63, 64, 65, 1000, usize::MAX] {
                let mut sdft = SlidingDft::new(window, &bins);
                let mut scr = DspScratch::new();
                let mut got = Vec::new();
                for c in samples.chunks(chunk.min(samples.len())) {
                    sdft.process_into(c, decimation, &mut got, &mut scr);
                }
                assert_eq!(got.len(), reference.len(), "w={window} d={decimation} c={chunk}");
                for (i, (a, b)) in got.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "w={window} d={decimation} c={chunk} out={i}"
                    );
                }
                for (a, b) in sdft.values().iter().zip(reference_sdft.values()) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits());
                    assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn for_frequencies_snaps_to_bins() {
        let sdft = SlidingDft::for_frequencies(1024, &[970e3, 1.94e6], 2.4e6);
        assert_eq!(sdft.bins()[0], frequency_bin(970e3, 1024, 2.4e6));
        assert_eq!(sdft.bins()[1], frequency_bin(1.94e6, 1024, 2.4e6));
    }

    #[test]
    #[should_panic(expected = "bin index")]
    fn bin_out_of_range_panics() {
        SlidingDft::new(64, &[64]);
    }

    #[test]
    fn try_new_reports_config_errors() {
        use crate::error::CaptureError;
        assert!(matches!(SlidingDft::try_new(0, &[1]), Err(CaptureError::InvalidConfig(_))));
        assert!(matches!(SlidingDft::try_new(64, &[]), Err(CaptureError::InvalidConfig(_))));
        assert!(matches!(SlidingDft::try_new(64, &[64]), Err(CaptureError::InvalidConfig(_))));
        assert!(SlidingDft::try_new(64, &[63]).is_ok());
    }

    #[test]
    fn try_energy_signal_matches_panicking_path_on_clean_input() {
        let samples = chirpy_signal(2048);
        let want = energy_signal(&samples, 128, &[7], 4);
        let got = try_energy_signal(&samples, 128, &[7], 4).unwrap();
        assert_eq!(got.samples, want);
        assert_eq!(got.sanitized, 0);
    }

    #[test]
    fn try_energy_signal_classifies_degenerate_captures() {
        use crate::error::CaptureError;
        let samples = chirpy_signal(64);
        assert_eq!(try_energy_signal(&[], 128, &[7], 1), Err(CaptureError::Empty));
        assert_eq!(
            try_energy_signal(&samples, 128, &[7], 1),
            Err(CaptureError::TooShort { needed: 128, got: 64 })
        );
        assert!(matches!(
            try_energy_signal(&samples, 32, &[7], 0),
            Err(CaptureError::InvalidConfig(_))
        ));
        let all_nan = vec![Complex::new(f64::NAN, f64::NAN); 256];
        assert_eq!(
            try_energy_signal(&all_nan, 64, &[7], 1),
            Err(CaptureError::NonFinite { count: 256, total: 256 })
        );
    }

    #[test]
    fn try_energy_signal_sanitizes_a_minority_of_nans() {
        let mut samples = chirpy_signal(2048);
        samples[100] = Complex::new(f64::NAN, 0.0);
        samples[700] = Complex::new(f64::INFINITY, f64::NEG_INFINITY);
        let got = try_energy_signal(&samples, 128, &[7], 4).unwrap();
        assert_eq!(got.sanitized, 2);
        assert!(got.samples.iter().all(|v| v.is_finite()), "NaN leaked through");
        // Away from the zeroed samples the signal matches the clean path.
        let mut cleaned = samples.clone();
        cleaned[100] = Complex::ZERO;
        cleaned[700] = Complex::ZERO;
        assert_eq!(got.samples, energy_signal(&cleaned, 128, &[7], 4));
    }
}
