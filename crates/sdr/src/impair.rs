//! Channel-impairment fault injection.
//!
//! The paper's receiver runs against a $25 RTL-SDR over an air gap; the
//! channel it sees is never the clean simulator output. This module
//! injects the impairments that dominate in practice — sample-clock
//! ppm drift, AGC gain steps, dropped-sample gaps (USB overruns),
//! impulsive interference bursts, and hard clipping — directly into a
//! [`Capture`], so BER-vs-severity sweeps can measure how gracefully
//! the demodulator degrades.
//!
//! Every impairment is **deterministic**: the only randomness comes
//! from the `seed` passed to [`Impairment::apply`], so the same
//! capture, impairment list and seed always produce the same corrupted
//! capture — bit-identical across thread counts under the positional
//! seeding of `emsc_runtime::seed_for`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frontend::Capture;
use crate::iq::Complex;

/// Probability that any one sample inside an impulse burst carries an
/// impulse (the rest of the burst window is untouched).
const IMPULSE_DENSITY: f64 = 0.02;

/// One channel impairment, applied in place to a [`Capture`].
///
/// All variants are total: applied to an empty or degenerate capture
/// they do nothing rather than panic, and out-of-range times/counts
/// are clamped to the capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Impairment {
    /// Sample-clock frequency error of `ppm` parts-per-million: the
    /// receiver's crystal runs fast (`ppm > 0`) or slow (`ppm < 0`),
    /// so the capture is resampled by `1 + ppm/1e6` with linear
    /// interpolation. Positive ppm shortens the capture slightly and,
    /// over many bits, desynchronises bit-start estimates.
    ClockDrift {
        /// Clock error in parts-per-million.
        ppm: f64,
    },
    /// An abrupt AGC gain step: every sample from `at_s` onward is
    /// scaled by `gain` (a nearby appliance switching on, the dongle
    /// re-ranging mid-capture).
    AgcStep {
        /// Time of the step, seconds from capture start.
        at_s: f64,
        /// Linear gain applied to everything after the step.
        gain: f64,
    },
    /// `count` consecutive samples removed starting at `at_s` — a USB
    /// transfer overrun. Everything after the gap shifts earlier, so
    /// downstream bit timing is desynchronised by `count` samples.
    DroppedSamples {
        /// Time of the gap, seconds from capture start.
        at_s: f64,
        /// Number of samples dropped.
        count: usize,
    },
    /// Impulsive interference: inside `[at_s, at_s + duration_s)` a
    /// seeded ~2% of samples get a random-phase impulse of magnitude
    /// `amplitude` added (motor brushes, switching transients).
    ImpulseBurst {
        /// Burst start, seconds from capture start.
        at_s: f64,
        /// Burst length in seconds.
        duration_s: f64,
        /// Impulse magnitude, in full-scale units.
        amplitude: f64,
    },
    /// Hard clipping: both I and Q limited to `±level` (front-end
    /// saturation from a too-hot signal).
    Clipping {
        /// Clip level in full-scale units (must be positive to have
        /// any effect; non-positive levels are ignored).
        level: f64,
    },
}

impl Impairment {
    /// Applies this impairment to `capture` in place. Deterministic:
    /// the same capture, impairment and `seed` always produce the same
    /// result. Degenerate captures (empty, zero sample rate) and
    /// out-of-range parameters are clamped, never a panic.
    pub fn apply(&self, capture: &mut Capture, seed: u64) {
        match *self {
            Impairment::ClockDrift { ppm } => clock_drift(capture, ppm),
            Impairment::AgcStep { at_s, gain } => {
                let at = time_to_index(capture, at_s);
                for s in &mut capture.samples[at..] {
                    *s = s.scale(gain);
                }
            }
            Impairment::DroppedSamples { at_s, count } => {
                let at = time_to_index(capture, at_s);
                let end = at.saturating_add(count).min(capture.samples.len());
                capture.samples.drain(at..end);
            }
            Impairment::ImpulseBurst { at_s, duration_s, amplitude } => {
                let at = time_to_index(capture, at_s);
                let len = (duration_s.max(0.0) * capture.sample_rate) as usize;
                let end = at.saturating_add(len).min(capture.samples.len());
                let mut rng = StdRng::seed_from_u64(seed);
                for s in &mut capture.samples[at..end] {
                    if rng.gen_bool(IMPULSE_DENSITY) {
                        let phase = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
                        *s += Complex::from_polar(amplitude, phase);
                    }
                }
            }
            Impairment::Clipping { level } => {
                if level > 0.0 {
                    for s in &mut capture.samples {
                        *s = Complex::new(s.re.clamp(-level, level), s.im.clamp(-level, level));
                    }
                }
            }
        }
    }
}

/// Applies a list of impairments in order. Each gets a distinct
/// sub-seed derived positionally from `seed`, so reordering the list
/// changes the corruption but re-running never does.
pub fn apply_all(capture: &mut Capture, impairments: &[Impairment], seed: u64) {
    for (i, imp) in impairments.iter().enumerate() {
        imp.apply(capture, seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    }
}

/// Severity levels [`severity_stack`] defines (0 = clean … 4 = severe).
pub const SEVERITY_LEVELS: usize = 5;

/// The canonical impairment stack at a given severity, shared by every
/// sweep that reports "severity 0–4" (E3's BER table, E6's robustness
/// comparison): levels compose, each adding impairments and raising
/// the magnitudes of the ones it keeps. Times assume the transmission
/// body of the standard near-field capture (tens of milliseconds).
/// Severities above 4 saturate at the severe stack.
pub fn severity_stack(severity: usize) -> Vec<Impairment> {
    match severity {
        0 => Vec::new(),
        // Mild: a cheap crystal and slight front-end saturation.
        1 => vec![Impairment::ClockDrift { ppm: 20.0 }, Impairment::Clipping { level: 0.65 }],
        // Moderate: worse drift, an AGC re-range mid-capture and a
        // short interference burst.
        2 => vec![
            Impairment::ClockDrift { ppm: 60.0 },
            Impairment::AgcStep { at_s: 0.045, gain: 1.6 },
            Impairment::ImpulseBurst { at_s: 0.03, duration_s: 0.01, amplitude: 1.0 },
            Impairment::Clipping { level: 0.6 },
        ],
        // Heavy: add a USB-overrun gap and crush the dynamic range.
        3 => vec![
            Impairment::ClockDrift { ppm: 120.0 },
            Impairment::AgcStep { at_s: 0.045, gain: 0.55 },
            Impairment::DroppedSamples { at_s: 0.035, count: 2_000 },
            Impairment::ImpulseBurst { at_s: 0.03, duration_s: 0.03, amplitude: 2.0 },
            Impairment::Clipping { level: 0.45 },
        ],
        // Severe: everything at once, at magnitudes that defeat frame
        // sync entirely. The 20 000-sample gap deletes ~30 bits of the
        // standard transmission, positioned (0.037 s) to swallow the
        // start marker and the first body bits — the frame envelope is
        // still detectable but the rigid bit grid has nothing to
        // anchor to, which is precisely the deletion failure mode E3
        // diagnosed and E6 measures the fix for.
        _ => vec![
            Impairment::ClockDrift { ppm: 300.0 },
            Impairment::AgcStep { at_s: 0.03, gain: 0.35 },
            Impairment::DroppedSamples { at_s: 0.037, count: 20_000 },
            Impairment::ImpulseBurst { at_s: 0.02, duration_s: 0.05, amplitude: 4.0 },
            Impairment::Clipping { level: 0.25 },
        ],
    }
}

/// Human-readable description of [`severity_stack`]'s level.
pub fn severity_label(severity: usize) -> &'static str {
    match severity {
        0 => "clean",
        1 => "mild (drift, clip)",
        2 => "moderate (+AGC step, burst)",
        3 => "heavy (+dropped samples)",
        _ => "severe (all, large)",
    }
}

/// Converts a time offset into a clamped sample index (0 for NaN or
/// negative times, `len` past the end).
fn time_to_index(capture: &Capture, at_s: f64) -> usize {
    let idx = at_s * capture.sample_rate;
    if idx.is_finite() && idx > 0.0 {
        (idx as usize).min(capture.samples.len())
    } else {
        0
    }
}

/// Resamples the capture by `1 + ppm/1e6` with linear interpolation:
/// output sample `k` reads input position `k · (1 + ppm/1e6)`.
fn clock_drift(capture: &mut Capture, ppm: f64) {
    let rate = 1.0 + ppm / 1e6;
    if !rate.is_finite() || rate <= 0.0 || ppm == 0.0 || capture.samples.len() < 2 {
        return;
    }
    let src = &capture.samples;
    let n = src.len();
    let out_len = (((n - 1) as f64 / rate).floor() as usize).saturating_add(1).min(2 * n);
    let mut out = Vec::with_capacity(out_len);
    for k in 0..out_len {
        let pos = k as f64 * rate;
        let i = pos as usize;
        if i + 1 >= n {
            out.push(src[n - 1]);
        } else {
            let frac = pos - i as f64;
            out.push(src[i].scale(1.0 - frac) + src[i + 1].scale(frac));
        }
    }
    capture.samples = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_capture(n: usize) -> Capture {
        let samples = (0..n)
            .map(|i| Complex::new((0.01 * i as f64).sin(), (0.013 * i as f64).cos()))
            .collect();
        Capture { samples, sample_rate: 1000.0, center_freq: 0.0 }
    }

    #[test]
    fn severity_stacks_compose_monotonically() {
        assert!(severity_stack(0).is_empty(), "severity 0 is the clean channel");
        for s in 0..SEVERITY_LEVELS - 1 {
            assert!(
                severity_stack(s).len() <= severity_stack(s + 1).len(),
                "severity {s} stack larger than severity {}",
                s + 1
            );
        }
        // Above the top level the stack saturates.
        assert_eq!(severity_stack(99), severity_stack(SEVERITY_LEVELS - 1));
    }

    #[test]
    fn zero_ppm_drift_is_identity() {
        let mut cap = test_capture(500);
        let orig = cap.samples.clone();
        Impairment::ClockDrift { ppm: 0.0 }.apply(&mut cap, 1);
        assert_eq!(cap.samples, orig);
    }

    #[test]
    fn positive_ppm_shortens_negative_lengthens() {
        let mut fast = test_capture(100_000);
        Impairment::ClockDrift { ppm: 100.0 }.apply(&mut fast, 1);
        assert!(fast.samples.len() < 100_000, "fast clock must shorten: {}", fast.samples.len());
        let mut slow = test_capture(100_000);
        Impairment::ClockDrift { ppm: -100.0 }.apply(&mut slow, 1);
        assert!(slow.samples.len() > 100_000, "slow clock must lengthen: {}", slow.samples.len());
        // ~100 ppm over 100k samples ≈ 10 samples either way.
        assert!(fast.samples.len().abs_diff(100_000) < 20);
        assert!(slow.samples.len().abs_diff(100_000) < 20);
    }

    #[test]
    fn drift_interpolates_smoothly() {
        // A linear ramp resampled by any rate stays a linear ramp.
        let samples: Vec<Complex> = (0..1000).map(|i| Complex::new(i as f64, 0.0)).collect();
        let mut cap = Capture { samples, sample_rate: 1000.0, center_freq: 0.0 };
        Impairment::ClockDrift { ppm: 500.0 }.apply(&mut cap, 1);
        for (k, s) in cap.samples.iter().enumerate() {
            let expect = k as f64 * (1.0 + 500.0 / 1e6);
            assert!((s.re - expect.min(999.0)).abs() < 1e-9, "sample {k}");
        }
    }

    #[test]
    fn agc_step_scales_only_the_tail() {
        let mut cap = test_capture(1000);
        let orig = cap.samples.clone();
        // 0.5 s at 1 kHz = sample 500.
        Impairment::AgcStep { at_s: 0.5, gain: 2.0 }.apply(&mut cap, 1);
        for (got, want) in cap.samples.iter().zip(&orig).take(500) {
            assert_eq!(got, want);
        }
        for (got, want) in cap.samples.iter().zip(&orig).skip(500) {
            assert!((got.re - 2.0 * want.re).abs() < 1e-12);
        }
    }

    #[test]
    fn dropped_samples_splice_the_stream() {
        let mut cap = test_capture(1000);
        let orig = cap.samples.clone();
        Impairment::DroppedSamples { at_s: 0.1, count: 30 }.apply(&mut cap, 1);
        assert_eq!(cap.samples.len(), 970);
        assert_eq!(cap.samples[99], orig[99]);
        assert_eq!(cap.samples[100], orig[130]);
    }

    #[test]
    fn impulse_burst_is_seed_deterministic_and_localised() {
        let mut a = test_capture(2000);
        let mut b = test_capture(2000);
        let orig = a.samples.clone();
        let imp = Impairment::ImpulseBurst { at_s: 0.5, duration_s: 0.5, amplitude: 3.0 };
        imp.apply(&mut a, 42);
        imp.apply(&mut b, 42);
        assert_eq!(a.samples, b.samples, "same seed must reproduce the same burst");
        let mut c = test_capture(2000);
        imp.apply(&mut c, 43);
        assert_ne!(a.samples, c.samples, "different seed must move the impulses");
        // Untouched outside [0.5 s, 1.0 s) = samples [500, 1000).
        assert_eq!(&a.samples[..500], &orig[..500]);
        assert_eq!(&a.samples[1000..], &orig[1000..]);
        let hit = a.samples[500..1000].iter().zip(&orig[500..1000]).filter(|(x, o)| x != o).count();
        assert!(hit > 0, "burst injected nothing");
        assert!(hit < 100, "burst density too high: {hit}");
    }

    #[test]
    fn clipping_bounds_both_components() {
        let mut cap = test_capture(1000);
        for s in &mut cap.samples {
            *s = s.scale(5.0);
        }
        Impairment::Clipping { level: 0.8 }.apply(&mut cap, 1);
        assert!(cap.samples.iter().all(|s| s.re.abs() <= 0.8 && s.im.abs() <= 0.8));
        // Non-positive level is a no-op, not a capture wipe.
        let orig = cap.samples.clone();
        Impairment::Clipping { level: -1.0 }.apply(&mut cap, 1);
        assert_eq!(cap.samples, orig);
    }

    #[test]
    fn every_impairment_is_total_on_degenerate_captures() {
        let all = [
            Impairment::ClockDrift { ppm: 250.0 },
            Impairment::AgcStep { at_s: f64::NAN, gain: 0.5 },
            Impairment::DroppedSamples { at_s: 1e9, count: usize::MAX },
            Impairment::ImpulseBurst { at_s: -1.0, duration_s: f64::INFINITY, amplitude: 1.0 },
            Impairment::Clipping { level: f64::NAN },
        ];
        let mut empty = Capture { samples: Vec::new(), sample_rate: 0.0, center_freq: 0.0 };
        apply_all(&mut empty, &all, 7);
        assert!(empty.samples.is_empty());
        let mut tiny = test_capture(3);
        apply_all(&mut tiny, &all, 7);
        assert!(tiny.samples.len() <= 3);
    }

    #[test]
    fn empty_impairment_list_is_bit_identical_to_the_clean_path() {
        // Severity 0 of the E3 sweep maps to an empty stack: applying
        // it must not move a single bit, whatever the seed.
        let mut cap = test_capture(4096);
        let orig = cap.samples.clone();
        for seed in [0, 1, 0xDEAD_BEEF] {
            apply_all(&mut cap, &[], seed);
            assert!(
                cap.samples.iter().zip(&orig).all(|(a, b)| {
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
                }),
                "empty impairment list changed the capture under seed {seed}"
            );
        }
    }

    #[test]
    fn neutral_parameters_are_identities() {
        // Each impairment has a "dial at zero" setting; all of them
        // must be exact no-ops, not merely small perturbations.
        let neutral = [
            Impairment::ClockDrift { ppm: 0.0 },
            Impairment::AgcStep { at_s: 0.2, gain: 1.0 },
            Impairment::DroppedSamples { at_s: 0.2, count: 0 },
            Impairment::ImpulseBurst { at_s: 0.2, duration_s: 0.0, amplitude: 3.0 },
            Impairment::Clipping { level: f64::MAX },
        ];
        for imp in neutral {
            let mut cap = test_capture(2000);
            let orig = cap.samples.clone();
            imp.apply(&mut cap, 99);
            assert_eq!(cap.samples, orig, "{imp:?} is not an identity at its neutral setting");
        }
    }

    #[test]
    fn apply_all_composes_as_the_manual_positional_sequence() {
        // The composition contract: apply_all([a, b, c], seed) is
        // exactly a.apply(sub_seed(0)); b.apply(sub_seed(1));
        // c.apply(sub_seed(2)) — so a supervisor replaying a fault
        // plan one event at a time reproduces the batch corruption
        // bit for bit.
        let imps = [
            Impairment::ImpulseBurst { at_s: 0.1, duration_s: 0.4, amplitude: 1.5 },
            Impairment::AgcStep { at_s: 0.5, gain: 0.7 },
            Impairment::ImpulseBurst { at_s: 0.6, duration_s: 0.3, amplitude: 2.0 },
        ];
        let seed = 4242;
        let mut composed = test_capture(2000);
        apply_all(&mut composed, &imps, seed);
        let mut manual = test_capture(2000);
        for (i, imp) in imps.iter().enumerate() {
            imp.apply(
                &mut manual,
                seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
        }
        assert_eq!(composed.samples, manual.samples);
        // And the whole composition is rerun-deterministic.
        let mut again = test_capture(2000);
        apply_all(&mut again, &imps, seed);
        assert_eq!(composed.samples, again.samples);
    }

    #[test]
    fn apply_all_gives_each_impairment_its_own_substream() {
        let imps = [
            Impairment::ImpulseBurst { at_s: 0.0, duration_s: 0.5, amplitude: 1.0 },
            Impairment::ImpulseBurst { at_s: 0.5, duration_s: 0.5, amplitude: 1.0 },
        ];
        let mut a = test_capture(1000);
        apply_all(&mut a, &imps, 9);
        let mut b = test_capture(1000);
        apply_all(&mut b, &imps, 9);
        assert_eq!(a.samples, b.samples);
        // The two bursts must not be the same draw sequence: mirror the
        // capture halves and check the corruption is not mirrored.
        let first: Vec<Complex> = a.samples[..500].to_vec();
        let second: Vec<Complex> = a.samples[500..].to_vec();
        let orig = test_capture(1000);
        let d1: Vec<usize> = first
            .iter()
            .zip(&orig.samples[..500])
            .enumerate()
            .filter(|(_, (x, o))| x != o)
            .map(|(i, _)| i)
            .collect();
        let d2: Vec<usize> = second
            .iter()
            .zip(&orig.samples[500..])
            .enumerate()
            .filter(|(_, (x, o))| x != o)
            .map(|(i, _)| i)
            .collect();
        assert_ne!(d1, d2, "positional sub-seeding failed: identical impulse patterns");
    }
}
