//! Digital mixing: retuning a capture in software.
//!
//! An RTL-SDR capture is centred wherever the tuner was pointed; to
//! put a specific VRM harmonic at a convenient baseband offset (or at
//! DC for a filter-and-decimate chain), multiply by a complex
//! exponential. Lossless and exact — the software equivalent of
//! turning the tuning knob.
//!
//! The steady-state entry point is [`mix_into`]: an incrementally
//! rotated phasor (one complex multiply per sample) re-anchored with
//! an exact `cis` every [`PHASOR_REFRESH`] samples, the same
//! drift-control pattern as `Frontend::digitize` and
//! `SlidingDft::refresh`. [`mix_exact`] keeps the one-`cis`-per-sample
//! reference path as the accuracy oracle (≤ −120 dB divergence, pinned
//! in tests).

use crate::frontend::Capture;
use crate::iq::Complex;

/// Samples between exact re-anchors of the incremental mixing phasor.
/// Drift accumulates at ≲ 1 ulp per multiply, so the error at refresh
/// time stays near 1e-14 — far below the −120 dB kernel contract.
pub const PHASOR_REFRESH: usize = 64;

/// Frequency-shifts complex baseband samples by `shift_hz` into `out`:
/// energy at baseband frequency `f` moves to `f + shift_hz`.
///
/// `out` is cleared and refilled; after a warm-up call at the largest
/// input size the function performs no allocation. Matches
/// [`mix_exact`] to better than −120 dB.
pub fn mix_into(samples: &[Complex], sample_rate: f64, shift_hz: f64, out: &mut Vec<Complex>) {
    let step = 2.0 * std::f64::consts::PI * shift_hz / sample_rate;
    out.clear();
    out.reserve(samples.len());
    let rotator = Complex::cis(step);
    for (block_idx, block) in samples.chunks(PHASOR_REFRESH).enumerate() {
        // Exact anchor once per block, incremental rotation inside it.
        let mut phasor = Complex::cis(step * (block_idx * PHASOR_REFRESH) as f64);
        for &z in block {
            out.push(z * phasor);
            phasor *= rotator;
        }
    }
}

/// Allocating wrapper around [`mix_into`].
#[deprecated(since = "0.1.0", note = "allocates per call; use mix_into with a reused buffer")]
pub fn mix(samples: &[Complex], sample_rate: f64, shift_hz: f64) -> Vec<Complex> {
    let mut out = Vec::new();
    mix_into(samples, sample_rate, shift_hz, &mut out);
    out
}

/// Reference mixer: an exact `Complex::cis` per sample. The accuracy
/// oracle for [`mix_into`]; O(n) libm calls, kept for audits and
/// tests.
pub fn mix_exact(samples: &[Complex], sample_rate: f64, shift_hz: f64) -> Vec<Complex> {
    let step = 2.0 * std::f64::consts::PI * shift_hz / sample_rate;
    samples.iter().enumerate().map(|(n, &z)| z * Complex::cis(step * n as f64)).collect()
}

/// Returns a copy of `capture` digitally retuned to `new_center_hz`:
/// the samples are mixed so that RF frequencies keep their identity
/// while the baseband origin moves.
pub fn retune(capture: &Capture, new_center_hz: f64) -> Capture {
    let shift = capture.center_freq - new_center_hz;
    let mut samples = Vec::new();
    mix_into(&capture.samples, capture.sample_rate, shift, &mut samples);
    Capture { samples, sample_rate: capture.sample_rate, center_freq: new_center_hz }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{frequency_bin, plan_for};

    fn tone(f_bb: f64, fs: f64, n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::cis(2.0 * std::f64::consts::PI * f_bb * i as f64 / fs)).collect()
    }

    fn mix(samples: &[Complex], sample_rate: f64, shift_hz: f64) -> Vec<Complex> {
        let mut out = Vec::new();
        mix_into(samples, sample_rate, shift_hz, &mut out);
        out
    }

    fn peak_bin(samples: &[Complex]) -> usize {
        let mut spec = samples.to_vec();
        plan_for(spec.len()).forward(&mut spec);
        spec.iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .map(|(k, _)| k)
            .expect("non-empty")
    }

    #[test]
    fn mixing_moves_a_tone_by_the_shift() {
        let fs = 1024.0;
        let x = tone(128.0, fs, 1024);
        let shifted = mix(&x, fs, 64.0);
        assert_eq!(peak_bin(&shifted), frequency_bin(192.0, 1024, fs));
        // Negative shifts too.
        let down = mix(&x, fs, -256.0);
        assert_eq!(peak_bin(&down), frequency_bin(-128.0, 1024, fs));
    }

    #[test]
    fn mixing_preserves_magnitude() {
        let fs = 1000.0;
        let x = tone(100.0, fs, 512);
        let y = mix(&x, fs, 333.0);
        for (a, b) in x.iter().zip(&y) {
            assert!((a.abs() - b.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn fast_mixer_matches_exact_oracle_below_minus_120_db() {
        let fs = 2.4e6;
        // Long enough to cross many phasor refreshes, with an awkward
        // non-bin-aligned shift.
        let x = tone(-431e3, fs, 50_000);
        let fast = mix(&x, fs, 123_456.789);
        let exact = mix_exact(&x, fs, 123_456.789);
        let err: f64 = fast.iter().zip(&exact).map(|(a, b)| (*a - *b).norm_sqr()).sum();
        let sig: f64 = exact.iter().map(|z| z.norm_sqr()).sum();
        let db = 10.0 * (err.max(1e-300) / sig).log10();
        assert!(db <= -120.0, "mixer error {db:.1} dB");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_matches_mix_into() {
        let x = tone(10.0, 100.0, 300);
        assert_eq!(super::mix(&x, 100.0, 7.0), mix(&x, 100.0, 7.0));
    }

    #[test]
    fn mix_into_reuses_the_output_buffer() {
        let x = tone(10.0, 100.0, 1000);
        let mut out = Vec::new();
        mix_into(&x, 100.0, 5.0, &mut out);
        let cap = out.capacity();
        mix_into(&x, 100.0, -5.0, &mut out);
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.len(), x.len());
    }

    #[test]
    fn retune_keeps_rf_identity() {
        // A tone at RF 1.0 MHz in a capture centred at 1.4 MHz sits at
        // −400 kHz; retuned to 1.2 MHz it must sit at −200 kHz.
        let fs = 2.4e6;
        let n = 4096;
        let cap = Capture { samples: tone(-400e3, fs, n), sample_rate: fs, center_freq: 1.4e6 };
        let retuned = retune(&cap, 1.2e6);
        assert_eq!(retuned.center_freq, 1.2e6);
        assert_eq!(peak_bin(&retuned.samples), frequency_bin(-200e3, n, fs));
        // The RF frequency implied by the peak is unchanged.
        assert!((retuned.baseband(1.0e6) - -200e3).abs() < 1e-6);
    }

    #[test]
    fn zero_shift_is_identity() {
        let x = tone(50.0, 500.0, 256);
        let y = mix(&x, 500.0, 0.0);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_input_mixes_to_empty() {
        assert!(mix(&[], 100.0, 10.0).is_empty());
        assert!(mix_exact(&[], 100.0, 10.0).is_empty());
    }
}
