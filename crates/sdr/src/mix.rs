//! Digital mixing: retuning a capture in software.
//!
//! An RTL-SDR capture is centred wherever the tuner was pointed; to
//! put a specific VRM harmonic at a convenient baseband offset (or at
//! DC for a filter-and-decimate chain), multiply by a complex
//! exponential. Lossless and exact — the software equivalent of
//! turning the tuning knob.

use crate::frontend::Capture;
use crate::iq::Complex;

/// Frequency-shifts complex baseband samples by `shift_hz`: energy at
/// baseband frequency `f` moves to `f + shift_hz`.
pub fn mix(samples: &[Complex], sample_rate: f64, shift_hz: f64) -> Vec<Complex> {
    let step = 2.0 * std::f64::consts::PI * shift_hz / sample_rate;
    samples.iter().enumerate().map(|(n, &z)| z * Complex::cis(step * n as f64)).collect()
}

/// Returns a copy of `capture` digitally retuned to `new_center_hz`:
/// the samples are mixed so that RF frequencies keep their identity
/// while the baseband origin moves.
pub fn retune(capture: &Capture, new_center_hz: f64) -> Capture {
    let shift = capture.center_freq - new_center_hz;
    Capture {
        samples: mix(&capture.samples, capture.sample_rate, shift),
        sample_rate: capture.sample_rate,
        center_freq: new_center_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{fft, frequency_bin};

    fn tone(f_bb: f64, fs: f64, n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::cis(2.0 * std::f64::consts::PI * f_bb * i as f64 / fs)).collect()
    }

    fn peak_bin(samples: &[Complex]) -> usize {
        let spec = fft(samples);
        spec.iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .map(|(k, _)| k)
            .expect("non-empty")
    }

    #[test]
    fn mixing_moves_a_tone_by_the_shift() {
        let fs = 1024.0;
        let x = tone(128.0, fs, 1024);
        let shifted = mix(&x, fs, 64.0);
        assert_eq!(peak_bin(&shifted), frequency_bin(192.0, 1024, fs));
        // Negative shifts too.
        let down = mix(&x, fs, -256.0);
        assert_eq!(peak_bin(&down), frequency_bin(-128.0, 1024, fs));
    }

    #[test]
    fn mixing_preserves_magnitude() {
        let fs = 1000.0;
        let x = tone(100.0, fs, 512);
        let y = mix(&x, fs, 333.0);
        for (a, b) in x.iter().zip(&y) {
            assert!((a.abs() - b.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn retune_keeps_rf_identity() {
        // A tone at RF 1.0 MHz in a capture centred at 1.4 MHz sits at
        // −400 kHz; retuned to 1.2 MHz it must sit at −200 kHz.
        let fs = 2.4e6;
        let n = 4096;
        let cap = Capture { samples: tone(-400e3, fs, n), sample_rate: fs, center_freq: 1.4e6 };
        let retuned = retune(&cap, 1.2e6);
        assert_eq!(retuned.center_freq, 1.2e6);
        assert_eq!(peak_bin(&retuned.samples), frequency_bin(-200e3, n, fs));
        // The RF frequency implied by the peak is unchanged.
        assert!((retuned.baseband(1.0e6) - -200e3).abs() < 1e-6);
    }

    #[test]
    fn zero_shift_is_identity() {
        let x = tone(50.0, 500.0, 256);
        let y = mix(&x, 500.0, 0.0);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }
}
