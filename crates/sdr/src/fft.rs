//! Radix-2 fast Fourier transform, implemented from scratch.
//!
//! The workspace's dependency policy does not allow an FFT crate, so
//! this module provides an iterative, in-place, decimation-in-time
//! radix-2 FFT with precomputed twiddle factors. A reusable
//! [`FftPlan`] amortises twiddle/bit-reversal setup across the many
//! transforms an STFT performs.
//!
//! Conventions: the forward transform computes
//! `X[k] = Σ_n x[n]·e^{-2πi·kn/N}` (no scaling); the inverse applies
//! the conjugate kernel and divides by `N`, so `ifft(fft(x)) == x`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::iq::Complex;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Time domain to frequency domain (`e^{-2πi kn/N}` kernel).
    Forward,
    /// Frequency domain to time domain (conjugate kernel, scaled by `1/N`).
    Inverse,
}

/// A reusable FFT plan for a fixed power-of-two size.
///
/// # Examples
///
/// ```
/// use emsc_sdr::fft::FftPlan;
/// use emsc_sdr::iq::Complex;
///
/// let plan = FftPlan::new(8);
/// let mut buf: Vec<Complex> = (0..8).map(|n| Complex::new(n as f64, 0.0)).collect();
/// let time = buf.clone();
/// plan.forward(&mut buf);
/// plan.inverse(&mut buf);
/// for (a, b) in buf.iter().zip(&time) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    log2n: u32,
    /// Twiddles for the forward transform: `e^{-2πi k / N}` for `k < N/2`.
    twiddles: Vec<Complex>,
    /// Bit-reversed index for every position.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n > 0, "FFT size must be a power of two, got {n}");
        let log2n = n.trailing_zeros();
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let mut bitrev = vec![0u32; n];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - log2n.max(1));
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        FftPlan { n, log2n, twiddles, bitrev }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when [`FftPlan::len`] is zero — which never
    /// happens, because [`FftPlan::new`] rejects any size that is not
    /// a power of two (and zero is not one). Provided so the type
    /// satisfies the usual `len`/`is_empty` contract.
    ///
    /// # Examples
    ///
    /// ```
    /// use emsc_sdr::fft::FftPlan;
    ///
    /// let plan = FftPlan::new(8);
    /// assert_eq!(plan.is_empty(), plan.len() == 0);
    /// assert!(!FftPlan::new(1).is_empty()); // length-1 is degenerate, not empty
    /// ```
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex]) {
        self.transform(buf, Direction::Forward);
    }

    /// In-place inverse FFT (scaled by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex]) {
        self.transform(buf, Direction::Inverse);
    }

    /// In-place transform in the given [`Direction`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn transform(&self, buf: &mut [Complex], dir: Direction) {
        assert_eq!(buf.len(), self.n, "buffer length must equal plan size");
        if self.n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Iterative butterflies. The twiddle index `k` is the outer
        // loop so the direction branch (and the conjugation) resolves
        // once per twiddle instead of once per butterfly; butterflies
        // within a stage touch disjoint index pairs, so reordering
        // them leaves every result bit-identical.
        for stage in 1..=self.log2n {
            let m = 1usize << stage; // butterfly group size
            let half = m >> 1;
            let step = self.n / m; // twiddle stride
            for k in 0..half {
                let w = match dir {
                    Direction::Forward => self.twiddles[k * step],
                    Direction::Inverse => self.twiddles[k * step].conj(),
                };
                let mut base = 0;
                while base < self.n {
                    let t = w * buf[base + k + half];
                    let u = buf[base + k];
                    buf[base + k] = u + t;
                    buf[base + k + half] = u - t;
                    base += m;
                }
            }
        }
        if dir == Direction::Inverse {
            let inv_n = 1.0 / self.n as f64;
            for v in buf.iter_mut() {
                *v = v.scale(inv_n);
            }
        }
    }
}

thread_local! {
    /// Per-thread plan cache keyed by transform length. Twiddle and
    /// bit-reversal tables are pure functions of the length, so a
    /// cached plan is indistinguishable from a fresh one; thread-local
    /// storage keeps the cache lock-free under the worker pool.
    static PLAN_CACHE: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
}

/// Returns this thread's cached [`FftPlan`] for length `n`, building
/// and memoising it on first use.
///
/// Callers that transform many buffers of one size (STFT frames,
/// Welch segments, every `fft()` call in a hot loop) get the twiddle
/// tables for free after the first call.
///
/// # Panics
///
/// Panics if `n` is zero or not a power of two.
///
/// # Examples
///
/// ```
/// use emsc_sdr::fft::plan_for;
///
/// let a = plan_for(256);
/// let b = plan_for(256);
/// assert!(std::rc::Rc::ptr_eq(&a, &b)); // second lookup is a cache hit
/// ```
pub fn plan_for(n: usize) -> Rc<FftPlan> {
    PLAN_CACHE.with(|cache| {
        Rc::clone(cache.borrow_mut().entry(n).or_insert_with(|| Rc::new(FftPlan::new(n))))
    })
}

/// Convenience one-shot forward FFT of a complex slice.
///
/// Uses the thread-local plan cache, so repeated calls at one length
/// pay the twiddle setup only once.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    plan_for(input.len()).forward(&mut buf);
    buf
}

/// Convenience one-shot inverse FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    plan_for(input.len()).inverse(&mut buf);
    buf
}

/// Forward FFT of a real-valued signal (promoted to complex).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&buf)
}

/// The frequency in hertz of FFT bin `k` for a transform of `n` points
/// sampled at `sample_rate`, mapping the upper half of the spectrum to
/// negative frequencies (complex-baseband convention).
///
/// # Examples
///
/// ```
/// use emsc_sdr::fft::bin_frequency;
/// assert_eq!(bin_frequency(0, 8, 800.0), 0.0);
/// assert_eq!(bin_frequency(1, 8, 800.0), 100.0);
/// assert_eq!(bin_frequency(7, 8, 800.0), -100.0);
/// ```
pub fn bin_frequency(k: usize, n: usize, sample_rate: f64) -> f64 {
    let k = k % n;
    if k <= n / 2 {
        k as f64 * sample_rate / n as f64
    } else {
        (k as f64 - n as f64) * sample_rate / n as f64
    }
}

/// The FFT bin index (0-based, mod `n`) closest to `freq` hertz for a
/// transform of `n` points at `sample_rate`, using the complex-baseband
/// convention (negative frequencies wrap to the upper half).
///
/// # Examples
///
/// ```
/// use emsc_sdr::fft::frequency_bin;
/// assert_eq!(frequency_bin(100.0, 8, 800.0), 1);
/// assert_eq!(frequency_bin(-100.0, 8, 800.0), 7);
/// ```
pub fn frequency_bin(freq: f64, n: usize, sample_rate: f64) -> usize {
    let raw = (freq / sample_rate * n as f64).round() as i64;
    raw.rem_euclid(n as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, eps: f64) {
        assert!((a - b).abs() < eps, "expected {b}, got {a} (err {})", (a - b).abs());
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let spectrum = fft(&x);
        for bin in spectrum {
            assert_close(bin, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn dc_transforms_to_bin_zero() {
        let x = vec![Complex::ONE; 8];
        let spectrum = fft(&x);
        assert_close(spectrum[0], Complex::new(8.0, 0.0), 1e-12);
        for bin in &spectrum[1..] {
            assert!(bin.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_single_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        let spectrum = fft(&x);
        for (k, bin) in spectrum.iter().enumerate() {
            if k == k0 {
                assert!((bin.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(bin.abs() < 1e-9, "leakage at bin {k}: {}", bin.abs());
            }
        }
    }

    #[test]
    fn real_cosine_splits_into_two_bins() {
        let n = 32;
        let k0 = 3;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spectrum = fft_real(&x);
        assert!((spectrum[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spectrum[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_restores_signal() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let y = ifft(&fft(&x));
        for (a, b) in y.iter().zip(&x) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new((i as f64).sqrt(), 1.0)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        for k in 0..n {
            assert_close(fsum[k], fa[k] + fb[k], 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64 * 1.7).sin(), (i as f64 * 0.3).sin()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let spectrum = fft(&x);
        let freq_energy: f64 = spectrum.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![Complex::new(2.5, -1.0)];
        assert_eq!(fft(&x), x);
        assert_eq!(ifft(&x), x);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.forward(&mut buf);
    }

    #[test]
    fn bin_frequency_round_trips_with_frequency_bin() {
        let n = 1024;
        let fs = 2.4e6;
        for k in [0usize, 1, 17, 400, 512, 700, 1023] {
            let f = bin_frequency(k, n, fs);
            assert_eq!(frequency_bin(f, n, fs), k % n);
        }
    }

    #[test]
    #[allow(clippy::len_zero)] // the point is to pin is_empty to len() == 0
    fn is_empty_agrees_with_len() {
        for n in [1usize, 2, 8, 1024] {
            let plan = FftPlan::new(n);
            assert_eq!(plan.is_empty(), plan.len() == 0);
            assert!(!plan.is_empty());
        }
    }

    #[test]
    fn cached_plan_matches_fresh_plan() {
        let x: Vec<Complex> =
            (0..64).map(|i| Complex::new((i as f64 * 0.9).sin(), (i as f64 * 0.4).cos())).collect();
        let mut fresh = x.clone();
        FftPlan::new(64).forward(&mut fresh);
        let cached = fft(&x); // goes through plan_for
        for (a, b) in cached.iter().zip(&fresh) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert!(Rc::ptr_eq(&plan_for(64), &plan_for(64)));
    }

    #[test]
    fn time_shift_is_phase_ramp() {
        // x[n-1] circularly shifted ⇒ X[k]·e^{-2πik/N}
        let n = 16;
        let x: Vec<Complex> = (0..n).map(|i| Complex::new((i * i % 7) as f64, 0.0)).collect();
        let mut shifted = x.clone();
        shifted.rotate_right(1);
        let fx = fft(&x);
        let fs = fft(&shifted);
        for k in 0..n {
            let expect = fx[k] * Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
            assert_close(fs[k], expect, 1e-9);
        }
    }
}
