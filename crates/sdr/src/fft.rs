//! Radix-2 fast Fourier transform, implemented from scratch.
//!
//! The workspace's dependency policy does not allow an FFT crate, so
//! this module provides an iterative, in-place, decimation-in-time
//! radix-2 FFT with precomputed twiddle factors. A reusable
//! [`FftPlan`] amortises twiddle/bit-reversal setup across the many
//! transforms an STFT performs.
//!
//! Conventions: the forward transform computes
//! `X[k] = Σ_n x[n]·e^{-2πi·kn/N}` (no scaling); the inverse applies
//! the conjugate kernel and divides by `N`, so `ifft(fft(x)) == x`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::iq::Complex;
use crate::scratch::{reset_complex, DspScratch};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Time domain to frequency domain (`e^{-2πi kn/N}` kernel).
    Forward,
    /// Frequency domain to time domain (conjugate kernel, scaled by `1/N`).
    Inverse,
}

/// A reusable FFT plan for a fixed power-of-two size.
///
/// # Examples
///
/// ```
/// use emsc_sdr::fft::FftPlan;
/// use emsc_sdr::iq::Complex;
///
/// let plan = FftPlan::new(8);
/// let mut buf: Vec<Complex> = (0..8).map(|n| Complex::new(n as f64, 0.0)).collect();
/// let time = buf.clone();
/// plan.forward(&mut buf);
/// plan.inverse(&mut buf);
/// for (a, b) in buf.iter().zip(&time) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    log2n: u32,
    /// Twiddles for the forward transform: `e^{-2πi k / N}` for `k < N/2`.
    twiddles: Vec<Complex>,
    /// Bit-reversed index for every position.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n > 0, "FFT size must be a power of two, got {n}");
        let log2n = n.trailing_zeros();
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let mut bitrev = vec![0u32; n];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - log2n.max(1));
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        FftPlan { n, log2n, twiddles, bitrev }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when [`FftPlan::len`] is zero — which never
    /// happens, because [`FftPlan::new`] rejects any size that is not
    /// a power of two (and zero is not one). Provided so the type
    /// satisfies the usual `len`/`is_empty` contract.
    ///
    /// # Examples
    ///
    /// ```
    /// use emsc_sdr::fft::FftPlan;
    ///
    /// let plan = FftPlan::new(8);
    /// assert_eq!(plan.is_empty(), plan.len() == 0);
    /// assert!(!FftPlan::new(1).is_empty()); // length-1 is degenerate, not empty
    /// ```
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex]) {
        self.transform(buf, Direction::Forward);
    }

    /// In-place inverse FFT (scaled by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex]) {
        self.transform(buf, Direction::Inverse);
    }

    /// In-place transform in the given [`Direction`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn transform(&self, buf: &mut [Complex], dir: Direction) {
        assert_eq!(buf.len(), self.n, "buffer length must equal plan size");
        if self.n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Iterative butterflies. The twiddle index `k` is the outer
        // loop so the direction branch (and the conjugation) resolves
        // once per twiddle instead of once per butterfly; butterflies
        // within a stage touch disjoint index pairs, so reordering
        // them leaves every result bit-identical.
        for stage in 1..=self.log2n {
            let m = 1usize << stage; // butterfly group size
            let half = m >> 1;
            let step = self.n / m; // twiddle stride
            for k in 0..half {
                let w = match dir {
                    Direction::Forward => self.twiddles[k * step],
                    Direction::Inverse => self.twiddles[k * step].conj(),
                };
                let mut base = 0;
                while base < self.n {
                    let t = w * buf[base + k + half];
                    let u = buf[base + k];
                    buf[base + k] = u + t;
                    buf[base + k + half] = u - t;
                    base += m;
                }
            }
        }
        if dir == Direction::Inverse {
            let inv_n = 1.0 / self.n as f64;
            for v in buf.iter_mut() {
                *v = v.scale(inv_n);
            }
        }
    }

    /// Forward FFT of a **real** signal of length `self.len()` via the
    /// half-size complex trick: the even/odd samples are packed into a
    /// length-`N/2` complex buffer, transformed with the cached
    /// half-size plan, and unpacked with this plan's own twiddles —
    /// one complex FFT of half the size instead of a full-size
    /// transform of a promoted buffer, roughly halving the work for
    /// magnitude-spectrum consumers.
    ///
    /// The full `N`-point spectrum is written to `out` (the upper half
    /// is filled from conjugate symmetry, `X[N−k] = conj(X[k])`), so
    /// the result is a drop-in replacement for transforming the
    /// promoted signal. Values match the promoted-complex path to
    /// rounding (≤ −120 dB, pinned in tests), not bit-exactly.
    ///
    /// Uses `scratch.c1`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`. Odd lengths are
    /// unrepresentable by construction: [`FftPlan::new`] rejects any
    /// size that is not a power of two.
    pub fn forward_real_into(
        &self,
        input: &[f64],
        out: &mut Vec<Complex>,
        scratch: &mut DspScratch,
    ) {
        assert_eq!(input.len(), self.n, "input length must equal plan size");
        out.clear();
        if self.n == 1 {
            out.push(Complex::new(input[0], 0.0));
            return;
        }
        let h = self.n / 2;
        // Pack z[m] = x[2m] + i·x[2m+1] and transform at half size.
        reset_complex(&mut scratch.c1, h);
        for (z, pair) in scratch.c1.iter_mut().zip(input.chunks_exact(2)) {
            *z = Complex::new(pair[0], pair[1]);
        }
        plan_for(h).forward(&mut scratch.c1);
        let half = &scratch.c1;
        out.resize(self.n, Complex::ZERO);
        // X[0] and X[N/2] are exactly real.
        out[0] = Complex::new(half[0].re + half[0].im, 0.0);
        out[h] = Complex::new(half[0].re - half[0].im, 0.0);
        for k in 1..h {
            let a = half[k];
            let b = half[h - k].conj();
            let even = (a + b).scale(0.5);
            let d = a - b;
            let odd = Complex::new(0.5 * d.im, -0.5 * d.re);
            // This plan's twiddles are e^{-2πik/N} for k < N/2 —
            // exactly the recombination factors needed here.
            let x = even + self.twiddles[k] * odd;
            out[k] = x;
            out[self.n - k] = x.conj();
        }
    }

    /// Allocating wrapper around [`FftPlan::forward_real_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn forward_real(&self, input: &[f64]) -> Vec<Complex> {
        let mut out = Vec::new();
        self.forward_real_into(input, &mut out, &mut DspScratch::new());
        out
    }
}

thread_local! {
    /// Per-thread plan cache keyed by transform length. Twiddle and
    /// bit-reversal tables are pure functions of the length, so a
    /// cached plan is indistinguishable from a fresh one; thread-local
    /// storage keeps the cache lock-free under the worker pool.
    static PLAN_CACHE: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
}

/// Returns this thread's cached [`FftPlan`] for length `n`, building
/// and memoising it on first use.
///
/// Callers that transform many buffers of one size (STFT frames,
/// Welch segments, every `fft()` call in a hot loop) get the twiddle
/// tables for free after the first call.
///
/// # Panics
///
/// Panics if `n` is zero or not a power of two.
///
/// # Examples
///
/// ```
/// use emsc_sdr::fft::plan_for;
///
/// let a = plan_for(256);
/// let b = plan_for(256);
/// assert!(std::rc::Rc::ptr_eq(&a, &b)); // second lookup is a cache hit
/// ```
pub fn plan_for(n: usize) -> Rc<FftPlan> {
    PLAN_CACHE.with(|cache| {
        Rc::clone(cache.borrow_mut().entry(n).or_insert_with(|| Rc::new(FftPlan::new(n))))
    })
}

/// Convenience one-shot forward FFT of a complex slice.
///
/// Uses the thread-local plan cache, so repeated calls at one length
/// pay the twiddle setup only once — but every call clones the input
/// into a fresh allocation. Steady-state code should hold a plan (or
/// call [`plan_for`]) and transform a reused buffer in place.
///
/// # Panics
///
/// Panics if the length is not a power of two.
#[deprecated(since = "0.1.0", note = "allocates per call; use plan_for(n).forward(&mut buf)")]
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    plan_for(input.len()).forward(&mut buf);
    buf
}

/// Convenience one-shot inverse FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
#[deprecated(since = "0.1.0", note = "allocates per call; use plan_for(n).inverse(&mut buf)")]
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let mut buf = input.to_vec();
    plan_for(input.len()).inverse(&mut buf);
    buf
}

/// Forward FFT of a real-valued signal via the half-size complex
/// trick ([`FftPlan::forward_real`]): one length-`N/2` complex
/// transform instead of promoting to a full-size complex buffer.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    plan_for(input.len()).forward_real(input)
}

/// The frequency in hertz of FFT bin `k` for a transform of `n` points
/// sampled at `sample_rate`, mapping the upper half of the spectrum to
/// negative frequencies (complex-baseband convention).
///
/// # Examples
///
/// ```
/// use emsc_sdr::fft::bin_frequency;
/// assert_eq!(bin_frequency(0, 8, 800.0), 0.0);
/// assert_eq!(bin_frequency(1, 8, 800.0), 100.0);
/// assert_eq!(bin_frequency(7, 8, 800.0), -100.0);
/// ```
pub fn bin_frequency(k: usize, n: usize, sample_rate: f64) -> f64 {
    let k = k % n;
    if k <= n / 2 {
        k as f64 * sample_rate / n as f64
    } else {
        (k as f64 - n as f64) * sample_rate / n as f64
    }
}

/// The FFT bin index (0-based, mod `n`) closest to `freq` hertz for a
/// transform of `n` points at `sample_rate`, using the complex-baseband
/// convention (negative frequencies wrap to the upper half).
///
/// # Examples
///
/// ```
/// use emsc_sdr::fft::frequency_bin;
/// assert_eq!(frequency_bin(100.0, 8, 800.0), 1);
/// assert_eq!(frequency_bin(-100.0, 8, 800.0), 7);
/// ```
pub fn frequency_bin(freq: f64, n: usize, sample_rate: f64) -> usize {
    let raw = (freq / sample_rate * n as f64).round() as i64;
    raw.rem_euclid(n as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, eps: f64) {
        assert!((a - b).abs() < eps, "expected {b}, got {a} (err {})", (a - b).abs());
    }

    /// Plan-based one-shot forward transform (what the deprecated
    /// `fft` wrapper does; tests use this form directly).
    fn fft(input: &[Complex]) -> Vec<Complex> {
        let mut buf = input.to_vec();
        plan_for(input.len()).forward(&mut buf);
        buf
    }

    /// Plan-based one-shot inverse transform.
    fn ifft(input: &[Complex]) -> Vec<Complex> {
        let mut buf = input.to_vec();
        plan_for(input.len()).inverse(&mut buf);
        buf
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        let spectrum = fft(&x);
        for bin in spectrum {
            assert_close(bin, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn dc_transforms_to_bin_zero() {
        let x = vec![Complex::ONE; 8];
        let spectrum = fft(&x);
        assert_close(spectrum[0], Complex::new(8.0, 0.0), 1e-12);
        for bin in &spectrum[1..] {
            assert!(bin.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_single_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        let spectrum = fft(&x);
        for (k, bin) in spectrum.iter().enumerate() {
            if k == k0 {
                assert!((bin.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(bin.abs() < 1e-9, "leakage at bin {k}: {}", bin.abs());
            }
        }
    }

    #[test]
    fn real_cosine_splits_into_two_bins() {
        let n = 32;
        let k0 = 3;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spectrum = fft_real(&x);
        assert!((spectrum[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spectrum[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_restores_signal() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let y = ifft(&fft(&x));
        for (a, b) in y.iter().zip(&x) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new((i as f64).sqrt(), 1.0)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        for k in 0..n {
            assert_close(fsum[k], fa[k] + fb[k], 1e-9);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64 * 1.7).sin(), (i as f64 * 0.3).sin()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let spectrum = fft(&x);
        let freq_energy: f64 = spectrum.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn length_one_is_identity() {
        let x = vec![Complex::new(2.5, -1.0)];
        assert_eq!(fft(&x), x);
        assert_eq!(ifft(&x), x);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wrong_buffer_length_panics() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.forward(&mut buf);
    }

    #[test]
    fn bin_frequency_round_trips_with_frequency_bin() {
        let n = 1024;
        let fs = 2.4e6;
        for k in [0usize, 1, 17, 400, 512, 700, 1023] {
            let f = bin_frequency(k, n, fs);
            assert_eq!(frequency_bin(f, n, fs), k % n);
        }
    }

    #[test]
    #[allow(clippy::len_zero)] // the point is to pin is_empty to len() == 0
    fn is_empty_agrees_with_len() {
        for n in [1usize, 2, 8, 1024] {
            let plan = FftPlan::new(n);
            assert_eq!(plan.is_empty(), plan.len() == 0);
            assert!(!plan.is_empty());
        }
    }

    #[test]
    fn cached_plan_matches_fresh_plan() {
        let x: Vec<Complex> =
            (0..64).map(|i| Complex::new((i as f64 * 0.9).sin(), (i as f64 * 0.4).cos())).collect();
        let mut fresh = x.clone();
        FftPlan::new(64).forward(&mut fresh);
        let cached = fft(&x); // goes through plan_for
        for (a, b) in cached.iter().zip(&fresh) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert!(Rc::ptr_eq(&plan_for(64), &plan_for(64)));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_plan_path() {
        let x: Vec<Complex> =
            (0..32).map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.2).cos())).collect();
        assert_eq!(super::fft(&x), fft(&x));
        assert_eq!(super::ifft(&x), ifft(&x));
    }

    /// Reference for the real-FFT tests: promote to complex and run
    /// the ordinary full-size transform.
    fn fft_promoted(input: &[f64]) -> Vec<Complex> {
        let buf: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft(&buf)
    }

    /// Relative RMS error between two spectra, in dB.
    fn spectra_error_db(a: &[Complex], b: &[Complex]) -> f64 {
        let err: f64 = a.iter().zip(b).map(|(x, y)| (*x - *y).norm_sqr()).sum();
        let sig: f64 = b.iter().map(|z| z.norm_sqr()).sum();
        10.0 * (err.max(1e-300) / sig.max(1e-300)).log10()
    }

    #[test]
    fn forward_real_matches_complex_path_on_impulse() {
        for n in [2usize, 4, 64] {
            let mut x = vec![0.0; n];
            x[0] = 1.0;
            let real = FftPlan::new(n).forward_real(&x);
            let promoted = fft_promoted(&x);
            assert_eq!(real.len(), n);
            for (a, b) in real.iter().zip(&promoted) {
                assert_close(*a, *b, 1e-12);
            }
        }
    }

    #[test]
    fn forward_real_matches_complex_path_on_sines() {
        for (n, k0) in [(32usize, 3.0), (256, 17.0), (1024, 100.5)] {
            let x: Vec<f64> = (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * k0 * i as f64 / n as f64).sin() + 0.25)
                .collect();
            let real = FftPlan::new(n).forward_real(&x);
            let promoted = fft_promoted(&x);
            let db = spectra_error_db(&real, &promoted);
            assert!(db <= -120.0, "n {n}: error {db:.1} dB");
        }
    }

    #[test]
    fn forward_real_matches_complex_path_on_noise() {
        let mut state = 0xF00Du64;
        let x: Vec<f64> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2_000_000) as f64 / 1_000_000.0 - 1.0
            })
            .collect();
        let real = fft_real(&x); // free helper routes through the plan
        let promoted = fft_promoted(&x);
        let db = spectra_error_db(&real, &promoted);
        assert!(db <= -120.0, "error {db:.1} dB");
    }

    #[test]
    fn forward_real_spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..128).map(|i| ((i * i) % 23) as f64 - 11.0).collect();
        let spec = FftPlan::new(128).forward_real(&x);
        assert_eq!(spec[0].im, 0.0);
        assert_eq!(spec[64].im, 0.0);
        for k in 1..64 {
            assert_eq!(spec[128 - k].re.to_bits(), spec[k].re.to_bits());
            assert_eq!(spec[128 - k].im.to_bits(), (-spec[k].im).to_bits());
        }
    }

    #[test]
    fn forward_real_length_one_is_identity() {
        assert_eq!(FftPlan::new(1).forward_real(&[2.5]), vec![Complex::new(2.5, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn forward_real_rejects_odd_lengths_at_plan_construction() {
        // Odd sizes cannot even build a plan, so there is no
        // even/odd-length split inside forward_real itself.
        let _ = fft_real(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn forward_real_rejects_mismatched_input_length() {
        FftPlan::new(8).forward_real(&[1.0; 4]);
    }

    #[test]
    fn forward_real_into_is_allocation_free_after_warmup() {
        let plan = FftPlan::new(512);
        let x = vec![1.0; 512];
        let mut out = Vec::new();
        let mut scratch = DspScratch::new();
        plan.forward_real_into(&x, &mut out, &mut scratch);
        let (cap_out, cap_scr) = (out.capacity(), scratch.c1.capacity());
        plan.forward_real_into(&x, &mut out, &mut scratch);
        assert_eq!(out.capacity(), cap_out);
        assert_eq!(scratch.c1.capacity(), cap_scr);
        assert_eq!(out, plan.forward_real(&x));
    }

    #[test]
    fn time_shift_is_phase_ramp() {
        // x[n-1] circularly shifted ⇒ X[k]·e^{-2πik/N}
        let n = 16;
        let x: Vec<Complex> = (0..n).map(|i| Complex::new((i * i % 7) as f64, 0.0)).collect();
        let mut shifted = x.clone();
        shifted.rotate_right(1);
        let fx = fft(&x);
        let fs = fft(&shifted);
        for k in 0..n {
            let expect = fx[k] * Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
            assert_close(fs[k], expect, 1e-9);
        }
    }
}
