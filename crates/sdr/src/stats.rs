//! Statistics used by the receiver: histograms, quantiles, Rayleigh
//! fits and bimodal-threshold selection.
//!
//! Three of the paper's figures are statistical artefacts of the
//! receiver pipeline: Fig. 6 fits a (Rayleigh-like, positively skewed)
//! distribution to inter-bit distances and takes the median as the
//! symbol period; Fig. 7 finds the two modes of the per-bit power
//! histogram and places the decision threshold halfway between them.

/// A fixed-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<usize>,
    min: f64,
    max: f64,
    total: usize,
}

impl Histogram {
    /// Builds a histogram of `data` with `bins` equal-width bins
    /// spanning the data's own min/max (a degenerate span is widened
    /// slightly so every sample lands in-range).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `data` is empty.
    pub fn from_data(data: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "bins must be positive");
        assert!(!data.is_empty(), "cannot build a histogram of no data");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in data {
            min = min.min(v);
            max = max.max(v);
        }
        if max - min < 1e-300 {
            max = min + 1.0;
        }
        let mut h = Histogram { counts: vec![0; bins], min, max, total: 0 };
        for &v in data {
            h.add(v);
        }
        h
    }

    /// Adds a sample (values outside `[min, max]` clamp to the edge bins).
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let frac = (value - self.min) / (self.max - self.min);
        let idx = ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total samples added.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Centre value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.max - self.min) / self.counts.len() as f64;
        self.min + (i as f64 + 0.5) * width
    }

    /// The probability density estimate per bin (counts normalised so
    /// the histogram integrates to 1).
    pub fn density(&self) -> Vec<f64> {
        let width = (self.max - self.min) / self.counts.len() as f64;
        let norm = self.total.max(1) as f64 * width;
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// Finds the two most prominent, well-separated modes of the
    /// (smoothed) histogram and returns their bin centres in ascending
    /// order — the Fig. 7 "two peaks" of the per-bit power
    /// distribution. Returns `None` when the histogram is unimodal.
    pub fn two_modes(&self) -> Option<(f64, f64)> {
        let smoothed = crate::dsp::moving_average(
            &self.counts.iter().map(|&c| c as f64).collect::<Vec<_>>(),
            (self.counts.len() / 16).max(3),
        );
        // Pad with zeros so modes sitting on the histogram edges are
        // still interior local maxima for the peak finder.
        let mut padded = Vec::with_capacity(smoothed.len() + 2);
        padded.push(0.0);
        padded.extend_from_slice(&smoothed);
        padded.push(0.0);
        let min_sep = (self.counts.len() / 8).max(2);
        let peak_floor = smoothed.iter().cloned().fold(0.0f64, f64::max) * 0.05;
        let peaks: Vec<crate::dsp::Peak> = crate::dsp::find_peaks(&padded, peak_floor, min_sep)
            .into_iter()
            .map(|p| crate::dsp::Peak { index: p.index - 1, value: p.value })
            .collect();
        if peaks.len() < 2 {
            return None;
        }
        let mut best = peaks.to_vec();
        best.sort_by(|a, b| b.value.partial_cmp(&a.value).unwrap_or(std::cmp::Ordering::Equal));
        let (a, b) = (best[0].index, best[1].index);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        Some((self.bin_center(lo), self.bin_center(hi)))
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `data` by linear
/// interpolation on the sorted samples.
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of no data");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median: the 0.5-quantile. The paper picks the signalling time as
/// "the point whose cumulative probability distribution equals 0.5"
/// (§IV-B2).
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Sample mean.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "mean of no data");
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance (returns 0 for fewer than two samples).
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Fisher–Pearson sample skewness; positive for right-skewed data such
/// as the paper's pulse-width distribution (Fig. 6).
pub fn skewness(data: &[f64]) -> f64 {
    if data.len() < 3 {
        return 0.0;
    }
    let m = mean(data);
    let n = data.len() as f64;
    let m2 = data.iter().map(|&v| (v - m).powi(2)).sum::<f64>() / n;
    let m3 = data.iter().map(|&v| (v - m).powi(3)).sum::<f64>() / n;
    if m2 <= 0.0 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// A fitted Rayleigh distribution (the paper's Fig. 6 model for the
/// pulse-width variation of the covert channel), with an optional
/// location shift since real bit periods have a hard minimum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayleighFit {
    /// Location (minimum) parameter.
    pub location: f64,
    /// Scale parameter σ.
    pub sigma: f64,
}

impl RayleighFit {
    /// Maximum-likelihood fit of a shifted Rayleigh: location is the
    /// sample minimum (shrunk marginally so the smallest point has
    /// nonzero density), and `σ² = mean((x−loc)²)/2`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "cannot fit to no data");
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let location = min - 1e-9 * min.abs().max(1.0);
        let ms: f64 = data.iter().map(|&x| (x - location).powi(2)).sum::<f64>() / data.len() as f64;
        RayleighFit { location, sigma: (ms / 2.0).sqrt() }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = x - self.location;
        if z < 0.0 || self.sigma <= 0.0 {
            return 0.0;
        }
        let s2 = self.sigma * self.sigma;
        z / s2 * (-z * z / (2.0 * s2)).exp()
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = x - self.location;
        if z <= 0.0 || self.sigma <= 0.0 {
            return 0.0;
        }
        1.0 - (-z * z / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// Median of the fitted distribution: `loc + σ·√(2 ln 2)`.
    pub fn median(&self) -> f64 {
        self.location + self.sigma * (2.0 * std::f64::consts::LN_2).sqrt()
    }

    /// Mode (peak density) of the fitted distribution: `loc + σ`.
    pub fn mode(&self) -> f64 {
        self.location + self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_land_in_right_bins() {
        let data = [0.0, 0.1, 0.9, 1.0, 0.5];
        let h = Histogram::from_data(&data, 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2); // 0.0, 0.1
        assert_eq!(h.counts()[1], 3); // 0.5, 0.9, 1.0 (0.5 is exactly the boundary → upper bin)
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.017).sin()).collect();
        let h = Histogram::from_data(&data, 32);
        let width = 2.0 / 32.0; // sin spans [-1, 1] approx
        let integral: f64 = h.density().iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn histogram_degenerate_data() {
        let h = Histogram::from_data(&[2.0, 2.0, 2.0], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<usize>(), 3);
    }

    #[test]
    fn two_modes_finds_bimodal_peaks() {
        // Cluster around 1.0 and around 5.0.
        let mut data = Vec::new();
        for i in 0..500 {
            data.push(1.0 + 0.2 * ((i * 7 % 13) as f64 / 13.0 - 0.5));
            data.push(5.0 + 0.3 * ((i * 11 % 17) as f64 / 17.0 - 0.5));
        }
        let h = Histogram::from_data(&data, 64);
        let (lo, hi) = h.two_modes().expect("bimodal data must yield two modes");
        assert!((lo - 1.0).abs() < 0.4, "low mode {lo}");
        assert!((hi - 5.0).abs() < 0.4, "high mode {hi}");
    }

    #[test]
    fn two_modes_rejects_unimodal() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 100) as f64 * 0.001 + 3.0).collect();
        let h = Histogram::from_data(&data, 32);
        // A flat/unimodal blob has no well-separated second peak.
        if let Some((lo, hi)) = h.two_modes() {
            // If the smoother finds two bumps in a flat blob they must be close together.
            assert!(hi - lo < 0.2, "spurious modes {lo} {hi}");
        }
    }

    #[test]
    fn quantiles_of_known_data() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(median(&data), 3.0);
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 5.0);
        assert_eq!(quantile(&data, 0.25), 2.0);
    }

    #[test]
    fn median_interpolates_even_counts() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 10.0]), 2.5);
    }

    #[test]
    fn mean_variance_known() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data), 5.0);
        assert!((variance(&data) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn skewness_signs() {
        let right = [1.0, 1.0, 1.0, 1.1, 1.2, 5.0];
        let left = [5.0, 5.0, 5.0, 4.9, 4.8, 1.0];
        assert!(skewness(&right) > 0.5);
        assert!(skewness(&left) < -0.5);
        assert!(skewness(&[1.0, 2.0, 3.0]).abs() < 1e-9);
    }

    #[test]
    fn rayleigh_fit_recovers_sigma() {
        // Deterministic Rayleigh samples via inverse CDF on a stratified grid.
        let sigma = 2.5;
        let data: Vec<f64> = (1..1000)
            .map(|i| {
                let u = i as f64 / 1000.0;
                sigma * (-2.0 * (1.0 - u).ln()).sqrt()
            })
            .collect();
        let fit = RayleighFit::fit(&data);
        assert!((fit.sigma - sigma).abs() / sigma < 0.05, "sigma {}", fit.sigma);
        // The location estimate is the sample minimum, which for this
        // stratified grid is σ·√(−2 ln 0.999) ≈ 0.112.
        assert!(fit.location.abs() < 0.15, "location {}", fit.location);
        // Median of fit close to analytic median.
        let analytic = sigma * (2.0f64 * std::f64::consts::LN_2).sqrt();
        assert!((fit.median() - analytic).abs() / analytic < 0.05);
    }

    #[test]
    fn rayleigh_pdf_properties() {
        let fit = RayleighFit { location: 1.0, sigma: 0.5 };
        assert_eq!(fit.pdf(0.5), 0.0); // below location
        assert!(fit.pdf(fit.mode()) > fit.pdf(1.1));
        assert!(fit.pdf(fit.mode()) > fit.pdf(3.0));
        assert!((fit.cdf(fit.median()) - 0.5).abs() < 1e-12);
        assert!(fit.cdf(100.0) > 0.999999);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn median_of_empty_panics() {
        median(&[]);
    }
}
