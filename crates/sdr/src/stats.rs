//! Statistics used by the receiver: histograms, quantiles, Rayleigh
//! fits and bimodal-threshold selection.
//!
//! Three of the paper's figures are statistical artefacts of the
//! receiver pipeline: Fig. 6 fits a (Rayleigh-like, positively skewed)
//! distribution to inter-bit distances and takes the median as the
//! symbol period; Fig. 7 finds the two modes of the per-bit power
//! histogram and places the decision threshold halfway between them.

use crate::error::StatsError;
use crate::scratch::{reset_f64, DspScratch};

/// A fixed-width histogram over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<usize>,
    min: f64,
    max: f64,
    total: usize,
    skipped: usize,
}

impl Histogram {
    /// Builds a histogram of `data` with `bins` equal-width bins
    /// spanning the data's own min/max (a degenerate span is widened
    /// slightly so every sample lands in-range). Non-finite values are
    /// skipped and counted in [`Histogram::skipped`] rather than
    /// binned, so one corrupt per-bit power cannot skew the span or
    /// pile spurious mass into bin 0.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `data` holds no finite value; use
    /// [`Histogram::try_from_data`] for the fallible variant.
    pub fn from_data(data: &[f64], bins: usize) -> Self {
        match Histogram::try_from_data(data, bins) {
            Ok(h) => h,
            Err(StatsError::ZeroBins) => panic!("bins must be positive"),
            Err(_) => panic!("cannot build a histogram of no data"),
        }
    }

    /// Fallible [`Histogram::from_data`]: reports zero bins and
    /// empty/all-non-finite data as typed errors instead of panicking.
    pub fn try_from_data(data: &[f64], bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::ZeroBins);
        }
        if data.is_empty() {
            return Err(StatsError::EmptyData);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in data {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
        if !min.is_finite() || !max.is_finite() {
            return Err(StatsError::NoFiniteData);
        }
        if max - min < 1e-300 {
            max = min + 1.0;
        }
        let mut h = Histogram { counts: vec![0; bins], min, max, total: 0, skipped: 0 };
        for &v in data {
            h.add(v);
        }
        Ok(h)
    }

    /// Adds a sample (finite values outside `[min, max]` clamp to the
    /// edge bins; NaN and infinite values are skipped and counted in
    /// [`Histogram::skipped`]).
    pub fn add(&mut self, value: f64) {
        if !value.is_finite() {
            self.skipped += 1;
            return;
        }
        let bins = self.counts.len();
        let frac = (value - self.min) / (self.max - self.min);
        let idx = ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of non-finite samples rejected by [`Histogram::add`].
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total samples added.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Centre value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.max - self.min) / self.counts.len() as f64;
        self.min + (i as f64 + 0.5) * width
    }

    /// The probability density estimate per bin (counts normalised so
    /// the histogram integrates to 1).
    pub fn density(&self) -> Vec<f64> {
        let width = (self.max - self.min) / self.counts.len() as f64;
        let norm = self.total.max(1) as f64 * width;
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// Finds the two most prominent, well-separated modes of the
    /// (smoothed) histogram and returns their bin centres in ascending
    /// order — the Fig. 7 "two peaks" of the per-bit power
    /// distribution. Returns `None` when the histogram is unimodal.
    pub fn two_modes(&self) -> Option<(f64, f64)> {
        let smoothed = crate::dsp::moving_average(
            &self.counts.iter().map(|&c| c as f64).collect::<Vec<_>>(),
            (self.counts.len() / 16).max(3),
        );
        // Pad with zeros so modes sitting on the histogram edges are
        // still interior local maxima for the peak finder.
        let mut padded = Vec::with_capacity(smoothed.len() + 2);
        padded.push(0.0);
        padded.extend_from_slice(&smoothed);
        padded.push(0.0);
        let min_sep = (self.counts.len() / 8).max(2);
        let peak_floor = smoothed.iter().cloned().fold(0.0f64, f64::max) * 0.05;
        let peaks: Vec<crate::dsp::Peak> = crate::dsp::find_peaks(&padded, peak_floor, min_sep)
            .into_iter()
            .map(|p| crate::dsp::Peak { index: p.index - 1, value: p.value })
            .collect();
        if peaks.len() < 2 {
            return None;
        }
        let mut best = peaks.to_vec();
        best.sort_by(|a, b| b.value.partial_cmp(&a.value).unwrap_or(std::cmp::Ordering::Equal));
        let (a, b) = (best[0].index, best[1].index);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        Some((self.bin_center(lo), self.bin_center(hi)))
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `data` by linear
/// interpolation on the sorted samples.
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`; use
/// [`try_quantile`] for the fallible variant.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    match try_quantile(data, q) {
        Ok(v) => v,
        Err(StatsError::InvalidQuantile) => panic!("quantile must be in [0, 1]"),
        Err(_) => panic!("quantile of no data"),
    }
}

/// Fallible [`quantile`]: reports empty data and out-of-range `q` as
/// typed errors instead of panicking.
pub fn try_quantile(data: &[f64], q: f64) -> Result<f64, StatsError> {
    try_quantile_with(data, q, &mut DspScratch::new())
}

/// [`try_quantile`] with the sorted copy staged in `scratch.f0`
/// instead of a fresh allocation — after a warm-up call at the
/// largest data size, repeated quantiles (the per-capture threshold
/// selection) allocate nothing. Bit-identical to the allocating path.
pub fn try_quantile_with(data: &[f64], q: f64, scr: &mut DspScratch) -> Result<f64, StatsError> {
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidQuantile);
    }
    if data.is_empty() {
        return Err(StatsError::EmptyData);
    }
    reset_f64(&mut scr.f0, data.len());
    let sorted = &mut scr.f0[..];
    sorted.copy_from_slice(data);
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Ok(if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    })
}

/// Median: the 0.5-quantile. The paper picks the signalling time as
/// "the point whose cumulative probability distribution equals 0.5"
/// (§IV-B2).
///
/// # Panics
///
/// Panics if `data` is empty; use [`try_median`] for the fallible
/// variant.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Fallible [`median`].
pub fn try_median(data: &[f64]) -> Result<f64, StatsError> {
    try_quantile(data, 0.5)
}

/// Sample mean.
///
/// # Panics
///
/// Panics if `data` is empty; use [`try_mean`] for the fallible
/// variant.
pub fn mean(data: &[f64]) -> f64 {
    try_mean(data).expect("mean of no data")
}

/// Fallible [`mean`]: non-finite values are excluded from the
/// average, and data with no finite value at all is a typed error
/// rather than a silent `NaN`.
pub fn try_mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData);
    }
    let (sum, n) =
        data.iter().filter(|v| v.is_finite()).fold((0.0f64, 0usize), |(s, n), &v| (s + v, n + 1));
    if n == 0 {
        return Err(StatsError::NoFiniteData);
    }
    Ok(sum / n as f64)
}

/// Unbiased sample variance (returns 0 for fewer than two samples).
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Fisher–Pearson sample skewness; positive for right-skewed data such
/// as the paper's pulse-width distribution (Fig. 6).
pub fn skewness(data: &[f64]) -> f64 {
    if data.len() < 3 {
        return 0.0;
    }
    let m = mean(data);
    let n = data.len() as f64;
    let m2 = data.iter().map(|&v| (v - m).powi(2)).sum::<f64>() / n;
    let m3 = data.iter().map(|&v| (v - m).powi(3)).sum::<f64>() / n;
    if m2 <= 0.0 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// A fitted Rayleigh distribution (the paper's Fig. 6 model for the
/// pulse-width variation of the covert channel), with an optional
/// location shift since real bit periods have a hard minimum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayleighFit {
    /// Location (minimum) parameter.
    pub location: f64,
    /// Scale parameter σ.
    pub sigma: f64,
}

impl RayleighFit {
    /// Maximum-likelihood fit of a shifted Rayleigh: location is the
    /// sample minimum (shrunk marginally so the smallest point has
    /// nonzero density), and `σ² = mean((x−loc)²)/2`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty; use [`RayleighFit::try_fit`] for the
    /// fallible variant.
    pub fn fit(data: &[f64]) -> Self {
        RayleighFit::try_fit(data).expect("cannot fit to no data")
    }

    /// Fallible [`RayleighFit::fit`]: reports empty or all-non-finite
    /// data as a typed error instead of panicking (non-finite values
    /// are excluded from the fit).
    pub fn try_fit(data: &[f64]) -> Result<Self, StatsError> {
        if data.is_empty() {
            return Err(StatsError::EmptyData);
        }
        let finite: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return Err(StatsError::NoFiniteData);
        }
        let min = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let location = min - 1e-9 * min.abs().max(1.0);
        let ms: f64 =
            finite.iter().map(|&x| (x - location).powi(2)).sum::<f64>() / finite.len() as f64;
        Ok(RayleighFit { location, sigma: (ms / 2.0).sqrt() })
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = x - self.location;
        if z < 0.0 || self.sigma <= 0.0 {
            return 0.0;
        }
        let s2 = self.sigma * self.sigma;
        z / s2 * (-z * z / (2.0 * s2)).exp()
    }

    /// Cumulative distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = x - self.location;
        if z <= 0.0 || self.sigma <= 0.0 {
            return 0.0;
        }
        1.0 - (-z * z / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// Median of the fitted distribution: `loc + σ·√(2 ln 2)`.
    pub fn median(&self) -> f64 {
        self.location + self.sigma * (2.0 * std::f64::consts::LN_2).sqrt()
    }

    /// Mode (peak density) of the fitted distribution: `loc + σ`.
    pub fn mode(&self) -> f64 {
        self.location + self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_with_scratch_matches_and_reuses_buffer() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 271) % 499) as f64 * 0.013 - 3.0).collect();
        let mut scr = DspScratch::new();
        for q in [0.0, 0.25, 0.5, 0.77, 1.0] {
            assert_eq!(
                try_quantile_with(&data, q, &mut scr).unwrap().to_bits(),
                try_quantile(&data, q).unwrap().to_bits()
            );
        }
        let cap = scr.f0.capacity();
        try_quantile_with(&data, 0.5, &mut scr).unwrap();
        assert_eq!(scr.f0.capacity(), cap, "steady-state must not grow");
        assert!(try_quantile_with(&[], 0.5, &mut scr).is_err());
        assert!(try_quantile_with(&data, 1.5, &mut scr).is_err());
    }

    #[test]
    fn histogram_counts_land_in_right_bins() {
        let data = [0.0, 0.1, 0.9, 1.0, 0.5];
        let h = Histogram::from_data(&data, 2);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2); // 0.0, 0.1
        assert_eq!(h.counts()[1], 3); // 0.5, 0.9, 1.0 (0.5 is exactly the boundary → upper bin)
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.017).sin()).collect();
        let h = Histogram::from_data(&data, 32);
        let width = 2.0 / 32.0; // sin spans [-1, 1] approx
        let integral: f64 = h.density().iter().map(|d| d * width).sum();
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn histogram_degenerate_data() {
        let h = Histogram::from_data(&[2.0, 2.0, 2.0], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<usize>(), 3);
    }

    #[test]
    fn two_modes_finds_bimodal_peaks() {
        // Cluster around 1.0 and around 5.0.
        let mut data = Vec::new();
        for i in 0..500 {
            data.push(1.0 + 0.2 * ((i * 7 % 13) as f64 / 13.0 - 0.5));
            data.push(5.0 + 0.3 * ((i * 11 % 17) as f64 / 17.0 - 0.5));
        }
        let h = Histogram::from_data(&data, 64);
        let (lo, hi) = h.two_modes().expect("bimodal data must yield two modes");
        assert!((lo - 1.0).abs() < 0.4, "low mode {lo}");
        assert!((hi - 5.0).abs() < 0.4, "high mode {hi}");
    }

    #[test]
    fn two_modes_rejects_unimodal() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 100) as f64 * 0.001 + 3.0).collect();
        let h = Histogram::from_data(&data, 32);
        // A flat/unimodal blob has no well-separated second peak.
        if let Some((lo, hi)) = h.two_modes() {
            // If the smoother finds two bumps in a flat blob they must be close together.
            assert!(hi - lo < 0.2, "spurious modes {lo} {hi}");
        }
    }

    #[test]
    fn quantiles_of_known_data() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(median(&data), 3.0);
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 5.0);
        assert_eq!(quantile(&data, 0.25), 2.0);
    }

    #[test]
    fn median_interpolates_even_counts() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 10.0]), 2.5);
    }

    #[test]
    fn mean_variance_known() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data), 5.0);
        assert!((variance(&data) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn skewness_signs() {
        let right = [1.0, 1.0, 1.0, 1.1, 1.2, 5.0];
        let left = [5.0, 5.0, 5.0, 4.9, 4.8, 1.0];
        assert!(skewness(&right) > 0.5);
        assert!(skewness(&left) < -0.5);
        assert!(skewness(&[1.0, 2.0, 3.0]).abs() < 1e-9);
    }

    #[test]
    fn rayleigh_fit_recovers_sigma() {
        // Deterministic Rayleigh samples via inverse CDF on a stratified grid.
        let sigma = 2.5;
        let data: Vec<f64> = (1..1000)
            .map(|i| {
                let u = i as f64 / 1000.0;
                sigma * (-2.0 * (1.0 - u).ln()).sqrt()
            })
            .collect();
        let fit = RayleighFit::fit(&data);
        assert!((fit.sigma - sigma).abs() / sigma < 0.05, "sigma {}", fit.sigma);
        // The location estimate is the sample minimum, which for this
        // stratified grid is σ·√(−2 ln 0.999) ≈ 0.112.
        assert!(fit.location.abs() < 0.15, "location {}", fit.location);
        // Median of fit close to analytic median.
        let analytic = sigma * (2.0f64 * std::f64::consts::LN_2).sqrt();
        assert!((fit.median() - analytic).abs() / analytic < 0.05);
    }

    #[test]
    fn rayleigh_pdf_properties() {
        let fit = RayleighFit { location: 1.0, sigma: 0.5 };
        assert_eq!(fit.pdf(0.5), 0.0); // below location
        assert!(fit.pdf(fit.mode()) > fit.pdf(1.1));
        assert!(fit.pdf(fit.mode()) > fit.pdf(3.0));
        assert!((fit.cdf(fit.median()) - 0.5).abs() < 1e-12);
        assert!(fit.cdf(100.0) > 0.999999);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn median_of_empty_panics() {
        median(&[]);
    }

    #[test]
    fn histogram_skips_nan_instead_of_binning_it() {
        // One NaN among clean data must not land in bin 0 and must not
        // widen the span.
        let data = [1.0, 2.0, 3.0, f64::NAN, 4.0, f64::INFINITY];
        let h = Histogram::from_data(&data, 4);
        assert_eq!(h.total(), 4);
        assert_eq!(h.skipped(), 2);
        assert_eq!(h.counts().iter().sum::<usize>(), 4);
        // Span comes from the finite values only.
        assert_eq!(h.bin_center(0), 1.0 + 0.5 * 3.0 / 4.0);
    }

    #[test]
    fn histogram_all_nan_is_a_typed_error() {
        assert_eq!(
            Histogram::try_from_data(&[f64::NAN, f64::NAN], 4),
            Err(crate::error::StatsError::NoFiniteData)
        );
        assert_eq!(Histogram::try_from_data(&[], 4), Err(crate::error::StatsError::EmptyData));
        assert_eq!(Histogram::try_from_data(&[1.0], 0), Err(crate::error::StatsError::ZeroBins));
    }

    #[test]
    fn try_variants_report_errors_instead_of_panicking() {
        use crate::error::StatsError;
        assert_eq!(try_median(&[]), Err(StatsError::EmptyData));
        assert_eq!(try_mean(&[]), Err(StatsError::EmptyData));
        assert_eq!(try_quantile(&[1.0], 1.5), Err(StatsError::InvalidQuantile));
        assert_eq!(RayleighFit::try_fit(&[]), Err(StatsError::EmptyData));
        assert_eq!(RayleighFit::try_fit(&[f64::NAN]), Err(StatsError::NoFiniteData));
        assert_eq!(try_median(&[3.0, 1.0, 2.0]), Ok(2.0));
    }

    #[test]
    fn rayleigh_fit_ignores_non_finite_samples() {
        let clean = [1.0, 1.2, 1.5, 2.0, 2.5];
        let dirty = [1.0, f64::NAN, 1.2, 1.5, f64::NEG_INFINITY, 2.0, 2.5];
        assert_eq!(RayleighFit::fit(&clean), RayleighFit::try_fit(&dirty).unwrap());
    }
}
