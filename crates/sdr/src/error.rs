//! Typed errors for the acquisition side of the receive chain.
//!
//! The paper's receiver runs against whatever a $25 RTL-SDR actually
//! delivers: captures can be empty (a dongle that never started),
//! truncated (a recording cut mid-transfer), or laced with non-finite
//! values (a parser fed a corrupt file). Every fallible entry point in
//! this crate reports one of the enums below instead of panicking, so
//! a degenerate capture degrades to a typed "no decode" rather than a
//! crash.

use std::fmt;

/// Why a capture (or the configuration used to acquire it) cannot be
/// processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureError {
    /// The capture holds no samples at all.
    Empty,
    /// The capture is shorter than the analysis window needs.
    TooShort {
        /// Minimum number of samples the operation needs.
        needed: usize,
        /// Number of samples actually present.
        got: usize,
    },
    /// Too many samples are NaN or infinite to salvage the capture.
    NonFinite {
        /// Number of non-finite samples found.
        count: usize,
        /// Total samples inspected.
        total: usize,
    },
    /// The capture's sample rate is zero, negative or non-finite.
    InvalidSampleRate,
    /// A configuration precondition does not hold (the message names
    /// the violated invariant).
    InvalidConfig(&'static str),
}

impl CaptureError {
    /// Whether a retry of the *acquisition* could plausibly clear this
    /// error. Transient conditions — a dongle that delivered nothing
    /// yet, a capture cut short mid-transfer, a corrupt stretch of
    /// samples — are retryable: the same receiver pointed at the same
    /// sensor may succeed on the next capture. Configuration errors
    /// are fatal: no amount of re-capturing fixes a zero sample rate
    /// or a violated config invariant, so a supervisor should
    /// quarantine instead of burning its restart budget.
    pub fn is_retryable(&self) -> bool {
        match self {
            CaptureError::Empty
            | CaptureError::TooShort { .. }
            | CaptureError::NonFinite { .. } => true,
            CaptureError::InvalidSampleRate | CaptureError::InvalidConfig(_) => false,
        }
    }
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::Empty => write!(f, "capture holds no samples"),
            CaptureError::TooShort { needed, got } => {
                write!(f, "capture too short: need {needed} samples, got {got}")
            }
            CaptureError::NonFinite { count, total } => {
                write!(f, "capture corrupt: {count} of {total} samples are not finite")
            }
            CaptureError::InvalidSampleRate => write!(f, "sample rate must be positive and finite"),
            CaptureError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// Why a statistic cannot be computed from the data given.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// The input slice is empty.
    EmptyData,
    /// Every input value is NaN or infinite.
    NoFiniteData,
    /// A histogram was requested with zero bins.
    ZeroBins,
    /// The quantile parameter is outside `[0, 1]`.
    InvalidQuantile,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyData => write!(f, "no data"),
            StatsError::NoFiniteData => write!(f, "no finite data"),
            StatsError::ZeroBins => write!(f, "histogram needs at least one bin"),
            StatsError::InvalidQuantile => write!(f, "quantile must be in [0, 1]"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let s = CaptureError::TooShort { needed: 256, got: 3 }.to_string();
        assert!(s.contains("256") && s.contains('3'), "{s}");
        let s = CaptureError::NonFinite { count: 7, total: 100 }.to_string();
        assert!(s.contains('7') && s.contains("100"), "{s}");
        assert!(CaptureError::InvalidConfig("bins empty").to_string().contains("bins empty"));
        assert!(StatsError::InvalidQuantile.to_string().contains("[0, 1]"));
    }

    #[test]
    fn retryable_split_is_transient_vs_config() {
        assert!(CaptureError::Empty.is_retryable());
        assert!(CaptureError::TooShort { needed: 256, got: 3 }.is_retryable());
        assert!(CaptureError::NonFinite { count: 7, total: 10 }.is_retryable());
        assert!(!CaptureError::InvalidSampleRate.is_retryable());
        assert!(!CaptureError::InvalidConfig("bins empty").is_retryable());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CaptureError::Empty, CaptureError::Empty);
        assert_ne!(
            CaptureError::TooShort { needed: 1, got: 0 },
            CaptureError::TooShort { needed: 2, got: 0 }
        );
        assert_eq!(StatsError::EmptyData, StatsError::EmptyData);
    }
}
