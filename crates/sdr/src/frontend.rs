//! Software-defined-radio receiver front-end model (RTL-SDR-like).
//!
//! The paper's receiver is an RTL-SDR v3: an 8-bit tuner dongle capped
//! at 2.4 Msps. This module models the imperfections that matter for
//! the detection algorithms: tuner frequency error (crystal ppm),
//! automatic gain normalisation, ADC quantisation, and a small DC
//! offset spur (a well-known RTL-SDR artefact).

use crate::error::CaptureError;
use crate::iq::Complex;
use crate::simd::peak_abs;

/// RTL-SDR v3 maximum reliable sample rate, samples per second (§IV-C1).
pub const RTL_SDR_MAX_SAMPLE_RATE: f64 = 2.4e6;

/// Which ppm-mixer implementation [`Frontend::digitize`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DigitizeMode {
    /// Incrementally-rotated phasor with a periodic exact re-anchor
    /// (one complex multiply per sample instead of a `cis`).
    #[default]
    Fast,
    /// Reference path: an exact `cis` per sample. Kept for parity
    /// testing and benchmarking.
    Exact,
}

/// Configuration of the receiver front end.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendConfig {
    /// Complex sample rate in samples/second.
    pub sample_rate: f64,
    /// RF centre frequency the tuner is set to, hertz.
    pub center_freq: f64,
    /// ADC resolution in bits (8 for the RTL-SDR).
    pub adc_bits: u32,
    /// Crystal frequency error in parts-per-million; shifts every
    /// received frequency by `center_freq · ppm / 1e6`.
    pub ppm_error: f64,
    /// DC offset spur amplitude relative to full scale.
    pub dc_offset: f64,
    /// Fraction of ADC full scale the AGC maps the observed signal
    /// peak to (leaving headroom avoids clipping on transients).
    pub agc_target: f64,
    /// Digitiser implementation (fast incremental mixer by default).
    pub mode: DigitizeMode,
}

impl FrontendConfig {
    /// An RTL-SDR v3 with a typical cheap-crystal error.
    pub fn rtl_sdr_v3(center_freq: f64) -> Self {
        FrontendConfig {
            sample_rate: RTL_SDR_MAX_SAMPLE_RATE,
            center_freq,
            adc_bits: 8,
            ppm_error: 1.5,
            dc_offset: 0.004,
            agc_target: 0.7,
            mode: DigitizeMode::default(),
        }
    }

    /// An idealised front end: no quantisation, no ppm error, no spur.
    pub fn ideal(sample_rate: f64, center_freq: f64) -> Self {
        FrontendConfig {
            sample_rate,
            center_freq,
            adc_bits: 64,
            ppm_error: 0.0,
            dc_offset: 0.0,
            agc_target: 1.0,
            mode: DigitizeMode::default(),
        }
    }

    /// The same front end with the reference per-sample mixer.
    pub fn exact(self) -> Self {
        FrontendConfig { mode: DigitizeMode::Exact, ..self }
    }
}

/// A finished I/Q capture: what the receiver's DSP gets to work with.
#[derive(Debug, Clone, PartialEq)]
pub struct Capture {
    /// Complex baseband samples.
    pub samples: Vec<Complex>,
    /// Sample rate in samples/second.
    pub sample_rate: f64,
    /// RF centre frequency, hertz; baseband 0 Hz corresponds to this.
    pub center_freq: f64,
}

impl Capture {
    /// Capture duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }

    /// Converts an RF frequency to its baseband offset in this capture.
    pub fn baseband(&self, rf_freq: f64) -> f64 {
        rf_freq - self.center_freq
    }
}

/// The receiver front end: applies tuner error, AGC and quantisation
/// to an ideal analog baseband signal.
#[derive(Debug, Clone)]
pub struct Frontend {
    config: FrontendConfig,
}

impl Frontend {
    /// Creates a front end with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the sample rate is not positive or `adc_bits` is zero.
    pub fn new(config: FrontendConfig) -> Self {
        assert!(config.sample_rate > 0.0, "sample rate must be positive");
        assert!(config.adc_bits > 0, "ADC must have at least one bit");
        Frontend { config }
    }

    /// Fallible variant of [`Frontend::new`]: reports a bad sample
    /// rate or zero-bit ADC as a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`CaptureError::InvalidSampleRate`] if the sample rate is not
    /// positive and finite; [`CaptureError::InvalidConfig`] if
    /// `adc_bits` is zero.
    pub fn try_new(config: FrontendConfig) -> Result<Self, CaptureError> {
        if !(config.sample_rate > 0.0 && config.sample_rate.is_finite()) {
            return Err(CaptureError::InvalidSampleRate);
        }
        if config.adc_bits == 0 {
            return Err(CaptureError::InvalidConfig("ADC must have at least one bit"));
        }
        Ok(Frontend { config })
    }

    /// The configuration this front end was built with.
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// Digitises an ideal analog complex-baseband signal into a
    /// [`Capture`], applying ppm frequency error, AGC scaling, DC
    /// offset and ADC quantisation.
    ///
    /// With [`DigitizeMode::Fast`] (the default) the ppm mixer
    /// advances an incrementally-rotated phasor, re-anchored with an
    /// exact `cis` every 64 samples; the accumulated rounding drift
    /// stays at the 1e-14 level — far below the ADC's quantisation
    /// step, so quantised captures match the reference path.
    /// Allocating wrapper around [`Frontend::digitize_into`].
    pub fn digitize(&self, analog: &[Complex]) -> Capture {
        let mut samples = Vec::new();
        self.digitize_into(analog, &mut samples);
        Capture {
            samples,
            sample_rate: self.config.sample_rate,
            center_freq: self.config.center_freq,
        }
    }

    /// [`Frontend::digitize`] into a caller-owned sample buffer
    /// (cleared and refilled; no allocation after a warm-up call at
    /// the largest size).
    ///
    /// This is the digitiser's hot form: the AGC peak scan is the
    /// lane-chunked (value-identical) [`peak_abs`], and the sample
    /// loop is the windowed core [`Frontend::digitize_window_into`]
    /// over the whole range — so whole-buffer and windowed output
    /// agree by construction.
    pub fn digitize_into(&self, analog: &[Complex], out: &mut Vec<Complex>) {
        let gain = self.agc_gain(peak_abs(analog));
        self.digitize_window_into(analog, 0, gain, out);
    }

    /// The AGC gain that maps an observed analog peak (as measured by
    /// [`peak_abs`]) to `agc_target` of ADC full scale. `peak_abs` is
    /// an order-independent max fold, so a blockwise producer can fold
    /// block peaks with `f64::max` and obtain the identical gain the
    /// whole-buffer scan computes.
    pub fn agc_gain(&self, peak: f64) -> f64 {
        self.config.agc_target / peak.max(1e-30)
    }

    /// Digitises the window of the capture beginning at absolute
    /// sample `start` (`analog` holds that window's samples) under a
    /// caller-supplied AGC `gain` — bit-identical to the same index
    /// range of [`Frontend::digitize_into`] when `gain` is the
    /// global-peak gain from [`Frontend::agc_gain`].
    ///
    /// Window invariance: the fast mixer's 64-sample re-anchor grid is
    /// defined on *absolute* indices (`n % 64 == 0`), its in-block
    /// rotator powers `step^k` are a pure function of the
    /// configuration, and the exact mixer evaluates `cis` at the
    /// absolute time `n / fs` — so the quantiser sees the same value
    /// sequence for any decomposition. A window starting mid-anchor-
    /// block simply enters the rotator table at its offset.
    ///
    /// `out` is cleared and refilled; steady-state allocation-free
    /// once warmed up at the largest block size.
    pub fn digitize_window_into(
        &self,
        analog: &[Complex],
        start: usize,
        gain: f64,
        out: &mut Vec<Complex>,
    ) {
        let cfg = &self.config;
        let df = cfg.center_freq * cfg.ppm_error / 1e6;
        // Quantisation rescales by a precomputed reciprocal — one
        // rounding difference in the last ulp versus dividing by `q`,
        // applied identically on the Fast and Exact paths so their
        // quantised outputs stay equal bit for bit.
        let quant_levels = if cfg.adc_bits >= 53 {
            None
        } else {
            let q = ((1u64 << (cfg.adc_bits - 1)) - 1) as f64;
            Some((q, 1.0 / q))
        };
        let dc = Complex::new(cfg.dc_offset, cfg.dc_offset);
        const REFRESH: usize = 64;
        let phase_step = 2.0 * std::f64::consts::PI * df / cfg.sample_rate;
        out.clear();
        out.reserve(analog.len());
        match (cfg.mode, quant_levels) {
            (DigitizeMode::Fast, quant) => {
                // In-block rotators `step^k` are precomputed once, so
                // each sample's phasor is `anchor · pw[k]` — every
                // sample independent of the previous one, instead of a
                // serial `rot *= step` chain whose complex-multiply
                // latency bounds the whole loop. The ~ulp drift of
                // `anchor · step^k` versus the running product resets
                // at each 64-sample re-anchor, exactly like the chain's
                // own drift (pinned against Exact in the tests below).
                let step = Complex::cis(phase_step);
                let mut pw = [Complex::new(1.0, 0.0); REFRESH];
                for k in 1..REFRESH {
                    pw[k] = pw[k - 1] * step;
                }
                let mut rot = [Complex::new(1.0, 0.0); REFRESH];
                let mut consumed = 0usize;
                while consumed < analog.len() {
                    // Exact re-anchor on the absolute 64-sample grid —
                    // the same `n % 64 == 0` refresh as the historical
                    // per-sample loop — then the block's phasors
                    // `anchor · step^k` materialised up front: one
                    // complex multiply per sample in the push loop.
                    let n = start + consumed;
                    let block_idx = n / REFRESH;
                    let offset = n % REFRESH;
                    let take = (REFRESH - offset).min(analog.len() - consumed);
                    let anchor = Complex::cis(phase_step * (block_idx * REFRESH) as f64);
                    for (r, &p) in rot.iter_mut().zip(&pw) {
                        *r = anchor * p;
                    }
                    let block = &analog[consumed..consumed + take];
                    let rots = &rot[offset..offset + take];
                    match quant {
                        Some((q, q_inv)) => {
                            out.extend(block.iter().zip(rots).map(|(&z, &r)| {
                                let v = (z * r).scale(gain) + dc;
                                Complex::new(
                                    (v.re.clamp(-1.0, 1.0) * q).round() * q_inv,
                                    (v.im.clamp(-1.0, 1.0) * q).round() * q_inv,
                                )
                            }));
                        }
                        None => {
                            out.extend(
                                block.iter().zip(rots).map(|(&z, &r)| (z * r).scale(gain) + dc),
                            );
                        }
                    }
                    consumed += take;
                }
            }
            (DigitizeMode::Exact, quant) => {
                let quantize = |v: Complex| match quant {
                    Some((q, q_inv)) => Complex::new(
                        (v.re.clamp(-1.0, 1.0) * q).round() * q_inv,
                        (v.im.clamp(-1.0, 1.0) * q).round() * q_inv,
                    ),
                    None => v,
                };
                out.extend(analog.iter().enumerate().map(|(k, &z)| {
                    let t = (start + k) as f64 / cfg.sample_rate;
                    let v =
                        (z * Complex::cis(2.0 * std::f64::consts::PI * df * t)).scale(gain) + dc;
                    quantize(v)
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{frequency_bin, plan_for};

    fn fft(x: &[Complex]) -> Vec<Complex> {
        let mut buf = x.to_vec();
        plan_for(buf.len()).forward(&mut buf);
        buf
    }

    fn tone(freq: f64, fs: f64, n: usize, amp: f64) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::from_polar(amp, 2.0 * std::f64::consts::PI * freq * i as f64 / fs))
            .collect()
    }

    #[test]
    fn ideal_frontend_preserves_signal_shape() {
        let fs = 1.0e6;
        let x = tone(1e5, fs, 1024, 0.3);
        let fe = Frontend::new(FrontendConfig::ideal(fs, 1e6));
        let cap = fe.digitize(&x);
        // AGC scales peak to 1.0; shape (ratio between samples) preserved.
        let k = cap.samples[10].abs() / x[10].abs();
        for (a, b) in cap.samples.iter().zip(&x) {
            assert!((a.abs() - b.abs() * k).abs() < 1e-9);
        }
    }

    #[test]
    fn quantization_limits_precision() {
        let fs = 1.0e6;
        let x = tone(1e5, fs, 4096, 1.0);
        let fe = Frontend::new(FrontendConfig {
            adc_bits: 8,
            ppm_error: 0.0,
            dc_offset: 0.0,
            ..FrontendConfig::rtl_sdr_v3(1e6)
        });
        let cap = fe.digitize(&x);
        // All values on the 127-level grid.
        for s in &cap.samples {
            let g = s.re * 127.0;
            assert!((g - g.round()).abs() < 1e-9);
        }
        // Quantisation error bounded by half an LSB.
        for (a, b) in cap.samples.iter().zip(&x) {
            assert!((a.re - b.re * 0.7).abs() <= 0.5 / 127.0 + 1e-12);
        }
    }

    #[test]
    fn quantization_raises_noise_floor_but_keeps_tone_dominant() {
        let fs = 2.4e6;
        let f = 234_375.0; // exactly bin 100 of 1024 at 2.4 Msps
        let x = tone(f, fs, 1024, 1.0);
        let fe = Frontend::new(FrontendConfig {
            ppm_error: 0.0,
            dc_offset: 0.0,
            ..FrontendConfig::rtl_sdr_v3(1.4e6)
        });
        let cap = fe.digitize(&x);
        let spec = fft(&cap.samples);
        let k = frequency_bin(f, 1024, fs);
        let tone_mag = spec[k].abs();
        let noise: f64 = spec
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != k && i != 0)
            .map(|(_, z)| z.abs())
            .fold(0.0, f64::max);
        assert!(tone_mag > 50.0 * noise, "tone {tone_mag} vs max noise {noise}");
    }

    #[test]
    fn ppm_error_shifts_the_tone() {
        let fs = 2.4e6;
        let n = 1 << 16;
        let f = 234_375.0;
        let center = 1.4e6;
        let ppm = 40.0; // exaggerated for a visible shift: 56 Hz... use bigger center error
        let x = tone(f, fs, n, 0.5);
        let fe = Frontend::new(FrontendConfig {
            ppm_error: ppm,
            dc_offset: 0.0,
            adc_bits: 62,
            ..FrontendConfig::rtl_sdr_v3(center)
        });
        let cap = fe.digitize(&x);
        let spec = fft(&cap.samples);
        let k_nominal = frequency_bin(f, n, fs);
        let expected_shift_hz = center * ppm / 1e6;
        let k_expected = frequency_bin(f + expected_shift_hz, n, fs);
        assert_ne!(k_nominal, k_expected, "test must move at least one bin");
        let mag_nom = spec[k_nominal].abs();
        let mag_exp = spec[k_expected].abs();
        assert!(mag_exp > mag_nom, "shifted bin should dominate");
    }

    #[test]
    fn dc_offset_appears_at_bin_zero() {
        let fs = 1e6;
        let x = tone(2e5, fs, 4096, 1.0);
        let fe = Frontend::new(FrontendConfig {
            dc_offset: 0.05,
            ppm_error: 0.0,
            ..FrontendConfig::rtl_sdr_v3(1e6)
        });
        let cap = fe.digitize(&x);
        let spec = fft(&cap.samples[..1024]);
        assert!(spec[0].abs() > 20.0, "DC spur missing: {}", spec[0].abs());
    }

    #[test]
    fn fast_mixer_matches_exact_reference() {
        let fs = 2.4e6;
        let x = tone(234_375.0, fs, 1 << 15, 0.8);
        // Quantised: the 8-bit grid absorbs the phasor drift entirely.
        let cfg = FrontendConfig::rtl_sdr_v3(1.4e6);
        let fast = Frontend::new(cfg.clone()).digitize(&x);
        let exact = Frontend::new(cfg.exact()).digitize(&x);
        assert_eq!(fast.samples, exact.samples);
        // Unquantised: drift stays at the rounding-noise level.
        let cfg = FrontendConfig { adc_bits: 62, ..FrontendConfig::rtl_sdr_v3(1.4e6) };
        let fast = Frontend::new(cfg.clone()).digitize(&x);
        let exact = Frontend::new(cfg.exact()).digitize(&x);
        let rms = (exact.samples.iter().map(|z| z.norm_sqr()).sum::<f64>()
            / exact.samples.len() as f64)
            .sqrt();
        let err = (fast
            .samples
            .iter()
            .zip(&exact.samples)
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum::<f64>()
            / exact.samples.len() as f64)
            .sqrt();
        assert!(err < 1e-12 * rms, "mixer drift {err} vs rms {rms}");
    }

    #[test]
    fn digitize_into_matches_digitize_and_reuses_its_buffer() {
        let fs = 2.4e6;
        let x = tone(100e3, fs, 10_000, 0.8);
        for cfg in [
            FrontendConfig::rtl_sdr_v3(1.4e6),
            FrontendConfig::rtl_sdr_v3(1.4e6).exact(),
            FrontendConfig::ideal(fs, 1.4e6),
        ] {
            let fe = Frontend::new(cfg);
            let cap = fe.digitize(&x);
            let mut out = Vec::new();
            fe.digitize_into(&x, &mut out);
            assert_eq!(out, cap.samples);
            let capacity = out.capacity();
            fe.digitize_into(&x, &mut out);
            assert_eq!(out.capacity(), capacity, "steady-state must not grow");
        }
    }

    #[test]
    fn digitize_windows_compose_bitwise_with_whole_buffer() {
        use crate::simd::peak_abs;
        let fs = 2.4e6;
        let x = tone(100e3, fs, 10_000, 0.8);
        for cfg in [
            FrontendConfig::rtl_sdr_v3(1.4e6),
            FrontendConfig::rtl_sdr_v3(1.4e6).exact(),
            FrontendConfig { adc_bits: 62, ..FrontendConfig::rtl_sdr_v3(1.4e6) },
            FrontendConfig::ideal(fs, 1.4e6),
        ] {
            let fe = Frontend::new(cfg);
            let mut whole = Vec::new();
            fe.digitize_into(&x, &mut whole);
            let gain = fe.agc_gain(peak_abs(&x));
            // Odd window lengths force windows to start mid-way through
            // the fast mixer's 64-sample anchor blocks.
            for window in [1usize, 7, 997, 4096, x.len()] {
                let mut composed = Vec::new();
                let mut block = Vec::new();
                let mut start = 0;
                while start < x.len() {
                    let len = window.min(x.len() - start);
                    fe.digitize_window_into(&x[start..start + len], start, gain, &mut block);
                    composed.extend_from_slice(&block);
                    start += len;
                }
                for (i, (a, b)) in composed.iter().zip(&whole).enumerate() {
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "window {window}: sample {i} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn capture_metadata_helpers() {
        let cap = Capture {
            samples: vec![Complex::ZERO; 2_400_000],
            sample_rate: 2.4e6,
            center_freq: 1.4e6,
        };
        assert!((cap.duration() - 1.0).abs() < 1e-12);
        assert_eq!(cap.baseband(1.4e6), 0.0);
        assert_eq!(cap.baseband(970e3), -430e3);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_sample_rate_panics() {
        Frontend::new(FrontendConfig { sample_rate: 0.0, ..FrontendConfig::ideal(1.0, 0.0) });
    }

    #[test]
    fn try_new_reports_bad_configs_instead_of_panicking() {
        use crate::error::CaptureError;
        let bad_rate = FrontendConfig { sample_rate: 0.0, ..FrontendConfig::ideal(1.0, 0.0) };
        assert_eq!(Frontend::try_new(bad_rate).unwrap_err(), CaptureError::InvalidSampleRate);
        let nan_rate = FrontendConfig { sample_rate: f64::NAN, ..FrontendConfig::ideal(1.0, 0.0) };
        assert_eq!(Frontend::try_new(nan_rate).unwrap_err(), CaptureError::InvalidSampleRate);
        let no_bits = FrontendConfig { adc_bits: 0, ..FrontendConfig::ideal(1.0, 0.0) };
        assert!(matches!(Frontend::try_new(no_bits), Err(CaptureError::InvalidConfig(_))));
        assert!(Frontend::try_new(FrontendConfig::rtl_sdr_v3(1.4e6)).is_ok());
    }
}
