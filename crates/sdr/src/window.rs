//! Analysis window functions for short-time spectral processing.

/// Window function applied to each STFT frame before the FFT.
///
/// # Examples
///
/// ```
/// use emsc_sdr::window::Window;
/// let w = Window::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0] < 1e-12);           // Hann tapers to zero at the edges
/// assert!((w[4] - 1.0).abs() < 0.1); // and peaks near the middle
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No tapering; best amplitude accuracy for bin-centred tones.
    #[default]
    Rectangular,
    /// Raised cosine; good sidelobe suppression for spectrograms.
    Hann,
    /// Hamming window; slightly narrower mainlobe than Hann.
    Hamming,
    /// Blackman window; strongest sidelobe suppression of the set.
    Blackman,
}

impl Window {
    /// Generates the `n` window coefficients.
    ///
    /// Uses the periodic (DFT-even) definition, which is the correct
    /// choice for spectral analysis with overlapping frames.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let nf = n as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / nf;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// Generates `n` *symmetric* window coefficients (denominator
    /// `n − 1`), the right definition for FIR filter design where the
    /// taps must be exactly symmetric. [`Window::coefficients`] is the
    /// periodic variant used for spectral analysis.
    pub fn symmetric_coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let denom = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = 2.0 * std::f64::consts::PI * i as f64 / denom;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// Coherent gain: the mean of the window coefficients. Dividing a
    /// windowed spectrum by `n · coherent_gain` recovers the amplitude
    /// of a bin-centred tone.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular.coefficients(16).iter().all(|&w| w == 1.0));
    }

    #[test]
    fn hann_edges_are_zero_and_symmetric() {
        let w = Window::Hann.coefficients(64);
        assert!(w[0].abs() < 1e-12);
        // periodic window: w[i] == w[n-i] for i >= 1
        for i in 1..64 {
            assert!((w[i] - w[64 - i]).abs() < 1e-12, "asymmetry at {i}");
        }
    }

    #[test]
    fn all_windows_bounded_by_unit() {
        for win in [Window::Rectangular, Window::Hann, Window::Hamming, Window::Blackman] {
            for &c in &win.coefficients(100) {
                assert!((-1e-12..=1.0 + 1e-12).contains(&c), "{win:?} produced {c}");
            }
        }
    }

    #[test]
    fn coherent_gains_match_known_values() {
        assert!((Window::Rectangular.coherent_gain(128) - 1.0).abs() < 1e-12);
        assert!((Window::Hann.coherent_gain(128) - 0.5).abs() < 1e-3);
        assert!((Window::Hamming.coherent_gain(128) - 0.54).abs() < 1e-3);
    }

    #[test]
    fn symmetric_variant_is_exactly_symmetric() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.symmetric_coefficients(51);
            for i in 0..w.len() / 2 {
                assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-12, "{win:?} at {i}");
            }
        }
        assert_eq!(Window::Hann.symmetric_coefficients(1), vec![1.0]);
    }

    #[test]
    fn zero_length_is_empty() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coherent_gain(0), 0.0);
    }
}
