//! Complex-valued (I/Q) sample type and buffers.
//!
//! Software-defined radios deliver *quadrature* samples: pairs of
//! in-phase (I) and quadrature (Q) values that together represent the
//! complex envelope of the RF signal around the tuner's centre
//! frequency. This module provides the [`Complex`] type used across
//! the whole workspace (no external complex-number crate is used).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components, used for I/Q samples,
/// FFT bins and channel coefficients.
///
/// # Examples
///
/// ```
/// use emsc_sdr::iq::Complex;
///
/// let a = Complex::new(3.0, 4.0);
/// assert_eq!(a.abs(), 5.0);
/// let rotated = a * Complex::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// assert!((rotated.re - -4.0).abs() < 1e-12);
/// assert!((rotated.im - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use emsc_sdr::iq::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::PI);
    /// assert!((z.re + 2.0).abs() < 1e-12);
    /// assert!(z.im.abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}`: a unit phasor at angle `theta` (radians).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Magnitude (absolute value) `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`, cheaper than [`Complex::abs`] as it
    /// avoids the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate `re − i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl From<(f64, f64)> for Complex {
    fn from((re, im): (f64, f64)) -> Self {
        Complex::new(re, im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn constructs_from_rectangular_and_polar() {
        let a = Complex::new(1.0, -2.0);
        assert_eq!(a.re, 1.0);
        assert_eq!(a.im, -2.0);
        let b = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(b.re.abs() < EPS);
        assert!((b.im - 2.0).abs() < EPS);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(a - a, Complex::ZERO);
        assert_eq!(-a + a, Complex::ZERO);
    }

    #[test]
    fn multiplication_matches_hand_computation() {
        // (1+2i)(3+4i) = 3+4i+6i+8i² = -5 + 10i
        let p = Complex::new(1.0, 2.0) * Complex::new(3.0, 4.0);
        assert_eq!(p, Complex::new(-5.0, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 3.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < EPS);
        assert!((q.im - a.im).abs() < EPS);
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let aa = a * a.conj();
        assert!((aa.re - 25.0).abs() < EPS && aa.im.abs() < EPS);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.7);
            assert!((z.abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn arg_quadrants() {
        assert!((Complex::new(1.0, 0.0).arg()).abs() < EPS);
        assert!((Complex::new(0.0, 1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        assert!((Complex::new(-1.0, 0.0).arg() - std::f64::consts::PI).abs() < EPS);
    }

    #[test]
    fn sum_of_unit_circle_is_zero() {
        let n = 64;
        let s: Complex =
            (0..n).map(|k| Complex::cis(2.0 * std::f64::consts::PI * k as f64 / n as f64)).sum();
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn scalar_ops() {
        let a = Complex::new(2.0, -6.0);
        assert_eq!(a * 0.5, Complex::new(1.0, -3.0));
        assert_eq!(0.5 * a, Complex::new(1.0, -3.0));
        assert_eq!(a / 2.0, Complex::new(1.0, -3.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
