//! Capture recording in the RTL-SDR interleaved-u8 format.
//!
//! `rtl_sdr -f <freq> -s 2400000 out.bin` writes unsigned 8-bit I/Q
//! pairs with a 127.5 offset. Supporting that format means the whole
//! receive pipeline in this workspace runs unchanged against *real*
//! captures from the paper's $25 dongle — the simulator and the
//! hardware meet at [`Capture`].

use std::io::{self, Read, Write};

use crate::frontend::Capture;
use crate::iq::Complex;

/// The implicit DC offset of the RTL-SDR's unsigned samples.
const U8_OFFSET: f64 = 127.5;

/// Serialises a capture as interleaved unsigned 8-bit I/Q, the
/// `rtl_sdr` wire format. Samples are clamped to `[-1, 1]` full scale.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_rtl_u8<W: Write>(capture: &Capture, mut writer: W) -> io::Result<()> {
    let mut buf = Vec::with_capacity(capture.samples.len() * 2);
    for s in &capture.samples {
        buf.push(to_u8(s.re));
        buf.push(to_u8(s.im));
    }
    writer.write_all(&buf)
}

/// Chunk size for streaming reads: big enough to amortise syscalls,
/// small enough that a multi-gigabyte capture never doubles its
/// memory footprint in an intermediate byte buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Incremental decoder for an interleaved unsigned 8-bit I/Q stream
/// (the `rtl_sdr` wire format), yielding bounded chunks of samples.
///
/// This is the resumable core of [`read_rtl_u8`]: each
/// [`RtlChunkReader::next_chunk`] call performs (at most a few) bounded
/// reads and appends the decoded samples, carrying an odd trailing byte
/// across calls so I/Q pairs may straddle chunk boundaries freely. The
/// streaming receive chain feeds these chunks straight into
/// [`crate::stream::EnergyStream`] without ever materialising the
/// capture.
#[derive(Debug)]
pub struct RtlChunkReader<R> {
    reader: R,
    buf: Vec<u8>,
    /// A pair can straddle a chunk boundary: the odd byte carries over.
    pending: Option<u8>,
    done: bool,
}

impl<R: Read> RtlChunkReader<R> {
    /// Wraps a byte source in a chunked I/Q decoder.
    pub fn new(reader: R) -> Self {
        RtlChunkReader { reader, buf: vec![0; READ_CHUNK], pending: None, done: false }
    }

    /// Decodes the next chunk of samples, appending them to `out`.
    /// Returns the number of samples appended; `0` means end of
    /// stream (a trailing odd byte is ignored, as in `rtl_sdr` dumps).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the reader (`Interrupted` reads
    /// are retried), including errors hit after earlier chunks were
    /// already decoded.
    pub fn next_chunk(&mut self, out: &mut Vec<Complex>) -> io::Result<usize> {
        if self.done {
            return Ok(0);
        }
        let before = out.len();
        loop {
            let n = match self.reader.read(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return Ok(out.len() - before);
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            let mut chunk = &self.buf[..n];
            if let Some(i) = self.pending.take() {
                out.push(Complex::new(from_u8(i), from_u8(chunk[0])));
                chunk = &chunk[1..];
            }
            for p in chunk.chunks_exact(2) {
                out.push(Complex::new(from_u8(p[0]), from_u8(p[1])));
            }
            if chunk.len() % 2 == 1 {
                self.pending = Some(chunk[chunk.len() - 1]);
            }
            // A one-byte read can complete zero samples; keep reading
            // so `0` unambiguously means end of stream.
            if out.len() > before {
                return Ok(out.len() - before);
            }
        }
    }
}

/// Reads an interleaved unsigned 8-bit I/Q stream (the `rtl_sdr` wire
/// format) into a [`Capture`]. The caller supplies the sample rate and
/// tuner frequency, which the raw format does not carry. A trailing
/// odd byte is ignored.
///
/// The stream is consumed in bounded chunks — never slurped whole — so
/// only the decoded `Vec<Complex>` itself grows with capture length,
/// and an I/O error mid-capture (a vanished USB device, a truncated
/// network read) surfaces as soon as the failing chunk is hit. For
/// incremental consumption use [`RtlChunkReader`] directly.
///
/// # Errors
///
/// Propagates any I/O error from the reader, including errors that
/// occur after some samples were already decoded.
pub fn read_rtl_u8<R: Read>(reader: R, sample_rate: f64, center_freq: f64) -> io::Result<Capture> {
    let mut chunks = RtlChunkReader::new(reader);
    let mut samples = Vec::new();
    while chunks.next_chunk(&mut samples)? > 0 {}
    Ok(Capture { samples, sample_rate, center_freq })
}

/// Classifies an I/O error from a chunked capture read
/// ([`RtlChunkReader::next_chunk`], [`read_rtl_u8`]) as retryable or
/// fatal, so a capture supervisor can apply a principled backoff
/// policy instead of treating every failure alike.
///
/// Retryable kinds are the transient, device-level failures a
/// long-running listening post sees in practice — an unplugged dongle
/// (`BrokenPipe`), a dropped USB/network transfer (`ConnectionReset`,
/// `ConnectionAborted`, `UnexpectedEof`), a slow bus (`TimedOut`,
/// `WouldBlock`, `Interrupted`): reopening the source may well
/// succeed. Everything else — a missing or unreadable spool file, bad
/// arguments, unsupported operations — is fatal: retrying cannot fix
/// it, and the session should be quarantined.
pub fn io_error_is_retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

fn to_u8(v: f64) -> u8 {
    (v.clamp(-1.0, 1.0) * U8_OFFSET + U8_OFFSET).round() as u8
}

fn from_u8(b: u8) -> f64 {
    (b as f64 - U8_OFFSET) / U8_OFFSET
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_capture() -> Capture {
        let samples = (0..1024).map(|n| Complex::from_polar(0.8, 0.05 * n as f64)).collect();
        Capture { samples, sample_rate: 2.4e6, center_freq: 1.455e6 }
    }

    #[test]
    fn round_trip_preserves_samples_to_u8_precision() {
        let cap = sample_capture();
        let mut bytes = Vec::new();
        write_rtl_u8(&cap, &mut bytes).unwrap();
        assert_eq!(bytes.len(), cap.samples.len() * 2);
        let back = read_rtl_u8(&bytes[..], cap.sample_rate, cap.center_freq).unwrap();
        assert_eq!(back.samples.len(), cap.samples.len());
        for (a, b) in back.samples.iter().zip(&cap.samples) {
            assert!((a.re - b.re).abs() <= 1.0 / U8_OFFSET);
            assert!((a.im - b.im).abs() <= 1.0 / U8_OFFSET);
        }
    }

    #[test]
    fn out_of_range_samples_clamp() {
        let cap =
            Capture { samples: vec![Complex::new(3.0, -3.0)], sample_rate: 1.0, center_freq: 0.0 };
        let mut bytes = Vec::new();
        write_rtl_u8(&cap, &mut bytes).unwrap();
        assert_eq!(bytes, vec![255, 0]);
    }

    #[test]
    fn known_byte_values() {
        assert_eq!(to_u8(0.0), 128); // 127.5 rounds up
        assert_eq!(to_u8(1.0), 255);
        assert_eq!(to_u8(-1.0), 0);
        assert!((from_u8(255) - 1.0).abs() < 1e-12);
        assert!((from_u8(0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn trailing_odd_byte_is_ignored() {
        let bytes = [128u8, 128, 200];
        let cap = read_rtl_u8(&bytes[..], 1.0, 0.0).unwrap();
        assert_eq!(cap.samples.len(), 1);
    }

    #[test]
    fn empty_stream_is_empty_capture() {
        let cap = read_rtl_u8(&[][..], 2.4e6, 1e6).unwrap();
        assert!(cap.samples.is_empty());
        assert_eq!(cap.sample_rate, 2.4e6);
    }

    /// Reader that doles out one byte per `read` call, so every I/Q
    /// pair straddles a "chunk" boundary.
    struct OneByteReader<'a>(&'a [u8]);

    impl Read for OneByteReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.0.split_first() {
                Some((&b, rest)) => {
                    buf[0] = b;
                    self.0 = rest;
                    Ok(1)
                }
                None => Ok(0),
            }
        }
    }

    #[test]
    fn pairs_straddling_chunk_boundaries_decode_correctly() {
        let cap = sample_capture();
        let mut bytes = Vec::new();
        write_rtl_u8(&cap, &mut bytes).unwrap();
        let whole = read_rtl_u8(&bytes[..], cap.sample_rate, cap.center_freq).unwrap();
        let dribbled =
            read_rtl_u8(OneByteReader(&bytes), cap.sample_rate, cap.center_freq).unwrap();
        assert_eq!(dribbled.samples, whole.samples);
    }

    /// Reader that yields some valid bytes, then fails — a USB dongle
    /// unplugged mid-capture.
    struct FailAfter {
        remaining: usize,
    }

    impl Read for FailAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.remaining == 0 {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "device vanished"));
            }
            let n = self.remaining.min(buf.len());
            buf[..n].fill(128);
            self.remaining -= n;
            Ok(n)
        }
    }

    #[test]
    fn mid_capture_io_error_surfaces() {
        let err = read_rtl_u8(FailAfter { remaining: 10 }, 2.4e6, 1e6).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(io_error_is_retryable(err.kind()), "a vanished device is worth a reconnect");
    }

    #[test]
    fn io_retryability_splits_device_faults_from_caller_bugs() {
        for kind in [
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::TimedOut,
            io::ErrorKind::Interrupted,
        ] {
            assert!(io_error_is_retryable(kind), "{kind:?} should be retryable");
        }
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::InvalidInput,
            io::ErrorKind::InvalidData,
            io::ErrorKind::Unsupported,
        ] {
            assert!(!io_error_is_retryable(kind), "{kind:?} should be fatal");
        }
    }
}
