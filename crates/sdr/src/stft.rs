//! Short-time Fourier transform and spectrogram containers.
//!
//! The paper's analyses are all spectral-over-time: Fig. 2 and Fig. 11
//! are spectrograms of the received capture, and the keylogging
//! detector (§V-C) works on non-overlapping 5 ms STFT windows. This
//! module provides a planned, windowed, overlapping STFT over complex
//! I/Q buffers and a [`Spectrogram`] type with band-extraction helpers.

use crate::fft::{frequency_bin, plan_for};
use crate::iq::Complex;
use crate::scratch::DspScratch;
use crate::window::Window;

/// Configuration for a short-time Fourier transform.
#[derive(Debug, Clone, PartialEq)]
pub struct StftConfig {
    /// FFT size per frame (power of two).
    pub fft_size: usize,
    /// Samples advanced between consecutive frames; `hop < fft_size`
    /// means overlapping frames.
    pub hop: usize,
    /// Analysis window applied to each frame.
    pub window: Window,
}

impl StftConfig {
    /// Creates a config with the given FFT size and hop.
    ///
    /// # Panics
    ///
    /// Panics if `fft_size` is not a power of two or `hop` is zero.
    pub fn new(fft_size: usize, hop: usize, window: Window) -> Self {
        assert!(fft_size.is_power_of_two(), "fft_size must be a power of two");
        assert!(hop > 0, "hop must be positive");
        StftConfig { fft_size, hop, window }
    }

    /// Non-overlapping frames (`hop == fft_size`), as used by the
    /// keylogging detector's 5 ms windows.
    pub fn non_overlapping(fft_size: usize, window: Window) -> Self {
        StftConfig::new(fft_size, fft_size, window)
    }

    /// Number of frames produced for an input of `n` samples.
    pub fn frame_count(&self, n: usize) -> usize {
        if n < self.fft_size {
            0
        } else {
            (n - self.fft_size) / self.hop + 1
        }
    }
}

/// A magnitude spectrogram: `frames × bins` matrix of `|X[k]|`.
///
/// Row `t` corresponds to the frame starting at sample `t · hop`;
/// column `k` to FFT bin `k` (complex-baseband bin convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    magnitudes: Vec<f64>,
    frames: usize,
    bins: usize,
    sample_rate: f64,
    hop: usize,
}

impl Spectrogram {
    /// Number of time frames (rows).
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Number of frequency bins per frame (columns).
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Sample rate of the analysed signal, in hertz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Time in seconds between consecutive frames.
    pub fn frame_period(&self) -> f64 {
        self.hop as f64 / self.sample_rate
    }

    /// Magnitude at frame `t`, bin `k`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= frames()` or `k >= bins()`.
    pub fn magnitude(&self, t: usize, k: usize) -> f64 {
        assert!(t < self.frames && k < self.bins, "spectrogram index out of range");
        self.magnitudes[t * self.bins + k]
    }

    /// The full row (all bins) for frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= frames()`.
    pub fn frame(&self, t: usize) -> &[f64] {
        assert!(t < self.frames, "frame index out of range");
        &self.magnitudes[t * self.bins..(t + 1) * self.bins]
    }

    /// Time series of a single bin across all frames.
    ///
    /// # Panics
    ///
    /// Panics if `k >= bins()`.
    pub fn bin_series(&self, k: usize) -> Vec<f64> {
        assert!(k < self.bins, "bin index out of range");
        (0..self.frames).map(|t| self.magnitudes[t * self.bins + k]).collect()
    }

    /// Per-frame sum of magnitudes of the bins nearest the given
    /// baseband frequencies — the multi-harmonic energy signal `Y[n]`
    /// of the paper's Eq. (1), evaluated at the STFT frame rate.
    pub fn band_energy(&self, frequencies: &[f64]) -> Vec<f64> {
        let bins: Vec<usize> =
            frequencies.iter().map(|&f| frequency_bin(f, self.bins, self.sample_rate)).collect();
        (0..self.frames)
            .map(|t| bins.iter().map(|&k| self.magnitudes[t * self.bins + k]).sum())
            .collect()
    }

    /// The bin index with the greatest total magnitude across all
    /// frames, searched over `lo..=hi` hertz — a standard peak-detection
    /// shortcut for locating the VRM spike when `f_sw` is unknown.
    pub fn dominant_bin_in(&self, lo_hz: f64, hi_hz: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for k in 0..self.bins {
            let f = crate::fft::bin_frequency(k, self.bins, self.sample_rate);
            if f < lo_hz || f > hi_hz {
                continue;
            }
            let total: f64 = (0..self.frames).map(|t| self.magnitudes[t * self.bins + k]).sum();
            if best.is_none_or(|(_, b)| total > b) {
                best = Some((k, total));
            }
        }
        best.map(|(k, _)| k)
    }

    /// Renders an ASCII-art spectrogram (time flows down, frequency
    /// rightwards over `lo..hi` hertz), for terminal demonstrations of
    /// Fig. 2 / Fig. 11.
    pub fn to_ascii(&self, lo_hz: f64, hi_hz: f64, width: usize, max_rows: usize) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let mut rows = String::new();
        let row_stride = (self.frames / max_rows.max(1)).max(1);
        let peak = self.magnitudes.iter().cloned().fold(f64::MIN, f64::max).max(1e-30);
        let mut t = 0;
        while t < self.frames {
            let frame = self.frame(t);
            for c in 0..width {
                let f = lo_hz + (hi_hz - lo_hz) * c as f64 / width.max(1) as f64;
                let k = frequency_bin(f, self.bins, self.sample_rate);
                let norm = (frame[k] / peak).clamp(0.0, 1.0);
                // log-ish compression so weak spikes remain visible
                let level = (norm.powf(0.35) * (SHADES.len() - 1) as f64).round() as usize;
                rows.push(SHADES[level.min(SHADES.len() - 1)] as char);
            }
            rows.push('\n');
            t += row_stride;
        }
        rows
    }
}

/// Computes the magnitude spectrogram of complex I/Q samples.
///
/// Frames shorter than `fft_size` at the tail are dropped, matching
/// common practice.
///
/// # Examples
///
/// ```
/// use emsc_sdr::iq::Complex;
/// use emsc_sdr::stft::{stft, StftConfig};
/// use emsc_sdr::window::Window;
///
/// let fs = 1024.0;
/// let tone: Vec<Complex> = (0..4096)
///     .map(|n| Complex::cis(2.0 * std::f64::consts::PI * 128.0 * n as f64 / fs))
///     .collect();
/// let spec = stft(&tone, fs, &StftConfig::new(256, 128, Window::Hann));
/// let peak_bin = spec.dominant_bin_in(0.0, 512.0).unwrap();
/// assert_eq!(peak_bin, 32); // 128 Hz at 4 Hz/bin
/// ```
pub fn stft(samples: &[Complex], sample_rate: f64, config: &StftConfig) -> Spectrogram {
    let n = config.fft_size;
    let frames = config.frame_count(samples.len());
    let plan = plan_for(n);
    let win = config.window.coefficients(n);
    let mut magnitudes = Vec::with_capacity(frames * n);
    let mut buf = vec![Complex::ZERO; n];
    for t in 0..frames {
        let start = t * config.hop;
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = samples[start + i].scale(win[i]);
        }
        plan.forward(&mut buf);
        magnitudes.extend(buf.iter().map(|z| z.abs()));
    }
    Spectrogram { magnitudes, frames, bins: n, sample_rate, hop: config.hop }
}

/// Magnitude spectrogram of a **real-valued** signal (an energy trace,
/// a rail voltage): same framing, windowing and bin layout as [`stft`],
/// but each frame goes through the half-size real-input FFT
/// ([`crate::fft::FftPlan::forward_real_into`]) — magnitude-only
/// consumers don't pay for a promoted complex transform. Matches
/// `stft` on the promoted signal to better than −120 dB (pinned in
/// tests).
pub fn stft_real(samples: &[f64], sample_rate: f64, config: &StftConfig) -> Spectrogram {
    let n = config.fft_size;
    let frames = config.frame_count(samples.len());
    let plan = plan_for(n);
    let win = config.window.coefficients(n);
    let mut magnitudes = Vec::with_capacity(frames * n);
    let mut scr = DspScratch::new();
    let mut frame = vec![0.0f64; n];
    let mut spec: Vec<Complex> = Vec::new();
    for t in 0..frames {
        let start = t * config.hop;
        for ((slot, &x), &w) in frame.iter_mut().zip(&samples[start..start + n]).zip(&win) {
            *slot = x * w;
        }
        plan.forward_real_into(&frame, &mut spec, &mut scr);
        magnitudes.extend(spec.iter().map(|z| z.abs()));
    }
    Spectrogram { magnitudes, frames, bins: n, sample_rate, hop: config.hop }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::cis(2.0 * std::f64::consts::PI * freq * i as f64 / fs)).collect()
    }

    #[test]
    fn frame_count_matches_definition() {
        let cfg = StftConfig::new(256, 64, Window::Rectangular);
        assert_eq!(cfg.frame_count(255), 0);
        assert_eq!(cfg.frame_count(256), 1);
        assert_eq!(cfg.frame_count(256 + 64), 2);
        assert_eq!(cfg.frame_count(256 + 63), 1);
    }

    #[test]
    fn stationary_tone_is_constant_across_frames() {
        let fs = 2048.0;
        let x = tone(256.0, fs, 8192);
        let spec = stft(&x, fs, &StftConfig::new(512, 256, Window::Rectangular));
        let k = frequency_bin(256.0, 512, fs);
        let series = spec.bin_series(k);
        let first = series[0];
        assert!(first > 100.0);
        for v in series {
            assert!((v - first).abs() / first < 1e-6);
        }
    }

    #[test]
    fn on_off_keying_visible_in_bin_series() {
        // Tone on for the first half, off for the second half.
        let fs = 2048.0;
        let mut x = tone(512.0, fs, 4096);
        for s in x.iter_mut().skip(2048) {
            *s = Complex::ZERO;
        }
        let spec = stft(&x, fs, &StftConfig::non_overlapping(256, Window::Rectangular));
        let series = spec.band_energy(&[512.0]);
        let on_avg: f64 = series[..7].iter().sum::<f64>() / 7.0;
        let off_avg: f64 = series[9..].iter().sum::<f64>() / (series.len() - 9) as f64;
        assert!(on_avg > 50.0 * (off_avg + 1e-9), "on {on_avg} vs off {off_avg}");
    }

    #[test]
    fn band_energy_sums_requested_bins() {
        let fs = 1024.0;
        let x: Vec<Complex> = (0..2048)
            .map(|n| {
                let t = n as f64 / fs;
                Complex::cis(2.0 * std::f64::consts::PI * 128.0 * t)
                    + Complex::cis(2.0 * std::f64::consts::PI * 256.0 * t)
            })
            .collect();
        let spec = stft(&x, fs, &StftConfig::non_overlapping(256, Window::Rectangular));
        let single = spec.band_energy(&[128.0]);
        let double = spec.band_energy(&[128.0, 256.0]);
        assert!(double[0] > 1.9 * single[0] * 0.99);
    }

    #[test]
    fn dominant_bin_restricted_to_range() {
        let fs = 1000.0;
        // strong tone at 100 Hz, weak at 300 Hz
        let x: Vec<Complex> = (0..4096)
            .map(|n| {
                let t = n as f64 / fs;
                Complex::cis(2.0 * std::f64::consts::PI * 100.0 * t).scale(10.0)
                    + Complex::cis(2.0 * std::f64::consts::PI * 300.0 * t)
            })
            .collect();
        let spec = stft(&x, fs, &StftConfig::non_overlapping(512, Window::Hann));
        let k_all = spec.dominant_bin_in(0.0, 500.0).unwrap();
        assert_eq!(k_all, frequency_bin(100.0, 512, fs));
        let k_hi = spec.dominant_bin_in(200.0, 400.0).unwrap();
        assert_eq!(k_hi, frequency_bin(300.0, 512, fs));
    }

    #[test]
    fn ascii_rendering_has_expected_shape() {
        let fs = 1000.0;
        let x = tone(200.0, fs, 2048);
        let spec = stft(&x, fs, &StftConfig::non_overlapping(256, Window::Hann));
        let art = spec.to_ascii(0.0, 500.0, 40, 8);
        assert!(art.lines().count() <= 9);
        assert!(art.lines().all(|l| l.len() == 40));
        // There must be at least one strong cell per row.
        assert!(art.lines().all(|l| l.contains('@') || l.contains('%')));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_fft_size_panics() {
        StftConfig::new(300, 10, Window::Hann);
    }

    #[test]
    fn real_input_stft_matches_promoted_complex_stft() {
        let fs = 1000.0;
        let x: Vec<f64> =
            (0..4096).map(|i| (0.7 * i as f64).sin() + 0.3 * (0.151 * i as f64).cos()).collect();
        let promoted: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        for cfg in [
            StftConfig::new(256, 128, Window::Hann),
            StftConfig::non_overlapping(512, Window::Rectangular),
        ] {
            let real = stft_real(&x, fs, &cfg);
            let complex = stft(&promoted, fs, &cfg);
            assert_eq!(real.frames(), complex.frames());
            assert_eq!(real.bins(), complex.bins());
            let mut err = 0.0f64;
            let mut sig = 0.0f64;
            for t in 0..real.frames() {
                for k in 0..real.bins() {
                    err += (real.magnitude(t, k) - complex.magnitude(t, k)).powi(2);
                    sig += complex.magnitude(t, k).powi(2);
                }
            }
            let db = 10.0 * (err.max(1e-300) / sig.max(1e-300)).log10();
            assert!(db <= -120.0, "stft_real divergence {db:.1} dB");
        }
    }

    #[test]
    fn frame_period_reflects_hop() {
        let fs = 2.4e6;
        let x = tone(1e5, fs, 40960);
        let spec = stft(&x, fs, &StftConfig::new(1024, 512, Window::Hann));
        assert!((spec.frame_period() - 512.0 / fs).abs() < 1e-15);
    }
}
