//! Lane-chunked reduction kernels (autovectorizable, reassociated).
//!
//! Stable Rust cannot spell SIMD intrinsics without `unsafe`, but it
//! does not need to: a reduction written as `LANES` independent
//! accumulators over `chunks_exact(LANES)` compiles to packed vector
//! code on every target this workspace builds for, because each lane's
//! dependency chain is separate. The cost is *reassociation* — the
//! floating-point sums are grouped differently from the naive
//! left-to-right fold, so results differ from the scalar reference in
//! the last few ulps.
//!
//! The crate's rule (DESIGN.md §12): kernels that feed **bit-pinned**
//! paths (the Eq. (1) energy chain, the streaming state machines)
//! keep the scalar evaluation order; kernels that feed **tolerance-
//! bounded** paths (matched-filter integrate-and-dump, AGC peak scan,
//! spectral accumulations behind their own decision thresholds) may
//! use these. Every fast kernel here has an `_exact` scalar oracle and
//! a test pinning the divergence below −120 dB.

use crate::iq::Complex;

/// Accumulator width. Four f64 lanes cover one AVX2 register and two
/// NEON registers; wider inputs still vectorize because LLVM unrolls
/// the chunk loop.
pub const LANES: usize = 4;

/// Lane-chunked sum. Reassociated relative to [`sum_exact`].
pub fn sum(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = xs.chunks_exact(LANES);
    let tail = chunks.remainder();
    for c in chunks {
        for (a, &x) in acc.iter_mut().zip(c) {
            *a += x;
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &x in tail {
        total += x;
    }
    total
}

/// Scalar left-to-right fold: the bit-exact oracle for [`sum`].
pub fn sum_exact(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

/// Lane-chunked sum of squares. Reassociated relative to
/// [`sum_sq_exact`].
pub fn sum_sq(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = xs.chunks_exact(LANES);
    let tail = chunks.remainder();
    for c in chunks {
        for (a, &x) in acc.iter_mut().zip(c) {
            *a += x * x;
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &x in tail {
        total += x * x;
    }
    total
}

/// Scalar oracle for [`sum_sq`].
pub fn sum_sq_exact(xs: &[f64]) -> f64 {
    xs.iter().map(|&x| x * x).sum()
}

/// Lane-chunked dot product over the common prefix of `a` and `b`.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let ac = a.chunks_exact(LANES);
    let bc = b.chunks_exact(LANES);
    let (at, bt) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        for ((s, &x), &y) in acc.iter_mut().zip(ca).zip(cb) {
            *s += x * y;
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&x, &y) in at.iter().zip(bt) {
        total += x * y;
    }
    total
}

/// Scalar oracle for [`dot`].
pub fn dot_exact(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Lane-chunked total complex energy `Σ |z|²`.
pub fn energy(zs: &[Complex]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = zs.chunks_exact(LANES);
    let tail = chunks.remainder();
    for c in chunks {
        for (a, z) in acc.iter_mut().zip(c) {
            *a += z.re * z.re + z.im * z.im;
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for z in tail {
        total += z.re * z.re + z.im * z.im;
    }
    total
}

/// Scalar oracle for [`energy`].
pub fn energy_exact(zs: &[Complex]) -> f64 {
    zs.iter().map(|z| z.norm_sqr()).sum()
}

/// Largest `max(|re|, |im|)` over the buffer — the AGC peak scan.
///
/// `max` is associative over the non-NaN reals and Rust's `f64::max`
/// ignores a NaN operand, so unlike the additive kernels this one is
/// *value-identical* to the scalar fold for every input.
pub fn peak_abs(zs: &[Complex]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = zs.chunks_exact(LANES);
    let tail = chunks.remainder();
    for c in chunks {
        for (a, z) in acc.iter_mut().zip(c) {
            *a = a.max(z.re.abs().max(z.im.abs()));
        }
    }
    let mut peak = acc[0].max(acc[1]).max(acc[2]).max(acc[3]);
    for z in tail {
        peak = peak.max(z.re.abs().max(z.im.abs()));
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random doubles (xorshift, no deps).
    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2_000_000) as f64 / 1_000_000.0 - 1.0
            })
            .collect()
    }

    fn db(err: f64, reference: f64) -> f64 {
        10.0 * (err.abs().max(1e-300) / reference.abs().max(1e-300)).log10()
    }

    #[test]
    fn fast_reductions_match_oracles_below_minus_120_db() {
        for n in [0, 1, 3, 4, 5, 17, 1024, 4099] {
            let xs = noise(n, 0xD5B_u64 ^ n as u64);
            let ys = noise(n, 77 + n as u64);
            let zs: Vec<Complex> = xs.iter().zip(&ys).map(|(&a, &b)| Complex::new(a, b)).collect();
            assert!(db(sum(&xs) - sum_exact(&xs), sum_exact(&xs).max(1.0)) <= -120.0);
            assert!(db(sum_sq(&xs) - sum_sq_exact(&xs), sum_sq_exact(&xs).max(1.0)) <= -120.0);
            assert!(db(dot(&xs, &ys) - dot_exact(&xs, &ys), sum_sq_exact(&xs).max(1.0)) <= -120.0);
            assert!(db(energy(&zs) - energy_exact(&zs), energy_exact(&zs).max(1.0)) <= -120.0);
        }
    }

    #[test]
    fn peak_abs_is_value_identical_to_scalar_fold() {
        for n in [0, 1, 5, 64, 1003] {
            let xs = noise(n, 3 + n as u64);
            let ys = noise(n, 9 + n as u64);
            let zs: Vec<Complex> = xs.iter().zip(&ys).map(|(&a, &b)| Complex::new(a, b)).collect();
            let scalar = zs.iter().map(|z| z.re.abs().max(z.im.abs())).fold(0.0f64, f64::max);
            assert_eq!(peak_abs(&zs), scalar, "n = {n}");
        }
    }

    #[test]
    fn peak_abs_ignores_nan_like_the_scalar_fold() {
        let mut zs = vec![Complex::new(0.5, -0.25); 9];
        zs[3] = Complex::new(f64::NAN, 0.1);
        let scalar = zs.iter().map(|z| z.re.abs().max(z.im.abs())).fold(0.0f64, f64::max);
        assert_eq!(peak_abs(&zs), scalar);
    }

    #[test]
    fn dot_truncates_to_common_prefix() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0];
        assert_eq!(dot(&a, &b), dot_exact(&a[..2], &b));
    }

    #[test]
    fn empty_inputs_reduce_to_zero() {
        assert_eq!(sum(&[]), 0.0);
        assert_eq!(sum_sq(&[]), 0.0);
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(energy(&[]), 0.0);
        assert_eq!(peak_abs(&[]), 0.0);
    }
}
