//! Incremental (chunk-fed) counterparts of the batch receive DSP.
//!
//! The paper's attack is inherently streaming: the SDR near the victim
//! produces I/Q continuously, and a practical receiver demodulates
//! while samples arrive instead of materialising a whole capture
//! first. This module provides resumable state machines that consume
//! arbitrary sample chunks and produce **bit-identical** output to the
//! batch functions they mirror:
//!
//! | Streaming type | Batch equivalent |
//! |---|---|
//! | [`EnergyStream`] | [`crate::sliding::try_energy_signal`] |
//! | [`SmoothStream`] | [`crate::dsp::moving_average`] |
//! | [`ConvolveSameStream`] | [`crate::dsp::convolve_same`] |
//! | [`StreamingFrontend`] | [`crate::record::read_rtl_u8`] + energy |
//!
//! Bit-identity is an invariant, not an aspiration: every accumulator
//! here performs the *same floating-point operations in the same
//! order* as its batch counterpart, so chunk boundaries can never
//! change a single output bit (the `emsc-tests` chunk-equivalence
//! suite pins this across chunk sizes 1, 7, 64 Ki and whole-capture).
//! That is what lets a long-running multi-sensor service reuse every
//! determinism guarantee the batch experiments already have.

use std::collections::VecDeque;
use std::io::{self, Read};

use crate::error::CaptureError;
use crate::iq::Complex;
use crate::record::RtlChunkReader;
use crate::scratch::DspScratch;
use crate::sliding::SlidingDft;

/// Incremental Eq. (1) energy signal: feeds a [`SlidingDft`] sample by
/// sample and emits one decimated energy value whenever the batch
/// [`crate::sliding::energy_signal`] would, carrying the DFT window,
/// the decimation phase and the sanitisation counters across chunk
/// boundaries.
///
/// Non-finite samples are replaced with zero *inline* (the same value
/// the batch sanitiser substitutes) and counted; whether the whole
/// stream was usable is decided at the end via
/// [`EnergyStream::classify`], because "majority non-finite" is a
/// whole-capture property that cannot be known mid-stream.
#[derive(Debug, Clone)]
pub struct EnergyStream {
    sdft: SlidingDft,
    decimation: usize,
    seen: usize,
    sanitized: usize,
    /// Reused by the blocked DFT advance (and, when a chunk contains
    /// non-finite samples, for the sanitized copy in `c1`); steady
    /// state allocates nothing.
    scratch: DspScratch,
}

impl EnergyStream {
    /// Creates a stream tracking the given bins over `window`-sample
    /// sliding DFTs, emitting every `decimation`-th primed value.
    ///
    /// # Errors
    ///
    /// [`CaptureError::InvalidConfig`] for a zero window or
    /// decimation, an empty bin set, or an out-of-range bin — the same
    /// validation [`crate::sliding::try_energy_signal`] performs
    /// before touching data.
    pub fn new(window: usize, bins: &[usize], decimation: usize) -> Result<Self, CaptureError> {
        if decimation == 0 {
            return Err(CaptureError::InvalidConfig("decimation must be positive"));
        }
        let sdft = SlidingDft::try_new(window, bins)?;
        Ok(EnergyStream { sdft, decimation, seen: 0, sanitized: 0, scratch: DspScratch::new() })
    }

    /// Feeds one chunk, appending any newly-completed energy samples
    /// to `out`. Returns how many were appended. Alloc-free apart from
    /// `out`'s amortised growth (after a warm-up chunk at the largest
    /// size; the common all-finite case runs straight off the caller's
    /// slice via the blocked [`SlidingDft::process_into`]).
    pub fn push_into(&mut self, chunk: &[Complex], out: &mut Vec<f64>) -> usize {
        let before = out.len();
        let finite = |x: &Complex| x.re.is_finite() && x.im.is_finite();
        if chunk.iter().all(finite) {
            self.sdft.process_into(chunk, self.decimation, out, &mut self.scratch);
        } else {
            let mut clean = std::mem::take(&mut self.scratch.c1);
            clean.clear();
            clean.extend(chunk.iter().map(|x| {
                if finite(x) {
                    *x
                } else {
                    self.sanitized += 1;
                    Complex::ZERO
                }
            }));
            self.sdft.process_into(&clean, self.decimation, out, &mut self.scratch);
            self.scratch.c1 = clean;
        }
        self.seen += chunk.len();
        out.len() - before
    }

    /// Convenience wrapper over [`EnergyStream::push_into`] returning
    /// a fresh vector.
    pub fn push(&mut self, chunk: &[Complex]) -> Vec<f64> {
        let mut out = Vec::new();
        self.push_into(chunk, &mut out);
        out
    }

    /// Total input samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.seen
    }

    /// Non-finite input samples zeroed so far.
    pub fn sanitized(&self) -> usize {
        self.sanitized
    }

    /// End-of-stream classification, mirroring the error policy of
    /// [`crate::sliding::try_energy_signal`] exactly (and in the same
    /// precedence order): empty, shorter than one window, or
    /// majority-non-finite streams are errors; anything else is a
    /// legitimate (possibly silent) capture.
    ///
    /// # Errors
    ///
    /// [`CaptureError::Empty`], [`CaptureError::TooShort`] or
    /// [`CaptureError::NonFinite`], as above.
    pub fn classify(&self) -> Result<(), CaptureError> {
        if self.seen == 0 {
            return Err(CaptureError::Empty);
        }
        if self.seen < self.sdft.window() {
            return Err(CaptureError::TooShort { needed: self.sdft.window(), got: self.seen });
        }
        if self.sanitized * 2 > self.seen {
            return Err(CaptureError::NonFinite { count: self.sanitized, total: self.seen });
        }
        Ok(())
    }
}

/// Incremental centred moving average, bit-identical to
/// [`crate::dsp::moving_average`].
///
/// The batch version computes prefix sums and divides windowed
/// differences; reproducing its results exactly means carrying the
/// *same running prefix accumulator* (not re-summing windows, which
/// would change floating-point rounding). Output `i` needs the prefix
/// value at `i + half + 1`, so the stream runs `half` samples behind
/// its input; [`SmoothStream::finish_into`] flushes the tail with the
/// end-of-signal clamp the batch version applies.
#[derive(Debug, Clone)]
pub struct SmoothStream {
    width: usize,
    half: usize,
    /// Running prefix value `p[seen]` and the retained tail of recent
    /// prefix values `p[seen + 1 - len ..= seen]`, enough to serve the
    /// widest window either emission path can request.
    prefix_last: f64,
    prefix_tail: VecDeque<f64>,
    seen: usize,
    emitted: usize,
}

impl SmoothStream {
    /// Creates a moving average over `width` samples. A width of zero
    /// or one is a pass-through, exactly like the batch function.
    pub fn new(width: usize) -> Self {
        let half = width / 2;
        let mut prefix_tail = VecDeque::with_capacity(2 * half + 2);
        prefix_tail.push_back(0.0);
        SmoothStream { width, half, prefix_last: 0.0, prefix_tail, seen: 0, emitted: 0 }
    }

    fn prefix_at(&self, j: usize) -> f64 {
        // prefix_tail holds p[seen + 1 - len ..= seen] back-to-front.
        let oldest = self.seen + 1 - self.prefix_tail.len();
        self.prefix_tail[j - oldest]
    }

    /// Feeds one chunk, appending completed outputs to `out`; returns
    /// how many were appended.
    pub fn push_into(&mut self, chunk: &[f64], out: &mut Vec<f64>) -> usize {
        if self.width <= 1 {
            out.extend_from_slice(chunk);
            return chunk.len();
        }
        let before = out.len();
        for &v in chunk {
            self.prefix_last += v;
            self.prefix_tail.push_back(self.prefix_last);
            if self.prefix_tail.len() > 2 * self.half + 2 {
                self.prefix_tail.pop_front();
            }
            self.seen += 1;
            // Sample j (= seen-1) completes output i = j - half: its
            // window tops out at prefix[i + half + 1] = prefix[j + 1].
            let j = self.seen - 1;
            if j >= self.half {
                let i = j - self.half;
                let lo = i.saturating_sub(self.half);
                let hi = i + self.half + 1;
                out.push((self.prefix_at(hi) - self.prefix_at(lo)) / (hi - lo) as f64);
                self.emitted += 1;
            }
        }
        out.len() - before
    }

    /// Flushes the `half` trailing outputs whose windows are clamped
    /// by the end of the signal, appending them to `out`.
    pub fn finish_into(&mut self, out: &mut Vec<f64>) -> usize {
        if self.width <= 1 {
            return 0;
        }
        let n = self.seen;
        let before = out.len();
        for i in self.emitted..n {
            let lo = i.saturating_sub(self.half);
            let hi = (i + self.half + 1).min(n);
            out.push((self.prefix_at(hi) - self.prefix_at(lo)) / (hi - lo) as f64);
        }
        self.emitted = n;
        out.len() - before
    }
}

/// Incremental "same"-size convolution, bit-identical to
/// [`crate::dsp::convolve_same`].
///
/// The batch version accumulates `out[i + j] += s[i] * k[j]` with the
/// signal index ascending, so each full-convolution output is a fold
/// over signal samples in increasing order starting from `0.0`. This
/// stream reproduces that fold directly over a ring of the last
/// `kernel.len()` inputs. Output `i` aligns with full-convolution
/// index `i + (l − 1)/2`, so emission runs `(l − 1)/2` samples behind
/// the input; [`ConvolveSameStream::finish_into`] flushes the tail.
#[derive(Debug, Clone)]
pub struct ConvolveSameStream {
    kernel: Vec<f64>,
    ring: Vec<f64>,
    start: usize,
    seen: usize,
    emitted: usize,
}

impl ConvolveSameStream {
    /// Creates a stream convolving its input with `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is empty (the receiver's edge kernel is
    /// always at least 4 taps).
    pub fn new(kernel: &[f64]) -> Self {
        assert!(!kernel.is_empty(), "kernel must not be empty");
        ConvolveSameStream {
            kernel: kernel.to_vec(),
            ring: vec![0.0; kernel.len()],
            start: (kernel.len() - 1) / 2,
            seen: 0,
            emitted: 0,
        }
    }

    /// Full-convolution output `m`, folded over retained signal
    /// samples in ascending index order — the exact operation sequence
    /// of [`crate::dsp::convolve_full`].
    fn full_at(&self, m: usize) -> f64 {
        let l = self.kernel.len();
        let lo = m.saturating_sub(l - 1);
        let hi = m.min(self.seen - 1);
        let mut acc = 0.0;
        for i in lo..=hi {
            acc += self.ring[i % l] * self.kernel[m - i];
        }
        acc
    }

    /// Feeds one chunk, appending completed outputs to `out`; returns
    /// how many were appended.
    pub fn push_into(&mut self, chunk: &[f64], out: &mut Vec<f64>) -> usize {
        let before = out.len();
        let l = self.kernel.len();
        for &v in chunk {
            self.ring[self.seen % l] = v;
            self.seen += 1;
            let j = self.seen - 1;
            if j >= self.start {
                out.push(self.full_at(j));
                self.emitted += 1;
            }
        }
        out.len() - before
    }

    /// Flushes the trailing outputs (full-convolution indices past the
    /// last input), appending them to `out`.
    pub fn finish_into(&mut self, out: &mut Vec<f64>) -> usize {
        let n = self.seen;
        let before = out.len();
        for i in self.emitted..n {
            out.push(self.full_at(i + self.start));
        }
        self.emitted = n;
        out.len() - before
    }
}

/// Chunked RTL-u8 → decimated-energy front end: drives
/// [`RtlChunkReader`] and [`EnergyStream`] together so a raw
/// `rtl_sdr` byte stream of any length becomes energy samples without
/// ever materialising the capture.
#[derive(Debug)]
pub struct StreamingFrontend<R> {
    reader: RtlChunkReader<R>,
    energy: EnergyStream,
    scratch: Vec<Complex>,
}

impl<R: Read> StreamingFrontend<R> {
    /// Creates a front end over an RTL-u8 byte source.
    ///
    /// # Errors
    ///
    /// The same configuration errors as [`EnergyStream::new`].
    pub fn new(
        reader: R,
        window: usize,
        bins: &[usize],
        decimation: usize,
    ) -> Result<Self, CaptureError> {
        Ok(StreamingFrontend {
            reader: RtlChunkReader::new(reader),
            energy: EnergyStream::new(window, bins, decimation)?,
            scratch: Vec::new(),
        })
    }

    /// Reads one chunk from the source and appends the energy samples
    /// it completes to `out`. Returns `Ok(None)` at end of stream,
    /// `Ok(Some(n))` with the number of energy samples appended
    /// otherwise (possibly zero while the DFT window primes).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader, including
    /// failures after some samples were already consumed.
    pub fn next_energy(&mut self, out: &mut Vec<f64>) -> io::Result<Option<usize>> {
        self.scratch.clear();
        if self.reader.next_chunk(&mut self.scratch)? == 0 {
            return Ok(None);
        }
        Ok(Some(self.energy.push_into(&self.scratch, out)))
    }

    /// The underlying energy stream (for counters and end-of-stream
    /// classification).
    pub fn energy_stream(&self) -> &EnergyStream {
        &self.energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsp::{convolve_same, edge_kernel, moving_average};
    use crate::record::write_rtl_u8;
    use crate::sliding::{energy_signal, try_energy_signal};
    use crate::Capture;

    fn chirpy(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Complex::new(
                    (0.013 * t).sin() + 0.2 * (0.11 * t).cos(),
                    (0.007 * t * t * 1e-3).sin(),
                )
            })
            .collect()
    }

    fn chunk_sizes() -> Vec<usize> {
        vec![1, 7, 64, 1000, usize::MAX]
    }

    #[test]
    fn energy_stream_is_bit_identical_to_batch_at_any_chunking() {
        let samples = chirpy(5000);
        let batch = energy_signal(&samples, 128, &[7, 31], 24);
        for chunk in chunk_sizes() {
            let mut stream = EnergyStream::new(128, &[7, 31], 24).unwrap();
            let mut got = Vec::new();
            for c in samples.chunks(chunk.min(samples.len())) {
                stream.push_into(c, &mut got);
            }
            assert_eq!(got.len(), batch.len(), "chunk {chunk}");
            for (i, (a, b)) in got.iter().zip(&batch).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "chunk {chunk}, sample {i}");
            }
            assert!(stream.classify().is_ok());
        }
    }

    #[test]
    fn energy_stream_sanitizes_like_the_batch_path() {
        let mut samples = chirpy(3000);
        samples[100] = Complex::new(f64::NAN, 0.0);
        samples[1700] = Complex::new(f64::INFINITY, f64::NEG_INFINITY);
        let batch = try_energy_signal(&samples, 128, &[7], 8).unwrap();
        let mut stream = EnergyStream::new(128, &[7], 8).unwrap();
        let mut got = Vec::new();
        for c in samples.chunks(17) {
            stream.push_into(c, &mut got);
        }
        assert_eq!(stream.sanitized(), batch.sanitized);
        assert_eq!(got.len(), batch.samples.len());
        for (a, b) in got.iter().zip(&batch.samples) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn energy_stream_classifies_like_the_batch_path() {
        let mut empty = EnergyStream::new(64, &[3], 1).unwrap();
        assert_eq!(empty.classify(), Err(CaptureError::Empty));
        empty.push(&chirpy(10));
        assert_eq!(empty.classify(), Err(CaptureError::TooShort { needed: 64, got: 10 }));
        let mut nan = EnergyStream::new(64, &[3], 1).unwrap();
        nan.push(&vec![Complex::new(f64::NAN, f64::NAN); 256]);
        assert_eq!(nan.classify(), Err(CaptureError::NonFinite { count: 256, total: 256 }));
        assert!(matches!(EnergyStream::new(64, &[3], 0), Err(CaptureError::InvalidConfig(_))));
        assert!(matches!(EnergyStream::new(64, &[], 1), Err(CaptureError::InvalidConfig(_))));
    }

    #[test]
    fn smooth_stream_is_bit_identical_to_batch_at_any_chunking() {
        let signal: Vec<f64> = (0..777).map(|i| ((i * 37) % 91) as f64 * 0.173 - 3.0).collect();
        for width in [0usize, 1, 2, 3, 5, 8, 900] {
            let batch = moving_average(&signal, width);
            for chunk in chunk_sizes() {
                let mut stream = SmoothStream::new(width);
                let mut got = Vec::new();
                for c in signal.chunks(chunk.min(signal.len())) {
                    stream.push_into(c, &mut got);
                }
                stream.finish_into(&mut got);
                assert_eq!(got.len(), batch.len(), "width {width}, chunk {chunk}");
                for (i, (a, b)) in got.iter().zip(&batch).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "width {width}, chunk {chunk}, out {i}");
                }
            }
        }
    }

    #[test]
    fn convolve_stream_is_bit_identical_to_batch_at_any_chunking() {
        let signal: Vec<f64> = (0..500).map(|i| ((i * 53) % 101) as f64 * 0.07 - 2.5).collect();
        for l in [2usize, 4, 16, 64] {
            let kernel = edge_kernel(l);
            let batch = convolve_same(&signal, &kernel);
            for chunk in chunk_sizes() {
                let mut stream = ConvolveSameStream::new(&kernel);
                let mut got = Vec::new();
                for c in signal.chunks(chunk.min(signal.len())) {
                    stream.push_into(c, &mut got);
                }
                stream.finish_into(&mut got);
                assert_eq!(got.len(), batch.len(), "l {l}, chunk {chunk}");
                for (i, (a, b)) in got.iter().zip(&batch).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "l {l}, chunk {chunk}, out {i}");
                }
            }
        }
    }

    #[test]
    fn convolve_stream_handles_signals_shorter_than_the_kernel() {
        let kernel = edge_kernel(16);
        for n in 0..12 {
            let signal: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let batch = convolve_same(&signal, &kernel);
            let mut stream = ConvolveSameStream::new(&kernel);
            let mut got = Vec::new();
            stream.push_into(&signal, &mut got);
            stream.finish_into(&mut got);
            assert_eq!(got.len(), batch.len(), "n {n}");
            for (a, b) in got.iter().zip(&batch) {
                assert_eq!(a.to_bits(), b.to_bits(), "n {n}");
            }
        }
    }

    #[test]
    fn streaming_frontend_matches_read_then_batch() {
        let samples = chirpy(4000);
        let cap = Capture { samples, sample_rate: 2.4e6, center_freq: 0.0 };
        let mut bytes = Vec::new();
        write_rtl_u8(&cap, &mut bytes).unwrap();
        // Batch path: read everything, then one energy_signal call.
        let read_back = crate::record::read_rtl_u8(&bytes[..], 2.4e6, 0.0).unwrap();
        let batch = energy_signal(&read_back.samples, 128, &[7], 4);
        // Streaming path: chunked byte reads feeding the energy stream.
        let mut fe = StreamingFrontend::new(&bytes[..], 128, &[7], 4).unwrap();
        let mut got = Vec::new();
        while fe.next_energy(&mut got).unwrap().is_some() {}
        assert_eq!(got.len(), batch.len());
        for (a, b) in got.iter().zip(&batch) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(fe.energy_stream().samples_seen(), read_back.samples.len());
    }
}
