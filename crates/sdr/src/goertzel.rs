//! Goertzel algorithm: single-bin DFT evaluation.
//!
//! An alternative to the sliding DFT for tracking a handful of bins:
//! where the sliding DFT updates every bin each sample (`O(|S|)` per
//! sample, every-sample output), Goertzel evaluates one bin over one
//! block with two multiplies per sample and no ring buffer — the
//! classic choice for block-wise tone detection. The `ablate_goertzel`
//! comparison in the bench harness shows when each wins.

use crate::iq::Complex;

/// Block-wise Goertzel evaluator for one DFT bin of size `n`.
#[derive(Debug, Clone)]
pub struct Goertzel {
    n: usize,
    k: usize,
    coeff: f64,
    /// `e^{+2πik/N}` — the final correction twiddle.
    twiddle: Complex,
}

impl Goertzel {
    /// Creates an evaluator for bin `k` of an `n`-point DFT.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `k >= n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n > 0, "block size must be positive");
        assert!(k < n, "bin index out of range");
        let w = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
        Goertzel { n, k, coeff: 2.0 * w.cos(), twiddle: Complex::cis(w) }
    }

    /// Block size `N`.
    pub fn block_size(&self) -> usize {
        self.n
    }

    /// Bin index `k`.
    pub fn bin(&self) -> usize {
        self.k
    }

    /// Evaluates `X[k] = Σ_m x[m]·e^{-2πikm/N}` over one block.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != N`.
    pub fn evaluate(&self, block: &[Complex]) -> Complex {
        assert_eq!(block.len(), self.n, "block length must equal N");
        // Complex input: run the real-valued recurrence on both
        // components (the recurrence is linear).
        let run = |pick: fn(&Complex) -> f64| -> (f64, f64) {
            let mut s1 = 0.0;
            let mut s2 = 0.0;
            for x in block {
                let s0 = pick(x) + self.coeff * s1 - s2;
                s2 = s1;
                s1 = s0;
            }
            (s1, s2)
        };
        let (re1, re2) = run(|x| x.re);
        let (im1, im2) = run(|x| x.im);
        // Closed form: X[k] = s1·e^{+iω} − s2 (the trailing rotation
        // e^{-iωN} is 1 because ωN = 2πk).
        let s1 = Complex::new(re1, im1);
        let s2 = Complex::new(re2, im2);
        s1 * self.twiddle - s2
    }
}

/// Per-block magnitudes of one bin across a capture: the block-wise
/// (non-overlapping) analogue of [`crate::sliding::energy_signal`].
pub fn block_energies(samples: &[Complex], n: usize, bins: &[usize]) -> Vec<f64> {
    let detectors: Vec<Goertzel> = bins.iter().map(|&k| Goertzel::new(n, k)).collect();
    samples
        .chunks_exact(n)
        .map(|block| detectors.iter().map(|g| g.evaluate(block).abs()).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::plan_for;

    fn chirp(n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::new((0.07 * i as f64).sin(), (0.013 * i as f64).cos())).collect()
    }

    #[test]
    fn matches_fft_bin_exactly() {
        let n = 64;
        let x = chirp(n);
        let mut spectrum = x.clone();
        plan_for(n).forward(&mut spectrum);
        for k in [0usize, 1, 7, 31, 63] {
            let g = Goertzel::new(n, k).evaluate(&x);
            assert!((g - spectrum[k]).abs() < 1e-9, "bin {k}: goertzel {g}, fft {}", spectrum[k]);
        }
    }

    #[test]
    fn detects_a_bin_centred_tone() {
        let n = 128;
        let k = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64))
            .collect();
        let mag = Goertzel::new(n, k).evaluate(&x).abs();
        assert!((mag - n as f64).abs() < 1e-9);
        let off = Goertzel::new(n, k + 3).evaluate(&x).abs();
        assert!(off < 1e-9);
    }

    #[test]
    fn block_energies_track_onoff_keying() {
        let n = 128;
        let k = 8;
        let mut x: Vec<Complex> = (0..n * 8)
            .map(|i| Complex::cis(2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64))
            .collect();
        for s in x.iter_mut().skip(n * 4) {
            *s = Complex::ZERO;
        }
        let e = block_energies(&x, n, &[k]);
        assert_eq!(e.len(), 8);
        for (i, &v) in e.iter().enumerate() {
            if i < 4 {
                assert!(v > 100.0, "block {i}: {v}");
            } else {
                assert!(v < 1e-9, "block {i}: {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bin index")]
    fn out_of_range_bin_panics() {
        Goertzel::new(16, 16);
    }
}
