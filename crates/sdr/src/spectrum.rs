//! Welch power-spectral-density estimation.
//!
//! Averaged, windowed periodograms — the standard way to get a stable
//! spectrum estimate out of a noisy capture, used by the
//! `spectrum_scan` example and handy for eyeballing a link budget.

use crate::fft::{bin_frequency, plan_for};
use crate::iq::Complex;
use crate::scratch::DspScratch;
use crate::window::Window;

/// A power-spectral-density estimate over FFT bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Psd {
    /// Mean power per bin (linear, |X|²/N², window-gain corrected).
    power: Vec<f64>,
    sample_rate: f64,
    /// Number of averaged segments.
    segments: usize,
}

impl Psd {
    /// Number of frequency bins.
    pub fn bins(&self) -> usize {
        self.power.len()
    }

    /// Number of segments averaged.
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Linear power at bin `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn power(&self, k: usize) -> f64 {
        self.power[k]
    }

    /// Power in decibels (relative) at bin `k`.
    pub fn power_db(&self, k: usize) -> f64 {
        10.0 * self.power[k].max(1e-300).log10()
    }

    /// Baseband frequency of bin `k`, hertz.
    pub fn frequency(&self, k: usize) -> f64 {
        bin_frequency(k, self.power.len(), self.sample_rate)
    }

    /// `(frequency, power)` pairs sorted by frequency (ascending),
    /// convenient for plotting.
    pub fn sorted_points(&self) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> =
            (0..self.bins()).map(|k| (self.frequency(k), self.power(k))).collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        pts
    }

    /// The `n` strongest peaks as `(frequency, power_db)`, each at
    /// least `min_separation_hz` apart.
    pub fn peaks(&self, n: usize, min_separation_hz: f64) -> Vec<(f64, f64)> {
        let mut order: Vec<usize> = (0..self.bins()).collect();
        order.sort_by(|&a, &b| {
            self.power[b].partial_cmp(&self.power[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut out: Vec<(f64, f64)> = Vec::new();
        for k in order {
            let f = self.frequency(k);
            if out.iter().all(|&(of, _)| (of - f).abs() >= min_separation_hz) {
                out.push((f, self.power_db(k)));
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }
}

/// Welch's method: split `samples` into 50 %-overlapped segments of
/// `fft_size`, window each, and average the periodograms.
///
/// # Panics
///
/// Panics if `fft_size` is not a power of two or the capture is
/// shorter than one segment.
pub fn welch_psd(samples: &[Complex], sample_rate: f64, fft_size: usize, window: Window) -> Psd {
    assert!(fft_size.is_power_of_two(), "fft_size must be a power of two");
    assert!(samples.len() >= fft_size, "capture shorter than one segment");
    let hop = fft_size / 2;
    let plan = plan_for(fft_size);
    let win = window.coefficients(fft_size);
    let win_power: f64 = win.iter().map(|w| w * w).sum::<f64>() / fft_size as f64;
    let mut acc = vec![0.0f64; fft_size];
    let mut segments = 0;
    let mut start = 0;
    let mut buf = vec![Complex::ZERO; fft_size];
    while start + fft_size <= samples.len() {
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = samples[start + i].scale(win[i]);
        }
        plan.forward(&mut buf);
        for (a, z) in acc.iter_mut().zip(&buf) {
            *a += z.norm_sqr();
        }
        segments += 1;
        start += hop;
    }
    let norm = (segments as f64) * (fft_size as f64).powi(2) * win_power;
    for a in &mut acc {
        *a /= norm;
    }
    Psd { power: acc, sample_rate, segments }
}

/// Welch's method for **real-valued** signals (an energy trace, a VRM
/// rail voltage, an audio-rate dump): same segmentation, windowing and
/// normalisation as [`welch_psd`], but each segment goes through the
/// half-size real-input FFT ([`crate::fft::FftPlan::forward_real_into`])
/// instead of a promoted complex transform — roughly half the
/// butterfly work for a spectrum that is conjugate-symmetric anyway.
///
/// Matches `welch_psd` on the promoted complex signal to better than
/// −120 dB (pinned in tests); the per-bin layout (including the
/// redundant upper half) is identical so every [`Psd`] helper behaves
/// the same.
///
/// # Panics
///
/// Panics if `fft_size` is not a power of two or the capture is
/// shorter than one segment.
pub fn welch_psd_real(samples: &[f64], sample_rate: f64, fft_size: usize, window: Window) -> Psd {
    assert!(fft_size.is_power_of_two(), "fft_size must be a power of two");
    assert!(samples.len() >= fft_size, "capture shorter than one segment");
    let hop = fft_size / 2;
    let plan = plan_for(fft_size);
    let win = window.coefficients(fft_size);
    let win_power: f64 = win.iter().map(|w| w * w).sum::<f64>() / fft_size as f64;
    let mut acc = vec![0.0f64; fft_size];
    let mut segments = 0;
    let mut start = 0;
    let mut scr = DspScratch::new();
    let mut frame = vec![0.0f64; fft_size];
    let mut spec: Vec<Complex> = Vec::new();
    while start + fft_size <= samples.len() {
        for ((slot, &x), &w) in frame.iter_mut().zip(&samples[start..start + fft_size]).zip(&win) {
            *slot = x * w;
        }
        plan.forward_real_into(&frame, &mut spec, &mut scr);
        for (a, z) in acc.iter_mut().zip(&spec) {
            *a += z.norm_sqr();
        }
        segments += 1;
        start += hop;
    }
    let norm = (segments as f64) * (fft_size as f64).powi(2) * win_power;
    for a in &mut acc {
        *a /= norm;
    }
    Psd { power: acc, sample_rate, segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::frequency_bin;

    fn tone(f: f64, fs: f64, amp: f64, n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::from_polar(amp, 2.0 * std::f64::consts::PI * f * i as f64 / fs))
            .collect()
    }

    #[test]
    fn tone_power_is_estimated_correctly() {
        let fs = 1024.0;
        // Bin-centred tone, amplitude 2 ⇒ power 4.
        let x = tone(128.0, fs, 2.0, 8192);
        let psd = welch_psd(&x, fs, 256, Window::Rectangular);
        let k = frequency_bin(128.0, 256, fs);
        assert!((psd.power(k) - 4.0).abs() < 0.05, "power {}", psd.power(k));
        assert!(psd.segments() > 10);
    }

    #[test]
    fn averaging_reduces_noise_variance() {
        // Deterministic pseudo-noise; more segments → smoother floor.
        let mut state = 1u64;
        let mut noise = |_: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Complex::new(
                (state % 1000) as f64 / 1000.0 - 0.5,
                ((state >> 10) % 1000) as f64 / 1000.0 - 0.5,
            )
        };
        let x: Vec<Complex> = (0..65_536).map(&mut noise).collect();
        let psd_short = welch_psd(&x[..1024], 1.0, 256, Window::Hann);
        let psd_long = welch_psd(&x, 1.0, 256, Window::Hann);
        let spread = |p: &Psd| {
            let vals: Vec<f64> = (0..p.bins()).map(|k| p.power(k)).collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f64>().sqrt() / m
        };
        assert!(spread(&psd_long) < 0.5 * spread(&psd_short));
    }

    #[test]
    fn peaks_finds_separated_tones() {
        let fs = 1000.0;
        let n = 16384;
        let mut x = tone(100.0, fs, 3.0, n);
        let weak = tone(-220.0, fs, 1.0, n);
        for (a, b) in x.iter_mut().zip(&weak) {
            *a += *b;
        }
        let psd = welch_psd(&x, fs, 512, Window::Hann);
        let peaks = psd.peaks(2, 50.0);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].0 - 100.0).abs() < 3.0, "strongest at {}", peaks[0].0);
        assert!((peaks[1].0 + 220.0).abs() < 3.0, "second at {}", peaks[1].0);
        assert!(peaks[0].1 > peaks[1].1);
    }

    #[test]
    fn sorted_points_are_ascending() {
        let x = tone(10.0, 100.0, 1.0, 2048);
        let psd = welch_psd(&x, 100.0, 128, Window::Hann);
        let pts = psd.sorted_points();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(pts.len(), 128);
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn short_capture_panics() {
        welch_psd(&[Complex::ZERO; 100], 1.0, 256, Window::Hann);
    }

    #[test]
    fn real_input_path_matches_promoted_complex_path() {
        // Deterministic real "trace": a couple of tones plus pseudo-noise.
        let mut state = 0x9e37u64;
        let x: Vec<f64> = (0..8192)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let noise = (state % 1000) as f64 / 1000.0 - 0.5;
                (0.031 * i as f64).sin() + 0.4 * (0.27 * i as f64).cos() + 0.1 * noise
            })
            .collect();
        let promoted: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        for window in [Window::Rectangular, Window::Hann, Window::Blackman] {
            let real = welch_psd_real(&x, 1.0, 256, window);
            let complex = welch_psd(&promoted, 1.0, 256, window);
            assert_eq!(real.segments(), complex.segments());
            assert_eq!(real.bins(), complex.bins());
            let total: f64 = (0..complex.bins()).map(|k| complex.power(k)).sum();
            for k in 0..complex.bins() {
                let err = (real.power(k) - complex.power(k)).abs();
                assert!(
                    err <= 1e-12 * total,
                    "bin {k}: real {} vs complex {}",
                    real.power(k),
                    complex.power(k)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "shorter")]
    fn short_real_capture_panics() {
        welch_psd_real(&[0.0; 100], 1.0, 256, Window::Hann);
    }
}
