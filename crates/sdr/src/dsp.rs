//! Real-valued DSP helpers: convolution, smoothing, peak detection.
//!
//! These are the building blocks of the paper's receiver: the edge
//! detector (§IV-B2) convolves the energy signal with a `[+1 … +1,
//! −1 … −1]` kernel to mimic a derivative, then takes local maxima of
//! the result as bit-start points.
//!
//! The convolution kernels here sit on **bit-pinned** paths (the
//! streaming `ConvolveStream` equivalence suite and the receiver's
//! edge chain), so their rewrites are restructure-only: the `_into`
//! variants reuse caller buffers and drop per-element bounds checks,
//! but every output accumulates its terms in the historical order and
//! is bit-identical to the original implementation (DESIGN.md §12).

use crate::scratch::{reset_f64, DspScratch};

/// Full linear convolution of `signal` with `kernel`
/// (output length `signal.len() + kernel.len() - 1`).
/// Allocating wrapper around [`convolve_full_into`].
pub fn convolve_full(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    convolve_full_into(signal, kernel, &mut out);
    out
}

/// [`convolve_full`] into a caller-owned buffer (cleared and
/// refilled; no allocation after a warm-up call at the largest size).
///
/// Scatter form: for each input sample the kernel is swept across a
/// contiguous output slice — an axpy the compiler vectorizes — and
/// each output still receives its `signal[i]·kernel[j]` terms in
/// ascending-`i` order, so results are bit-identical to the historical
/// nested-index loop.
pub fn convolve_full_into(signal: &[f64], kernel: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if signal.is_empty() || kernel.is_empty() {
        return;
    }
    let n = signal.len() + kernel.len() - 1;
    out.resize(n, 0.0);
    for (i, &s) in signal.iter().enumerate() {
        for (o, &r) in out[i..i + kernel.len()].iter_mut().zip(kernel) {
            *o += s * r;
        }
    }
}

/// "Same"-size convolution: the centre `signal.len()` samples of the
/// full convolution, so output index `i` aligns with input index `i`.
/// Allocating wrapper around [`convolve_same_into`].
///
/// Alignment convention for **even-length** kernels (which have no
/// centre tap): output index `i` is full-convolution index
/// `i + (k − 1)/2` with flooring division, i.e. the kernel's notional
/// centre sits half a sample *early* — the same convention as NumPy's
/// `convolve(…, 'same')`. This is deliberate, not an off-by-one: for
/// the always-even [`edge_kernel`] it places the response peak of a
/// rising step *exactly at the step index* (a step at sample `s`
/// peaks at full index `s + l/2 − 1`, and `start = l/2 − 1` maps that
/// back to `s`), so bit-start estimates are not biased late. Centring
/// on `k/2` instead would report every edge one sample early.
pub fn convolve_same(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    convolve_same_into(signal, kernel, &mut out, &mut DspScratch::new());
    out
}

/// [`convolve_same`] into a caller-owned buffer. The full convolution
/// is staged in `scratch.f0`; bit-identical to the allocating path.
pub fn convolve_same_into(
    signal: &[f64],
    kernel: &[f64],
    out: &mut Vec<f64>,
    scr: &mut DspScratch,
) {
    out.clear();
    if signal.is_empty() || kernel.is_empty() {
        out.resize(signal.len(), 0.0);
        return;
    }
    let mut full = std::mem::take(&mut scr.f0);
    convolve_full_into(signal, kernel, &mut full);
    let start = (kernel.len() - 1) / 2;
    out.extend_from_slice(&full[start..start + signal.len()]);
    scr.f0 = full;
}

/// The paper's derivative-mimicking kernel: `l/2` ones followed by
/// `l/2` minus-ones. Convolving with it produces a peak wherever the
/// signal steps upward (the start-of-bit edge).
///
/// Note on orientation: convolution flips the kernel, so to score
/// "recent samples high, older samples low" (a rising edge) the
/// *leading* half holds `+1`.
///
/// # Panics
///
/// Panics if `l` is zero or odd.
pub fn edge_kernel(l: usize) -> Vec<f64> {
    assert!(l > 0 && l.is_multiple_of(2), "edge kernel length must be positive and even");
    let mut k = vec![1.0; l];
    for v in k.iter_mut().take(l / 2) {
        *v = -1.0;
    }
    // After convolution's flip, the -1 half applies to newer samples'
    // past and +1 to the recent rise. We build [-1…,+1…] so that the
    // flipped kernel is [+1…,-1…] over (past → present).
    k.reverse();
    k
}

/// Simple moving average over a centred window of `width` samples
/// (edges use the available partial window). Allocating wrapper around
/// [`moving_average_into`].
pub fn moving_average(signal: &[f64], width: usize) -> Vec<f64> {
    let mut out = Vec::new();
    moving_average_into(signal, width, &mut out, &mut DspScratch::new());
    out
}

/// [`moving_average`] into a caller-owned buffer. The prefix-sum table
/// is staged in `scratch.f0`; bit-identical to the allocating path.
pub fn moving_average_into(signal: &[f64], width: usize, out: &mut Vec<f64>, scr: &mut DspScratch) {
    out.clear();
    if width <= 1 || signal.is_empty() {
        out.extend_from_slice(signal);
        return;
    }
    let half = width / 2;
    // prefix sums for O(n)
    reset_f64(&mut scr.f0, signal.len() + 1);
    let prefix = &mut scr.f0;
    let mut running = 0.0;
    for (slot, &v) in prefix[1..].iter_mut().zip(signal) {
        running += v;
        *slot = running;
    }
    out.reserve(signal.len());
    for i in 0..signal.len() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(signal.len());
        out.push((prefix[hi] - prefix[lo]) / (hi - lo) as f64);
    }
}

/// A detected local maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the maximum.
    pub index: usize,
    /// Signal value at the maximum.
    pub value: f64,
}

/// Finds local maxima of `signal` that are at least `min_height` tall,
/// enforcing a minimum spacing of `min_distance` samples between
/// retained peaks (taller peaks win).
///
/// A flat-topped maximum (a plateau, e.g. `[1, 5, 5, 5, 1]`) is
/// reported once, at the **centre** of the plateau — reporting the
/// first or last plateau sample would bias bit-start estimates early
/// or late whenever quantisation flattens an edge-response peak.
pub fn find_peaks(signal: &[f64], min_height: f64, min_distance: usize) -> Vec<Peak> {
    let mut candidates = Vec::new();
    let n = signal.len();
    let mut i = 1;
    while i < n.saturating_sub(1) {
        // A candidate plateau starts where the signal stops falling:
        // signal[i] >= signal[i-1], and runs while values stay equal.
        if signal[i] >= min_height && signal[i] >= signal[i - 1] {
            let mut j = i;
            while j + 1 < n && signal[j + 1] == signal[i] {
                j += 1;
            }
            // Interior maximum only: the plateau must be followed by a
            // strict drop (a plateau running to the last sample is an
            // edge, not a peak — same as before).
            if j + 1 < n && signal[j + 1] < signal[i] {
                candidates.push(Peak { index: i + (j - i) / 2, value: signal[i] });
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    if min_distance <= 1 {
        return candidates;
    }
    // Greedy suppression: keep taller peaks, drop neighbours within
    // min_distance of an already-kept peak.
    // `total_cmp` keeps the sort total even if a non-finite value ever
    // slips through the threshold test (NaN can't — `NaN >= h` is
    // false — but +inf can), matching the panic-free policy.
    let mut by_height: Vec<usize> = (0..candidates.len()).collect();
    by_height.sort_by(|&a, &b| candidates[b].value.total_cmp(&candidates[a].value));
    let mut keep = vec![true; candidates.len()];
    for &i in &by_height {
        if !keep[i] {
            continue;
        }
        for (j, k) in keep.iter_mut().enumerate() {
            if j != i
                && *k
                && candidates[j].index.abs_diff(candidates[i].index) < min_distance
                && candidates[j].value <= candidates[i].value
            {
                *k = false;
            }
        }
    }
    candidates.into_iter().zip(keep).filter_map(|(p, k)| k.then_some(p)).collect()
}

/// Scales `signal` so its maximum absolute value is 1 (no-op for an
/// all-zero signal). Returns the scale factor applied.
pub fn normalize_peak(signal: &mut [f64]) -> f64 {
    let peak = signal.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if peak > 0.0 {
        for v in signal.iter_mut() {
            *v /= peak;
        }
        1.0 / peak
    } else {
        1.0
    }
}

/// Keeps every `factor`-th sample, starting with the first.
/// Allocating wrapper around [`decimate_into`].
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn decimate(signal: &[f64], factor: usize) -> Vec<f64> {
    let mut out = Vec::new();
    decimate_into(signal, factor, &mut out);
    out
}

/// The workspace's one stride-take kernel: keeps every `factor`-th
/// element, starting with the first, into a caller-owned buffer.
///
/// This is the single home of plain downsampling; the filtering
/// counterpart, `Fir::decimate_into`, no longer materialises and
/// stride-takes a full filtered signal — it computes only the kept
/// outputs directly — so the historical duplicate of this loop there
/// is gone.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn decimate_into<T: Copy>(signal: &[T], factor: usize, out: &mut Vec<T>) {
    assert!(factor > 0, "decimation factor must be positive");
    out.clear();
    out.reserve(signal.len().div_ceil(factor));
    out.extend(signal.iter().step_by(factor).copied());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolution_with_identity_kernel() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(convolve_full(&x, &[1.0]), x.to_vec());
        assert_eq!(convolve_same(&x, &[1.0]), x.to_vec());
    }

    #[test]
    fn convolution_known_answer() {
        // [1,2,3] * [1,1] = [1,3,5,3]
        assert_eq!(convolve_full(&[1.0, 2.0, 3.0], &[1.0, 1.0]), vec![1.0, 3.0, 5.0, 3.0]);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = [1.0, -2.0, 0.5, 3.0];
        let b = [0.25, 4.0, -1.0];
        assert_eq!(convolve_full(&a, &b), convolve_full(&b, &a));
    }

    #[test]
    fn edge_kernel_peaks_on_rising_step() {
        // Step from 0 to 1 at index 50.
        let mut x = vec![0.0; 100];
        for v in x.iter_mut().skip(50) {
            *v = 1.0;
        }
        let response = convolve_same(&x, &edge_kernel(16));
        let peak = find_peaks(&response, 1.0, 4);
        assert_eq!(peak.len(), 1);
        assert!(peak[0].index.abs_diff(50) <= 8, "peak at {}", peak[0].index);
        assert!((peak[0].value - 8.0).abs() < 1e-9); // l/2 · step height
    }

    #[test]
    fn edge_kernel_ignores_falling_step() {
        let mut x = vec![1.0; 100];
        for v in x.iter_mut().skip(50) {
            *v = 0.0;
        }
        let response = convolve_same(&x, &edge_kernel(16));
        assert!(find_peaks(&response, 1.0, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_edge_kernel_panics() {
        edge_kernel(7);
    }

    #[test]
    fn even_kernel_alignment_pins_step_response_at_step_index() {
        // Pin the documented convention: for every even edge-kernel
        // length, the 'same'-mode response to a clean step peaks at
        // exactly the step index — no late (or early) bias.
        for l in [2usize, 4, 8, 16, 32] {
            let step_at = 40;
            let mut x = vec![0.0; 100];
            for v in x.iter_mut().skip(step_at) {
                *v = 1.0;
            }
            let response = convolve_same(&x, &edge_kernel(l));
            let argmax = response
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(argmax, step_at, "kernel length {l}");
        }
    }

    #[test]
    fn find_peaks_is_nan_and_inf_safe() {
        // NaN samples can never clear the threshold; an +inf sample
        // may, and the suppression sort must stay total either way.
        let x = [0.0, 3.0, 0.0, f64::NAN, 0.0, f64::INFINITY, 0.0, 2.0, 0.0];
        let peaks = find_peaks(&x, 0.5, 3);
        assert!(peaks.iter().all(|p| !p.value.is_nan()));
        assert!(peaks.iter().any(|p| p.index == 5));
    }

    #[test]
    fn plateau_peak_reports_centre() {
        // [0,1,5,5,5,1,0]: the plateau spans indices 2..=4 — the
        // reported peak must be the centre sample, index 3.
        let x = [0.0, 1.0, 5.0, 5.0, 5.0, 1.0, 0.0];
        let peaks = find_peaks(&x, 0.5, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 3);
        assert_eq!(peaks[0].value, 5.0);
        // Even-length plateau: centre rounds down (index 2 of 2..=3).
        let y = [0.0, 5.0, 5.0, 0.0];
        let peaks = find_peaks(&y, 0.5, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 1);
    }

    #[test]
    fn moving_average_smooths_noise() {
        let x: Vec<f64> = (0..200).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let y = moving_average(&x, 10);
        assert!(y[100].abs() < 0.21);
    }

    #[test]
    fn moving_average_preserves_constant() {
        let x = vec![3.5; 64];
        for v in moving_average(&x, 9) {
            assert!((v - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn peaks_respect_min_distance() {
        // Two nearby bumps: only the taller survives.
        let mut x = vec![0.0; 64];
        x[20] = 2.0;
        x[24] = 5.0;
        x[50] = 3.0;
        let peaks = find_peaks(&x, 0.5, 10);
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![24, 50]);
    }

    #[test]
    fn peaks_respect_min_height() {
        let mut x = vec![0.0; 32];
        x[5] = 0.4;
        x[15] = 2.0;
        let peaks = find_peaks(&x, 1.0, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 15);
    }

    #[test]
    fn plateau_counts_once() {
        // Flat-topped bump: >= on the left, > on the right keeps the
        // first sample of the plateau only.
        let x = [0.0, 1.0, 1.0, 1.0, 0.0];
        let peaks = find_peaks(&x, 0.5, 1);
        assert_eq!(peaks.len(), 1);
    }

    #[test]
    fn normalize_peak_scales_to_unit() {
        let mut x = vec![0.0, -4.0, 2.0];
        let k = normalize_peak(&mut x);
        assert_eq!(x, vec![0.0, -1.0, 0.5]);
        assert_eq!(k, 0.25);
        let mut zeros = vec![0.0; 3];
        assert_eq!(normalize_peak(&mut zeros), 1.0);
    }

    #[test]
    fn decimate_keeps_every_kth() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(decimate(&x, 3), vec![0.0, 3.0, 6.0, 9.0]);
        assert_eq!(decimate(&x, 1), x);
    }

    #[test]
    fn into_variants_are_bit_identical_and_reuse_buffers() {
        let x: Vec<f64> = (0..300).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let k = edge_kernel(16);
        let mut out = Vec::new();
        let mut scr = DspScratch::new();
        convolve_full_into(&x, &k, &mut out);
        assert_eq!(out, convolve_full(&x, &k));
        convolve_same_into(&x, &k, &mut out, &mut scr);
        assert_eq!(out, convolve_same(&x, &k));
        moving_average_into(&x, 9, &mut out, &mut scr);
        assert_eq!(out, moving_average(&x, 9));
        let caps = (out.capacity(), scr.f0.capacity());
        convolve_same_into(&x, &k, &mut out, &mut scr);
        moving_average_into(&x, 9, &mut out, &mut scr);
        assert_eq!(caps, (out.capacity(), scr.f0.capacity()), "steady-state must not grow");
    }

    #[test]
    fn moving_average_handles_empty_and_single_sample_inputs() {
        assert!(moving_average(&[], 5).is_empty());
        assert!(moving_average(&[], 0).is_empty());
        // A single sample is its own centred average at any width.
        assert_eq!(moving_average(&[7.25], 1), vec![7.25]);
        assert_eq!(moving_average(&[7.25], 2), vec![7.25]);
        assert_eq!(moving_average(&[7.25], 99), vec![7.25]);
        // Width larger than the signal degrades to the global mean.
        assert_eq!(moving_average(&[1.0, 3.0], 100), vec![2.0, 2.0]);
    }

    #[test]
    fn normalize_peak_handles_empty_and_single_sample_inputs() {
        let mut empty: Vec<f64> = Vec::new();
        assert_eq!(normalize_peak(&mut empty), 1.0);
        assert!(empty.is_empty());
        let mut one = vec![-0.5];
        assert_eq!(normalize_peak(&mut one), 2.0);
        assert_eq!(one, vec![-1.0]);
        let mut zero = vec![0.0];
        assert_eq!(normalize_peak(&mut zero), 1.0);
        assert_eq!(zero, vec![0.0]);
    }

    #[test]
    fn convolve_same_empty_inputs_keep_signal_length() {
        assert!(convolve_same(&[], &[1.0, 2.0]).is_empty());
        assert_eq!(convolve_same(&[1.0, 2.0, 3.0], &[]), vec![0.0; 3]);
        assert!(convolve_full(&[], &[1.0]).is_empty());
        assert!(convolve_full(&[1.0], &[]).is_empty());
    }
}
