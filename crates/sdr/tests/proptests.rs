//! Property-based tests for the DSP substrate.

use emsc_sdr::dsp::{convolve_full, decimate, moving_average};
use emsc_sdr::fft::{plan_for, FftPlan};
use emsc_sdr::fir::Fir;
use emsc_sdr::goertzel::Goertzel;
use emsc_sdr::iq::Complex;
use emsc_sdr::sliding::SlidingDft;
use emsc_sdr::stats::{mean, median, quantile, Histogram};
use emsc_sdr::window::Window;
use proptest::prelude::*;

/// Out-of-place transforms over the cached plan (the free `fft`/`ifft`
/// helpers are deprecated in favour of plan reuse).
fn fft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    plan_for(x.len()).forward(&mut buf);
    buf
}

fn ifft(x: &[Complex]) -> Vec<Complex> {
    let mut buf = x.to_vec();
    plan_for(x.len()).inverse(&mut buf);
    buf
}

fn complex_vec(len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(
        (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im)),
        len..=len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trip_is_identity(x in complex_vec(64)) {
        let y = ifft(&fft(&x));
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_holds(x in complex_vec(128)) {
        let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq: f64 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        let scale = time.max(1.0);
        prop_assert!((time - freq).abs() / scale < 1e-9);
    }

    #[test]
    fn fft_is_linear(a in complex_vec(32), b in complex_vec(32), k in -10.0f64..10.0) {
        let lhs: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(k)).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let f_lhs = fft(&lhs);
        for i in 0..32 {
            let expect = fa[i] + fb[i].scale(k);
            prop_assert!((f_lhs[i] - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn plan_and_oneshot_agree(x in complex_vec(256)) {
        let plan = FftPlan::new(256);
        let mut buf = x.clone();
        plan.forward(&mut buf);
        let oneshot = fft(&x);
        for (a, b) in buf.iter().zip(&oneshot) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn sliding_dft_matches_direct(x in complex_vec(200), k in 0usize..32) {
        let window = 32;
        let mut sdft = SlidingDft::new(window, &[k]);
        for (n, &s) in x.iter().enumerate() {
            sdft.push(s);
            if n + 1 >= window && n % 37 == 0 {
                let start = n + 1 - window;
                let mut direct = Complex::ZERO;
                for m in 0..window {
                    direct += x[start + m]
                        * Complex::cis(-2.0 * std::f64::consts::PI * (k * m) as f64 / window as f64);
                }
                prop_assert!((sdft.values()[0] - direct).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn convolution_is_commutative(
        a in prop::collection::vec(-100.0f64..100.0, 1..20),
        b in prop::collection::vec(-100.0f64..100.0, 1..20),
    ) {
        let ab = convolve_full(&a, &b);
        let ba = convolve_full(&b, &a);
        prop_assert_eq!(ab.len(), ba.len());
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn convolution_length_is_sum_minus_one(
        a in prop::collection::vec(-1.0f64..1.0, 1..50),
        b in prop::collection::vec(-1.0f64..1.0, 1..50),
    ) {
        prop_assert_eq!(convolve_full(&a, &b).len(), a.len() + b.len() - 1);
    }

    #[test]
    fn moving_average_preserves_mean_range(
        x in prop::collection::vec(-1e3f64..1e3, 2..100),
        w in 1usize..20,
    ) {
        let y = moving_average(&x, w);
        prop_assert_eq!(y.len(), x.len());
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &v in &y {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn goertzel_matches_fft_for_any_bin(x in complex_vec(64), k in 0usize..64) {
        let spectrum = fft(&x);
        let g = Goertzel::new(64, k).evaluate(&x);
        prop_assert!((g - spectrum[k]).abs() < 1e-6 * (1.0 + spectrum[k].abs()));
    }

    #[test]
    fn fir_taps_sum_to_one_and_are_symmetric(
        taps_half in 2usize..40,
        cutoff in 0.02f64..0.45,
    ) {
        let taps = taps_half * 2 + 1;
        let fir = Fir::low_pass(taps, cutoff, Window::Hamming);
        let sum: f64 = fir.taps().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        let t = fir.taps();
        for i in 0..t.len() / 2 {
            prop_assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-9);
        }
        // Monotone-ish response: DC ≥ cutoff-frequency ≥ near-Nyquist.
        let dc = fir.response_at(0.0);
        let ny = fir.response_at(0.499);
        prop_assert!(dc > ny);
    }

    #[test]
    fn quantiles_are_monotone(x in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let q1 = quantile(&x, 0.1);
        let q5 = quantile(&x, 0.5);
        let q9 = quantile(&x, 0.9);
        prop_assert!(q1 <= q5 && q5 <= q9);
        prop_assert_eq!(median(&x), q5);
        // Median between min and max, mean too.
        let lo = quantile(&x, 0.0);
        let hi = quantile(&x, 1.0);
        prop_assert!(lo <= q5 && q5 <= hi);
        let m = mean(&x);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn histogram_conserves_counts(x in prop::collection::vec(-1e3f64..1e3, 1..300), bins in 1usize..64) {
        let h = Histogram::from_data(&x, bins);
        prop_assert_eq!(h.total(), x.len());
        prop_assert_eq!(h.counts().iter().sum::<usize>(), x.len());
    }

    #[test]
    fn decimate_selects_stride(x in prop::collection::vec(-1.0f64..1.0, 0..100), k in 1usize..10) {
        let y = decimate(&x, k);
        prop_assert_eq!(y.len(), x.len().div_ceil(k));
        for (i, &v) in y.iter().enumerate() {
            prop_assert_eq!(v, x[i * k]);
        }
    }
}
