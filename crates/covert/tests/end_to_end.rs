//! Full-chain validation: transmitter program → power trace → buck
//! converter → EM scene → SDR front end → batch receiver → payload.

use emsc_covert::frame::{deframe, FrameConfig};
use emsc_covert::metrics::align;
use emsc_covert::rx::{Receiver, RxConfig};
use emsc_covert::tx::{Transmitter, TxConfig};
use emsc_emfield::scene::Scene;
use emsc_pmu::sim::Machine;
use emsc_sdr::{Frontend, FrontendConfig};
use emsc_vrm::buck::{Buck, BuckConfig};

const F_SW: f64 = 970e3;

fn transmit_and_receive(payload: &[u8], seed: u64) -> (Vec<u8>, emsc_covert::rx::RxReport) {
    let machine = Machine::intel_laptop();
    let tx = Transmitter::new(TxConfig::calibrated(&machine, 100e-6, 100e-6));
    let mut program = emsc_pmu::workload::Program::new();
    // Lead-in idle so the receiver's window primes before the first bit.
    program.sleep(2e-3);
    program.extend(tx.program(payload).ops().iter().copied());
    program.sleep(2e-3);

    let trace = machine.run(&program, seed);
    let train = Buck::new(BuckConfig::laptop(F_SW)).convert(&trace);
    let scene = Scene::near_field(F_SW);
    let analog = scene.render(&train, seed);
    let capture =
        Frontend::new(FrontendConfig::rtl_sdr_v3(scene.synth.center_freq)).digitize(&analog);

    let bit_period = tx.config().expected_bit_period_on(&machine);
    let rx = Receiver::new(RxConfig::new(F_SW, bit_period));
    let report = rx.demodulate(&capture);
    (tx.on_air_bits(payload), report)
}

#[test]
fn payload_recovered_over_the_full_chain() {
    let payload = b"hi";
    let (tx_bits, report) = transmit_and_receive(payload, 42);
    let alignment = align(&tx_bits, &report.bits);
    eprintln!(
        "tx {} bits, rx {} bits: {} sub, {} ins, {} del (BER {:.4})",
        tx_bits.len(),
        report.bits.len(),
        alignment.substitutions,
        alignment.insertions,
        alignment.deletions,
        alignment.ber()
    );
    assert!(alignment.ber() < 0.05, "BER {}", alignment.ber());
    let out =
        deframe(&report.bits, FrameConfig::default(), 1).expect("frame marker must be detectable");
    assert_eq!(out.payload, payload.to_vec());
}
