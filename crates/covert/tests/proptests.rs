//! Property-based tests for coding, framing and alignment.

use emsc_covert::coding::{bits_to_bytes, bytes_to_bits, decode_bits, encode_bits};
use emsc_covert::frame::{deframe, frame_payload, FrameConfig};
use emsc_covert::interleave::Interleaver;
use emsc_covert::metrics::{align, align_semiglobal};
use proptest::prelude::*;

fn bits(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=1, 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hamming_round_trips(data in bits(64)) {
        let coded = encode_bits(&data);
        let (decoded, corrections) = decode_bits(&coded);
        prop_assert_eq!(&decoded[..data.len()], &data[..]);
        prop_assert_eq!(corrections, 0);
    }

    #[test]
    fn hamming_corrects_one_error_per_codeword(
        data in bits(64),
        flip_positions in prop::collection::vec(0usize..7, 0..16),
    ) {
        let mut coded = encode_bits(&data);
        // Flip at most one bit in each distinct codeword.
        let codewords = coded.len() / 7;
        for (cw, &pos) in flip_positions.iter().enumerate() {
            if cw >= codewords {
                break;
            }
            coded[cw * 7 + pos] ^= 1;
        }
        let (decoded, _) = decode_bits(&coded);
        prop_assert_eq!(&decoded[..data.len()], &data[..]);
    }

    #[test]
    fn bytes_bits_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    #[test]
    fn framing_round_trips(payload in prop::collection::vec(any::<u8>(), 0..48)) {
        let cfg = FrameConfig::default();
        let on_air = frame_payload(&payload, cfg);
        let out = deframe(&on_air, cfg, 1).expect("clean frame must deframe");
        prop_assert_eq!(out.payload, payload);
    }

    #[test]
    fn framing_survives_one_error_per_codeword(
        payload in prop::collection::vec(any::<u8>(), 1..24),
        err_seed in any::<u64>(),
    ) {
        let cfg = FrameConfig::default();
        let mut on_air = frame_payload(&payload, cfg);
        let body_start = cfg.sync_len + cfg.zeros_len + 8;
        // One deterministic flip in each codeword of the body.
        let mut state = err_seed | 1;
        let mut cw = 0;
        while body_start + cw * 7 + 6 < on_air.len() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let pos = (state % 7) as usize;
            on_air[body_start + cw * 7 + pos] ^= 1;
            cw += 1;
        }
        let out = deframe(&on_air, cfg, 1).expect("deframe");
        prop_assert_eq!(out.payload, payload);
    }

    #[test]
    fn alignment_counts_are_consistent(tx in bits(80), rx in bits(80)) {
        let a = align(&tx, &rx);
        prop_assert_eq!(a.tx_len(), tx.len());
        prop_assert_eq!(a.rx_len(), rx.len());
        // Total edits bounded by the larger length.
        prop_assert!(a.substitutions + a.insertions + a.deletions <= tx.len().max(rx.len()));
    }

    #[test]
    fn identical_streams_have_zero_errors(tx in bits(120)) {
        let a = align(&tx, &tx);
        prop_assert_eq!(a.substitutions, 0);
        prop_assert_eq!(a.insertions, 0);
        prop_assert_eq!(a.deletions, 0);
        prop_assert_eq!(a.matches, tx.len());
    }

    #[test]
    fn semiglobal_never_worse_than_global(tx in bits(60), rx in bits(80)) {
        let g = align(&tx, &rx);
        let s = align_semiglobal(&tx, &rx);
        let g_cost = g.substitutions + g.insertions + g.deletions;
        let s_cost = s.substitutions + s.insertions + s.deletions;
        prop_assert!(s_cost <= g_cost, "semiglobal {} vs global {}", s_cost, g_cost);
    }

    #[test]
    fn interleaver_round_trips(
        data in bits(140),
        cw in 1usize..12,
        depth in 1usize..12,
    ) {
        let il = Interleaver::new(cw, depth);
        let wire = il.interleave(&data);
        prop_assert_eq!(wire.len() % il.block_len(), 0);
        let back = il.deinterleave(&wire);
        prop_assert_eq!(&back[..data.len()], &data[..]);
        prop_assert!(back[data.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn interleaved_hamming_survives_any_short_burst(
        data in prop::collection::vec(0u8..=1, 28..=28),
        burst_start in 0usize..40,
    ) {
        // 7 codewords at depth 7: any ≤7-bit wire burst is correctable.
        let il = Interleaver::new(7, 7);
        let coded = encode_bits(&data);
        let mut wire = il.interleave(&coded);
        for i in burst_start..(burst_start + 7).min(wire.len()) {
            wire[i] ^= 1;
        }
        let received = il.deinterleave(&wire);
        let (decoded, _) = decode_bits(&received[..coded.len()]);
        prop_assert_eq!(&decoded[..28], &data[..]);
    }

    #[test]
    fn alignment_cost_is_symmetric(tx in bits(60), rx in bits(60)) {
        // Optimal-alignment *composition* is not unique (one deletion
        // can trade against substitutions at equal cost), but the
        // minimal edit cost itself is symmetric.
        let ab = align(&tx, &rx);
        let ba = align(&rx, &tx);
        let cost = |a: &emsc_covert::Alignment| a.substitutions + a.insertions + a.deletions;
        prop_assert_eq!(cost(&ab), cost(&ba));
    }
}
