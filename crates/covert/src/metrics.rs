//! Channel-quality metrics: BER, insertion and deletion probabilities.
//!
//! The covert channel can *substitute* bits (power mislabeled),
//! *insert* bits (an interrupt splits one signalling period into two)
//! and *delete* bits (system activity suppresses a start edge) —
//! Fig. 8. Table II/III therefore report BER, IP and DP, which
//! requires aligning the transmitted and received sequences with an
//! edit-distance (Needleman–Wunsch) alignment, exactly as one compares
//! sequences with indels.

/// Outcome of aligning a transmitted against a received bit sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Alignment {
    /// Bits aligned and equal.
    pub matches: usize,
    /// Bits aligned but flipped (bit errors).
    pub substitutions: usize,
    /// Received bits with no transmitted counterpart.
    pub insertions: usize,
    /// Transmitted bits missing from the received sequence.
    pub deletions: usize,
}

impl Alignment {
    /// Bit-error rate: substitutions per transmitted bit.
    pub fn ber(&self) -> f64 {
        self.substitutions as f64 / self.tx_len().max(1) as f64
    }

    /// Insertion probability: insertions per transmitted bit.
    pub fn insertion_probability(&self) -> f64 {
        self.insertions as f64 / self.tx_len().max(1) as f64
    }

    /// Deletion probability: deletions per transmitted bit.
    pub fn deletion_probability(&self) -> f64 {
        self.deletions as f64 / self.tx_len().max(1) as f64
    }

    /// Length of the transmitted sequence implied by the alignment.
    pub fn tx_len(&self) -> usize {
        self.matches + self.substitutions + self.deletions
    }

    /// Length of the received sequence implied by the alignment.
    pub fn rx_len(&self) -> usize {
        self.matches + self.substitutions + self.insertions
    }
}

/// One step of an optimal alignment (see [`align_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// `tx[i] == rx[j]`.
    Match,
    /// `tx[i] != rx[j]` (bit error).
    Substitute,
    /// `rx[j]` has no tx counterpart.
    Insert,
    /// `tx[i]` is missing from rx.
    Delete,
}

/// Globally aligns `tx` and `rx` with unit costs for substitution,
/// insertion and deletion, and returns the per-kind counts of the
/// minimal-cost alignment.
///
/// `O(|tx|·|rx|)` time and memory.
pub fn align(tx: &[u8], rx: &[u8]) -> Alignment {
    let trace = align_trace(tx, rx);
    let mut out = Alignment { matches: 0, substitutions: 0, insertions: 0, deletions: 0 };
    for op in trace {
        match op {
            AlignOp::Match => out.matches += 1,
            AlignOp::Substitute => out.substitutions += 1,
            AlignOp::Insert => out.insertions += 1,
            AlignOp::Delete => out.deletions += 1,
        }
    }
    out
}

/// The full operation sequence of an optimal alignment, in tx/rx
/// order. Useful for locating *where* errors happen, not just how
/// many (C-INTERMEDIATE).
pub fn align_trace(tx: &[u8], rx: &[u8]) -> Vec<AlignOp> {
    let n = tx.len();
    let m = rx.len();
    // dp[i][j]: min cost aligning tx[..i] with rx[..j]
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in 0..=n {
        dp[idx(i, 0)] = i as u32;
    }
    for j in 0..=m {
        dp[idx(0, j)] = j as u32;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub = dp[idx(i - 1, j - 1)] + u32::from((tx[i - 1] & 1) != (rx[j - 1] & 1));
            let del = dp[idx(i - 1, j)] + 1;
            let ins = dp[idx(i, j - 1)] + 1;
            dp[idx(i, j)] = sub.min(del).min(ins);
        }
    }
    // Traceback, preferring diagonal moves (match/substitute).
    let mut i = n;
    let mut j = m;
    let mut ops = Vec::with_capacity(n.max(m));
    while i > 0 || j > 0 {
        if i > 0 && j > 0 {
            let sub_cost = u32::from((tx[i - 1] & 1) != (rx[j - 1] & 1));
            if dp[idx(i, j)] == dp[idx(i - 1, j - 1)] + sub_cost {
                ops.push(if sub_cost == 0 { AlignOp::Match } else { AlignOp::Substitute });
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && dp[idx(i, j)] == dp[idx(i - 1, j)] + 1 {
            ops.push(AlignOp::Delete);
            i -= 1;
        } else {
            ops.push(AlignOp::Insert);
            j -= 1;
        }
    }
    ops.reverse();
    ops
}

/// Semi-global alignment: like [`align`], but *leading and trailing*
/// received bits that precede/follow the transmission cost nothing
/// and are not counted as insertions. This matches how the channel is
/// actually scored: the receiver synchronises on the preamble, so
/// junk decoded from channel noise before the transmission started
/// (or after it ended) is not a channel error.
pub fn align_semiglobal(tx: &[u8], rx: &[u8]) -> Alignment {
    let n = tx.len();
    let m = rx.len();
    if n == 0 {
        return Alignment { matches: 0, substitutions: 0, insertions: 0, deletions: 0 };
    }
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in 0..=n {
        dp[idx(i, 0)] = i as u32;
    }
    // dp[0][j] = 0: leading rx bits are free.
    for i in 1..=n {
        for j in 1..=m {
            let sub = dp[idx(i - 1, j - 1)] + u32::from((tx[i - 1] & 1) != (rx[j - 1] & 1));
            let del = dp[idx(i - 1, j)] + 1;
            let ins = dp[idx(i, j - 1)] + 1;
            dp[idx(i, j)] = sub.min(del).min(ins);
        }
    }
    // Free trailing rx bits: finish anywhere on the last row.
    let mut j_end = m;
    for j in 0..=m {
        if dp[idx(n, j)] < dp[idx(n, j_end)] {
            j_end = j;
        }
    }
    let mut i = n;
    let mut j = j_end;
    let mut out = Alignment { matches: 0, substitutions: 0, insertions: 0, deletions: 0 };
    while i > 0 {
        if j > 0 {
            let sub_cost = u32::from((tx[i - 1] & 1) != (rx[j - 1] & 1));
            if dp[idx(i, j)] == dp[idx(i - 1, j - 1)] + sub_cost {
                if sub_cost == 0 {
                    out.matches += 1;
                } else {
                    out.substitutions += 1;
                }
                i -= 1;
                j -= 1;
                continue;
            }
            if dp[idx(i, j)] == dp[idx(i, j - 1)] + 1 {
                out.insertions += 1;
                j -= 1;
                continue;
            }
        }
        out.deletions += 1;
        i -= 1;
    }
    out
}

/// Ground-truth accounting for the Hamming(7,4) decode of a coded
/// stream (see [`crate::coding::hamming74_decode`]'s caveat: a nonzero
/// syndrome conflates genuine corrections with silent double-error
/// *miscorrections* — only a comparison against the transmitted
/// codewords can tell them apart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CodewordAudit {
    /// Codeword pairs compared.
    pub codewords: usize,
    /// Received codewords with no channel errors.
    pub clean: usize,
    /// Codewords the decoder genuinely repaired (single-bit errors).
    pub corrected: usize,
    /// Codewords where the decoder's nonzero-syndrome "correction"
    /// produced the *wrong* data (≥2 channel errors) — the silent
    /// failure mode this audit exists to expose.
    pub miscorrected: usize,
    /// Codewords with channel errors but a zero syndrome (an error
    /// pattern that lands exactly on another codeword): the decoder
    /// saw nothing wrong and still emitted wrong data.
    pub undetected: usize,
}

impl CodewordAudit {
    /// Fraction of codewords that decoded to wrong data (miscorrected
    /// or undetected), or 0 for an empty stream.
    pub fn wrong_rate(&self) -> f64 {
        if self.codewords == 0 {
            0.0
        } else {
            (self.miscorrected + self.undetected) as f64 / self.codewords as f64
        }
    }
}

/// Audits a received coded stream against the transmitted one,
/// codeword by codeword, classifying each 7-bit pair as clean,
/// corrected, miscorrected or undetected. Both streams are walked on
/// the transmitted codeword grid (trailing partial codewords are
/// ignored), so this measures the *substitution* channel the coding
/// layer actually sees — run it on marker-recovered bits, where indels
/// have already been resampled onto the nominal grid.
pub fn codeword_audit(tx_coded: &[u8], rx_coded: &[u8]) -> CodewordAudit {
    let mut audit = CodewordAudit::default();
    for (tx_cw, rx_cw) in tx_coded.chunks_exact(7).zip(rx_coded.chunks_exact(7)) {
        audit.codewords += 1;
        let errors = tx_cw.iter().zip(rx_cw).filter(|(a, b)| (**a & 1) != (**b & 1)).count();
        let (tx_nibble, _) = crate::coding::hamming74_decode(tx_cw);
        let (rx_nibble, syndrome_fired) = crate::coding::hamming74_decode(rx_cw);
        match (errors, syndrome_fired, rx_nibble == tx_nibble) {
            (0, _, _) => audit.clean += 1,
            (_, true, true) => audit.corrected += 1,
            (_, true, false) => audit.miscorrected += 1,
            (_, false, _) => audit.undetected += 1,
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_align_perfectly() {
        let bits = [1u8, 0, 1, 1, 0, 1, 0, 0];
        let a = align(&bits, &bits);
        assert_eq!(a.matches, 8);
        assert_eq!(a.substitutions + a.insertions + a.deletions, 0);
        assert_eq!(a.ber(), 0.0);
    }

    #[test]
    fn counts_substitutions() {
        let tx = [1u8, 0, 1, 0, 1, 0, 1, 0];
        let rx = [1u8, 0, 0, 0, 1, 0, 0, 0];
        let a = align(&tx, &rx);
        assert_eq!(a.substitutions, 2);
        assert_eq!(a.insertions, 0);
        assert_eq!(a.deletions, 0);
        assert!((a.ber() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn counts_a_deletion() {
        let tx = [1u8, 1, 0, 1, 0, 0, 1, 1];
        let rx = [1u8, 1, 0, 0, 0, 1, 1]; // 4th bit dropped
        let a = align(&tx, &rx);
        assert_eq!(a.deletions, 1);
        assert_eq!(a.insertions, 0);
        assert_eq!(a.substitutions, 0);
        assert_eq!(a.matches, 7);
        assert!((a.deletion_probability() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn counts_an_insertion() {
        let tx = [0u8, 1, 1, 0, 1];
        let rx = [0u8, 1, 0, 1, 0, 1]; // extra bit after index 1
        let a = align(&tx, &rx);
        assert_eq!(a.insertions, 1);
        assert_eq!(a.deletions, 0);
        assert_eq!(a.substitutions, 0);
    }

    #[test]
    fn mixed_errors() {
        let tx = [1u8, 0, 1, 1, 0, 0, 1, 0, 1, 1];
        // delete tx[2], flip tx[5], insert a bit at the end
        let rx = [1u8, 0, 1, 0, 1, 1, 0, 1, 1, 0];
        let a = align(&tx, &rx);
        assert_eq!(a.tx_len(), 10);
        assert_eq!(a.rx_len(), 10);
        // The minimal alignment cost is bounded by the constructed errors.
        assert!(a.substitutions + a.insertions + a.deletions <= 4);
    }

    #[test]
    fn empty_sequences() {
        let a = align(&[], &[]);
        assert_eq!(a.matches, 0);
        assert_eq!(a.ber(), 0.0);
        let b = align(&[1, 0, 1], &[]);
        assert_eq!(b.deletions, 3);
        let c = align(&[], &[1, 1]);
        assert_eq!(c.insertions, 2);
    }

    #[test]
    fn semiglobal_ignores_lead_and_trail_junk() {
        let tx = [1u8, 0, 1, 1, 0, 0, 1, 0];
        let mut rx = vec![0u8, 0, 1, 0, 1]; // lead junk
        rx.extend_from_slice(&tx);
        rx.extend_from_slice(&[0, 0, 1]); // trail junk
        let a = align_semiglobal(&tx, &rx);
        assert_eq!(a.matches, 8);
        assert_eq!(a.substitutions + a.insertions + a.deletions, 0);
        // The global alignment, by contrast, must pay for the junk.
        let g = align(&tx, &rx);
        assert!(g.insertions >= 8);
    }

    #[test]
    fn semiglobal_still_counts_internal_errors() {
        let tx = [1u8, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1];
        let mut rx = vec![1u8, 1]; // lead junk
        let mut body = tx.to_vec();
        body[5] ^= 1; // substitution
        body.insert(8, 1); // insertion
        rx.extend(body);
        let a = align_semiglobal(&tx, &rx);
        assert_eq!(a.substitutions, 1);
        assert_eq!(a.insertions, 1);
        assert_eq!(a.deletions, 0);
    }

    #[test]
    fn lengths_are_consistent() {
        let tx: Vec<u8> = (0..57).map(|i| (i % 2) as u8).collect();
        let rx: Vec<u8> = (0..49).map(|i| (i % 3 == 1) as u8).collect();
        let a = align(&tx, &rx);
        assert_eq!(a.tx_len(), tx.len());
        assert_eq!(a.rx_len(), rx.len());
    }

    #[test]
    fn codeword_audit_classifies_every_outcome() {
        use crate::coding::encode_bits;
        // 4 codewords: leave #0 clean, flip 1 bit in #1, 2 bits in #2,
        // and hit #3 with an error pattern equal to another codeword
        // (distance 3) so the syndrome stays silent.
        let data: Vec<u8> = vec![1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1];
        let tx = encode_bits(&data);
        let mut rx = tx.clone();
        rx[7] ^= 1; // single error in codeword 1
        rx[14] ^= 1; // double error in codeword 2
        rx[15] ^= 1;
        // Codeword-weight error pattern for #3: XOR with a nonzero
        // codeword (encode of [1,0,0,0] = [1,1,1,0,0,0,0]).
        for (i, bit) in [1u8, 1, 1, 0, 0, 0, 0].iter().enumerate() {
            rx[21 + i] ^= bit;
        }
        let audit = codeword_audit(&tx, &rx);
        assert_eq!(audit.codewords, 4);
        assert_eq!(audit.clean, 1);
        assert_eq!(audit.corrected, 1);
        assert_eq!(audit.miscorrected, 1);
        assert_eq!(audit.undetected, 1);
        assert!((audit.wrong_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn codeword_audit_exposes_what_coding_stats_conflates() {
        use crate::coding::{decode_bits_reported, encode_bits};
        let data: Vec<u8> = (0..32).map(|i| (i % 3 == 0) as u8).collect();
        let tx = encode_bits(&data);
        let mut rx = tx.clone();
        rx[0] ^= 1; // genuine single-bit correction in codeword 0
        rx[8] ^= 1; // double error in codeword 1 → miscorrection
        rx[9] ^= 1;
        let (_, stats) = decode_bits_reported(&rx);
        let audit = codeword_audit(&tx, &rx);
        // The decoder alone sees two "corrections"; only the audit can
        // tell that one of them silently produced wrong data.
        assert_eq!(stats.corrected, 2);
        assert_eq!(audit.corrected, 1);
        assert_eq!(audit.miscorrected, 1);
        assert_eq!(audit.undetected, 0);
    }

    #[test]
    fn codeword_audit_of_identical_streams_is_all_clean() {
        use crate::coding::encode_bits;
        let tx = encode_bits(&[1, 0, 0, 1, 1, 1, 0, 0]);
        let audit = codeword_audit(&tx, &tx);
        assert_eq!(audit.clean, audit.codewords);
        assert_eq!(audit.wrong_rate(), 0.0);
    }
}
