//! The covert-channel receiver: the paper's §IV-B detection pipeline.
//!
//! Stages, each corresponding to a paper artefact:
//!
//! 1. **Signal acquisition** (Eq. (1), Fig. 4): the energy signal
//!    `Y[n] = Σ_{k∈S} |F_n[k]|` over the VRM fundamental and its first
//!    harmonic, computed with a sliding DFT (maximum overlap).
//! 2. **Edge detection** (Fig. 5): convolve `Y` with a `±1` kernel to
//!    mimic a derivative; local maxima are bit-start candidates.
//! 3. **Signal timing** (Fig. 6): the inter-start distances form a
//!    positively-skewed (Rayleigh-like) distribution; the median
//!    (CDF = 0.5) is taken as the signalling period, and gaps where
//!    starts were missed are filled at that period.
//! 4. **Labeling** (Eq. (2), Fig. 7): per-bit average power, with a
//!    threshold placed midway between the two modes of the power
//!    histogram.
//!
//! Every intermediate is exposed in the [`RxReport`] so experiments
//! can regenerate the paper's figures (C-INTERMEDIATE).

use emsc_sdr::dsp::{convolve_same, edge_kernel, find_peaks, moving_average};
use emsc_sdr::error::CaptureError;
use emsc_sdr::fft::frequency_bin;
use emsc_sdr::sliding::try_energy_signal;
use emsc_sdr::stats::{median, quantile, Histogram};
use emsc_sdr::Capture;

/// Why the acquisition / symbol-sync stage could not lock — the
/// diagnostic payload of [`RxError::SyncLost`].
///
/// Fieldless so [`RxError`] stays `Copy`/`Eq`; each variant names one
/// concrete way [`try_find_switching_frequency`] or
/// [`try_estimate_bit_period`] loses lock, so a long-running streaming
/// session can report *why* instead of a bare `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncLoss {
    /// The capture is shorter than one spectral-analysis frame, so no
    /// spectrum exists to scan for the VRM line.
    NoSpectralFrames,
    /// The requested scan band contains no bin of the captured span
    /// (tuner parked outside the band of interest).
    BandOutsideCapture,
    /// Every bin inside the scan band carries zero energy — nothing is
    /// radiating where the VRM line should be.
    SilentBand,
    /// Too few energy samples to autocorrelate for a bit clock.
    TooFewSamples,
    /// The energy signal's time step is non-positive.
    InvalidTimeStep,
    /// The plausible-period window maps to an empty lag range at this
    /// time step and signal length.
    EmptyLagRange,
    /// The energy signal has no variance (flat line), so its
    /// autocorrelation is undefined.
    NoVariance,
    /// No autocorrelation peak stands out above the significance bar —
    /// the signal carries no visible bit clock.
    NoPeriodicity,
}

impl std::fmt::Display for SyncLoss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            SyncLoss::NoSpectralFrames => "capture shorter than one spectral-analysis frame",
            SyncLoss::BandOutsideCapture => "scan band lies outside the captured span",
            SyncLoss::SilentBand => "no energy anywhere in the scan band",
            SyncLoss::TooFewSamples => "too few energy samples to autocorrelate",
            SyncLoss::InvalidTimeStep => "non-positive energy time step",
            SyncLoss::EmptyLagRange => "period window maps to an empty lag range",
            SyncLoss::NoVariance => "energy signal has no variance",
            SyncLoss::NoPeriodicity => "no autocorrelation peak above the significance bar",
        };
        f.write_str(msg)
    }
}

/// Why the receiver could not demodulate a capture.
///
/// `Copy`/`Eq` so experiment grids can carry per-cell decode failures
/// through `Clone`d outcome structs and compare them bit-for-bit in
/// determinism tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxError {
    /// The receiver configuration violates an invariant (the message
    /// names it).
    InvalidConfig(&'static str),
    /// The capture itself is unusable (empty, too short for one
    /// analysis window, majority-non-finite, bad sample rate).
    Capture(CaptureError),
    /// No configured VRM harmonic falls inside the captured band, so
    /// there is no carrier to track.
    NoCarrier,
    /// The acquisition stage lost (or never achieved) lock, for the
    /// stated reason.
    SyncLost(SyncLoss),
}

impl RxError {
    /// Whether re-running the capture could plausibly clear this
    /// error. Channel-condition failures — an unusable capture
    /// ([`CaptureError::is_retryable`]) or lost acquisition lock
    /// ([`RxError::SyncLost`]: the channel was silent, flat or
    /// aperiodic *this time*) — are retryable. Configuration failures
    /// ([`RxError::InvalidConfig`], [`RxError::NoCarrier`]: the tuner
    /// is parked where no harmonic can ever appear) are fatal: a
    /// supervisor should quarantine the session rather than restart
    /// it.
    pub fn is_retryable(&self) -> bool {
        match self {
            RxError::Capture(e) => e.is_retryable(),
            RxError::SyncLost(_) => true,
            RxError::InvalidConfig(_) | RxError::NoCarrier => false,
        }
    }
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::InvalidConfig(msg) => write!(f, "invalid receiver configuration: {msg}"),
            RxError::Capture(e) => write!(f, "unusable capture: {e}"),
            RxError::NoCarrier => {
                write!(f, "no VRM harmonic falls inside the captured band")
            }
            RxError::SyncLost(loss) => write!(f, "acquisition lost lock: {loss}"),
        }
    }
}

impl std::error::Error for RxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RxError::Capture(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CaptureError> for RxError {
    fn from(e: CaptureError) -> Self {
        RxError::Capture(e)
    }
}

/// Which per-bit statistic the labeler thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelFeature {
    /// Eq. (2): mean power over the whole bit — the paper's rule.
    #[default]
    MeanPower,
    /// Return-to-zero differential: mean power of the bit's first
    /// half minus its second half. A `1` (active-then-sleep) is
    /// strongly positive; a `0` is ≈ 0 — and any slow pedestal (for
    /// example a CPU hog on another core of the shared rail) cancels.
    RzDifferential,
}

/// Receiver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RxConfig {
    /// VRM switching frequency (RF), hertz. The paper finds it by
    /// peak detection when unknown; see
    /// [`find_switching_frequency`].
    pub switching_freq_hz: f64,
    /// How many harmonics form the set `S` of Eq. (1) (1 = fundamental
    /// only; the paper uses 2: fundamental + first harmonic).
    pub harmonics: usize,
    /// Sliding-DFT window (the paper's 1024-point FFT).
    pub fft_size: usize,
    /// Decimation of the energy signal (receiver-side processing
    /// budget; 24 ⇒ 10 µs resolution at 2.4 Msps).
    pub decimation: usize,
    /// The attacker's prior on the bit period (from the known
    /// transmitter parameters), seconds.
    pub expected_bit_period_s: f64,
    /// Edge-kernel length as a fraction of the expected bit period.
    pub edge_kernel_fraction: f64,
    /// Peak threshold as a fraction of the robust (98th-percentile)
    /// maximum of the edge response.
    pub peak_threshold_frac: f64,
    /// Insert missing bit starts at the recovered period.
    pub gap_fill: bool,
    /// Half-width, in bits, of the sliding batch used for threshold
    /// selection (§IV-B2's batch processing: each bit is judged
    /// against "a number of bit periods that precede and follow it").
    /// Local thresholds track slow level shifts such as a CPU hog on
    /// another core. `None` uses one global threshold.
    pub threshold_window_bits: Option<usize>,
    /// Per-bit statistic to threshold.
    pub label_feature: LabelFeature,
    /// Require weak edge evidence before filling a gap position.
    /// `true` (default) suits fast signalling, where a long window is
    /// usually one stretched bit; at low rates (bits ≫ interrupt
    /// durations) period-based filling without evidence is more
    /// robust, exactly as the paper observes for the NLoS setting.
    pub gap_fill_requires_evidence: bool,
}

impl RxConfig {
    /// Defaults for a given switching frequency and expected bit
    /// period.
    ///
    /// Deviation from the paper: §IV-C1 uses a 1024-point FFT, but a
    /// 1024-sample sliding window is 427 µs at 2.4 Msps — longer than
    /// one ~250 µs bit — and against our simulated captures it smears
    /// adjacent bits into each other (the `ablate_window` benchmark
    /// quantifies this). 256 points resolves individual bits while
    /// keeping the VRM line within one bin.
    pub fn new(switching_freq_hz: f64, expected_bit_period_s: f64) -> Self {
        RxConfig {
            switching_freq_hz,
            harmonics: 2,
            fft_size: 256,
            decimation: 24,
            expected_bit_period_s,
            edge_kernel_fraction: 0.5,
            peak_threshold_frac: 0.22,
            gap_fill: true,
            gap_fill_requires_evidence: true,
            threshold_window_bits: Some(60),
            label_feature: LabelFeature::default(),
        }
    }

    /// The same configuration retargeted at a different bit period —
    /// what the adaptive rate controller uses when the transmitter
    /// stretches its clock: every other knob (FFT, decimation,
    /// thresholds) is bit-period-relative and carries over unchanged.
    pub fn with_bit_period(&self, expected_bit_period_s: f64) -> Self {
        assert!(expected_bit_period_s > 0.0, "bit period must be positive");
        RxConfig { expected_bit_period_s, ..self.clone() }
    }
}

/// Everything the receiver computed, intermediates included.
#[derive(Debug, Clone, PartialEq)]
pub struct RxReport {
    /// The Eq. (1) energy signal `Y`, decimated.
    pub energy: Vec<f64>,
    /// Seconds per energy sample.
    pub energy_dt_s: f64,
    /// Edge-detector response (same length as `energy`).
    pub edge_response: Vec<f64>,
    /// Detected bit-start indices before gap filling.
    pub raw_starts: Vec<usize>,
    /// Bit-start indices after gap filling.
    pub starts: Vec<usize>,
    /// Inter-start distances (seconds) — the Fig. 6 data.
    pub distances_s: Vec<f64>,
    /// Recovered signalling period (median of distances), seconds.
    pub bit_period_s: f64,
    /// Per-bit mean power — the Fig. 7 data.
    pub powers: Vec<f64>,
    /// Decision threshold.
    pub threshold: f64,
    /// The two power-histogram modes the threshold came from, if the
    /// histogram was bimodal.
    pub threshold_modes: Option<(f64, f64)>,
    /// Demodulated bits.
    pub bits: Vec<u8>,
    /// Number of non-finite capture samples zeroed before analysis
    /// (0 for a clean capture).
    pub sanitized_samples: usize,
}

impl RxReport {
    /// Effective transmission rate of this capture, bits/second.
    pub fn transmission_rate_bps(&self) -> f64 {
        if self.bit_period_s > 0.0 {
            1.0 / self.bit_period_s
        } else {
            0.0
        }
    }

    /// The explicit "nothing decoded" report: every intermediate
    /// empty, zero period and threshold. This is what the panic-free
    /// wrappers return when [`Receiver::receive`] fails, so legacy
    /// callers see an empty bit stream instead of a crash.
    pub fn empty(energy_dt_s: f64) -> Self {
        RxReport {
            energy: Vec::new(),
            energy_dt_s,
            edge_response: Vec::new(),
            raw_starts: Vec::new(),
            starts: Vec::new(),
            distances_s: Vec::new(),
            bit_period_s: 0.0,
            powers: Vec::new(),
            threshold: 0.0,
            threshold_modes: None,
            bits: Vec::new(),
            sanitized_samples: 0,
        }
    }
}

/// Locates the strongest spectral spike in `lo..hi` Hz (RF) — the
/// standard peak-detection step the paper uses when the VRM band is
/// not already known for the device (§V-C).
pub fn find_switching_frequency(capture: &Capture, lo_hz: f64, hi_hz: f64) -> Option<f64> {
    try_find_switching_frequency(capture, lo_hz, hi_hz).ok()
}

/// Diagnosing variant of [`find_switching_frequency`]: reports *why*
/// no VRM line could be located, so a streaming session that fails to
/// acquire can surface the reason in its per-session stats.
///
/// # Errors
///
/// [`RxError::SyncLost`] carrying the [`SyncLoss`] reason: a capture
/// too short to form one spectral frame, a scan band outside the
/// captured span, or a band with no energy at all.
pub fn try_find_switching_frequency(
    capture: &Capture,
    lo_hz: f64,
    hi_hz: f64,
) -> Result<f64, RxError> {
    use emsc_sdr::stft::{stft, StftConfig};
    use emsc_sdr::window::Window;
    if capture.samples.len() < 1024 {
        return Err(RxError::SyncLost(SyncLoss::NoSpectralFrames));
    }
    let spec =
        stft(&capture.samples, capture.sample_rate, &StftConfig::new(1024, 4096, Window::Hann));
    let bin = spec
        .dominant_bin_in(capture.baseband(lo_hz), capture.baseband(hi_hz))
        .ok_or(RxError::SyncLost(SyncLoss::BandOutsideCapture))?;
    let total: f64 = (0..spec.frames()).map(|t| spec.frame(t)[bin]).sum();
    if total <= 0.0 {
        return Err(RxError::SyncLost(SyncLoss::SilentBand));
    }
    Ok(emsc_sdr::fft::bin_frequency(bin, 1024, capture.sample_rate) + capture.center_freq)
}

/// Estimates the signalling period of an on-off-keyed energy signal
/// without any transmitter-side knowledge, from the autocorrelation
/// of the (mean-removed) signal: the RZ bit clock produces a
/// periodic structure whose first strong autocorrelation peak sits at
/// one bit period. Returns `None` when no periodicity stands out.
///
/// This is what the paper's sync preamble (alternating 1/0, §IV-C1)
/// is *for* — a maximally periodic header the receiver can lock onto
/// blind.
pub fn estimate_bit_period(energy: &[f64], dt_s: f64, min_s: f64, max_s: f64) -> Option<f64> {
    try_estimate_bit_period(energy, dt_s, min_s, max_s).ok()
}

/// Diagnosing variant of [`estimate_bit_period`]: reports *why* no bit
/// clock could be recovered as a [`SyncLoss`], so streaming sessions
/// can log the cause when they fall back to the configured prior.
///
/// # Errors
///
/// The [`SyncLoss`] reason: too few samples, a bad time step, an
/// empty lag range, a flat signal, or no autocorrelation peak.
pub fn try_estimate_bit_period(
    energy: &[f64],
    dt_s: f64,
    min_s: f64,
    max_s: f64,
) -> Result<f64, SyncLoss> {
    if energy.len() < 16 {
        return Err(SyncLoss::TooFewSamples);
    }
    if dt_s <= 0.0 {
        return Err(SyncLoss::InvalidTimeStep);
    }
    let mean = energy.iter().sum::<f64>() / energy.len() as f64;
    let x: Vec<f64> = energy.iter().map(|&v| v - mean).collect();
    let lo = (min_s / dt_s).floor().max(1.0) as usize;
    let hi = ((max_s / dt_s).ceil() as usize).min(x.len() / 2);
    if lo >= hi {
        return Err(SyncLoss::EmptyLagRange);
    }
    let energy0: f64 = x.iter().map(|&v| v * v).sum();
    if energy0 <= 0.0 {
        return Err(SyncLoss::NoVariance);
    }
    let mut best: Option<(usize, f64)> = None;
    let mut prev = f64::INFINITY;
    let mut rising = false;
    for lag in lo..hi {
        let mut acc = 0.0;
        for i in 0..x.len() - lag {
            acc += x[i] * x[i + lag];
        }
        let r = acc / energy0;
        // Track the first pronounced local maximum after a rise.
        if r > prev {
            rising = true;
        } else if rising && prev > 0.15 {
            // prev was a local max above the significance bar.
            best = Some((lag - 1, prev));
            break;
        } else if r < prev {
            rising = false;
        }
        prev = r;
    }
    best.map(|(lag, _)| lag as f64 * dt_s).ok_or(SyncLoss::NoPeriodicity)
}

/// The batch-processing receiver.
#[derive(Debug, Clone)]
pub struct Receiver {
    config: RxConfig,
}

impl Receiver {
    /// Creates a receiver.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero FFT size,
    /// decimation, harmonics or non-positive periods).
    pub fn new(config: RxConfig) -> Self {
        assert!(config.fft_size.is_power_of_two(), "FFT size must be a power of two");
        assert!(config.decimation > 0, "decimation must be positive");
        assert!(config.harmonics > 0, "need at least the fundamental in S");
        assert!(config.expected_bit_period_s > 0.0, "bit period must be positive");
        Receiver { config }
    }

    /// Fallible variant of [`Receiver::new`]: reports a degenerate
    /// configuration as [`RxError::InvalidConfig`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`RxError::InvalidConfig`] naming the violated
    /// invariant.
    pub fn try_new(config: RxConfig) -> Result<Self, RxError> {
        if !config.fft_size.is_power_of_two() {
            return Err(RxError::InvalidConfig("FFT size must be a power of two"));
        }
        if config.decimation == 0 {
            return Err(RxError::InvalidConfig("decimation must be positive"));
        }
        if config.harmonics == 0 {
            return Err(RxError::InvalidConfig("need at least the fundamental in S"));
        }
        if !(config.expected_bit_period_s > 0.0 && config.expected_bit_period_s.is_finite()) {
            return Err(RxError::InvalidConfig("bit period must be positive"));
        }
        if !(config.switching_freq_hz.is_finite()) {
            return Err(RxError::InvalidConfig("switching frequency must be finite"));
        }
        Ok(Receiver { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &RxConfig {
        &self.config
    }

    /// The harmonic bins of `S` that fall inside the captured band.
    fn carrier_bins(&self, capture: &Capture) -> Vec<usize> {
        carrier_bins_for(&self.config, capture.sample_rate, capture.center_freq)
    }

    /// Demodulates a capture *blind*: the bit period is estimated from
    /// the signal itself (autocorrelation of the energy signal over
    /// the sync preamble) instead of taken from configuration. The
    /// attacker needs only the VRM frequency, which
    /// [`find_switching_frequency`] recovers from the spectrum.
    ///
    /// Panic-free wrapper over [`Receiver::receive_blind`]: any decode
    /// failure degrades to [`RxReport::empty`].
    pub fn demodulate_blind(&self, capture: &Capture) -> RxReport {
        self.receive_blind(capture).unwrap_or_else(|_| RxReport::empty(0.0))
    }

    /// Fallible blind demodulation: estimates the bit period from the
    /// capture, then runs [`Receiver::receive`] with it.
    ///
    /// # Errors
    ///
    /// The same failures as [`Receiver::receive`]; the period
    /// estimation itself cannot fail (it falls back to the configured
    /// prior when no periodicity stands out).
    pub fn receive_blind(&self, capture: &Capture) -> Result<RxReport, RxError> {
        let cfg = &self.config;
        if !(capture.sample_rate > 0.0 && capture.sample_rate.is_finite()) {
            return Err(RxError::Capture(CaptureError::InvalidSampleRate));
        }
        let dt = cfg.decimation as f64 / capture.sample_rate;
        let bins = self.carrier_bins(capture);
        if bins.is_empty() {
            return Err(RxError::NoCarrier);
        }
        let energy_raw = try_energy_signal(&capture.samples, cfg.fft_size, &bins, cfg.decimation)?;
        let energy = moving_average(&energy_raw.samples, 3);
        // Plausible covert bit periods: 50 µs – 5 ms.
        let estimated =
            estimate_bit_period(&energy, dt, 50e-6, 5e-3).unwrap_or(cfg.expected_bit_period_s);
        let tuned =
            Receiver::try_new(RxConfig { expected_bit_period_s: estimated, ..cfg.clone() })?;
        tuned.receive(capture)
    }

    /// Runs the full pipeline over a capture.
    ///
    /// Panic-free wrapper over [`Receiver::receive`]: any decode
    /// failure degrades to [`RxReport::empty`] (no bits, zero period)
    /// instead of crashing, so batch callers keep their grid alive.
    pub fn demodulate(&self, capture: &Capture) -> RxReport {
        let dt = if capture.sample_rate > 0.0 && capture.sample_rate.is_finite() {
            self.config.decimation as f64 / capture.sample_rate
        } else {
            0.0
        };
        self.receive(capture).unwrap_or_else(|_| RxReport::empty(dt))
    }

    /// Runs the full §IV-B pipeline over a capture, reporting failure
    /// as a typed [`RxError`] instead of panicking.
    ///
    /// A *silent* capture (carrier present in configuration but no
    /// transmission) is **not** an error: it produces `Ok` with an
    /// empty bit vector, since "nothing was sent" is a legitimate
    /// decode result. Errors are reserved for captures that cannot be
    /// analysed at all.
    ///
    /// # Errors
    ///
    /// - [`RxError::Capture`] for an empty capture, one shorter than a
    ///   single analysis window, a majority-non-finite capture, or a
    ///   non-positive sample rate;
    /// - [`RxError::NoCarrier`] when no configured VRM harmonic falls
    ///   inside the captured band.
    pub fn receive(&self, capture: &Capture) -> Result<RxReport, RxError> {
        let cfg = &self.config;
        if !(capture.sample_rate > 0.0 && capture.sample_rate.is_finite()) {
            return Err(RxError::Capture(CaptureError::InvalidSampleRate));
        }
        let dt = cfg.decimation as f64 / capture.sample_rate;

        // Stage 1: Eq. (1) energy signal over S = {f_sw, 2 f_sw, …}.
        let bins = self.carrier_bins(capture);
        if bins.is_empty() {
            return Err(RxError::NoCarrier);
        }
        let energy_raw = try_energy_signal(&capture.samples, cfg.fft_size, &bins, cfg.decimation)?;
        let sanitized_samples = energy_raw.sanitized;
        let energy = moving_average(&energy_raw.samples, 3);

        // Stage 2a: edge detection.
        let edge_response = convolve_same(&energy, &edge_kernel(edge_kernel_len(cfg, dt)));
        Ok(decode_from_energy(cfg, energy, edge_response, dt, sanitized_samples))
    }
}

/// The harmonic bins of `S` that fall inside a band captured at
/// `sample_rate` around `center_freq` — shared by the batch receiver
/// and the streaming front end, which has no [`Capture`] to hand.
pub(crate) fn carrier_bins_for(cfg: &RxConfig, sample_rate: f64, center_freq: f64) -> Vec<usize> {
    (1..=cfg.harmonics)
        .map(|h| cfg.switching_freq_hz * h as f64)
        .filter(|f| (f - center_freq).abs() < sample_rate / 2.0)
        .map(|f| frequency_bin(f - center_freq, cfg.fft_size, sample_rate))
        .collect()
}

/// Expected bit period in energy samples, floored at the 4-sample
/// minimum every downstream stage assumes.
fn expected_bit_samples(cfg: &RxConfig, dt: f64) -> f64 {
    (cfg.expected_bit_period_s / dt).max(4.0)
}

/// Length of the §IV-B2 edge-detection kernel for this configuration
/// and energy time step (even, at least 4 taps).
pub(crate) fn edge_kernel_len(cfg: &RxConfig, dt: f64) -> usize {
    let expected_bit = expected_bit_samples(cfg, dt);
    (((expected_bit * cfg.edge_kernel_fraction) / 2.0).round() as usize * 2).max(4)
}

/// Stages 2b–4 of the §IV-B pipeline: peak finding, timing recovery,
/// gap filling, per-bit power and thresholding, given an already
/// smoothed energy signal and its edge response.
///
/// This is the *decision* half of [`Receiver::receive`], factored out
/// so the streaming receiver — which accumulates `energy` and
/// `edge_response` incrementally — runs the exact same code on the
/// exact same values and is bit-identical to the batch path by
/// construction.
pub(crate) fn decode_from_energy(
    cfg: &RxConfig,
    energy: Vec<f64>,
    edge_response: Vec<f64>,
    dt: f64,
    sanitized_samples: usize,
) -> RxReport {
    let expected_bit = expected_bit_samples(cfg, dt);
    let positive: Vec<f64> = edge_response.iter().map(|&v| v.max(0.0)).collect();
    let robust_max = quantile(&positive, 0.98).max(1e-30);
    let min_dist = (expected_bit * 0.55).round() as usize;
    let peaks = find_peaks(&edge_response, cfg.peak_threshold_frac * robust_max, min_dist.max(1));
    let raw_starts: Vec<usize> = peaks.iter().map(|p| p.index).collect();

    // Stage 3: timing from the inter-start distance distribution.
    let mut distances_s: Vec<f64> =
        raw_starts.windows(2).map(|w| (w[1] - w[0]) as f64 * dt).collect();
    // Two-pass period recovery: the expected-period prior is only
    // approximate (jitter and wake latency lengthen real bits), so
    // first take the median over a generous window around the
    // prior, then re-take it over a tight window around that
    // estimate. Multi-bit gaps (missed starts) are excluded both
    // times so they cannot bias the median upward.
    let median_in = |lo: f64, hi: f64, fallback: f64| {
        let kept: Vec<f64> = distances_s.iter().copied().filter(|&d| d >= lo && d <= hi).collect();
        if kept.is_empty() {
            fallback
        } else {
            median(&kept)
        }
    };
    let prior = cfg.expected_bit_period_s;
    let coarse = median_in(0.4 * prior, 3.0 * prior, prior);
    let bit_period_s = median_in(0.55 * coarse, 1.6 * coarse, coarse);
    distances_s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    let starts = if cfg.gap_fill {
        // Second-pass evidence bar: half the 10th-percentile
        // strength of the first-pass edges. Adaptive, so weak
        // (0-bit) edges still qualify while interrupt bumps —
        // which sit well below real edges on platforms with
        // strong housekeeping signatures — do not.
        let detected: Vec<f64> = raw_starts.iter().map(|&i| edge_response[i]).collect();
        let low_bar =
            if detected.is_empty() { 0.12 * robust_max } else { 0.35 * quantile(&detected, 0.10) };
        fill_gaps(&raw_starts, bit_period_s / dt, &edge_response, low_bar)
    } else {
        raw_starts.clone()
    };

    // Stage 4: per-bit average power and bimodal threshold.
    // Windows much longer than the signalling period are
    // transmission pauses (lead-in/lead-out), not bits — skip them.
    let period_samples = bit_period_s / dt;
    let mean_sq = |w: &[f64]| {
        if w.is_empty() {
            0.0
        } else {
            w.iter().map(|&v| v * v).sum::<f64>() / w.len() as f64
        }
    };
    let mut powers = Vec::with_capacity(starts.len());
    for (i, &s) in starts.iter().enumerate() {
        let end = if i + 1 < starts.len() {
            starts[i + 1]
        } else {
            (s + period_samples.round() as usize).min(energy.len())
        };
        if end > s && (end - s) as f64 <= 1.9 * period_samples {
            let p = match cfg.label_feature {
                LabelFeature::MeanPower => mean_sq(&energy[s..end]),
                LabelFeature::RzDifferential => {
                    let mid = s + (end - s) / 2;
                    mean_sq(&energy[s..mid]) - mean_sq(&energy[mid..end])
                }
            };
            powers.push(p);
        }
    }
    let (threshold, threshold_modes) = select_threshold(&powers);
    let bits: Vec<u8> = match cfg.threshold_window_bits {
        None => powers.iter().map(|&p| (p > threshold) as u8).collect(),
        Some(half) => powers
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(powers.len());
                let (local, _) = select_threshold(&powers[lo..hi]);
                (p > local) as u8
            })
            .collect(),
    };

    RxReport {
        energy,
        energy_dt_s: dt,
        edge_response,
        raw_starts,
        starts,
        distances_s,
        bit_period_s,
        powers,
        threshold,
        threshold_modes,
        bits,
        sanitized_samples,
    }
}

/// Inserts synthetic starts into gaps longer than ~1.5 signalling
/// periods (§IV-B2: "having the signaling time of the transmitted
/// bits helps to fill the gaps that the detection algorithm could not
/// find at its first attempt") — a second detection pass: each
/// candidate position is only accepted if the edge response shows at
/// least weak evidence (`low_bar`) of a start near it. A gap with no
/// such evidence is one *long* bit (an interrupt stretched it), not a
/// run of missed starts.
///
/// Very long gaps (more than [`MAX_FILLED_GAP`] periods) are left
/// alone: deletions are rare (<0.2 %, §IV-B4), so a many-period
/// silence means the transmission paused or ended.
fn fill_gaps(
    starts: &[usize],
    period_samples: f64,
    edge_response: &[f64],
    low_bar: f64,
) -> Vec<usize> {
    if starts.len() < 2 || period_samples <= 0.0 {
        return starts.to_vec();
    }
    let search = (period_samples * 0.25) as usize;
    let mut out = Vec::with_capacity(starts.len());
    for w in starts.windows(2) {
        out.push(w[0]);
        let gap = (w[1] - w[0]) as f64;
        let missing = (gap / period_samples).round() as usize;
        if (2..=MAX_FILLED_GAP).contains(&missing) {
            let step = gap / missing as f64;
            for k in 1..missing {
                let nominal = w[0] + (k as f64 * step).round() as usize;
                // Second pass: look for weak edge evidence near the
                // predicted position.
                let lo = nominal.saturating_sub(search).max(w[0] + 1);
                let hi = (nominal + search).min(w[1].saturating_sub(1));
                let best = (lo..=hi.min(edge_response.len().saturating_sub(1))).max_by(|&a, &b| {
                    edge_response[a]
                        .partial_cmp(&edge_response[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                if let Some(idx) = best {
                    if edge_response[idx] >= low_bar {
                        out.push(idx);
                    }
                }
            }
        }
    }
    out.push(*starts.last().expect("len checked above"));
    out.sort_unstable();
    out.dedup();
    out
}

/// Longest gap, in signalling periods, that gap filling treats as
/// missed starts rather than an intentional pause.
const MAX_FILLED_GAP: usize = 12;

/// Picks the decision threshold from the per-bit power histogram:
/// midway between the two modes when bimodal (Fig. 7), or a robust
/// mid-range fallback when not.
fn select_threshold(powers: &[f64]) -> (f64, Option<(f64, f64)>) {
    if powers.is_empty() {
        return (0.0, None);
    }
    // `try_from_data` only fails on all-non-finite powers; fall back
    // to the quantile mid-range in that (pathological) case.
    let modes = Histogram::try_from_data(powers, 48.min(powers.len().max(2)))
        .ok()
        .and_then(|h| h.two_modes());
    if let Some((lo, hi)) = modes {
        ((lo + hi) / 2.0, Some((lo, hi)))
    } else {
        let lo = quantile(powers, 0.05);
        let hi = quantile(powers, 0.95);
        ((lo + hi) / 2.0, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::iq::Complex;

    /// Builds a synthetic OOK capture directly (no simulator): tone
    /// bursts at `f_bb` for `1` bits, silence for `0` bits.
    fn ook_capture(bits: &[u8], bit_s: f64, fs: f64, f_bb: f64, amp: f64, noise: f64) -> Capture {
        let spb = (bit_s * fs) as usize;
        // Lead-in/lead-out silence: the channel is idle before the
        // transmitter starts and after it stops.
        let pad = 2 * spb;
        let mut samples = Vec::with_capacity(bits.len() * spb + 2 * pad);
        samples.resize(pad, Complex::ZERO);
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        let mut next_noise = || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % 10_000) as f64 / 10_000.0 - 0.5
        };
        for (i, &b) in bits.iter().enumerate() {
            for n in 0..spb {
                let t = (i * spb + n) as f64 / fs;
                let mut z = Complex::ZERO;
                // Every bit gets a short leading blip (the usleep
                // housekeeping edge); 1-bits stay on for half the bit.
                let on = if b == 1 { n < spb / 2 } else { n < spb / 12 };
                if on {
                    z += Complex::from_polar(amp, 2.0 * std::f64::consts::PI * f_bb * t);
                }
                z += Complex::new(noise * next_noise(), noise * next_noise());
                samples.push(z);
            }
        }
        samples.extend(std::iter::repeat_n(Complex::ZERO, pad));
        Capture { samples, sample_rate: fs, center_freq: 1.5e6 }
    }

    fn test_receiver(bit_s: f64) -> Receiver {
        Receiver::new(RxConfig {
            fft_size: 256,
            decimation: 8,
            ..RxConfig::new(1.5e6 - 0.4e6, bit_s)
        })
    }

    #[test]
    fn demodulates_clean_ook() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1];
        let cap = ook_capture(&bits, 400e-6, 2.4e6, -0.4e6, 1.0, 0.02);
        let report = test_receiver(400e-6).demodulate(&cap);
        assert_eq!(report.bits.len(), bits.len(), "starts {:?}", report.starts.len());
        assert_eq!(report.bits, bits);
    }

    #[test]
    fn recovers_bit_period() {
        let bits: Vec<u8> = (0..64).map(|i| (i % 3 != 0) as u8).collect();
        let cap = ook_capture(&bits, 400e-6, 2.4e6, -0.4e6, 1.0, 0.02);
        let report = test_receiver(400e-6).demodulate(&cap);
        assert!((report.bit_period_s - 400e-6).abs() < 40e-6, "period {}", report.bit_period_s);
        assert!((report.transmission_rate_bps() - 2500.0).abs() < 300.0);
    }

    #[test]
    fn threshold_comes_from_bimodal_histogram() {
        let bits: Vec<u8> = (0..128).map(|i| (i % 2) as u8).collect();
        let cap = ook_capture(&bits, 400e-6, 2.4e6, -0.4e6, 1.0, 0.02);
        let report = test_receiver(400e-6).demodulate(&cap);
        let (lo, hi) = report.threshold_modes.expect("alternating bits must be bimodal");
        assert!(lo < report.threshold && report.threshold < hi);
    }

    #[test]
    fn distances_are_positively_skewed_under_jitter() {
        // Jittered bit lengths (like usleep lengthening) ⇒ the Fig. 6
        // right-skewed distance distribution.
        let fs = 2.4e6;
        let f_bb = -0.4e6;
        let mut samples = Vec::new();
        let mut state = 7u64;
        let mut jitter = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // exponential-ish positive jitter up to ~40%
            ((state % 1000) as f64 / 1000.0).powi(2) * 0.4
        };
        let bits: Vec<u8> = (0..96).map(|i| (i % 2) as u8).collect();
        samples.resize((2.0 * 400e-6 * fs) as usize, Complex::ZERO);
        for &b in &bits {
            let spb = (400e-6 * (1.0 + jitter()) * fs) as usize;
            for n in 0..spb {
                let t = (samples.len()) as f64 / fs;
                let on = if b == 1 { n < spb / 2 } else { n < spb / 12 };
                let z = if on {
                    Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * f_bb * t)
                } else {
                    Complex::ZERO
                };
                samples.push(z);
            }
        }
        let cap = Capture { samples, sample_rate: fs, center_freq: 1.5e6 };
        let report = test_receiver(400e-6).demodulate(&cap);
        assert!(report.distances_s.len() > 50);
        let skew = emsc_sdr::stats::skewness(&report.distances_s);
        assert!(skew > 0.2, "skewness {skew}");
    }

    #[test]
    fn gap_fill_inserts_missing_starts_with_evidence() {
        // Weak edges (above the low bar) at the true positions 300/400.
        let mut resp = vec![0.0; 700];
        resp[302] = 5.0;
        resp[399] = 5.0;
        let starts = vec![0usize, 100, 200, 500, 600];
        let filled = fill_gaps(&starts, 100.0, &resp, 1.0);
        assert_eq!(filled, vec![0, 100, 200, 302, 399, 500, 600]);
    }

    #[test]
    fn gap_fill_skips_gaps_without_edge_evidence() {
        // A 2-period gap with a flat edge response is one long bit.
        let resp = vec![0.0; 700];
        let starts = vec![0usize, 100, 300, 400];
        let filled = fill_gaps(&starts, 100.0, &resp, 1.0);
        assert_eq!(filled, starts);
    }

    #[test]
    fn gap_fill_leaves_long_silences_alone() {
        let resp = vec![10.0; 2200];
        let starts = vec![0usize, 100, 2000, 2100];
        let filled = fill_gaps(&starts, 100.0, &resp, 1.0);
        assert_eq!(filled, starts, "a 19-period silence is not 18 deletions");
    }

    #[test]
    fn gap_fill_handles_short_input() {
        let resp = vec![0.0; 10];
        assert_eq!(fill_gaps(&[], 100.0, &resp, 1.0), Vec::<usize>::new());
        assert_eq!(fill_gaps(&[5], 100.0, &resp, 1.0), vec![5]);
    }

    #[test]
    fn blind_period_estimation_finds_the_bit_clock() {
        // A mixed bit pattern at 400 µs. (A *pure* alternating
        // sequence autocorrelates at 2T — the "10" super-period —
        // which is why real transmissions with a payload after the
        // preamble are what the estimator sees.)
        let bits: Vec<u8> = (0..64).map(|i| ((i * 3 + 1) % 4 < 2) as u8).collect();
        let cap = ook_capture(&bits, 400e-6, 2.4e6, -0.4e6, 1.0, 0.02);
        let rx = test_receiver(400e-6);
        let cfg = rx.config();
        let bins = vec![emsc_sdr::fft::frequency_bin(
            cfg.switching_freq_hz - cap.center_freq,
            cfg.fft_size,
            cap.sample_rate,
        )];
        let energy =
            emsc_sdr::sliding::energy_signal(&cap.samples, cfg.fft_size, &bins, cfg.decimation);
        let dt = cfg.decimation as f64 / cap.sample_rate;
        let est = estimate_bit_period(&energy, dt, 50e-6, 5e-3).expect("periodicity");
        assert!((est - 400e-6).abs() < 50e-6, "estimated {est}");
    }

    #[test]
    fn blind_demodulation_matches_informed() {
        let bits: Vec<u8> = (0..48).map(|i| ((i * 3 + 1) % 4 < 2) as u8).collect();
        let cap = ook_capture(&bits, 400e-6, 2.4e6, -0.4e6, 1.0, 0.02);
        // The blind receiver is primed with a WRONG expected period.
        let rx = Receiver::new(RxConfig {
            fft_size: 256,
            decimation: 8,
            ..RxConfig::new(1.5e6 - 0.4e6, 150e-6)
        });
        let blind = rx.demodulate_blind(&cap);
        assert_eq!(blind.bits, bits, "blind demod must recover the stream");
    }

    #[test]
    fn estimate_handles_degenerate_input() {
        assert!(estimate_bit_period(&[], 1e-5, 50e-6, 5e-3).is_none());
        assert!(estimate_bit_period(&[1.0; 100], 1e-5, 50e-6, 5e-3).is_none());
    }

    #[test]
    fn threshold_fallback_for_unimodal_powers() {
        let powers = vec![1.0; 40];
        let (thr, modes) = select_threshold(&powers);
        assert!(modes.is_none() || thr > 0.0);
        assert!(thr.is_finite());
    }

    #[test]
    fn harmonic_count_is_respected() {
        let cfg = RxConfig::new(970e3, 300e-6);
        assert_eq!(cfg.harmonics, 2);
        let rx = Receiver::new(RxConfig { harmonics: 1, ..cfg });
        assert_eq!(rx.config().harmonics, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_fft_size_panics() {
        Receiver::new(RxConfig { fft_size: 1000, ..RxConfig::new(970e3, 300e-6) });
    }

    #[test]
    fn try_new_reports_config_errors() {
        let bad = RxConfig { fft_size: 1000, ..RxConfig::new(970e3, 300e-6) };
        assert!(matches!(Receiver::try_new(bad), Err(RxError::InvalidConfig(_))));
        let bad = RxConfig { decimation: 0, ..RxConfig::new(970e3, 300e-6) };
        assert!(matches!(Receiver::try_new(bad), Err(RxError::InvalidConfig(_))));
        let bad = RxConfig { harmonics: 0, ..RxConfig::new(970e3, 300e-6) };
        assert!(matches!(Receiver::try_new(bad), Err(RxError::InvalidConfig(_))));
        assert!(Receiver::try_new(RxConfig::new(970e3, 300e-6)).is_ok());
    }

    #[test]
    fn receive_matches_demodulate_on_clean_captures() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0];
        let cap = ook_capture(&bits, 400e-6, 2.4e6, -0.4e6, 1.0, 0.02);
        let rx = test_receiver(400e-6);
        let report = rx.receive(&cap).expect("clean capture must decode");
        assert_eq!(report, rx.demodulate(&cap));
        assert_eq!(report.sanitized_samples, 0);
    }

    #[test]
    fn receive_classifies_degenerate_captures() {
        let rx = test_receiver(400e-6);
        let empty = Capture { samples: Vec::new(), sample_rate: 2.4e6, center_freq: 1.5e6 };
        assert_eq!(rx.receive(&empty), Err(RxError::Capture(CaptureError::Empty)));
        let short =
            Capture { samples: vec![Complex::ZERO; 100], sample_rate: 2.4e6, center_freq: 1.5e6 };
        assert_eq!(
            rx.receive(&short),
            Err(RxError::Capture(CaptureError::TooShort { needed: 256, got: 100 }))
        );
        let bad_rate =
            Capture { samples: vec![Complex::ZERO; 1000], sample_rate: 0.0, center_freq: 1.5e6 };
        assert_eq!(rx.receive(&bad_rate), Err(RxError::Capture(CaptureError::InvalidSampleRate)));
        // Carrier out of band: tuner parked far from every harmonic.
        let off_band = Capture {
            samples: vec![Complex::ZERO; 10_000],
            sample_rate: 2.4e6,
            center_freq: 100e6,
        };
        assert_eq!(rx.receive(&off_band), Err(RxError::NoCarrier));
    }

    #[test]
    fn silence_is_an_ok_empty_decode_not_an_error() {
        let rx = test_receiver(400e-6);
        let silence = Capture {
            samples: vec![Complex::ZERO; 50_000],
            sample_rate: 2.4e6,
            center_freq: 1.5e6,
        };
        let report = rx.receive(&silence).expect("silence is a valid (empty) decode");
        assert!(report.bits.is_empty());
    }

    #[test]
    fn nan_laced_capture_decodes_with_sanitization() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0];
        let mut cap = ook_capture(&bits, 400e-6, 2.4e6, -0.4e6, 1.0, 0.02);
        // A sprinkle of NaN (far fewer than half the samples).
        for i in (0..cap.samples.len()).step_by(5000) {
            cap.samples[i] = Complex::new(f64::NAN, f64::INFINITY);
        }
        let report = test_receiver(400e-6).receive(&cap).expect("minority NaN is recoverable");
        assert!(report.sanitized_samples > 0);
        assert!(report.bits.iter().all(|&b| b <= 1));
        // All-NaN is not recoverable.
        for s in &mut cap.samples {
            *s = Complex::new(f64::NAN, f64::NAN);
        }
        assert!(matches!(
            test_receiver(400e-6).receive(&cap),
            Err(RxError::Capture(CaptureError::NonFinite { .. }))
        ));
    }

    #[test]
    fn demodulate_wrappers_degrade_to_empty_reports() {
        let rx = test_receiver(400e-6);
        let empty = Capture { samples: Vec::new(), sample_rate: 2.4e6, center_freq: 1.5e6 };
        assert_eq!(rx.demodulate(&empty).bits, Vec::<u8>::new());
        assert_eq!(rx.demodulate_blind(&empty).bits, Vec::<u8>::new());
        let bad_rate =
            Capture { samples: vec![Complex::ZERO; 16], sample_rate: f64::NAN, center_freq: 0.0 };
        assert!(rx.demodulate(&bad_rate).bits.is_empty());
    }

    #[test]
    fn rx_error_display_names_the_cause() {
        let e = RxError::Capture(CaptureError::TooShort { needed: 256, got: 3 });
        assert!(e.to_string().contains("256"));
        assert!(RxError::NoCarrier.to_string().contains("band"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
