//! Streaming receive chain: resumable acquisition → symbol-sync →
//! demod → deframe stages fed IQ in chunks.
//!
//! The paper's receiver runs *live*: the SDR produces I/Q continuously
//! and the attacker demodulates while samples arrive. This module
//! splits the batch [`Receiver`] pipeline into state machines with a
//! `push(chunk)` interface that carry their state (sliding-DFT window,
//! decimation phase, smoothing prefix, convolution ring, marker-scan
//! position) across chunk boundaries:
//!
//! - [`StreamingReceiver`] — IQ chunks in, a final [`RxReport`]
//!   **bit-identical** to [`Receiver::receive`] (or
//!   [`Receiver::receive_blind`]) over the concatenated stream, for
//!   every chunking. The per-sample front end (energy, smoothing, edge
//!   convolution) runs incrementally with O(kernel) state; only the
//!   decision stages (peak timing, thresholds), which are global by
//!   construction in §IV-B, run at [`StreamingReceiver::finish`] over
//!   the accumulated energy signal — and they are the *same code* the
//!   batch path runs ([`decode_from_energy`]), so equivalence holds by
//!   construction.
//! - [`Deframer`] — demodulated bits in, [`FrameEvent`]s out. Commits
//!   to the first exact start marker as soon as it appears (the same
//!   position batch [`try_deframe`] selects) and then emits each frame
//!   the moment its declared length is on hand, so payloads surface
//!   mid-stream; inexact candidates are resolved at
//!   [`Deframer::finish`], exactly like the batch earliest-minimum
//!   rule. Unlike the batch API it keeps scanning after a frame, so a
//!   long-running session can recover a *sequence* of frames.
//!
//! Typed errors ([`RxError`], [`FrameError`]) are per-stream values,
//! never panics, so one poisoned stream in a multi-tenant session can
//! never take down its neighbours.

use emsc_sdr::dsp::{convolve_same, edge_kernel};
use emsc_sdr::error::CaptureError;
use emsc_sdr::iq::Complex;
use emsc_sdr::stream::{ConvolveSameStream, EnergyStream, SmoothStream};

use crate::frame::{
    body_span, decode_body, decode_rigid_body, header_span, lattice_score, lattice_window,
    marker_errors_at, peek_declared, peek_declared_rigid, peek_need, rigid_body_span, try_deframe,
    Deframed, FrameConfig, FrameError, LATTICE_EXTRA_TOLERANCE, LATTICE_PROBE_MARKERS,
    START_MARKER,
};
use crate::marker::{segments_for, MarkerConfig, MarkerStream};
use crate::rx::{
    carrier_bins_for, decode_from_energy, edge_kernel_len, try_estimate_bit_period, Receiver,
    RxConfig, RxError, RxReport, SyncLoss,
};

/// Width of the energy moving average (shared with the batch path).
const SMOOTH_WIDTH: usize = 3;
/// Plausible covert bit periods for blind estimation, seconds (the
/// same bounds [`Receiver::receive_blind`] uses).
const BLIND_MIN_PERIOD_S: f64 = 50e-6;
const BLIND_MAX_PERIOD_S: f64 = 5e-3;

/// Per-push progress counters from a [`StreamingReceiver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RxProgress {
    /// Decimated energy samples completed by this chunk.
    pub energy_samples: usize,
    /// Edge-response samples completed by this chunk (always 0 in
    /// blind mode, where the kernel length is only known at finish).
    pub edge_samples: usize,
    /// Non-finite input samples sanitised in this chunk.
    pub sanitized_samples: usize,
}

/// The incremental covert-channel receiver.
///
/// Feed IQ with [`StreamingReceiver::push`]; call
/// [`StreamingReceiver::finish`] at end of stream for the
/// [`RxReport`]. Construction performs the same validation as the
/// batch entry points, in the same precedence order: configuration
/// errors first, then the sample rate, then carrier presence.
#[derive(Debug, Clone)]
pub struct StreamingReceiver {
    receiver: Receiver,
    dt: f64,
    blind: bool,
    front: EnergyStream,
    smoother: SmoothStream,
    /// Edge convolver (informed mode only: blind mode cannot size the
    /// kernel until the bit period is estimated at finish).
    conv: Option<ConvolveSameStream>,
    energy: Vec<f64>,
    edge: Vec<f64>,
    raw_scratch: Vec<f64>,
    sync_loss: Option<SyncLoss>,
    finished: bool,
}

impl StreamingReceiver {
    /// Creates an *informed* streaming receiver (bit period from
    /// configuration): [`StreamingReceiver::finish`] is bit-identical
    /// to [`Receiver::receive`] over the same concatenated samples.
    ///
    /// # Errors
    ///
    /// [`RxError::InvalidConfig`], [`RxError::Capture`]
    /// (`InvalidSampleRate`) or [`RxError::NoCarrier`] — the same
    /// checks, in the same order, as the batch path.
    pub fn new(config: RxConfig, sample_rate: f64, center_freq: f64) -> Result<Self, RxError> {
        Self::build(config, sample_rate, center_freq, false)
    }

    /// Creates a *blind* streaming receiver (bit period estimated from
    /// the stream at finish): [`StreamingReceiver::finish`] is
    /// bit-identical to [`Receiver::receive_blind`].
    ///
    /// # Errors
    ///
    /// As [`StreamingReceiver::new`].
    pub fn new_blind(
        config: RxConfig,
        sample_rate: f64,
        center_freq: f64,
    ) -> Result<Self, RxError> {
        Self::build(config, sample_rate, center_freq, true)
    }

    fn build(
        config: RxConfig,
        sample_rate: f64,
        center_freq: f64,
        blind: bool,
    ) -> Result<Self, RxError> {
        let receiver = Receiver::try_new(config)?;
        if !(sample_rate > 0.0 && sample_rate.is_finite()) {
            return Err(RxError::Capture(CaptureError::InvalidSampleRate));
        }
        let cfg = receiver.config();
        let bins = carrier_bins_for(cfg, sample_rate, center_freq);
        if bins.is_empty() {
            return Err(RxError::NoCarrier);
        }
        let dt = cfg.decimation as f64 / sample_rate;
        let front = EnergyStream::new(cfg.fft_size, &bins, cfg.decimation)?;
        let conv = if blind {
            None
        } else {
            Some(ConvolveSameStream::new(&edge_kernel(edge_kernel_len(cfg, dt))))
        };
        Ok(StreamingReceiver {
            receiver,
            dt,
            blind,
            front,
            smoother: SmoothStream::new(SMOOTH_WIDTH),
            conv,
            energy: Vec::new(),
            edge: Vec::new(),
            raw_scratch: Vec::new(),
            sync_loss: None,
            finished: false,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &RxConfig {
        self.receiver.config()
    }

    /// Seconds per energy sample.
    pub fn energy_dt_s(&self) -> f64 {
        self.dt
    }

    /// Total IQ samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.front.samples_seen()
    }

    /// Non-finite IQ samples sanitised so far.
    pub fn sanitized_samples(&self) -> usize {
        self.front.sanitized()
    }

    /// Why symbol sync fell back to the configured prior, if blind
    /// estimation failed at [`StreamingReceiver::finish`].
    pub fn sync_loss(&self) -> Option<SyncLoss> {
        self.sync_loss
    }

    /// Feeds one chunk of IQ samples. Steady-state allocation-free:
    /// all per-sample state lives in fixed-size rings, and the
    /// accumulated energy/edge vectors grow amortised.
    pub fn push(&mut self, chunk: &[Complex]) -> RxProgress {
        let sanitized_before = self.front.sanitized();
        self.raw_scratch.clear();
        self.front.push_into(chunk, &mut self.raw_scratch);
        let smoothed_from = self.energy.len();
        self.smoother.push_into(&self.raw_scratch, &mut self.energy);
        let energy_samples = self.energy.len() - smoothed_from;
        let edge_samples = match &mut self.conv {
            Some(conv) => conv.push_into(&self.energy[smoothed_from..], &mut self.edge),
            None => 0,
        };
        RxProgress {
            energy_samples,
            edge_samples,
            sanitized_samples: self.front.sanitized() - sanitized_before,
        }
    }

    /// Ends the stream and runs the decision stages, producing exactly
    /// the report the batch path would for the concatenated samples.
    ///
    /// # Errors
    ///
    /// [`RxError::Capture`] with the end-of-stream classification
    /// (empty, too short for one window, majority-non-finite) — the
    /// same policy as the batch path — or [`RxError::InvalidConfig`]
    /// if a blind-estimated period is degenerate.
    pub fn finish(&mut self) -> Result<RxReport, RxError> {
        assert!(!self.finished, "finish() may only be called once");
        self.finished = true;
        self.front.classify()?;
        let tail_from = self.energy.len();
        self.smoother.finish_into(&mut self.energy);
        let sanitized = self.front.sanitized();
        if self.blind {
            // Mirror `receive_blind`: estimate the period over the
            // whole smoothed energy signal, fall back to the prior,
            // re-validate the tuned configuration, then decode. The
            // batch path recomputes the energy signal with the tuned
            // receiver; only the bit period changed, so the energy it
            // recomputes is the one already accumulated here.
            let estimated = match try_estimate_bit_period(
                &self.energy,
                self.dt,
                BLIND_MIN_PERIOD_S,
                BLIND_MAX_PERIOD_S,
            ) {
                Ok(period) => period,
                Err(loss) => {
                    self.sync_loss = Some(loss);
                    self.config().expected_bit_period_s
                }
            };
            let tuned = Receiver::try_new(RxConfig {
                expected_bit_period_s: estimated,
                ..self.config().clone()
            })?;
            let cfg = tuned.config();
            let energy = std::mem::take(&mut self.energy);
            let edge = convolve_same(&energy, &edge_kernel(edge_kernel_len(cfg, self.dt)));
            Ok(decode_from_energy(cfg, energy, edge, self.dt, sanitized))
        } else {
            let conv = self.conv.as_mut().expect("informed mode has a convolver");
            conv.push_into(&self.energy[tail_from..], &mut self.edge);
            conv.finish_into(&mut self.edge);
            let energy = std::mem::take(&mut self.energy);
            let edge = std::mem::take(&mut self.edge);
            Ok(decode_from_energy(self.receiver.config(), energy, edge, self.dt, sanitized))
        }
    }
}

/// An event from the streaming [`Deframer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A start marker was accepted at the given absolute bit position
    /// (with this many marker-bit errors).
    MarkerFound {
        /// Absolute bit index of the marker's first bit.
        position: usize,
        /// Marker bits that mismatched (0 for an exact lock).
        errors: usize,
    },
    /// A frame decoded. `payload_start` is the absolute bit index of
    /// its body, directly comparable with batch [`try_deframe`].
    Frame(Deframed),
    /// The stream ended without (or inside) a frame.
    Lost(FrameError),
}

/// Incremental deframer: push demodulated bits, collect
/// [`FrameEvent`]s.
///
/// For non-interleaved frames the marker scan and body decode run
/// online; an interleaved body is deinterleaved whole by the batch
/// decoder, so with `interleave_depth` set the deframer buffers until
/// [`Deframer::finish`] (matching batch behaviour exactly is
/// impossible sooner: the final interleaver block depends on the last
/// bit of the stream).
#[derive(Debug, Clone)]
pub struct Deframer {
    config: FrameConfig,
    max_marker_errors: usize,
    bits: Vec<u8>,
    /// Absolute bit index of `bits[0]` (bits of emitted frames are
    /// dropped; positions stay absolute across the whole stream).
    base: usize,
    /// Next unscanned relative position for the marker search.
    scanned: usize,
    /// Best inexact candidate so far: `(errors, relative position)`.
    best: Option<(usize, usize)>,
    /// Committed (exact) marker, relative position.
    committed: Option<usize>,
    /// Incremental marker-code decoder for the committed frame's body
    /// (marker-coded frames only).
    marker_rx: Option<MarkerRx>,
    frames_emitted: usize,
    finished: bool,
}

/// Incremental recovery of a marker-coded frame body: mirrors the
/// batch `recover_rigid` pump exactly (first enough segments to peek
/// the declared length, then exactly the declared body), so the
/// decisions — and therefore the decoded frame — are bit-identical to
/// batch for every chunking.
#[derive(Debug, Clone)]
struct MarkerRx {
    ms: MarkerStream,
    rigid: Vec<u8>,
    /// Body-relative bits already fed to the marker decoder.
    fed: usize,
    declared: Option<usize>,
}

impl MarkerRx {
    fn new(mcfg: MarkerConfig) -> Self {
        MarkerRx { ms: MarkerStream::new(mcfg), rigid: Vec::new(), fed: 0, declared: None }
    }

    /// Feeds any new body bits and pumps segments as far as the batch
    /// gating allows. Returns `true` once the rigid body is complete
    /// (always, at end of stream, once the declared length is known).
    fn pump(&mut self, body: &[u8], config: FrameConfig, end_of_stream: bool) -> bool {
        if self.fed < body.len() {
            self.ms.push(&body[self.fed..]);
            self.fed = body.len();
        }
        let s = self.ms.config().segment_len;
        if self.declared.is_none() {
            let need = peek_need(config);
            while self.rigid.len() < need && self.ms.next_segment(&mut self.rigid, end_of_stream) {}
            if self.rigid.len() < need && !end_of_stream {
                return false;
            }
            self.declared = peek_declared_rigid(&self.rigid, config);
        }
        let Some(declared) = self.declared else {
            // Stream exhausted inside the header; nothing more can
            // resolve (end of stream only).
            return end_of_stream;
        };
        let want = segments_for(self.ms.config(), rigid_body_span(config, declared)) * s;
        self.ms.expect_segments(want / s);
        while self.rigid.len() < want && self.ms.next_segment(&mut self.rigid, end_of_stream) {}
        self.rigid.len() >= want || end_of_stream
    }

    /// Decodes the completed rigid body, padding any truncation the
    /// way the batch path does.
    fn decode(mut self, config: FrameConfig, payload_start: usize) -> Result<Deframed, FrameError> {
        let declared = self.declared.ok_or(FrameError::TruncatedHeader)?;
        let want = segments_for(self.ms.config(), rigid_body_span(config, declared))
            * self.ms.config().segment_len;
        let mut stats = self.ms.stats();
        if self.rigid.len() < want {
            stats.truncated_bits += want - self.rigid.len();
            self.rigid.resize(want, 0);
        }
        self.rigid.truncate(want);
        let decoded = decode_rigid_body(&self.rigid, config)?;
        let mut frame = decoded.into_deframed(payload_start);
        frame.marker = Some(stats);
        Ok(frame)
    }

    /// Received body bits consumed by the emitted segments.
    fn consumed(&self) -> usize {
        self.ms.consumed_bits()
    }
}

impl Deframer {
    /// Creates a deframer tolerating up to `max_marker_errors` bit
    /// errors in the start marker, like batch [`try_deframe`].
    pub fn new(config: FrameConfig, max_marker_errors: usize) -> Self {
        Deframer {
            config,
            max_marker_errors,
            bits: Vec::new(),
            base: 0,
            scanned: 0,
            best: None,
            committed: None,
            marker_rx: None,
            frames_emitted: 0,
            finished: false,
        }
    }

    /// Frames emitted so far.
    pub fn frames_emitted(&self) -> usize {
        self.frames_emitted
    }

    /// Feeds demodulated bits, returning any events they complete.
    pub fn push(&mut self, new_bits: &[u8]) -> Vec<FrameEvent> {
        self.bits.extend_from_slice(new_bits);
        if self.config.interleave_depth.is_some()
            && self.config.parity
            && self.config.marker.is_none()
        {
            // Deferred wholly to finish (see type docs).
            return Vec::new();
        }
        let mut events = Vec::new();
        loop {
            if self.committed.is_none() {
                self.scan_for_marker(&mut events);
            }
            let Some(pos) = self.committed else { break };
            let body_at = pos + START_MARKER.len();
            if let Some(mcfg) = self.config.marker {
                // Marker-coded body: the incremental drift-tracking
                // decoder peeks the declared length and completes the
                // frame as soon as every alignment window is on hand.
                let mrx = self.marker_rx.get_or_insert_with(|| MarkerRx::new(mcfg));
                if !mrx.pump(&self.bits[body_at..], self.config, false) {
                    break;
                }
                let mrx = self.marker_rx.take().expect("pumped above");
                let consumed = mrx.consumed().min(self.bits.len() - body_at);
                let frame =
                    mrx.decode(self.config, self.base + body_at).expect("declared length resolved");
                events.push(FrameEvent::Frame(frame));
                self.frames_emitted += 1;
                self.bits.drain(..body_at + consumed);
                self.base += body_at + consumed;
                self.scanned = 0;
                self.best = None;
                self.committed = None;
                continue;
            }
            // Emit the frame as soon as the declared body is on hand.
            let available = self.bits.len() - body_at;
            let Some(declared) = peek_declared(&self.bits[body_at..], self.config) else {
                break;
            };
            let needed = header_span(self.config) + body_span(self.config, declared);
            if available < needed {
                break;
            }
            let span = &self.bits[body_at..body_at + needed];
            let body = decode_body(span, self.config).expect("complete header span decodes");
            events.push(FrameEvent::Frame(body.into_deframed(self.base + body_at)));
            self.frames_emitted += 1;
            // Rebase past the consumed frame and keep scanning: a
            // long-running session sees a *sequence* of frames.
            self.bits.drain(..body_at + needed);
            self.base += body_at + needed;
            self.scanned = 0;
            self.best = None;
            self.committed = None;
        }
        events
    }

    fn scan_for_marker(&mut self, events: &mut Vec<FrameEvent>) {
        let m = START_MARKER.len();
        if self.bits.len() < m {
            return;
        }
        if let Some(mcfg) = self.config.marker {
            // Marker-coded frames rank anchors by segment-marker
            // lattice score (the batch `ranked_marker_anchors` rule).
            // A candidate's score is final only once its whole probe
            // window is buffered, so scan decidable positions and
            // commit at the first candidate no later position can
            // outrank — an un-aliased, fully *exact* lattice with an
            // exact start marker, the unique maximum of the batch
            // comparator. Anything weaker is resolved at finish() by
            // the batch scan over the full buffer.
            let window = m + lattice_window(mcfg);
            while self.scanned + window <= self.bits.len() {
                let pos = self.scanned;
                self.scanned += 1;
                let errors = marker_errors_at(&self.bits, pos);
                if errors > self.max_marker_errors + LATTICE_EXTRA_TOLERANCE {
                    continue;
                }
                let score = lattice_score(&self.bits, pos + m, mcfg);
                if errors == 0 && score.exact == LATTICE_PROBE_MARKERS && !score.aliased {
                    self.committed = Some(pos);
                    events.push(FrameEvent::MarkerFound { position: self.base + pos, errors: 0 });
                    return;
                }
            }
            return;
        }
        for pos in self.scanned..=self.bits.len() - m {
            let errors = marker_errors_at(&self.bits, pos);
            if errors <= self.max_marker_errors && self.best.is_none_or(|(e, _)| errors < e) {
                self.best = Some((errors, pos));
                if errors == 0 {
                    // The batch rule commits to the earliest exact
                    // match; commit now so the frame can stream out.
                    self.committed = Some(pos);
                    events.push(FrameEvent::MarkerFound { position: self.base + pos, errors: 0 });
                    self.scanned = pos + 1;
                    return;
                }
            }
        }
        self.scanned = self.bits.len() - m + 1;
    }

    /// Ends the stream, resolving any uncommitted candidate the way
    /// batch [`try_deframe`] would: the earliest minimum-error marker
    /// wins, a truncated body decodes as far as it goes, and a stream
    /// with no marker (and no frames already emitted) reports
    /// [`FrameError::MarkerNotFound`].
    pub fn finish(&mut self) -> Vec<FrameEvent> {
        assert!(!self.finished, "finish() may only be called once");
        self.finished = true;
        let rigid_interleaved = self.config.interleave_depth.is_some()
            && self.config.parity
            && self.config.marker.is_none();
        // Marker-coded frames always defer to the batch scan: the
        // ranked candidate chain may fall through past a committed
        // anchor whose decode proves implausible, and only the full
        // buffer can rank end-of-stream candidates whose lattice
        // windows never filled. (A frame the push path already
        // emitted has been drained from the buffer, so the batch scan
        // here sees only the unresolved tail.)
        if rigid_interleaved || self.config.marker.is_some() {
            return match try_deframe(&self.bits, self.config, self.max_marker_errors) {
                Ok(frame) => {
                    let pos = frame.payload_start - START_MARKER.len();
                    let errors = marker_errors_at(&self.bits, pos);
                    self.frames_emitted += 1;
                    vec![
                        FrameEvent::MarkerFound { position: self.base + pos, errors },
                        FrameEvent::Frame(Deframed {
                            payload_start: self.base + frame.payload_start,
                            ..frame
                        }),
                    ]
                }
                Err(e) if self.frames_emitted == 0 => vec![FrameEvent::Lost(e)],
                Err(_) => Vec::new(),
            };
        }
        let mut events = Vec::new();
        let pos = match self.committed {
            Some(pos) => Some(pos),
            None => {
                let best = self.best;
                if let Some((errors, pos)) = best {
                    events.push(FrameEvent::MarkerFound { position: self.base + pos, errors });
                }
                best.map(|(_, pos)| pos)
            }
        };
        match pos {
            Some(pos) => {
                let body_at = pos + START_MARKER.len();
                match decode_body(&self.bits[body_at..], self.config) {
                    Ok(body) => {
                        self.frames_emitted += 1;
                        events.push(FrameEvent::Frame(body.into_deframed(self.base + body_at)));
                    }
                    Err(e) => events.push(FrameEvent::Lost(e)),
                }
            }
            None if self.frames_emitted == 0 => {
                events.push(FrameEvent::Lost(FrameError::MarkerNotFound))
            }
            None => {}
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::frame_payload;
    use emsc_sdr::Capture;

    fn chunkings(len: usize) -> Vec<usize> {
        vec![1, 7, 64 * 1024, len.max(1)]
    }

    /// Synthetic OOK capture (tone bursts for 1-bits over silence).
    fn ook_capture(bits: &[u8]) -> Capture {
        let fs = 2.4e6;
        let f_bb = -0.4e6;
        let spb = (400e-6 * fs) as usize;
        let pad = 2 * spb;
        let mut samples = vec![Complex::ZERO; pad];
        for (i, &b) in bits.iter().enumerate() {
            for n in 0..spb {
                let t = (i * spb + n) as f64 / fs;
                let on = if b == 1 { n < spb / 2 } else { n < spb / 12 };
                samples.push(if on {
                    Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * f_bb * t)
                } else {
                    Complex::ZERO
                });
            }
        }
        samples.extend(std::iter::repeat_n(Complex::ZERO, pad));
        Capture { samples, sample_rate: fs, center_freq: 1.5e6 }
    }

    fn rx_config(expected_bit_period_s: f64) -> RxConfig {
        RxConfig {
            fft_size: 256,
            decimation: 8,
            ..RxConfig::new(1.5e6 - 0.4e6, expected_bit_period_s)
        }
    }

    #[test]
    fn streaming_receiver_is_bit_identical_to_batch() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1];
        let cap = ook_capture(&bits);
        let batch = Receiver::new(rx_config(400e-6)).receive(&cap).expect("clean capture decodes");
        for chunk in chunkings(cap.samples.len()) {
            let mut rx =
                StreamingReceiver::new(rx_config(400e-6), cap.sample_rate, cap.center_freq)
                    .expect("valid config");
            for c in cap.samples.chunks(chunk) {
                rx.push(c);
            }
            let report = rx.finish().expect("stream decodes");
            assert_eq!(report, batch, "chunk {chunk}");
        }
    }

    #[test]
    fn blind_streaming_receiver_matches_receive_blind() {
        let bits: Vec<u8> = (0..48).map(|i| ((i * 3 + 1) % 4 < 2) as u8).collect();
        let cap = ook_capture(&bits);
        // Deliberately wrong prior: blind estimation must recover it.
        let batch = Receiver::new(rx_config(150e-6)).receive_blind(&cap).expect("blind decode");
        for chunk in [7usize, 65_536] {
            let mut rx =
                StreamingReceiver::new_blind(rx_config(150e-6), cap.sample_rate, cap.center_freq)
                    .expect("valid config");
            for c in cap.samples.chunks(chunk) {
                rx.push(c);
            }
            let report = rx.finish().expect("stream decodes");
            assert_eq!(report, batch, "chunk {chunk}");
            assert!(rx.sync_loss().is_none(), "periodicity was present");
        }
    }

    #[test]
    fn streaming_receiver_reports_typed_errors() {
        // Construction-time checks, in batch precedence order.
        let bad = RxConfig { fft_size: 1000, ..rx_config(400e-6) };
        assert!(matches!(
            StreamingReceiver::new(bad, 2.4e6, 1.5e6),
            Err(RxError::InvalidConfig(_))
        ));
        assert_eq!(
            StreamingReceiver::new(rx_config(400e-6), 0.0, 1.5e6).unwrap_err(),
            RxError::Capture(CaptureError::InvalidSampleRate)
        );
        assert_eq!(
            StreamingReceiver::new(rx_config(400e-6), 2.4e6, 100e6).unwrap_err(),
            RxError::NoCarrier
        );
        // End-of-stream classification matches the batch policy.
        let mut rx = StreamingReceiver::new(rx_config(400e-6), 2.4e6, 1.5e6).unwrap();
        assert_eq!(rx.finish().unwrap_err(), RxError::Capture(CaptureError::Empty));
        let mut rx = StreamingReceiver::new(rx_config(400e-6), 2.4e6, 1.5e6).unwrap();
        rx.push(&[Complex::ZERO; 100]);
        assert_eq!(
            rx.finish().unwrap_err(),
            RxError::Capture(CaptureError::TooShort { needed: 256, got: 100 })
        );
        let mut rx = StreamingReceiver::new(rx_config(400e-6), 2.4e6, 1.5e6).unwrap();
        rx.push(&vec![Complex::new(f64::NAN, f64::NAN); 1000]);
        assert!(matches!(
            rx.finish().unwrap_err(),
            RxError::Capture(CaptureError::NonFinite { .. })
        ));
    }

    #[test]
    fn nan_laced_stream_matches_batch_sanitization() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0];
        let mut cap = ook_capture(&bits);
        for i in (0..cap.samples.len()).step_by(5000) {
            cap.samples[i] = Complex::new(f64::NAN, f64::INFINITY);
        }
        let batch = Receiver::new(rx_config(400e-6)).receive(&cap).expect("minority NaN decodes");
        let mut rx =
            StreamingReceiver::new(rx_config(400e-6), cap.sample_rate, cap.center_freq).unwrap();
        let mut sanitized = 0;
        for c in cap.samples.chunks(997) {
            sanitized += rx.push(c).sanitized_samples;
        }
        let report = rx.finish().expect("stream decodes");
        assert_eq!(report, batch);
        assert_eq!(sanitized, batch.sanitized_samples);
    }

    #[test]
    fn deframer_matches_batch_for_every_chunking() {
        let cfg = FrameConfig::default();
        let payload = b"streaming secret";
        let mut bits = vec![0u8, 1, 1, 0, 1, 0, 0, 1];
        bits.extend(frame_payload(payload, cfg));
        bits.extend([0, 1, 0, 0, 1, 1]);
        let batch = try_deframe(&bits, cfg, 1).expect("frame");
        for chunk in chunkings(bits.len()) {
            let mut d = Deframer::new(cfg, 1);
            let mut events = Vec::new();
            for c in bits.chunks(chunk) {
                events.extend(d.push(c));
            }
            events.extend(d.finish());
            let frames: Vec<&Deframed> = events
                .iter()
                .filter_map(|e| match e {
                    FrameEvent::Frame(f) => Some(f),
                    _ => None,
                })
                .collect();
            assert_eq!(frames.len(), 1, "chunk {chunk}: {events:?}");
            assert_eq!(*frames[0], batch, "chunk {chunk}");
        }
    }

    #[test]
    fn deframer_emits_frames_mid_stream() {
        let cfg = FrameConfig::default();
        let bits = frame_payload(b"early", cfg);
        let mut d = Deframer::new(cfg, 1);
        // Feed everything except the last bit of the frame, then the
        // rest: the frame must appear from push(), before finish().
        let events: Vec<FrameEvent> = bits.chunks(1).flat_map(|c| d.push(c)).collect();
        assert!(
            events.iter().any(|e| matches!(e, FrameEvent::Frame(f) if f.payload == b"early")),
            "frame must stream out of push(): {events:?}"
        );
        assert!(d.finish().is_empty());
    }

    #[test]
    fn deframer_recovers_a_sequence_of_frames() {
        let cfg = FrameConfig::default();
        let mut bits = frame_payload(b"one", cfg);
        bits.extend(frame_payload(b"two!", cfg));
        bits.extend(frame_payload(b"three", cfg));
        let mut d = Deframer::new(cfg, 1);
        let mut events = Vec::new();
        for c in bits.chunks(13) {
            events.extend(d.push(c));
        }
        events.extend(d.finish());
        let payloads: Vec<Vec<u8>> = events
            .iter()
            .filter_map(|e| match e {
                FrameEvent::Frame(f) => Some(f.payload.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(payloads, vec![b"one".to_vec(), b"two!".to_vec(), b"three".to_vec()]);
        assert_eq!(d.frames_emitted(), 3);
    }

    #[test]
    fn deframer_resolves_inexact_markers_like_batch() {
        let cfg = FrameConfig::default();
        let payload = b"tolerant";
        let mut bits = frame_payload(payload, cfg);
        let marker_at = cfg.sync_len + cfg.zeros_len;
        bits[marker_at + 3] ^= 1; // 1 marker error: only finish() can commit
        let batch = try_deframe(&bits, cfg, 1).expect("tolerant batch deframe");
        for chunk in chunkings(bits.len()) {
            let mut d = Deframer::new(cfg, 1);
            let mut events = Vec::new();
            for c in bits.chunks(chunk) {
                events.extend(d.push(c));
            }
            events.extend(d.finish());
            let frame = events
                .iter()
                .find_map(|e| match e {
                    FrameEvent::Frame(f) => Some(f.clone()),
                    _ => None,
                })
                .expect("frame");
            assert_eq!(frame, batch, "chunk {chunk}");
            assert!(events.iter().any(
                |e| matches!(e, FrameEvent::MarkerFound { errors: 1, position } if *position == marker_at)
            ));
        }
    }

    #[test]
    fn deframer_reports_typed_losses() {
        let cfg = FrameConfig::default();
        // No marker at all.
        let mut d = Deframer::new(cfg, 0);
        d.push(&[0u8; 64]);
        assert_eq!(d.finish(), vec![FrameEvent::Lost(FrameError::MarkerNotFound)]);
        // Truncated inside the header.
        let mut bits = frame_payload(b"xy", cfg);
        bits.truncate(cfg.sync_len + cfg.zeros_len + START_MARKER.len() + 5);
        let mut d = Deframer::new(cfg, 0);
        d.push(&bits);
        assert_eq!(d.finish(), vec![FrameEvent::Lost(FrameError::TruncatedHeader)]);
    }

    #[test]
    fn interleaved_frames_defer_to_finish_and_match_batch() {
        let cfg = FrameConfig { interleave_depth: Some(7), ..FrameConfig::default() };
        let bits = frame_payload(b"interleaved stream", cfg);
        let batch = try_deframe(&bits, cfg, 0).expect("frame");
        let mut d = Deframer::new(cfg, 0);
        for c in bits.chunks(11) {
            assert!(d.push(c).is_empty(), "interleaved mode must defer");
        }
        let events = d.finish();
        let frame = events
            .iter()
            .find_map(|e| match e {
                FrameEvent::Frame(f) => Some(f.clone()),
                _ => None,
            })
            .expect("frame at finish");
        assert_eq!(frame, batch);
    }

    #[test]
    fn marker_deframer_matches_batch_for_every_chunking() {
        use crate::marker::MarkerConfig;
        let cfg = FrameConfig { marker: Some(MarkerConfig::standard()), ..FrameConfig::default() };
        let payload = b"drifting stream payload";
        let mut bits = vec![0u8, 1, 1, 0, 0, 1, 0];
        bits.extend(frame_payload(payload, cfg));
        let body_at = 7 + cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        bits.remove(body_at + 100); // a deletion the marker code absorbs
                                    // Alternating tail (can never alias START_MARKER) so the last
                                    // alignment window fills without fabricating a second frame.
        bits.extend(std::iter::repeat_n([0u8, 1], 16).flatten());
        let batch = try_deframe(&bits, cfg, 1).expect("marker frame");
        assert!(batch.marker.is_some());
        for chunk in chunkings(bits.len()) {
            let mut d = Deframer::new(cfg, 1);
            let mut events = Vec::new();
            for c in bits.chunks(chunk) {
                events.extend(d.push(c));
            }
            events.extend(d.finish());
            let frames: Vec<&Deframed> = events
                .iter()
                .filter_map(|e| match e {
                    FrameEvent::Frame(f) => Some(f),
                    _ => None,
                })
                .collect();
            assert_eq!(frames.len(), 1, "chunk {chunk}: {events:?}");
            assert_eq!(*frames[0], batch, "chunk {chunk}");
        }
    }

    #[test]
    fn marker_deframer_defers_damaged_anchor_to_finish_like_batch() {
        use crate::marker::MarkerConfig;
        let cfg = FrameConfig { marker: Some(MarkerConfig::standard()), ..FrameConfig::default() };
        let payload = b"burst over the anchor";
        let mut bits = frame_payload(payload, cfg);
        let marker_at = cfg.sync_len + cfg.zeros_len;
        // 3 START_MARKER errors: the push path can never commit (it
        // requires an exact anchor), so every chunking must defer to
        // finish and agree with the batch lattice search.
        for i in [0, 3, 6] {
            bits[marker_at + i] ^= 1;
        }
        let batch = try_deframe(&bits, cfg, 1).expect("lattice-confirmed anchor");
        assert_eq!(batch.payload, payload.to_vec());
        for chunk in chunkings(bits.len()) {
            let mut d = Deframer::new(cfg, 1);
            let mut events = Vec::new();
            for c in bits.chunks(chunk) {
                events.extend(d.push(c));
            }
            events.extend(d.finish());
            let frames: Vec<&Deframed> = events
                .iter()
                .filter_map(|e| match e {
                    FrameEvent::Frame(f) => Some(f),
                    _ => None,
                })
                .collect();
            assert_eq!(frames.len(), 1, "chunk {chunk}: {events:?}");
            assert_eq!(*frames[0], batch, "chunk {chunk}");
        }
    }

    #[test]
    fn marker_interleaved_deframer_matches_batch() {
        use crate::marker::MarkerConfig;
        let cfg = FrameConfig {
            interleave_depth: Some(7),
            marker: Some(MarkerConfig::standard()),
            ..FrameConfig::default()
        };
        let payload = b"marker+interleave";
        let mut bits = frame_payload(payload, cfg);
        bits.extend([1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0]);
        let batch = try_deframe(&bits, cfg, 0).expect("frame");
        assert_eq!(batch.payload, payload.to_vec());
        for chunk in chunkings(bits.len()) {
            let mut d = Deframer::new(cfg, 0);
            let mut events = Vec::new();
            for c in bits.chunks(chunk) {
                events.extend(d.push(c));
            }
            events.extend(d.finish());
            let frame = events
                .iter()
                .find_map(|e| match e {
                    FrameEvent::Frame(f) => Some(f.clone()),
                    _ => None,
                })
                .expect("frame");
            assert_eq!(frame, batch, "chunk {chunk}");
        }
    }

    #[test]
    fn marker_frames_emit_mid_stream() {
        use crate::marker::MarkerConfig;
        let cfg = FrameConfig { marker: Some(MarkerConfig::standard()), ..FrameConfig::default() };
        let mut bits = frame_payload(b"early marker", cfg);
        // Trailing bits so the final segment's alignment window fills
        // before the stream ends.
        bits.extend(std::iter::repeat_n([0u8, 1], 32).flatten());
        let mut d = Deframer::new(cfg, 1);
        let events: Vec<FrameEvent> = bits.chunks(3).flat_map(|c| d.push(c)).collect();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, FrameEvent::Frame(f) if f.payload == b"early marker")),
            "marker frame must stream out of push(): {events:?}"
        );
    }

    #[test]
    fn truncated_mid_body_decodes_what_arrived_like_batch() {
        let cfg = FrameConfig::default();
        let bits = frame_payload(b"cut off mid-frame", cfg);
        let cut = bits.len() * 2 / 3;
        let batch = try_deframe(&bits[..cut], cfg, 0);
        let mut d = Deframer::new(cfg, 0);
        d.push(&bits[..cut]);
        let events = d.finish();
        match batch {
            Ok(frame) => assert!(events.contains(&FrameEvent::Frame(frame))),
            Err(e) => assert!(events.contains(&FrameEvent::Lost(e))),
        }
    }
}
