//! Closed-loop adaptive rate control.
//!
//! The paper tunes the transmitter by hand for each distance: 3.7 kbps
//! at 10 cm down to 821 bps through a wall (Table II), with the
//! operator picking LOOP_PERIOD/SLEEP_PERIOD until the channel holds.
//! This module automates that ladder: the transmitter sends short
//! *probe* frames, the receiver reports decode success and BER, and a
//! deterministic controller walks a rate/robustness ladder — stepping
//! down (slower, more redundancy) on failure and climbing back up only
//! after a run of clean probes.
//!
//! The controller is pure state-machine logic: no clocks, no
//! randomness, no I/O. Given the same probe outcomes it always makes
//! the same moves, which is what lets experiment E6 assert bit-exact
//! behaviour across thread counts.

use crate::marker::MarkerConfig;

/// One rung of the rate ladder: a transmitter speed plus the coding
/// armour applied at that speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateStep {
    /// Human-readable name for reports (e.g. `"1.0x+marker"`).
    pub label: &'static str,
    /// Bit-period stretch factor applied via
    /// [`crate::tx::TxConfig::stretched`]; 1.0 is the native rate.
    pub stretch: f64,
    /// Marker coding for this rung (`None` = rigid bit grid).
    pub marker: Option<MarkerConfig>,
    /// Block-interleave depth for this rung.
    pub interleave_depth: Option<usize>,
}

/// An ordered ladder of [`RateStep`]s, fastest first.
#[derive(Debug, Clone, PartialEq)]
pub struct RateLadder {
    steps: Vec<RateStep>,
}

impl RateLadder {
    /// Builds a ladder from explicit steps (fastest first).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty or any stretch is not positive.
    pub fn new(steps: Vec<RateStep>) -> Self {
        assert!(!steps.is_empty(), "rate ladder needs at least one step");
        for s in &steps {
            assert!(s.stretch.is_finite() && s.stretch > 0.0, "stretch must be positive");
        }
        RateLadder { steps }
    }

    /// The default five-rung ladder, spanning the paper's Table II
    /// regime: full rate with the paper's rigid framing at the top,
    /// then marker coding, then progressively slower bit clocks with
    /// denser markers at the bottom (the through-wall end).
    pub fn standard() -> Self {
        RateLadder::new(vec![
            RateStep { label: "1.0x rigid", stretch: 1.0, marker: None, interleave_depth: None },
            RateStep {
                label: "1.0x marker",
                stretch: 1.0,
                marker: Some(MarkerConfig::standard()),
                interleave_depth: None,
            },
            RateStep {
                label: "1.5x marker",
                stretch: 1.5,
                marker: Some(MarkerConfig::standard()),
                interleave_depth: Some(4),
            },
            RateStep {
                label: "2.5x dense-marker",
                stretch: 2.5,
                marker: Some(MarkerConfig::dense()),
                interleave_depth: Some(4),
            },
            RateStep {
                label: "4.0x dense-marker",
                stretch: 4.0,
                marker: Some(MarkerConfig::dense()),
                interleave_depth: Some(4),
            },
        ])
    }

    /// The steps, fastest first.
    pub fn steps(&self) -> &[RateStep] {
        &self.steps
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Always false (the constructor rejects empty ladders); present
    /// for clippy's `len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Thresholds governing the controller's moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptPolicy {
    /// A probe whose payload BER exceeds this counts as a failure even
    /// if the frame decoded.
    pub max_ber: f64,
    /// Consecutive clean probes required before climbing one rung.
    pub up_after_clean: usize,
    /// Consecutive probes without a rate change before the controller
    /// reports [`RateController::settled`].
    pub settle_holds: usize,
}

impl Default for AdaptPolicy {
    fn default() -> Self {
        AdaptPolicy { max_ber: 0.05, up_after_clean: 3, settle_holds: 2 }
    }
}

/// What one probe frame told us about the channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeOutcome {
    /// The probe frame deframed at all.
    pub decoded: bool,
    /// Payload bit-error rate against the known probe pattern
    /// (ignored when `decoded` is false).
    pub ber: f64,
}

impl ProbeOutcome {
    /// A probe that failed to decode.
    pub fn failed() -> Self {
        ProbeOutcome { decoded: false, ber: 1.0 }
    }
}

/// The deterministic rate controller.
///
/// Starts at the fastest rung. A failed probe (no decode, or BER above
/// [`AdaptPolicy::max_ber`]) drops one rung and *fences* the failed
/// rung: the controller will not climb back to a rung that has failed,
/// so a noisy channel cannot make it oscillate forever — it descends
/// monotonically to the fastest rung that survives, then holds.
#[derive(Debug, Clone)]
pub struct RateController {
    ladder: RateLadder,
    policy: AdaptPolicy,
    idx: usize,
    ceiling: usize,
    clean_streak: usize,
    holds: usize,
    probes: usize,
}

impl RateController {
    /// Creates a controller at the top (fastest) rung of `ladder`.
    pub fn new(ladder: RateLadder, policy: AdaptPolicy) -> Self {
        RateController { ladder, policy, idx: 0, ceiling: 0, clean_streak: 0, holds: 0, probes: 0 }
    }

    /// The rung currently selected.
    pub fn current(&self) -> &RateStep {
        &self.ladder.steps()[self.idx]
    }

    /// Index of the current rung (0 = fastest).
    pub fn current_index(&self) -> usize {
        self.idx
    }

    /// Probes observed so far.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Feeds one probe result; returns `true` if the rung changed.
    pub fn observe(&mut self, outcome: ProbeOutcome) -> bool {
        self.probes += 1;
        let ok = outcome.decoded && outcome.ber <= self.policy.max_ber;
        if !ok {
            // Fence this rung so a later clean streak cannot climb
            // back into a configuration the channel already rejected.
            self.ceiling = self.ceiling.max(self.idx + 1).min(self.ladder.len() - 1);
            self.clean_streak = 0;
            self.holds = 0;
            if self.idx + 1 < self.ladder.len() {
                self.idx += 1;
                return true;
            }
            return false;
        }
        self.clean_streak += 1;
        self.holds += 1;
        if self.clean_streak >= self.policy.up_after_clean && self.idx > self.ceiling {
            self.idx -= 1;
            self.clean_streak = 0;
            self.holds = 0;
            return true;
        }
        false
    }

    /// True once [`AdaptPolicy::settle_holds`] consecutive probes have
    /// passed without a rung change — the controller has converged.
    pub fn settled(&self) -> bool {
        self.holds >= self.policy.settle_holds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> ProbeOutcome {
        ProbeOutcome { decoded: true, ber: 0.0 }
    }

    #[test]
    fn clean_channel_holds_the_top_rung() {
        let mut rc = RateController::new(RateLadder::standard(), AdaptPolicy::default());
        assert_eq!(rc.current_index(), 0);
        for _ in 0..5 {
            assert!(!rc.observe(clean()), "no move on a clean channel");
        }
        assert_eq!(rc.current_index(), 0);
        assert!(rc.settled());
    }

    #[test]
    fn failures_descend_and_fence() {
        let mut rc = RateController::new(RateLadder::standard(), AdaptPolicy::default());
        assert!(rc.observe(ProbeOutcome::failed()));
        assert!(rc.observe(ProbeOutcome::failed()));
        assert_eq!(rc.current_index(), 2);
        assert!(!rc.settled());
        // Clean streak at rung 2 must NOT climb back into rung 1,
        // which already failed.
        for _ in 0..10 {
            rc.observe(clean());
        }
        assert_eq!(rc.current_index(), 2);
        assert!(rc.settled());
    }

    #[test]
    fn climbs_only_after_a_clean_streak() {
        let policy = AdaptPolicy { up_after_clean: 3, ..AdaptPolicy::default() };
        let mut rc = RateController::new(RateLadder::standard(), policy);
        // Drop two rungs, but only rung 0 is fenced by the first
        // failure; the second failure fences rung 1 — so no climbing.
        rc.observe(ProbeOutcome::failed());
        assert_eq!(rc.current_index(), 1);
        // A transient high-BER probe also counts as a failure.
        rc.observe(ProbeOutcome { decoded: true, ber: 0.5 });
        assert_eq!(rc.current_index(), 2);
        rc.observe(clean());
        rc.observe(clean());
        assert_eq!(rc.current_index(), 2, "streak of 2 < up_after_clean");
    }

    #[test]
    fn bottom_rung_absorbs_further_failures() {
        let mut rc = RateController::new(RateLadder::standard(), AdaptPolicy::default());
        for _ in 0..10 {
            rc.observe(ProbeOutcome::failed());
        }
        assert_eq!(rc.current_index(), rc.ladder.len() - 1);
    }

    #[test]
    fn standard_ladder_is_fastest_first() {
        let ladder = RateLadder::standard();
        assert_eq!(ladder.len(), 5);
        for pair in ladder.steps().windows(2) {
            assert!(pair[0].stretch <= pair[1].stretch, "ladder must slow monotonically");
        }
        assert!(ladder.steps()[0].marker.is_none(), "top rung is the paper's rigid grid");
        assert!(ladder.steps()[4].marker.is_some());
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_ladder_panics() {
        RateLadder::new(vec![]);
    }
}
