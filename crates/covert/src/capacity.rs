//! Information-theoretic analysis of the covert channel.
//!
//! The paper reports raw transmission rates; for a fair comparison
//! between operating points (near field vs. wall, quiet vs. stressed)
//! one also wants the *effective* rate after errors. These helpers
//! compute standard capacity bounds from the measured BER/IP/DP.

/// Binary entropy `H₂(p)` in bits (0 at p ∈ {0, 1}).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// Capacity of a binary symmetric channel with crossover `ber`, in
/// bits per channel use: `1 − H₂(ber)`.
///
/// # Panics
///
/// Panics if `ber` is outside `[0, 1]`.
pub fn bsc_capacity(ber: f64) -> f64 {
    1.0 - binary_entropy(ber)
}

/// A coarse *lower bound* on the effective information rate of the
/// measured channel, bits/second: the BSC capacity at the measured
/// BER, discounted by the insertion/deletion rate (each indel is
/// charged as a fully lost symbol plus one symbol of
/// synchronisation overhead).
pub fn effective_rate_bps(tr_bps: f64, ber: f64, ip: f64, dp: f64) -> f64 {
    let indel = (ip + dp).min(1.0);
    (tr_bps * bsc_capacity(ber.min(0.5)) * (1.0 - 2.0 * indel)).max(0.0)
}

/// Shannon capacity of an AWGN channel, bits/second:
/// `B · log₂(1 + SNR)` with the SNR given in decibels — an upper
/// bound on what any modulation over the VRM line could achieve in
/// the receiver's analysis bandwidth.
pub fn shannon_capacity_bps(bandwidth_hz: f64, snr_db: f64) -> f64 {
    bandwidth_hz * (1.0 + 10f64.powf(snr_db / 10.0)).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_known_values() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.11) - 0.4999).abs() < 1e-3);
        // Symmetry.
        assert!((binary_entropy(0.2) - binary_entropy(0.8)).abs() < 1e-12);
    }

    #[test]
    fn bsc_capacity_bounds() {
        assert_eq!(bsc_capacity(0.0), 1.0);
        assert!(bsc_capacity(0.5).abs() < 1e-12);
        let c = bsc_capacity(0.01);
        assert!(c > 0.9 && c < 1.0);
    }

    #[test]
    fn effective_rate_orders_the_papers_operating_points() {
        // Table II Inspiron vs. Fig. 10 wall: the near-field point must
        // carry more information even after discounting errors.
        let near = effective_rate_bps(3162.0, 8e-3, 4.5e-3, 6.3e-3);
        let wall = effective_rate_bps(821.0, 6e-3, 0.0, 0.0);
        assert!(near > 2.0 * wall, "near {near} vs wall {wall}");
        assert!(near < 3162.0, "capacity can't exceed the raw rate");
    }

    #[test]
    fn effective_rate_degrades_gracefully() {
        let clean = effective_rate_bps(1000.0, 0.0, 0.0, 0.0);
        assert_eq!(clean, 1000.0);
        let coin_flip = effective_rate_bps(1000.0, 0.5, 0.0, 0.0);
        assert!(coin_flip.abs() < 1e-9);
        let indel_heavy = effective_rate_bps(1000.0, 0.0, 0.3, 0.3);
        assert_eq!(indel_heavy, 0.0, "clamped at zero");
    }

    #[test]
    fn shannon_sanity() {
        // 2.4 kHz of bit bandwidth at 20 dB ≈ 16 kbps ceiling.
        let c = shannon_capacity_bps(2400.0, 20.0);
        assert!((c - 2400.0 * (101f64).log2()).abs() < 1e-6);
        assert!(shannon_capacity_bps(1000.0, 0.0) > 999.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        binary_entropy(1.5);
    }
}
