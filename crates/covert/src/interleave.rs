//! Block interleaving: burst-error protection for the parity code.
//!
//! Hamming(7,4) corrects one error per codeword, but the channel's
//! errors cluster — a long interrupt corrupts several *consecutive*
//! bits (§IV-B4). A block interleaver writes the coded bits row-wise
//! into a `rows × columns` matrix and transmits column-wise, so a
//! burst of up to `columns` consecutive channel errors lands in
//! `columns` different codewords, one error each — exactly what the
//! code can fix. A natural strengthening of the paper's §IV-B4
//! parity-only scheme.

/// A block interleaver over `depth` codewords of `codeword_len` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaver {
    codeword_len: usize,
    depth: usize,
}

impl Interleaver {
    /// Creates an interleaver: each block holds `depth` codewords of
    /// `codeword_len` bits (7 for Hamming(7,4)); on the wire, a burst
    /// of up to `depth` consecutive errors lands at most once per
    /// codeword.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(codeword_len: usize, depth: usize) -> Self {
        assert!(codeword_len > 0 && depth > 0, "interleaver dimensions must be positive");
        Interleaver { codeword_len, depth }
    }

    /// Bits per block.
    pub fn block_len(&self) -> usize {
        self.codeword_len * self.depth
    }

    /// Interleaves `bits`: each block is a `depth × codeword_len`
    /// matrix with one codeword per row; the wire stream reads it
    /// column-major (the tail is zero-padded to a whole block).
    pub fn interleave(&self, bits: &[u8]) -> Vec<u8> {
        let block = self.block_len();
        let blocks = bits.len().div_ceil(block).max(1);
        let mut out = Vec::with_capacity(blocks * block);
        for b in 0..blocks {
            let base = b * block;
            for c in 0..self.codeword_len {
                for r in 0..self.depth {
                    out.push(bits.get(base + r * self.codeword_len + c).copied().unwrap_or(0));
                }
            }
        }
        out
    }

    /// Inverts [`Interleaver::interleave`]: reads the wire stream
    /// column-major and emits the codewords back in order.
    pub fn deinterleave(&self, bits: &[u8]) -> Vec<u8> {
        let block = self.block_len();
        let blocks = bits.len().div_ceil(block).max(1);
        let mut out = Vec::with_capacity(blocks * block);
        for b in 0..blocks {
            let base = b * block;
            for r in 0..self.depth {
                for c in 0..self.codeword_len {
                    out.push(bits.get(base + c * self.depth + r).copied().unwrap_or(0));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coding::{decode_bits, encode_bits};

    #[test]
    fn round_trip_is_identity() {
        let il = Interleaver::new(7, 8);
        let bits: Vec<u8> = (0..112).map(|i| ((i * 5 + 1) % 3 == 0) as u8).collect();
        let wire = il.interleave(&bits);
        assert_eq!(wire.len(), 112);
        let back = il.deinterleave(&wire);
        assert_eq!(&back[..bits.len()], &bits[..]);
    }

    #[test]
    fn partial_block_pads_with_zeros() {
        let il = Interleaver::new(3, 4);
        let bits = vec![1u8; 5];
        let wire = il.interleave(&bits);
        assert_eq!(wire.len(), 12);
        let back = il.deinterleave(&wire);
        assert_eq!(&back[..5], &[1, 1, 1, 1, 1]);
        assert!(back[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn burst_spreads_across_codewords() {
        // 8 codewords of 7 bits, interleaved; corrupt a 8-bit burst on
        // the wire; after deinterleaving, no codeword has >1 error.
        let il = Interleaver::new(7, 8);
        let data: Vec<u8> = (0..32).map(|i| (i % 2) as u8).collect();
        let coded = encode_bits(&data); // 56 bits = 8 codewords
        let mut wire = il.interleave(&coded);
        for b in wire.iter_mut().skip(20).take(8) {
            *b ^= 1;
        }
        let received = il.deinterleave(&wire);
        let (decoded, corrections) = decode_bits(&received[..coded.len()]);
        assert_eq!(&decoded[..32], &data[..], "burst must be fully corrected");
        assert_eq!(corrections, 8);
    }

    #[test]
    fn without_interleaving_the_same_burst_kills_codewords() {
        let data: Vec<u8> = (0..32).map(|i| (i % 2) as u8).collect();
        let mut coded = encode_bits(&data);
        for b in coded.iter_mut().skip(20).take(8) {
            *b ^= 1;
        }
        let (decoded, _) = decode_bits(&coded);
        assert_ne!(&decoded[..32], &data[..], "8-bit burst must defeat bare Hamming");
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_dimension_panics() {
        Interleaver::new(0, 4);
    }
}
