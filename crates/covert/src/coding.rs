//! Error-correcting code for the covert channel.
//!
//! §IV-B4: "this problem can be addressed by employing even relatively
//! simple error correcting codes … we use a very simple (parity) code"
//! with minimum Hamming distance of at least three, so one error per
//! codeword can be corrected (§IV-C2). Hamming(7,4) is exactly that
//! code: 4 data bits, 3 parity bits, distance 3, single-error
//! correction — and small enough to "manually implement on a target
//! machine in a few minutes".

/// Encodes 4 data bits into a 7-bit Hamming codeword
/// (positions: p1 p2 d1 p3 d2 d3 d4, 1-indexed parity convention).
///
/// # Panics
///
/// Panics if `data.len() != 4`.
pub fn hamming74_encode(data: &[u8]) -> [u8; 7] {
    assert_eq!(data.len(), 4, "Hamming(7,4) encodes exactly 4 bits");
    let d = [data[0] & 1, data[1] & 1, data[2] & 1, data[3] & 1];
    let p1 = d[0] ^ d[1] ^ d[3];
    let p2 = d[0] ^ d[2] ^ d[3];
    let p3 = d[1] ^ d[2] ^ d[3];
    [p1, p2, d[0], p3, d[1], d[2], d[3]]
}

/// Decodes a 7-bit Hamming codeword, correcting up to one bit error.
/// Returns the 4 data bits and whether a correction was applied.
///
/// Runs on a fixed `[u8; 7]` working buffer — this is the hot RX
/// decode path and must not touch the heap (pinned by
/// `tests/tests/alloc.rs`).
///
/// A distance-3 code cannot *detect* double errors: any 2-bit error
/// produces a nonzero syndrome that "corrects" a third position, so
/// `corrected == true` only means the syndrome was nonzero, not that
/// the output is right. [`crate::metrics::codeword_audit`] measures
/// the resulting miscorrection rate against ground truth.
///
/// # Panics
///
/// Panics if `code.len() != 7`.
pub fn hamming74_decode(code: &[u8]) -> ([u8; 4], bool) {
    assert_eq!(code.len(), 7, "Hamming(7,4) decodes exactly 7 bits");
    let mut c = [0u8; 7];
    for (dst, &src) in c.iter_mut().zip(code) {
        *dst = src & 1;
    }
    let s1 = c[0] ^ c[2] ^ c[4] ^ c[6];
    let s2 = c[1] ^ c[2] ^ c[5] ^ c[6];
    let s3 = c[3] ^ c[4] ^ c[5] ^ c[6];
    let syndrome = (s3 << 2) | (s2 << 1) | s1;
    let corrected = syndrome != 0;
    if corrected {
        let pos = syndrome as usize - 1; // 1-indexed position
        c[pos] ^= 1;
    }
    ([c[2], c[4], c[5], c[6]], corrected)
}

/// Per-stream accounting for [`decode_bits_reported`].
///
/// `corrected` counts codewords whose syndrome was nonzero. Because
/// Hamming(7,4) has distance 3, a nonzero syndrome conflates genuine
/// single-bit corrections with silent double-error *miscorrections*;
/// treat `corrected` as a lower bound on channel errors, not an upper
/// bound on residual errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodingStats {
    /// Complete 7-bit codewords decoded.
    pub codewords: usize,
    /// Codewords with a nonzero syndrome (corrected *or* miscorrected).
    pub corrected: usize,
    /// Trailing bits that did not fill a codeword and were dropped.
    /// Nonzero means the coded stream was truncated mid-codeword —
    /// distinct from clean termination (`dropped_tail_bits == 0`).
    pub dropped_tail_bits: usize,
}

impl CodingStats {
    /// Fraction of codewords with a nonzero syndrome, or 0 for an
    /// empty stream.
    pub fn correction_rate(&self) -> f64 {
        if self.codewords == 0 {
            0.0
        } else {
            self.corrected as f64 / self.codewords as f64
        }
    }

    /// Adds another decode's counts into this one (a frame decodes
    /// its header and payload spans separately).
    pub fn absorb(&mut self, other: CodingStats) {
        self.codewords += other.codewords;
        self.corrected += other.corrected;
        self.dropped_tail_bits += other.dropped_tail_bits;
    }
}

/// Encodes an arbitrary bit string with Hamming(7,4), zero-padding the
/// final nibble.
pub fn encode_bits(bits: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bits.len().div_ceil(4) * 7);
    for chunk in bits.chunks(4) {
        let mut nibble = [0u8; 4];
        nibble[..chunk.len()].copy_from_slice(chunk);
        out.extend_from_slice(&hamming74_encode(&nibble));
    }
    out
}

/// Decodes a Hamming(7,4)-coded bit string, correcting one error per
/// codeword. Trailing bits that do not fill a codeword are dropped.
/// Returns the decoded bits and the number of corrections applied.
pub fn decode_bits(coded: &[u8]) -> (Vec<u8>, usize) {
    let (out, stats) = decode_bits_reported(coded);
    (out, stats.corrected)
}

/// Decodes a Hamming(7,4)-coded bit string with full accounting:
/// codeword count, nonzero-syndrome count and the number of trailing
/// bits that were dropped because they did not fill a codeword.
pub fn decode_bits_reported(coded: &[u8]) -> (Vec<u8>, CodingStats) {
    let mut out = Vec::with_capacity(coded.len() / 7 * 4);
    let mut stats = CodingStats { dropped_tail_bits: coded.len() % 7, ..CodingStats::default() };
    for chunk in coded.chunks_exact(7) {
        let (nibble, fixed) = hamming74_decode(chunk);
        out.extend_from_slice(&nibble);
        stats.codewords += 1;
        if fixed {
            stats.corrected += 1;
        }
    }
    (out, stats)
}

/// Converts bytes to a most-significant-bit-first bit vector.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Converts an MSB-first bit vector back to bytes (trailing partial
/// bytes are dropped).
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    bits.chunks_exact(8).map(|c| c.iter().fold(0u8, |acc, &b| (acc << 1) | (b & 1))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_nibbles() -> impl Iterator<Item = [u8; 4]> {
        (0..16u8).map(|v| [(v >> 3) & 1, (v >> 2) & 1, (v >> 1) & 1, v & 1])
    }

    #[test]
    fn round_trip_without_errors() {
        for nibble in all_nibbles() {
            let code = hamming74_encode(&nibble);
            let (decoded, corrected) = hamming74_decode(&code);
            assert_eq!(decoded, nibble);
            assert!(!corrected);
        }
    }

    #[test]
    fn corrects_every_single_bit_error() {
        for nibble in all_nibbles() {
            let code = hamming74_encode(&nibble);
            for flip in 0..7 {
                let mut corrupted = code;
                corrupted[flip] ^= 1;
                let (decoded, corrected) = hamming74_decode(&corrupted);
                assert_eq!(decoded, nibble, "flip at {flip}");
                assert!(corrected);
            }
        }
    }

    #[test]
    fn minimum_distance_is_three() {
        let words: Vec<[u8; 7]> = all_nibbles().map(|n| hamming74_encode(&n)).collect();
        for (i, a) in words.iter().enumerate() {
            for b in words.iter().skip(i + 1) {
                let dist: u32 = a.iter().zip(b).map(|(x, y)| (x ^ y) as u32).sum();
                assert!(dist >= 3, "distance {dist} between codewords");
            }
        }
    }

    #[test]
    fn stream_encode_decode() {
        let bits: Vec<u8> = (0..64).map(|i| ((i * 7 + 3) % 5 % 2) as u8).collect();
        let coded = encode_bits(&bits);
        assert_eq!(coded.len(), 64 / 4 * 7);
        let (decoded, corrections) = decode_bits(&coded);
        assert_eq!(&decoded[..64], &bits[..]);
        assert_eq!(corrections, 0);
    }

    #[test]
    fn stream_survives_scattered_errors() {
        let bits: Vec<u8> = (0..40).map(|i| (i % 3 == 0) as u8).collect();
        let mut coded = encode_bits(&bits);
        // One flip in each of the 10 codewords.
        for cw in 0..10 {
            coded[cw * 7 + (cw % 7)] ^= 1;
        }
        let (decoded, corrections) = decode_bits(&coded);
        assert_eq!(&decoded[..40], &bits[..]);
        assert_eq!(corrections, 10);
    }

    #[test]
    fn padding_rounds_up() {
        let coded = encode_bits(&[1, 0, 1]); // 3 bits → 1 codeword
        assert_eq!(coded.len(), 7);
        let (decoded, _) = decode_bits(&coded);
        assert_eq!(&decoded[..3], &[1, 0, 1]);
        assert_eq!(decoded[3], 0); // padding bit
    }

    #[test]
    fn dropped_tail_bits_are_reported() {
        let coded = encode_bits(&[1, 0, 1, 1, 0, 1, 0, 0]); // 2 codewords
        let (full, stats) = decode_bits_reported(&coded);
        assert_eq!(full.len(), 8);
        assert_eq!(stats.codewords, 2);
        assert_eq!(stats.dropped_tail_bits, 0, "clean termination");
        // Truncate mid-codeword: the 3 leftover bits must be counted,
        // not silently discarded.
        let (partial, stats) = decode_bits_reported(&coded[..10]);
        assert_eq!(partial.len(), 4);
        assert_eq!(stats.codewords, 1);
        assert_eq!(stats.dropped_tail_bits, 3);
    }

    #[test]
    fn double_errors_miscorrect_with_nonzero_syndrome() {
        // Distance 3: a 2-bit error always lands within distance 1 of
        // some *other* codeword, so the decoder "corrects" to wrong
        // data while still reporting corrected == true. This pins the
        // behaviour CodingStats documents.
        let nibble = [1, 0, 1, 1];
        let code = hamming74_encode(&nibble);
        let mut seen_wrong = 0;
        for i in 0..7 {
            for j in (i + 1)..7 {
                let mut corrupted = code;
                corrupted[i] ^= 1;
                corrupted[j] ^= 1;
                let (decoded, corrected) = hamming74_decode(&corrupted);
                assert!(corrected, "double error at ({i},{j}) must raise the syndrome");
                if decoded != nibble {
                    seen_wrong += 1;
                }
            }
        }
        assert_eq!(seen_wrong, 21, "every double error miscorrects");
    }

    #[test]
    fn bytes_bits_round_trip() {
        let bytes = b"The quick brown fox";
        let bits = bytes_to_bits(bytes);
        assert_eq!(bits.len(), bytes.len() * 8);
        assert_eq!(bits_to_bytes(&bits), bytes.to_vec());
    }

    #[test]
    fn bits_to_bytes_drops_partial() {
        assert_eq!(bits_to_bytes(&[1, 0, 1]), Vec::<u8>::new());
        assert_eq!(bits_to_bytes(&bytes_to_bits(&[0xA5])), vec![0xA5]);
    }
}
