//! Framing and synchronisation for the covert bitstream.
//!
//! §IV-C1: "For synchronization between the transmitter and receiver
//! at the start of the communication, the transmitter sends a
//! pre-defined bit-stream of interleaved ones and zeros followed by a
//! known short bit-stream of zeros only. The transmitter then sends a
//! preamble to indicate the start of the transmission, and then sends
//! the actual data."

use crate::coding::{
    bits_to_bytes, bytes_to_bits, decode_bits, decode_bits_reported, encode_bits, CodingStats,
};
use crate::interleave::Interleaver;
use crate::marker::{
    blind_lock, marker_encode, segments_for, MarkerConfig, MarkerStats, MarkerStream,
    SEGMENT_MARKER,
};

/// Default number of alternating sync bits (long enough for the
/// victim's DVFS governor to settle at its steady state).
pub const DEFAULT_SYNC_LEN: usize = 48;
/// Default length of the all-zeros gap after the sync pattern.
pub const DEFAULT_ZEROS_LEN: usize = 8;
/// The start-of-transmission marker (chosen to be impossible within
/// the alternating sync sequence and unlikely in the zeros run).
pub const START_MARKER: [u8; 8] = [1, 1, 1, 0, 0, 0, 1, 1];

/// Framing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameConfig {
    /// Alternating 1/0 bits at the head of a transmission.
    pub sync_len: usize,
    /// All-zero bits between sync and marker.
    pub zeros_len: usize,
    /// Apply Hamming(7,4) to the payload.
    pub parity: bool,
    /// Interleave the coded body at this depth (codewords per block),
    /// spreading §IV-B4 error bursts across codewords. `None`
    /// transmits codewords in order, as the paper does.
    pub interleave_depth: Option<usize>,
    /// Wrap the coded body in the synchronization-robust marker code
    /// (see [`crate::marker`]): periodic known markers let the decoder
    /// track bit-clock drift and recover from insertions/deletions
    /// that would shift a rigid bit grid. `None` transmits the body
    /// rigidly, as the paper does.
    pub marker: Option<MarkerConfig>,
}

impl Default for FrameConfig {
    fn default() -> Self {
        FrameConfig {
            sync_len: DEFAULT_SYNC_LEN,
            zeros_len: DEFAULT_ZEROS_LEN,
            parity: true,
            interleave_depth: None,
            marker: None,
        }
    }
}

/// Builds the on-air bit sequence for a payload of bytes:
/// `[1,0,1,0,…] ++ [0,…] ++ START_MARKER ++ code(len ++ payload)`,
/// where `len` is a 16-bit big-endian byte count so the receiver can
/// discard whatever trailing noise decodes after the payload.
///
/// # Panics
///
/// Panics if the payload exceeds 65 535 bytes.
pub fn frame_payload(payload: &[u8], config: FrameConfig) -> Vec<u8> {
    assert!(payload.len() <= u16::MAX as usize, "payload too large for one frame");
    let mut bits = Vec::new();
    for i in 0..config.sync_len {
        bits.push((1 - i % 2) as u8);
    }
    bits.extend(std::iter::repeat_n(0u8, config.zeros_len));
    bits.extend_from_slice(&START_MARKER);
    let mut body = (payload.len() as u16).to_be_bytes().to_vec();
    body.extend_from_slice(payload);
    let payload_bits = bytes_to_bits(&body);
    let rigid = if config.parity {
        let coded = encode_bits(&payload_bits);
        match config.interleave_depth {
            Some(depth) => Interleaver::new(7, depth).interleave(&coded),
            None => coded,
        }
    } else {
        payload_bits
    };
    match config.marker {
        Some(mcfg) => bits.extend(marker_encode(mcfg, &rigid)),
        None => bits.extend(rigid),
    }
    bits
}

/// Result of deframing a received bit sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deframed {
    /// Recovered payload bytes.
    pub payload: Vec<u8>,
    /// Bit index at which the payload started in the received stream.
    pub payload_start: usize,
    /// Number of Hamming corrections applied (0 when parity is off).
    /// Equal to [`CodingStats::corrected`] — kept for callers that
    /// predate the full accounting.
    pub corrections: usize,
    /// Full Hamming-decoder accounting (codeword count, nonzero
    /// syndromes, dropped trailing bits). Note that a distance-3 code
    /// cannot distinguish a genuine correction from a double-error
    /// *miscorrection*; see [`CodingStats`].
    pub coding: CodingStats,
    /// Marker-decoder statistics when the frame used the
    /// synchronization-robust marker code, `None` otherwise.
    pub marker: Option<MarkerStats>,
}

/// Why a received bit stream could not be deframed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// No start marker was found within the error tolerance — either
    /// nothing was transmitted or sync was lost before the marker.
    MarkerNotFound,
    /// A marker was found but the stream ends before the 16-bit
    /// length header completes, so the payload size is unknown.
    TruncatedHeader,
    /// The decoded length header declares a body far larger than the
    /// stream could ever have carried — the header bits are garbage
    /// (a spurious marker match or a destroyed header), not a frame.
    ImplausibleLength {
        /// The payload byte count the garbled header declared.
        declared: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::MarkerNotFound => write!(f, "start marker not found in received stream"),
            FrameError::TruncatedHeader => {
                write!(f, "stream truncated inside the frame length header")
            }
            FrameError::ImplausibleLength { declared } => {
                write!(f, "header declares {declared} payload bytes the stream cannot hold")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Locates the start marker in a received bit stream (tolerating up to
/// `max_marker_errors` bit errors in the marker itself) and decodes
/// the payload that follows. Returns `None` if no marker is found.
///
/// Thin wrapper over [`try_deframe`] for callers that only care
/// whether a frame was recovered, not why it was not.
pub fn deframe(received: &[u8], config: FrameConfig, max_marker_errors: usize) -> Option<Deframed> {
    try_deframe(received, config, max_marker_errors).ok()
}

/// Fallible deframing: like [`deframe`] but reporting *why* recovery
/// failed, so experiments can distinguish "no transmission detected"
/// from "transmission cut off mid-frame".
///
/// # Errors
///
/// [`FrameError::MarkerNotFound`] when no start marker matches within
/// `max_marker_errors`; [`FrameError::TruncatedHeader`] when the
/// stream ends inside the length header.
pub fn try_deframe(
    received: &[u8],
    config: FrameConfig,
    max_marker_errors: usize,
) -> Result<Deframed, FrameError> {
    let m = START_MARKER.len();
    if received.len() < m {
        return Err(FrameError::MarkerNotFound);
    }
    if let Some(mcfg) = config.marker {
        // Marker-coded frames: decode ranked anchor candidates in
        // order. A spurious lock betrays itself — its garbled header
        // declares an implausible length — and the chain falls
        // through to the next candidate instead of failing outright.
        // When every candidate fails, report the top-ranked one's
        // error: it is the most likely true anchor.
        let mut first_err: Option<FrameError> = None;
        for pos in ranked_marker_anchors(received, mcfg, max_marker_errors) {
            let payload_start = pos + m;
            match decode_body(&received[payload_start..], config) {
                Ok(body) => return Ok(body.into_deframed(payload_start)),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        return Err(first_err.unwrap_or(FrameError::MarkerNotFound));
    }
    let mut best: Option<(usize, usize)> = None; // (errors, position)
    for pos in 0..=received.len() - m {
        let errors = marker_errors_at(received, pos);
        if errors <= max_marker_errors && best.is_none_or(|(e, _)| errors < e) {
            best = Some((errors, pos));
            if errors == 0 {
                break;
            }
        }
    }
    let (_, pos) = best.ok_or(FrameError::MarkerNotFound)?;
    let payload_start = pos + m;
    let body = decode_body(&received[payload_start..], config)?;
    Ok(body.into_deframed(payload_start))
}

/// Segment markers consulted when ranking start-marker candidates of a
/// marker-coded frame (see [`best_marker_anchor`]).
pub(crate) const LATTICE_PROBE_MARKERS: usize = 4;

/// Extra start-marker bit errors tolerated for marker-coded frames
/// when the candidate is corroborated by the segment-marker lattice.
/// Generous on purpose: a burst that lands on the start marker can
/// corrupt half of it, and a lattice-corroborated candidate that
/// turns out to be spurious is cheap — its implausible header rejects
/// it and the candidate chain moves on.
pub(crate) const LATTICE_EXTRA_TOLERANCE: usize = 3;

/// Anchor candidates the decoder will actually attempt to decode, in
/// rank order, before giving up (see [`ranked_marker_anchors`]).
pub(crate) const MAX_ANCHOR_CANDIDATES: usize = 8;

/// Bits required *after* a candidate's start marker for its lattice
/// score to be final (every probed segment marker, at its largest
/// drift offset, inside the buffer).
pub(crate) fn lattice_window(mcfg: MarkerConfig) -> usize {
    (LATTICE_PROBE_MARKERS - 1) * mcfg.period() + SEGMENT_MARKER.len() + mcfg.search_radius
}

/// How well the [`SEGMENT_MARKER`] lattice of a body starting at
/// `body_at` corroborates a start-marker candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LatticeScore {
    /// Probes that found the marker exactly where predicted.
    pub exact: usize,
    /// Probes that found it only within ± the drift radius.
    pub drifted: usize,
    /// A segment marker also sits one period *behind* the candidate's
    /// body — the signature of a period alias. A candidate at
    /// `true + k·period` sees the same perfect forward lattice as the
    /// true anchor (its probes land on real markers k..k+K), so the
    /// forward probes cannot tell them apart; the backward probe can,
    /// because the true anchor is preceded by the alternating sync and
    /// the zeros run, where [`SEGMENT_MARKER`] (which opens with three
    /// ones) cannot occur.
    pub aliased: bool,
}

impl LatticeScore {
    /// Probes that found a marker at all.
    pub fn hits(&self) -> usize {
        self.exact + self.drifted
    }

    /// Ranking weight. An exact hit outweighs a drifted one: a
    /// candidate whose every probe is off by the same shift is itself
    /// shifted, so exactness is what distinguishes the true anchor
    /// from its ±1 aliases. The maximum, `2 * LATTICE_PROBE_MARKERS`,
    /// is reachable only by a fully exact lattice.
    pub fn score(&self) -> usize {
        2 * self.exact + self.drifted
    }
}

/// Scores the first [`LATTICE_PROBE_MARKERS`] lattice positions of a
/// body starting at `body_at`. Each probe first checks its predicted
/// position exactly, then searches ± the configured drift radius —
/// the same tolerance the tracking decoder will apply — so an indel
/// between markers demotes a probe to a drifted hit instead of a
/// miss. Probes that run past the buffer count as misses.
pub(crate) fn lattice_score(received: &[u8], body_at: usize, mcfg: MarkerConfig) -> LatticeScore {
    let m = SEGMENT_MARKER.len();
    let exact_at = |p: usize| {
        p + m <= received.len()
            && received[p..p + m].iter().zip(&SEGMENT_MARKER).all(|(a, b)| (*a & 1) == *b)
    };
    let mut score = LatticeScore { exact: 0, drifted: 0, aliased: false };
    for k in 0..LATTICE_PROBE_MARKERS {
        let at = body_at + k * mcfg.period();
        if exact_at(at) {
            score.exact += 1;
        } else if (at.saturating_sub(mcfg.search_radius)..=at + mcfg.search_radius).any(exact_at) {
            score.drifted += 1;
        }
    }
    if body_at >= mcfg.period() {
        let at = body_at - mcfg.period();
        score.aliased = exact_at(at)
            || (at.saturating_sub(mcfg.search_radius)..=at + mcfg.search_radius).any(exact_at);
    }
    score
}

/// Ranks start-marker anchor candidates of a marker-coded frame.
///
/// The 8-bit [`START_MARKER`] alone is a fragile anchor: burst noise
/// that corrupts two of its bits makes the rigid scan latch onto a
/// spurious downstream match and decode a shifted read of the body.
/// A marker-coded body carries a much longer implicit anchor — the
/// [`SEGMENT_MARKER`] lattice — so candidates are ranked by the
/// backward alias probe first (a candidate with a segment marker one
/// period *behind* it is a period alias, demoted below every
/// un-aliased candidate), lattice score second (exact hits
/// outweighing drifted ones), start-marker errors third, position
/// fourth. The alias demotion is what keeps long frames decodable:
/// a body of `n` segments offers `n - K` period aliases with perfect
/// forward lattices, and without the backward probe they crowd the
/// true anchor out of the capped candidate list. Candidates noisier
/// than `max_marker_errors` (up to [`LATTICE_EXTRA_TOLERANCE`] extra
/// bit errors) are admitted only with at least two corroborating
/// lattice hits.
///
/// Ranking alone cannot always identify the true anchor — inside a
/// marker-coded body *every* position on the segment lattice scores
/// well, and a bad lock shows up only when its decoded header
/// declares an implausible length. [`try_deframe`] therefore decodes
/// candidates in this order until one yields a plausible frame; the
/// list is capped at [`MAX_ANCHOR_CANDIDATES`] to bound that work.
pub(crate) fn ranked_marker_anchors(
    received: &[u8],
    mcfg: MarkerConfig,
    max_marker_errors: usize,
) -> Vec<usize> {
    let m = START_MARKER.len();
    if received.len() < m {
        return Vec::new();
    }
    // (aliased, score, errors, position)
    let mut candidates: Vec<(bool, usize, usize, usize)> = Vec::new();
    for pos in 0..=received.len() - m {
        let errors = marker_errors_at(received, pos);
        if errors > max_marker_errors + LATTICE_EXTRA_TOLERANCE {
            continue;
        }
        let score = lattice_score(received, pos + m, mcfg);
        if errors > max_marker_errors && score.hits() < 2 {
            continue;
        }
        candidates.push((score.aliased, score.score(), errors, pos));
    }
    candidates
        .sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)).then(a.3.cmp(&b.3)));
    candidates.truncate(MAX_ANCHOR_CANDIDATES);
    candidates.into_iter().map(|(_, _, _, pos)| pos).collect()
}

/// Number of marker-bit mismatches when [`START_MARKER`] is laid over
/// `received` at `pos` (bits compared on their LSB, as on air).
///
/// Shared by [`try_deframe`] and the streaming
/// [`crate::stream::Deframer`] so both judge candidates identically.
pub(crate) fn marker_errors_at(received: &[u8], pos: usize) -> usize {
    received[pos..pos + START_MARKER.len()]
        .iter()
        .zip(&START_MARKER)
        .filter(|(a, b)| (**a & 1) != **b)
        .count()
}

/// Coded bits occupied by the 16-bit length header.
pub(crate) fn header_span(config: FrameConfig) -> usize {
    // 16 bits → 4 codewords → 28 coded bits under parity.
    if config.parity {
        28
    } else {
        16
    }
}

/// Coded bits occupied by a `declared`-byte payload body.
pub(crate) fn body_span(config: FrameConfig, declared: usize) -> usize {
    if config.parity {
        declared * 8 / 4 * 7
    } else {
        declared * 8
    }
}

/// Declared payload byte count peeked from the first
/// [`header_span`] bits after the marker, or `None` when fewer bits
/// are available yet. Only meaningful for non-interleaved frames,
/// where the header occupies a fixed prefix of the on-air body.
pub(crate) fn peek_declared(body: &[u8], config: FrameConfig) -> Option<usize> {
    let span = header_span(config);
    if body.len() < span {
        return None;
    }
    let header_bits =
        if config.parity { decode_bits(&body[..span]).0 } else { body[..span].to_vec() };
    let header = bits_to_bytes(&header_bits);
    Some(u16::from_be_bytes([header[0], header[1]]) as usize)
}

/// Rigid coded bits of the frame body (length header + `declared`
/// payload bytes) after interleaver padding, before marker wrapping.
pub(crate) fn rigid_body_span(config: FrameConfig, declared: usize) -> usize {
    let rigid = header_span(config) + body_span(config, declared);
    match (config.parity, config.interleave_depth) {
        (true, Some(depth)) => {
            let block = Interleaver::new(7, depth).block_len();
            rigid.div_ceil(block).max(1) * block
        }
        _ => rigid,
    }
}

/// On-air bits of the frame body for a `declared` payload byte count:
/// the rigid coded span, wrapped in the marker code when configured.
pub(crate) fn on_air_body_span(config: FrameConfig, declared: usize) -> usize {
    let rigid = rigid_body_span(config, declared);
    match config.marker {
        Some(mcfg) => crate::marker::on_air_len(mcfg, rigid),
        None => rigid,
    }
}

/// Total on-air bits of a frame carrying `payload_len` bytes —
/// preamble, start marker and (marker-coded) body. Equals
/// `frame_payload(payload, config).len()` without building the frame;
/// experiments use it to convert payload sizes into air time.
pub fn on_air_frame_len(config: FrameConfig, payload_len: usize) -> usize {
    config.sync_len + config.zeros_len + START_MARKER.len() + on_air_body_span(config, payload_len)
}

/// Rigid bits the marker decoder must recover before the declared
/// length can be read: a full interleaver block when interleaved (the
/// header is spread across block 0), otherwise just the header span.
pub(crate) fn peek_need(config: FrameConfig) -> usize {
    match (config.parity, config.interleave_depth) {
        (true, Some(depth)) => Interleaver::new(7, depth).block_len(),
        _ => header_span(config),
    }
}

/// Declared payload byte count peeked from a *rigid* prefix of at
/// least [`peek_need`] bits (deinterleaving block 0 if needed), or
/// `None` when too few bits are available.
pub(crate) fn peek_declared_rigid(rigid: &[u8], config: FrameConfig) -> Option<usize> {
    match (config.parity, config.interleave_depth) {
        (true, Some(depth)) => {
            let il = Interleaver::new(7, depth);
            let block = il.block_len();
            if rigid.len() < block {
                return None;
            }
            peek_declared(&il.deinterleave(&rigid[..block]), config)
        }
        _ => peek_declared(rigid, config),
    }
}

/// A decoded frame body, before its stream position is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BodyDecode {
    pub payload: Vec<u8>,
    pub coding: CodingStats,
    pub marker: Option<MarkerStats>,
}

impl BodyDecode {
    pub(crate) fn into_deframed(self, payload_start: usize) -> Deframed {
        Deframed {
            payload: self.payload,
            payload_start,
            corrections: self.coding.corrected,
            coding: self.coding,
            marker: self.marker,
        }
    }
}

/// Decodes the frame body that follows a located marker: unwraps the
/// marker code (when configured), undoes the interleaving, reads the
/// 16-bit length header, then exactly the declared number of payload
/// bytes — anything after belongs to the channel (or the next
/// packet), not to this frame.
///
/// Shared by [`try_deframe`] and the streaming
/// [`crate::stream::Deframer`], which hands it the same bit span the
/// batch path would see.
pub(crate) fn decode_body(body: &[u8], config: FrameConfig) -> Result<BodyDecode, FrameError> {
    match config.marker {
        Some(mcfg) => {
            let (rigid, stats) = recover_rigid(body, mcfg, config)?;
            let mut decoded = decode_rigid_body(&rigid, config)?;
            decoded.marker = Some(stats);
            Ok(decoded)
        }
        None => decode_rigid_body(body, config),
    }
}

/// Unwraps the marker layer: pumps segments until the declared length
/// can be read, then exactly as many further segments as the declared
/// body needs, zero-padding whatever the stream no longer covers so
/// the rigid grid keeps its nominal length.
fn recover_rigid(
    on_air: &[u8],
    mcfg: MarkerConfig,
    config: FrameConfig,
) -> Result<(Vec<u8>, MarkerStats), FrameError> {
    let mut ms = MarkerStream::new(mcfg);
    ms.push(on_air);
    let mut rigid = Vec::new();
    let need = peek_need(config);
    while rigid.len() < need && ms.next_segment(&mut rigid, true) {}
    let declared = peek_declared_rigid(&rigid, config).ok_or(FrameError::TruncatedHeader)?;
    let want = segments_for(mcfg, rigid_body_span(config, declared)) * mcfg.segment_len;
    ms.expect_segments(want / mcfg.segment_len);
    while rigid.len() < want && ms.next_segment(&mut rigid, true) {}
    let mut stats = ms.stats();
    if rigid.len() < want {
        // A garbled header can declare an absurd body. Genuine
        // truncation (a capture cut off mid-frame) still materialises
        // most of its declared segments; when less than half ever
        // arrives, the header was garbage, not a frame.
        if rigid.len() * 2 < want {
            return Err(FrameError::ImplausibleLength { declared });
        }
        stats.truncated_bits += want - rigid.len();
        rigid.resize(want, 0);
    }
    rigid.truncate(want);
    Ok((rigid, stats))
}

/// Decodes a rigid (marker-free) coded body: deinterleave, header,
/// declared payload. The pre-marker decode path, unchanged.
pub(crate) fn decode_rigid_body(
    body: &[u8],
    config: FrameConfig,
) -> Result<BodyDecode, FrameError> {
    // Undo interleaving first, if the frame used it: the whole coded
    // body (length header + payload) shares the interleaver blocks.
    let deinterleaved;
    let body = match (config.parity, config.interleave_depth) {
        (true, Some(depth)) => {
            deinterleaved = Interleaver::new(7, depth).deinterleave(body);
            deinterleaved.as_slice()
        }
        _ => body,
    };
    let mut coding = CodingStats::default();
    let (header_bits, len_span) = if config.parity {
        let span = header_span(config).min(body.len());
        let (bits, stats) = decode_bits_reported(&body[..span]);
        coding.absorb(stats);
        (bits, span)
    } else {
        let span = header_span(config).min(body.len());
        (body[..span].to_vec(), span)
    };
    let header = bits_to_bytes(&header_bits);
    if header.len() < 2 {
        return Err(FrameError::TruncatedHeader);
    }
    let declared = u16::from_be_bytes([header[0], header[1]]) as usize;
    let span = body_span(config, declared);
    let rest = &body[len_span..(len_span + span).min(body.len())];
    let bits = if config.parity {
        let (bits, stats) = decode_bits_reported(rest);
        coding.absorb(stats);
        bits
    } else {
        rest.to_vec()
    };
    let mut bytes = bits_to_bytes(&bits);
    bytes.truncate(declared);
    Ok(BodyDecode { payload: bytes, coding, marker: None })
}

/// A blind salvage of a marker-coded stream (see [`salvage_marker_bits`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Salvage {
    /// Recovered *data* bits (Hamming-decoded when the frame uses
    /// parity). The starting segment index is unknown, so these bits
    /// begin at an arbitrary segment boundary of the original body —
    /// score them against ground truth with an alignment, not a
    /// positional compare.
    pub bits: Vec<u8>,
    /// Bit position in `received` where the marker lattice locked.
    pub lock_position: usize,
    /// Marker-decoder statistics for the salvaged span.
    pub stats: MarkerStats,
}

/// Last-ditch recovery for a marker-coded frame whose [`START_MARKER`]
/// was destroyed (severity-4 dropped-sample gaps land exactly there):
/// finds the periodic segment-marker lattice with [`blind_lock`],
/// decodes segments from the first surviving marker, and
/// Hamming-decodes the result on the codeword grid — which segment
/// boundaries preserve, because [`MarkerConfig::segment_len`] is a
/// multiple of 7.
///
/// Returns `None` when the frame is not marker-coded, when the body
/// is interleaved (deinterleaving needs the segment index the salvage
/// does not know), or when no lattice is found.
pub fn salvage_marker_bits(received: &[u8], config: FrameConfig) -> Option<Salvage> {
    let mcfg = config.marker?;
    if config.parity && config.interleave_depth.is_some() {
        return None;
    }
    let lock = blind_lock(mcfg, received)?;
    let mut ms = MarkerStream::new(mcfg);
    ms.push(&received[lock..]);
    let mut rigid = Vec::new();
    while ms.next_segment(&mut rigid, true) {}
    let bits = if config.parity { decode_bits_reported(&rigid).0 } else { rigid };
    Some(Salvage { bits, lock_position: lock, stats: ms.stats() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout() {
        let cfg = FrameConfig {
            sync_len: 6,
            zeros_len: 4,
            parity: false,
            interleave_depth: None,
            marker: None,
        };
        let bits = frame_payload(&[0xFF], cfg);
        assert_eq!(&bits[..6], &[1, 0, 1, 0, 1, 0]);
        assert_eq!(&bits[6..10], &[0, 0, 0, 0]);
        assert_eq!(&bits[10..18], &START_MARKER);
        // 16-bit length (0x0001) precedes the payload byte.
        assert_eq!(&bits[18..34], &[0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(&bits[34..], &[1; 8]);
    }

    #[test]
    fn deframe_round_trip() {
        let cfg = FrameConfig::default();
        let payload = b"secret!";
        let bits = frame_payload(payload, cfg);
        let out = deframe(&bits, cfg, 0).expect("marker must be found");
        assert_eq!(out.payload, payload.to_vec());
        assert_eq!(out.corrections, 0);
    }

    #[test]
    fn deframe_corrects_payload_errors() {
        let cfg = FrameConfig::default();
        let payload = b"ab";
        let mut bits = frame_payload(payload, cfg);
        let start = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        bits[start + 2] ^= 1; // 1 error in the first codeword
        bits[start + 9] ^= 1; // 1 error in the second codeword
        let out = deframe(&bits, cfg, 0).expect("marker");
        assert_eq!(out.payload, payload.to_vec());
        assert_eq!(out.corrections, 2);
    }

    #[test]
    fn deframe_tolerates_marker_bit_error() {
        let cfg = FrameConfig::default();
        let payload = b"x";
        let mut bits = frame_payload(payload, cfg);
        let marker_at = cfg.sync_len + cfg.zeros_len;
        bits[marker_at + 3] ^= 1;
        assert!(
            deframe(&bits, cfg, 0).is_none()
                || deframe(&bits, cfg, 0).unwrap().payload != payload.to_vec()
        );
        let out = deframe(&bits, cfg, 1).expect("tolerant deframe");
        assert_eq!(out.payload, payload.to_vec());
    }

    #[test]
    fn deframe_ignores_leading_noise() {
        let cfg = FrameConfig::default();
        let payload = b"hi";
        let mut bits = vec![0u8, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1];
        bits.extend(frame_payload(payload, cfg));
        let out = deframe(&bits, cfg, 0).expect("marker");
        assert_eq!(out.payload, payload.to_vec());
    }

    #[test]
    fn deframe_without_marker_returns_none() {
        let cfg = FrameConfig::default();
        let stream = vec![0u8; 64];
        assert!(deframe(&stream, cfg, 0).is_none());
        assert_eq!(try_deframe(&stream, cfg, 0), Err(FrameError::MarkerNotFound));
    }

    #[test]
    fn try_deframe_distinguishes_truncation_from_no_marker() {
        let cfg = FrameConfig::default();
        // Too short to even hold the marker.
        assert_eq!(try_deframe(&[1, 0, 1], cfg, 0), Err(FrameError::MarkerNotFound));
        // Marker present but the stream ends inside the length header.
        let mut bits = frame_payload(b"xy", cfg);
        let header_end = cfg.sync_len + cfg.zeros_len + START_MARKER.len() + 5;
        bits.truncate(header_end);
        assert_eq!(try_deframe(&bits, cfg, 0), Err(FrameError::TruncatedHeader));
        // And the panic-free wrapper agrees.
        assert!(deframe(&bits, cfg, 0).is_none());
    }

    #[test]
    fn try_deframe_round_trip_matches_deframe() {
        let cfg = FrameConfig::default();
        let bits = frame_payload(b"parity!", cfg);
        let a = try_deframe(&bits, cfg, 0).expect("frame");
        let b = deframe(&bits, cfg, 0).expect("frame");
        assert_eq!(a, b);
    }

    #[test]
    fn interleaved_frame_round_trips() {
        let cfg = FrameConfig { interleave_depth: Some(7), ..FrameConfig::default() };
        let payload = b"interleaved payload";
        let bits = frame_payload(payload, cfg);
        let out = deframe(&bits, cfg, 0).expect("marker");
        assert_eq!(out.payload, payload.to_vec());
    }

    #[test]
    fn interleaved_frame_survives_a_burst() {
        let cfg = FrameConfig { interleave_depth: Some(7), ..FrameConfig::default() };
        let payload = b"burst-proof";
        let mut bits = frame_payload(payload, cfg);
        let body_start = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        // A 6-bit burst inside the body (≤ depth−1 to guarantee ≤1 hit
        // per codeword even when the burst straddles codeword phase).
        for b in bits.iter_mut().skip(body_start + 30).take(6) {
            *b ^= 1;
        }
        let out = deframe(&bits, cfg, 0).expect("marker");
        assert_eq!(out.payload, payload.to_vec(), "interleaving must absorb the burst");
        // The same burst without interleaving corrupts the payload.
        let plain_cfg = FrameConfig::default();
        let mut plain = frame_payload(payload, plain_cfg);
        for b in plain.iter_mut().skip(body_start + 30).take(6) {
            *b ^= 1;
        }
        let broken = deframe(&plain, plain_cfg, 0).expect("marker");
        assert_ne!(broken.payload, payload.to_vec());
    }

    #[test]
    fn marker_coded_frame_round_trips() {
        for (parity, depth) in [(true, None), (true, Some(7)), (false, None)] {
            let cfg = FrameConfig {
                parity,
                interleave_depth: depth,
                marker: Some(MarkerConfig::standard()),
                ..FrameConfig::default()
            };
            let payload = b"marker-coded payload";
            let bits = frame_payload(payload, cfg);
            let out = deframe(&bits, cfg, 0).expect("marker frame deframes");
            assert_eq!(out.payload, payload.to_vec(), "parity={parity} depth={depth:?}");
            assert!(out.marker.is_some());
            assert_eq!(out.marker.unwrap().resyncs, 0, "clean channel never resyncs");
        }
    }

    #[test]
    fn on_air_body_span_matches_framed_length() {
        for marker in [None, Some(MarkerConfig::standard()), Some(MarkerConfig::dense())] {
            for depth in [None, Some(4)] {
                let cfg = FrameConfig { marker, interleave_depth: depth, ..FrameConfig::default() };
                let payload = b"span check";
                let bits = frame_payload(payload, cfg);
                let preamble = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
                assert_eq!(
                    bits.len(),
                    preamble + on_air_body_span(cfg, payload.len()),
                    "marker={marker:?} depth={depth:?}"
                );
                assert_eq!(bits.len(), on_air_frame_len(cfg, payload.len()));
            }
        }
    }

    #[test]
    fn marker_coded_frame_survives_a_deletion() {
        let cfg = FrameConfig { marker: Some(MarkerConfig::standard()), ..FrameConfig::default() };
        let payload = b"deletion proof payload";
        let mut bits = frame_payload(payload, cfg);
        let body_start = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        // Delete one bit late in the body: the rigid grid would shift
        // every bit after it; the marker decoder resynchronises.
        bits.remove(body_start + 150);
        let out = deframe(&bits, cfg, 0).expect("marker frame deframes");
        let stats = out.marker.expect("marker stats");
        assert!(stats.resyncs >= 1, "the deletion must be recovered as a resync");
        // Everything outside the damaged segment survives; allow the
        // resampled segment to corrupt at most its own 2 bytes.
        let wrong = out.payload.iter().zip(payload).filter(|(a, b)| a != b).count()
            + payload.len().saturating_sub(out.payload.len());
        assert!(wrong <= 2, "deletion must stay local: {wrong} bytes wrong");

        // The same deletion without the marker layer destroys the
        // payload from that point on.
        let rigid_cfg = FrameConfig::default();
        let mut rigid_bits = frame_payload(payload, rigid_cfg);
        rigid_bits.remove(body_start + 150);
        let broken = deframe(&rigid_bits, rigid_cfg, 0).expect("start marker still intact");
        let rigid_wrong = broken.payload.iter().zip(payload).filter(|(a, b)| a != b).count()
            + payload.len().saturating_sub(broken.payload.len());
        assert!(rigid_wrong > wrong, "rigid framing must fare worse ({rigid_wrong} vs {wrong})");
    }

    #[test]
    fn marker_interleaved_frame_survives_indels_and_a_burst() {
        let cfg = FrameConfig {
            interleave_depth: Some(7),
            marker: Some(MarkerConfig::standard()),
            ..FrameConfig::default()
        };
        let payload = b"belt and braces";
        let mut bits = frame_payload(payload, cfg);
        let body_start = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        bits.remove(body_start + 90); // a deletion…
        for b in bits.iter_mut().skip(body_start + 200).take(4) {
            *b ^= 1; // …and a short burst
        }
        let out = deframe(&bits, cfg, 0).expect("marker frame deframes");
        assert_eq!(out.payload, payload.to_vec(), "marker + interleaver absorb both");
        assert!(out.marker.unwrap().resyncs >= 1);
    }

    #[test]
    fn salvage_recovers_payload_bits_when_start_marker_is_destroyed() {
        let cfg = FrameConfig { marker: Some(MarkerConfig::standard()), ..FrameConfig::default() };
        let payload = b"salvage me from the wreckage";
        let bits = frame_payload(payload, cfg);
        // Severity-4 shape: a gap that wipes the sync tail, the zeros,
        // START_MARKER and the leading body segments — including the
        // length header, so no anchor candidate can decode a plausible
        // frame and even the ranked chain comes up empty.
        let mcfg = MarkerConfig::standard();
        let marker_at = cfg.sync_len + cfg.zeros_len;
        let mut damaged = bits.clone();
        damaged.drain(marker_at - 10..marker_at + START_MARKER.len() + 2 * mcfg.period() + 10);
        // With its anchor gone the normal deframe path is lost: it
        // either finds nothing or locks a spurious marker match and
        // decodes garbage.
        let rigid = deframe(&damaged, cfg, 1);
        assert!(
            rigid.is_none() || rigid.unwrap().payload != payload.to_vec(),
            "a destroyed start marker must not rigidly deframe to the true payload"
        );
        let salvage = salvage_marker_bits(&damaged, cfg).expect("lattice survives");
        // The salvaged bits contain a long verbatim run of the true
        // payload bits (positional equality is impossible: the lock
        // lands on an unknown segment).
        let tx_bits = bytes_to_bits(payload);
        let probe = &tx_bits[tx_bits.len() / 2..tx_bits.len() / 2 + 48];
        assert!(
            salvage.bits.windows(probe.len()).any(|w| w == probe),
            "salvaged stream must contain payload bits verbatim"
        );
    }

    #[test]
    fn salvage_declines_interleaved_and_unmarked_frames() {
        let plain = FrameConfig::default();
        let bits = frame_payload(b"x", plain);
        assert!(salvage_marker_bits(&bits, plain).is_none());
        let il = FrameConfig {
            interleave_depth: Some(7),
            marker: Some(MarkerConfig::standard()),
            ..FrameConfig::default()
        };
        let bits = frame_payload(b"x", il);
        assert!(salvage_marker_bits(&bits, il).is_none());
    }

    #[test]
    fn deframed_coding_stats_are_reported() {
        let cfg = FrameConfig::default();
        let payload = b"ab";
        let mut bits = frame_payload(payload, cfg);
        let start = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        bits[start + 2] ^= 1;
        let out = deframe(&bits, cfg, 0).expect("frame");
        assert_eq!(out.corrections, out.coding.corrected);
        assert_eq!(out.coding.corrected, 1);
        // 4 header codewords + 4 payload codewords.
        assert_eq!(out.coding.codewords, 8);
        assert_eq!(out.coding.dropped_tail_bits, 0, "clean termination");
        // A stream cut mid-codeword surfaces as dropped tail bits.
        let full = frame_payload(b"tail", cfg);
        let cut = deframe(&full[..full.len() - 3], cfg, 0).expect("frame");
        assert!(cut.coding.dropped_tail_bits > 0, "mid-codeword truncation must be visible");
    }

    #[test]
    fn lattice_rescues_a_burst_damaged_start_marker() {
        let mcfg = MarkerConfig::standard();
        let cfg = FrameConfig { marker: Some(mcfg), ..FrameConfig::default() };
        let payload = b"anchored through the burst";
        let mut bits = frame_payload(payload, cfg);
        let marker_at = cfg.sync_len + cfg.zeros_len;
        // A burst puts 3 errors into START_MARKER — beyond the 1-error
        // scan budget that a rigid frame gets.
        for i in [0, 3, 6] {
            bits[marker_at + i] ^= 1;
        }
        let ranked = ranked_marker_anchors(&bits, mcfg, 1);
        assert_eq!(
            ranked.first(),
            Some(&marker_at),
            "the fully exact segment lattice must rank the damaged anchor first"
        );
        let out = try_deframe(&bits, cfg, 1).expect("lattice-confirmed anchor");
        assert_eq!(out.payload, payload.to_vec());
        // The same damage on a rigid frame loses the anchor entirely
        // (or locks a spurious match elsewhere).
        let rigid_cfg = FrameConfig::default();
        let mut rigid_bits = frame_payload(payload, rigid_cfg);
        for i in [0, 3, 6] {
            rigid_bits[marker_at + i] ^= 1;
        }
        let rigid = try_deframe(&rigid_bits, rigid_cfg, 1);
        assert!(
            !rigid.is_ok_and(|d| d.payload == payload.to_vec()),
            "rigid framing must not survive a 3-bit marker burst"
        );
    }

    #[test]
    fn lattice_probe_tolerates_marker_drift() {
        let mcfg = MarkerConfig::standard();
        let cfg = FrameConfig { marker: Some(mcfg), ..FrameConfig::default() };
        let mut bits = frame_payload(b"probe under drift", cfg);
        let body_at = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        let clean = lattice_score(&bits, body_at, mcfg);
        assert_eq!(clean.exact, LATTICE_PROBE_MARKERS);
        // A deletion between markers 2 and 3 shifts the later probes by
        // one bit: the drift radius must still find them, demoting them
        // to drifted hits rather than misses.
        bits.remove(body_at + 2 * mcfg.period() + SEGMENT_MARKER.len() + 1);
        let shifted = lattice_score(&bits, body_at, mcfg);
        assert_eq!(shifted.hits(), LATTICE_PROBE_MARKERS);
        assert_eq!(shifted.exact, 3);
        assert!(shifted.score() < clean.score(), "drift must cost rank");
    }

    #[test]
    fn implausible_declared_length_is_rejected() {
        let mcfg = MarkerConfig::standard();
        let cfg = FrameConfig { marker: Some(mcfg), ..FrameConfig::default() };
        let payload = vec![0xA5u8; 64];
        let bits = frame_payload(&payload, cfg);
        let body_start = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        // Keep the anchor and the first few segments — enough for the
        // header to decode and declare 64 bytes — but cut the stream
        // long before half that body could have arrived. A garbled
        // header in a real capture produces the same shape with an
        // absurd declared length; pumping it would zero-pad hundreds of
        // kilobits of fiction.
        let cut = body_start + 6 * mcfg.period();
        let err = try_deframe(&bits[..cut], cfg, 1).unwrap_err();
        assert!(
            matches!(err, FrameError::ImplausibleLength { declared: 64 }),
            "expected ImplausibleLength, got {err:?}"
        );
    }

    #[test]
    fn marker_cannot_appear_in_sync_or_zeros() {
        // Sliding the marker over an alternating or zero sequence must
        // always produce ≥2 mismatches, so a 1-error-tolerant search
        // cannot lock onto the header.
        let cfg = FrameConfig::default();
        let header: Vec<u8> = frame_payload(&[], cfg)[..cfg.sync_len + cfg.zeros_len].to_vec();
        for pos in 0..=header.len() - START_MARKER.len() {
            let errors = header[pos..pos + START_MARKER.len()]
                .iter()
                .zip(&START_MARKER)
                .filter(|(a, b)| **a != **b)
                .count();
            assert!(errors >= 2, "marker aliases header at {pos}");
        }
    }
}
