//! Framing and synchronisation for the covert bitstream.
//!
//! §IV-C1: "For synchronization between the transmitter and receiver
//! at the start of the communication, the transmitter sends a
//! pre-defined bit-stream of interleaved ones and zeros followed by a
//! known short bit-stream of zeros only. The transmitter then sends a
//! preamble to indicate the start of the transmission, and then sends
//! the actual data."

use crate::coding::{bits_to_bytes, bytes_to_bits, decode_bits, encode_bits};
use crate::interleave::Interleaver;

/// Default number of alternating sync bits (long enough for the
/// victim's DVFS governor to settle at its steady state).
pub const DEFAULT_SYNC_LEN: usize = 48;
/// Default length of the all-zeros gap after the sync pattern.
pub const DEFAULT_ZEROS_LEN: usize = 8;
/// The start-of-transmission marker (chosen to be impossible within
/// the alternating sync sequence and unlikely in the zeros run).
pub const START_MARKER: [u8; 8] = [1, 1, 1, 0, 0, 0, 1, 1];

/// Framing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameConfig {
    /// Alternating 1/0 bits at the head of a transmission.
    pub sync_len: usize,
    /// All-zero bits between sync and marker.
    pub zeros_len: usize,
    /// Apply Hamming(7,4) to the payload.
    pub parity: bool,
    /// Interleave the coded body at this depth (codewords per block),
    /// spreading §IV-B4 error bursts across codewords. `None`
    /// transmits codewords in order, as the paper does.
    pub interleave_depth: Option<usize>,
}

impl Default for FrameConfig {
    fn default() -> Self {
        FrameConfig {
            sync_len: DEFAULT_SYNC_LEN,
            zeros_len: DEFAULT_ZEROS_LEN,
            parity: true,
            interleave_depth: None,
        }
    }
}

/// Builds the on-air bit sequence for a payload of bytes:
/// `[1,0,1,0,…] ++ [0,…] ++ START_MARKER ++ code(len ++ payload)`,
/// where `len` is a 16-bit big-endian byte count so the receiver can
/// discard whatever trailing noise decodes after the payload.
///
/// # Panics
///
/// Panics if the payload exceeds 65 535 bytes.
pub fn frame_payload(payload: &[u8], config: FrameConfig) -> Vec<u8> {
    assert!(payload.len() <= u16::MAX as usize, "payload too large for one frame");
    let mut bits = Vec::new();
    for i in 0..config.sync_len {
        bits.push((1 - i % 2) as u8);
    }
    bits.extend(std::iter::repeat_n(0u8, config.zeros_len));
    bits.extend_from_slice(&START_MARKER);
    let mut body = (payload.len() as u16).to_be_bytes().to_vec();
    body.extend_from_slice(payload);
    let payload_bits = bytes_to_bits(&body);
    if config.parity {
        let coded = encode_bits(&payload_bits);
        match config.interleave_depth {
            Some(depth) => bits.extend(Interleaver::new(7, depth).interleave(&coded)),
            None => bits.extend(coded),
        }
    } else {
        bits.extend(payload_bits);
    }
    bits
}

/// Result of deframing a received bit sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deframed {
    /// Recovered payload bytes.
    pub payload: Vec<u8>,
    /// Bit index at which the payload started in the received stream.
    pub payload_start: usize,
    /// Number of Hamming corrections applied (0 when parity is off).
    pub corrections: usize,
}

/// Why a received bit stream could not be deframed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// No start marker was found within the error tolerance — either
    /// nothing was transmitted or sync was lost before the marker.
    MarkerNotFound,
    /// A marker was found but the stream ends before the 16-bit
    /// length header completes, so the payload size is unknown.
    TruncatedHeader,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::MarkerNotFound => write!(f, "start marker not found in received stream"),
            FrameError::TruncatedHeader => {
                write!(f, "stream truncated inside the frame length header")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Locates the start marker in a received bit stream (tolerating up to
/// `max_marker_errors` bit errors in the marker itself) and decodes
/// the payload that follows. Returns `None` if no marker is found.
///
/// Thin wrapper over [`try_deframe`] for callers that only care
/// whether a frame was recovered, not why it was not.
pub fn deframe(received: &[u8], config: FrameConfig, max_marker_errors: usize) -> Option<Deframed> {
    try_deframe(received, config, max_marker_errors).ok()
}

/// Fallible deframing: like [`deframe`] but reporting *why* recovery
/// failed, so experiments can distinguish "no transmission detected"
/// from "transmission cut off mid-frame".
///
/// # Errors
///
/// [`FrameError::MarkerNotFound`] when no start marker matches within
/// `max_marker_errors`; [`FrameError::TruncatedHeader`] when the
/// stream ends inside the length header.
pub fn try_deframe(
    received: &[u8],
    config: FrameConfig,
    max_marker_errors: usize,
) -> Result<Deframed, FrameError> {
    let m = START_MARKER.len();
    if received.len() < m {
        return Err(FrameError::MarkerNotFound);
    }
    let mut best: Option<(usize, usize)> = None; // (errors, position)
    for pos in 0..=received.len() - m {
        let errors = marker_errors_at(received, pos);
        if errors <= max_marker_errors && best.is_none_or(|(e, _)| errors < e) {
            best = Some((errors, pos));
            if errors == 0 {
                break;
            }
        }
    }
    let (_, pos) = best.ok_or(FrameError::MarkerNotFound)?;
    let payload_start = pos + m;
    let (payload, corrections) = decode_body(&received[payload_start..], config)?;
    Ok(Deframed { payload, payload_start, corrections })
}

/// Number of marker-bit mismatches when [`START_MARKER`] is laid over
/// `received` at `pos` (bits compared on their LSB, as on air).
///
/// Shared by [`try_deframe`] and the streaming
/// [`crate::stream::Deframer`] so both judge candidates identically.
pub(crate) fn marker_errors_at(received: &[u8], pos: usize) -> usize {
    received[pos..pos + START_MARKER.len()]
        .iter()
        .zip(&START_MARKER)
        .filter(|(a, b)| (**a & 1) != **b)
        .count()
}

/// Coded bits occupied by the 16-bit length header.
pub(crate) fn header_span(config: FrameConfig) -> usize {
    // 16 bits → 4 codewords → 28 coded bits under parity.
    if config.parity {
        28
    } else {
        16
    }
}

/// Coded bits occupied by a `declared`-byte payload body.
pub(crate) fn body_span(config: FrameConfig, declared: usize) -> usize {
    if config.parity {
        declared * 8 / 4 * 7
    } else {
        declared * 8
    }
}

/// Declared payload byte count peeked from the first
/// [`header_span`] bits after the marker, or `None` when fewer bits
/// are available yet. Only meaningful for non-interleaved frames,
/// where the header occupies a fixed prefix of the on-air body.
pub(crate) fn peek_declared(body: &[u8], config: FrameConfig) -> Option<usize> {
    let span = header_span(config);
    if body.len() < span {
        return None;
    }
    let header_bits =
        if config.parity { decode_bits(&body[..span]).0 } else { body[..span].to_vec() };
    let header = bits_to_bytes(&header_bits);
    Some(u16::from_be_bytes([header[0], header[1]]) as usize)
}

/// Decodes the frame body that follows a located marker: undoes the
/// interleaving, reads the 16-bit length header, then exactly the
/// declared number of payload bytes — anything after belongs to the
/// channel (or the next packet), not to this frame. Returns the
/// payload and the total Hamming corrections applied.
///
/// Shared by [`try_deframe`] and the streaming
/// [`crate::stream::Deframer`], which hands it the same bit span the
/// batch path would see.
pub(crate) fn decode_body(
    body: &[u8],
    config: FrameConfig,
) -> Result<(Vec<u8>, usize), FrameError> {
    // Undo interleaving first, if the frame used it: the whole coded
    // body (length header + payload) shares the interleaver blocks.
    let deinterleaved;
    let body = match (config.parity, config.interleave_depth) {
        (true, Some(depth)) => {
            deinterleaved = Interleaver::new(7, depth).deinterleave(body);
            deinterleaved.as_slice()
        }
        _ => body,
    };
    let (header_bits, header_corrections, len_span) = if config.parity {
        let span = header_span(config).min(body.len());
        let (bits, fixes) = decode_bits(&body[..span]);
        (bits, fixes, span)
    } else {
        let span = header_span(config).min(body.len());
        (body[..span].to_vec(), 0, span)
    };
    let header = bits_to_bytes(&header_bits);
    if header.len() < 2 {
        return Err(FrameError::TruncatedHeader);
    }
    let declared = u16::from_be_bytes([header[0], header[1]]) as usize;
    let span = body_span(config, declared);
    let rest = &body[len_span..(len_span + span).min(body.len())];
    let (bits, corrections) = if config.parity { decode_bits(rest) } else { (rest.to_vec(), 0) };
    let mut bytes = bits_to_bytes(&bits);
    bytes.truncate(declared);
    Ok((bytes, corrections + header_corrections))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout() {
        let cfg = FrameConfig { sync_len: 6, zeros_len: 4, parity: false, interleave_depth: None };
        let bits = frame_payload(&[0xFF], cfg);
        assert_eq!(&bits[..6], &[1, 0, 1, 0, 1, 0]);
        assert_eq!(&bits[6..10], &[0, 0, 0, 0]);
        assert_eq!(&bits[10..18], &START_MARKER);
        // 16-bit length (0x0001) precedes the payload byte.
        assert_eq!(&bits[18..34], &[0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(&bits[34..], &[1; 8]);
    }

    #[test]
    fn deframe_round_trip() {
        let cfg = FrameConfig::default();
        let payload = b"secret!";
        let bits = frame_payload(payload, cfg);
        let out = deframe(&bits, cfg, 0).expect("marker must be found");
        assert_eq!(out.payload, payload.to_vec());
        assert_eq!(out.corrections, 0);
    }

    #[test]
    fn deframe_corrects_payload_errors() {
        let cfg = FrameConfig::default();
        let payload = b"ab";
        let mut bits = frame_payload(payload, cfg);
        let start = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        bits[start + 2] ^= 1; // 1 error in the first codeword
        bits[start + 9] ^= 1; // 1 error in the second codeword
        let out = deframe(&bits, cfg, 0).expect("marker");
        assert_eq!(out.payload, payload.to_vec());
        assert_eq!(out.corrections, 2);
    }

    #[test]
    fn deframe_tolerates_marker_bit_error() {
        let cfg = FrameConfig::default();
        let payload = b"x";
        let mut bits = frame_payload(payload, cfg);
        let marker_at = cfg.sync_len + cfg.zeros_len;
        bits[marker_at + 3] ^= 1;
        assert!(
            deframe(&bits, cfg, 0).is_none()
                || deframe(&bits, cfg, 0).unwrap().payload != payload.to_vec()
        );
        let out = deframe(&bits, cfg, 1).expect("tolerant deframe");
        assert_eq!(out.payload, payload.to_vec());
    }

    #[test]
    fn deframe_ignores_leading_noise() {
        let cfg = FrameConfig::default();
        let payload = b"hi";
        let mut bits = vec![0u8, 1, 1, 0, 1, 0, 0, 1, 0, 1, 1];
        bits.extend(frame_payload(payload, cfg));
        let out = deframe(&bits, cfg, 0).expect("marker");
        assert_eq!(out.payload, payload.to_vec());
    }

    #[test]
    fn deframe_without_marker_returns_none() {
        let cfg = FrameConfig::default();
        let stream = vec![0u8; 64];
        assert!(deframe(&stream, cfg, 0).is_none());
        assert_eq!(try_deframe(&stream, cfg, 0), Err(FrameError::MarkerNotFound));
    }

    #[test]
    fn try_deframe_distinguishes_truncation_from_no_marker() {
        let cfg = FrameConfig::default();
        // Too short to even hold the marker.
        assert_eq!(try_deframe(&[1, 0, 1], cfg, 0), Err(FrameError::MarkerNotFound));
        // Marker present but the stream ends inside the length header.
        let mut bits = frame_payload(b"xy", cfg);
        let header_end = cfg.sync_len + cfg.zeros_len + START_MARKER.len() + 5;
        bits.truncate(header_end);
        assert_eq!(try_deframe(&bits, cfg, 0), Err(FrameError::TruncatedHeader));
        // And the panic-free wrapper agrees.
        assert!(deframe(&bits, cfg, 0).is_none());
    }

    #[test]
    fn try_deframe_round_trip_matches_deframe() {
        let cfg = FrameConfig::default();
        let bits = frame_payload(b"parity!", cfg);
        let a = try_deframe(&bits, cfg, 0).expect("frame");
        let b = deframe(&bits, cfg, 0).expect("frame");
        assert_eq!(a, b);
    }

    #[test]
    fn interleaved_frame_round_trips() {
        let cfg = FrameConfig { interleave_depth: Some(7), ..FrameConfig::default() };
        let payload = b"interleaved payload";
        let bits = frame_payload(payload, cfg);
        let out = deframe(&bits, cfg, 0).expect("marker");
        assert_eq!(out.payload, payload.to_vec());
    }

    #[test]
    fn interleaved_frame_survives_a_burst() {
        let cfg = FrameConfig { interleave_depth: Some(7), ..FrameConfig::default() };
        let payload = b"burst-proof";
        let mut bits = frame_payload(payload, cfg);
        let body_start = cfg.sync_len + cfg.zeros_len + START_MARKER.len();
        // A 6-bit burst inside the body (≤ depth−1 to guarantee ≤1 hit
        // per codeword even when the burst straddles codeword phase).
        for b in bits.iter_mut().skip(body_start + 30).take(6) {
            *b ^= 1;
        }
        let out = deframe(&bits, cfg, 0).expect("marker");
        assert_eq!(out.payload, payload.to_vec(), "interleaving must absorb the burst");
        // The same burst without interleaving corrupts the payload.
        let plain_cfg = FrameConfig::default();
        let mut plain = frame_payload(payload, plain_cfg);
        for b in plain.iter_mut().skip(body_start + 30).take(6) {
            *b ^= 1;
        }
        let broken = deframe(&plain, plain_cfg, 0).expect("marker");
        assert_ne!(broken.payload, payload.to_vec());
    }

    #[test]
    fn marker_cannot_appear_in_sync_or_zeros() {
        // Sliding the marker over an alternating or zero sequence must
        // always produce ≥2 mismatches, so a 1-error-tolerant search
        // cannot lock onto the header.
        let cfg = FrameConfig::default();
        let header: Vec<u8> = frame_payload(&[], cfg)[..cfg.sync_len + cfg.zeros_len].to_vec();
        for pos in 0..=header.len() - START_MARKER.len() {
            let errors = header[pos..pos + START_MARKER.len()]
                .iter()
                .zip(&START_MARKER)
                .filter(|(a, b)| **a != **b)
                .count();
            assert!(errors >= 2, "marker aliases header at {pos}");
        }
    }
}
