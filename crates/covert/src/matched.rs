//! The matched-filter receiver the paper tried first — and rejected.
//!
//! §IV-B1: "when applying the matched filter approach to our received
//! signal, the BER was high … the actual bit positions in the signal
//! quickly become misaligned with the clock created by the receiver."
//! This module implements that approach so the ablation benchmark can
//! reproduce the comparison: it locks a symbol clock to the first
//! detected edge and samples at a *fixed* period, with no per-bit
//! timing recovery.

use emsc_sdr::dsp::{convolve_same_into, edge_kernel, find_peaks};
use emsc_sdr::simd::sum_sq;
use emsc_sdr::stats::try_quantile_with;
use emsc_sdr::DspScratch;

/// Demodulates the energy signal `y` (sample spacing `dt_s` seconds)
/// by integrating fixed windows of `symbol_period_s` from the first
/// detected edge onward — the conventional matched-filter/synchronous
/// sampling approach. Allocating wrapper around
/// [`matched_filter_demodulate_with`].
///
/// Returns the decoded bits (empty if no edge is found).
pub fn matched_filter_demodulate(y: &[f64], dt_s: f64, symbol_period_s: f64) -> Vec<u8> {
    matched_filter_demodulate_with(y, dt_s, symbol_period_s, &mut DspScratch::new())
}

/// [`matched_filter_demodulate`] with reusable scratch: the edge
/// response is staged in `scratch.f1`, the quantile sorts in
/// `scratch.f0`, and each integrate-and-dump window is the
/// lane-chunked [`sum_sq`] reduction. This is a tolerance-bounded path
/// (DESIGN.md §12): the reassociated window sums differ from a scalar
/// fold only in the last ulps, far inside the mid-range decision
/// threshold's margin.
pub fn matched_filter_demodulate_with(
    y: &[f64],
    dt_s: f64,
    symbol_period_s: f64,
    scr: &mut DspScratch,
) -> Vec<u8> {
    if y.is_empty() || symbol_period_s <= 0.0 || dt_s <= 0.0 {
        return Vec::new();
    }
    let period = symbol_period_s / dt_s;
    // Find the first strong rising edge to anchor the clock.
    let l_d = ((period / 4.0).round() as usize * 2).max(4);
    let mut response = std::mem::take(&mut scr.f1);
    convolve_same_into(y, &edge_kernel(l_d), &mut response, scr);
    let positive: Vec<f64> = response.iter().map(|&v| v.max(0.0)).collect();
    let robust = try_quantile_with(&positive, 0.98, scr).expect("non-empty").max(1e-30);
    let peaks = find_peaks(&response, 0.3 * robust, (period * 0.5) as usize);
    scr.f1 = response;
    let Some(&first) = peaks.first() else {
        return Vec::new();
    };
    // Integrate-and-dump at the fixed period (no timing recovery).
    let mut powers = Vec::new();
    let mut pos = first.index as f64;
    while (pos + period) as usize <= y.len() {
        let s = pos as usize;
        let e = (pos + period) as usize;
        powers.push(sum_sq(&y[s..e]) / (e - s) as f64);
        pos += period;
    }
    if powers.is_empty() {
        return Vec::new();
    }
    // Same mid-range threshold rule as the batch receiver's fallback.
    let lo = try_quantile_with(&powers, 0.05, scr).expect("non-empty");
    let hi = try_quantile_with(&powers, 0.95, scr).expect("non-empty");
    let thr = (lo + hi) / 2.0;
    powers.iter().map(|&p| (p > thr) as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An ideal OOK energy signal with exact symbol timing, padded
    /// with idle lead-in/lead-out.
    fn ideal_energy(bits: &[u8], spb: usize) -> Vec<f64> {
        let mut y = vec![0.05; spb];
        for &b in bits {
            for n in 0..spb {
                let on = if b == 1 { n < spb / 2 } else { n < spb / 10 };
                y.push(if on { 1.0 } else { 0.05 });
            }
        }
        y.extend(std::iter::repeat_n(0.05, spb));
        y
    }

    /// The same signal with per-bit positive timing jitter.
    fn jittered_energy(bits: &[u8], spb: usize, jitter_frac: f64) -> Vec<f64> {
        let mut y = Vec::new();
        let mut state = 99u64;
        for &b in bits {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = ((state % 1000) as f64 / 1000.0) * jitter_frac;
            let len = (spb as f64 * (1.0 + j)) as usize;
            for n in 0..len {
                let on = if b == 1 { n < spb / 2 } else { n < spb / 10 };
                y.push(if on { 1.0 } else { 0.05 });
            }
        }
        y
    }

    #[test]
    fn perfect_clock_decodes_perfectly() {
        let bits = vec![1u8, 0, 1, 1, 0, 0, 1, 0, 1, 0, 0, 1];
        let y = ideal_energy(&bits, 40);
        let out = matched_filter_demodulate(&y, 1.0, 40.0);
        // The idle lead-out may decode as one extra trailing 0.
        assert!(out.len() >= bits.len());
        assert_eq!(&out[..bits.len()], &bits[..]);
        assert!(out[bits.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn timing_jitter_destroys_the_matched_filter() {
        // With ~25 % positive jitter per symbol, the fixed clock walks
        // off the bit grid: BER collapses toward coin-flipping, which
        // is exactly why the paper abandoned this receiver.
        let bits: Vec<u8> = (0..200).map(|i| ((i * 5 + 1) % 3 == 0) as u8).collect();
        let y = jittered_energy(&bits, 40, 0.25);
        let out = matched_filter_demodulate(&y, 1.0, 40.0);
        let compare = bits.len().min(out.len());
        let errors = bits[..compare].iter().zip(&out[..compare]).filter(|(a, b)| a != b).count();
        let ber = errors as f64 / compare as f64;
        assert!(ber > 0.15, "matched filter unexpectedly robust: BER {ber}");
    }

    #[test]
    fn empty_input_yields_no_bits() {
        assert!(matched_filter_demodulate(&[], 1.0, 10.0).is_empty());
        assert!(matched_filter_demodulate(&[0.0; 100], 1.0, 10.0).is_empty());
    }

    #[test]
    fn scratch_variant_decodes_identically_and_reuses_buffers() {
        let bits = vec![1u8, 0, 1, 1, 0, 0, 1, 0];
        let y = ideal_energy(&bits, 40);
        let mut scr = DspScratch::new();
        assert_eq!(
            matched_filter_demodulate_with(&y, 1.0, 40.0, &mut scr),
            matched_filter_demodulate(&y, 1.0, 40.0)
        );
        let caps = (scr.f0.capacity(), scr.f1.capacity());
        matched_filter_demodulate_with(&y, 1.0, 40.0, &mut scr);
        assert_eq!(caps, (scr.f0.capacity(), scr.f1.capacity()), "steady-state must not grow");
    }
}
