//! The PMU-EM covert channel: transmitter, receiver and metrics.
//!
//! Implements §IV of the HPCA 2020 paper end to end:
//!
//! - [`tx`]: the Fig. 3 transmitter — return-to-zero coding of bits
//!   into busy/`usleep` phases of a user-level program,
//! - [`coding`]: the Hamming(7,4) parity code (min distance 3) of
//!   §IV-B4 / §IV-C2,
//! - [`frame`]: sync/marker framing (§IV-C1),
//! - [`packets`]: packetised transfers that bound insertion/deletion
//!   damage to one packet (§IV-C1 "the data can be sent in packets"),
//! - [`rx`]: the batch receiver — Eq. (1) energy signal, Fig. 5 edge
//!   detection, Fig. 6 median timing with gap filling, Fig. 7 bimodal
//!   threshold labeling,
//! - [`matched`]: the matched-filter receiver the paper rejected
//!   (kept for the ablation),
//! - [`stream`]: the streaming receive chain — resumable
//!   [`stream::StreamingReceiver`]/[`stream::Deframer`] state machines
//!   fed IQ chunks, bit-identical to the batch path,
//! - [`metrics`]: insertion/deletion-aware alignment producing the
//!   BER/IP/DP numbers of Tables II and III,
//! - [`capacity`]: information-theoretic bounds on the measured
//!   channel (BSC capacity, indel-discounted effective rate),
//! - [`interleave`]: block interleaving so error bursts spread across
//!   codewords (a natural strengthening of §IV-B4's parity scheme),
//! - [`marker`]: synchronisation-robust marker coding — periodic known
//!   markers with a drift-tracking decoder that re-aligns the bit
//!   clock between markers, so insertions/deletions corrupt one
//!   segment instead of shifting the rest of the frame,
//! - [`adapt`]: the closed-loop rate controller that walks a
//!   rate/robustness ladder from probe-frame quality (automating the
//!   paper's manual rate-vs-distance tuning, Table II → §V).
//!
//! The full physical chain (machine → VRM → EM scene → SDR) is
//! composed in `emsc-core`; this crate's end-to-end tests wire it up
//! manually.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adapt;
pub mod capacity;
pub mod coding;
pub mod frame;
pub mod interleave;
pub mod marker;
pub mod matched;
pub mod metrics;
pub mod packets;
pub mod rx;
pub mod stream;
pub mod tx;

pub use adapt::{AdaptPolicy, ProbeOutcome, RateController, RateLadder, RateStep};
pub use coding::CodingStats;
pub use frame::{on_air_frame_len, salvage_marker_bits, FrameError, Salvage};
pub use marker::{
    blind_lock, marker_decode, marker_encode, MarkerConfig, MarkerStats, MarkerStream,
};
pub use metrics::{
    align, align_semiglobal, align_trace, codeword_audit, AlignOp, Alignment, CodewordAudit,
};
pub use rx::{Receiver, RxConfig, RxError, RxReport, SyncLoss};
pub use stream::{Deframer, FrameEvent, RxProgress, StreamingReceiver};
pub use tx::{Transmitter, TxConfig};
