//! The covert-channel transmitter (the paper's Fig. 3).
//!
//! For each bit: a `1` is a busy loop of `LOOP_PERIOD` iterations
//! followed by `usleep(SLEEP_PERIOD)` (return-to-zero coding); a `0`
//! is `usleep(SLEEP_PERIOD × 2)` alone. None of this needs elevated
//! privileges — it is an ordinary user-level program, which is the
//! whole point of the threat model.
//!
//! Even a `0` bit produces a brief burst of activity at its start: the
//! "execution of the library and system code that implements the
//! actual call to usleep and its house-keeping activity" (§IV-A),
//! which is what gives the receiver an edge to synchronise on
//! (Fig. 4, first bullet).

use emsc_pmu::sim::Machine;
use emsc_pmu::workload::Program;

use crate::frame::{frame_payload, FrameConfig};

/// Transmitter timing parameters (the Fig. 3 knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxConfig {
    /// Busy-loop iterations encoding a `1` (LOOP_PERIOD).
    pub loop_iterations: u64,
    /// Sleep request per bit, seconds (SLEEP_PERIOD).
    pub sleep_period_s: f64,
    /// Iterations of unavoidable per-bit housekeeping (file read,
    /// usleep entry/exit) executed at the start of *every* bit.
    pub overhead_iterations: u64,
    /// Framing (sync/marker/parity).
    pub frame: FrameConfig,
}

impl TxConfig {
    /// UNIX-style transmitter: SLEEP_PERIOD = 100 µs (§IV-C1) with
    /// LOOP_PERIOD sized so active and idle phases are roughly equal
    /// on a ~3 GHz machine.
    pub fn unix_default() -> Self {
        TxConfig {
            loop_iterations: 300_000, // ≈100 µs at 3 GHz
            sleep_period_s: 100e-6,
            overhead_iterations: 24_000, // ≈8 µs of syscall/libc work
            frame: FrameConfig::default(),
        }
    }

    /// Windows transmitter: `Sleep()` has millisecond granularity, so
    /// SLEEP_PERIOD = 0.5 ms — both `Sleep(0.5 ms)` and
    /// `Sleep(2 × 0.5 ms)` quantise to ≥1 ms ticks, and the bit value
    /// is carried by the presence of the busy phase.
    pub fn windows_default() -> Self {
        TxConfig {
            loop_iterations: 300_000,
            sleep_period_s: 0.5e-3,
            overhead_iterations: 24_000,
            frame: FrameConfig::default(),
        }
    }

    /// Calibrates a transmitter for a concrete machine, the way the
    /// paper's authors tuned LOOP_PERIOD per laptop: the busy phase is
    /// sized by *measured* duration (which depends on the DVFS
    /// governor — short bursts may never reach P0), not by nominal
    /// instruction rates.
    pub fn calibrated(machine: &Machine, active_s: f64, sleep_period_s: f64) -> Self {
        TxConfig::calibrated_with_overhead(machine, active_s, sleep_period_s, 8e-6)
    }

    /// Like [`TxConfig::calibrated`] with an explicit per-bit
    /// housekeeping cost (Windows' `Sleep` + APC path is several times
    /// heavier than a Linux `usleep`).
    pub fn calibrated_with_overhead(
        machine: &Machine,
        active_s: f64,
        sleep_period_s: f64,
        overhead_s: f64,
    ) -> Self {
        TxConfig {
            loop_iterations: machine.iterations_for_duration(active_s),
            sleep_period_s,
            overhead_iterations: machine.iterations_for_duration(overhead_s),
            frame: FrameConfig::default(),
        }
    }

    /// Slows the transmitter down by `factor`: the busy phase and the
    /// sleep period both scale, so the duty cycle (and therefore the
    /// receiver's edge/threshold geometry) is preserved while the bit
    /// period grows. The per-bit housekeeping overhead is fixed cost
    /// and does not scale. This is the knob the adaptive rate
    /// controller turns — the paper's manual rate-vs-distance ladder
    /// (3.7 kbps at 10 cm down to 821 bps through a wall), automated.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn stretched(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "stretch factor must be positive");
        TxConfig {
            loop_iterations: ((self.loop_iterations as f64 * factor).round() as u64).max(1),
            sleep_period_s: self.sleep_period_s * factor,
            ..*self
        }
    }

    /// Nominal on-air duration of one bit (ignoring jitter): the mean
    /// of the `1` (loop + sleep) and `0` (2 × sleep) durations, given
    /// the machine's iteration rate.
    pub fn nominal_bit_period_s(&self, ips: f64) -> f64 {
        let one =
            (self.loop_iterations + self.overhead_iterations) as f64 / ips + self.sleep_period_s;
        let zero = self.overhead_iterations as f64 / ips + 2.0 * self.sleep_period_s;
        0.5 * (one + zero)
    }

    /// Expected on-air duration of one bit on a concrete machine,
    /// accounting for DVFS ramping, sleep lengthening and C-state
    /// wake latency — the prior the receiver should use.
    pub fn expected_bit_period_on(&self, machine: &Machine) -> f64 {
        let overhead = machine.burst_duration_s(self.overhead_iterations);
        let one = overhead
            + machine.burst_duration_s(self.loop_iterations)
            + machine.expected_sleep_s(self.sleep_period_s);
        let zero = overhead + machine.expected_sleep_s(self.sleep_period_s * 2.0);
        0.5 * (one + zero)
    }
}

/// The transmitter: turns payload bytes into a [`Program`] the
/// machine simulator executes.
#[derive(Debug, Clone)]
pub struct Transmitter {
    config: TxConfig,
}

impl Transmitter {
    /// Creates a transmitter.
    ///
    /// # Panics
    ///
    /// Panics if the sleep period is not positive.
    pub fn new(config: TxConfig) -> Self {
        assert!(config.sleep_period_s > 0.0, "sleep period must be positive");
        Transmitter { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TxConfig {
        &self.config
    }

    /// The framed on-air bits for a payload (what [`Transmitter::program`]
    /// will modulate) — kept accessible so experiments can compare
    /// transmitted and received bitstreams (C-INTERMEDIATE).
    pub fn on_air_bits(&self, payload: &[u8]) -> Vec<u8> {
        frame_payload(payload, self.config.frame)
    }

    /// Builds the simulated user-level program transmitting `payload`.
    pub fn program(&self, payload: &[u8]) -> Program {
        self.program_for_bits(&self.on_air_bits(payload))
    }

    /// Builds the program for a raw (already framed/coded) bit
    /// sequence — the Fig. 3 loop body, one iteration per bit.
    pub fn program_for_bits(&self, bits: &[u8]) -> Program {
        let cfg = &self.config;
        let mut p = Program::new();
        for &bit in bits {
            // Reading the next bit + usleep housekeeping: runs for
            // every bit, and is what makes the per-bit start edge.
            p.busy(cfg.overhead_iterations);
            if bit & 1 == 1 {
                p.busy(cfg.loop_iterations);
                p.sleep(cfg.sleep_period_s);
            } else {
                p.sleep(cfg.sleep_period_s * 2.0);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_pmu::workload::Op;

    #[test]
    fn one_bit_is_busy_then_sleep() {
        let tx = Transmitter::new(TxConfig::unix_default());
        let p = tx.program_for_bits(&[1]);
        assert_eq!(p.ops().len(), 3);
        assert!(matches!(p.ops()[0], Op::Busy { iterations } if iterations == 24_000));
        assert!(matches!(p.ops()[1], Op::Busy { iterations } if iterations == 300_000));
        assert!(
            matches!(p.ops()[2], Op::Sleep { duration_s } if (duration_s - 100e-6).abs() < 1e-12)
        );
    }

    #[test]
    fn zero_bit_is_double_sleep() {
        let tx = Transmitter::new(TxConfig::unix_default());
        let p = tx.program_for_bits(&[0]);
        assert_eq!(p.ops().len(), 2);
        assert!(matches!(p.ops()[0], Op::Busy { iterations } if iterations == 24_000));
        assert!(
            matches!(p.ops()[1], Op::Sleep { duration_s } if (duration_s - 200e-6).abs() < 1e-12)
        );
    }

    #[test]
    fn program_length_scales_with_payload() {
        let tx = Transmitter::new(TxConfig::unix_default());
        let short = tx.program(b"a");
        let long = tx.program(b"abcd");
        assert!(long.ops().len() > short.ops().len());
    }

    #[test]
    fn nominal_bit_period_matches_table_ii_regime() {
        // UNIX laptops in Table II transmit at ~3–3.7 kbps.
        let unix = TxConfig::unix_default();
        let tr = 1.0 / unix.nominal_bit_period_s(3.0e9);
        assert!(tr > 2_500.0 && tr < 7_000.0, "unix nominal TR {tr}");
        // Windows laptops land slightly below 1 kbps.
        let win = TxConfig::windows_default();
        let tr_win = 1.0 / win.nominal_bit_period_s(3.0e9);
        assert!(tr_win < 1_300.0, "windows nominal TR {tr_win}");
        assert!(tr > 2.0 * tr_win, "unix must be much faster than windows");
    }

    #[test]
    fn on_air_bits_include_framing() {
        let tx = Transmitter::new(TxConfig::unix_default());
        let bits = tx.on_air_bits(b"z");
        let cfg = tx.config().frame;
        // sync + zeros + marker + (16 length + 8 payload) bits coded
        // at rate 4/7: 24 bits → 42.
        assert_eq!(bits.len(), cfg.sync_len + cfg.zeros_len + 8 + 42);
    }

    #[test]
    fn stretched_config_scales_period_but_not_overhead() {
        let base = TxConfig::unix_default();
        let slow = base.stretched(2.5);
        assert_eq!(slow.loop_iterations, 750_000);
        assert!((slow.sleep_period_s - 250e-6).abs() < 1e-12);
        assert_eq!(slow.overhead_iterations, base.overhead_iterations);
        assert_eq!(slow.frame, base.frame);
        let ips = 3.0e9;
        let ratio = slow.nominal_bit_period_s(ips) / base.nominal_bit_period_s(ips);
        assert!(ratio > 2.0 && ratio < 2.6, "bit period must stretch ~2.5x, got {ratio}");
    }

    #[test]
    #[should_panic(expected = "sleep period")]
    fn zero_sleep_period_panics() {
        let mut cfg = TxConfig::unix_default();
        cfg.sleep_period_s = 0.0;
        Transmitter::new(cfg);
    }
}
