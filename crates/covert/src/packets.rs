//! Packetised transfers: bounding indel damage.
//!
//! §IV-C1: "Depending on the requirement, the data can be sent in
//! packets or continuously." A single bit insertion or deletion shifts
//! everything after it — fatal to a long monolithic frame, since the
//! Hamming code only corrects substitutions. Splitting the payload
//! into independently-framed packets re-synchronises the receiver at
//! every packet marker, so an indel costs one packet instead of the
//! rest of the transmission.

use crate::frame::{deframe, frame_payload, FrameConfig, START_MARKER};

/// Packetisation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketConfig {
    /// Payload bytes per packet.
    pub packet_bytes: usize,
    /// Per-packet framing.
    pub frame: FrameConfig,
    /// Idle bits between packets (gives the receiver a quiet gap to
    /// re-synchronise on).
    pub inter_packet_zeros: usize,
}

impl Default for PacketConfig {
    fn default() -> Self {
        PacketConfig {
            packet_bytes: 16,
            frame: FrameConfig {
                // Later packets don't need the long governor-warm-up
                // sync of the first one.
                sync_len: 12,
                ..FrameConfig::default()
            },
            inter_packet_zeros: 4,
        }
    }
}

/// Builds the on-air bit sequence for `payload` as a train of
/// sequence-numbered packets. Each packet body is
/// `[seq: u8] ++ chunk`, framed and coded independently.
///
/// # Panics
///
/// Panics if `packet_bytes` is zero or the payload needs more than
/// 256 packets.
pub fn packetize(payload: &[u8], config: PacketConfig) -> Vec<u8> {
    assert!(config.packet_bytes > 0, "packets must hold at least one byte");
    let n_packets = payload.len().div_ceil(config.packet_bytes).max(1);
    assert!(n_packets <= 256, "payload needs more than 256 packets");
    let mut bits = Vec::new();
    for (seq, chunk) in payload.chunks(config.packet_bytes.max(1)).enumerate() {
        let mut body = Vec::with_capacity(chunk.len() + 1);
        body.push(seq as u8);
        body.extend_from_slice(chunk);
        bits.extend(frame_payload(&body, config.frame));
        bits.extend(std::iter::repeat_n(0u8, config.inter_packet_zeros));
    }
    if payload.is_empty() {
        bits.extend(frame_payload(&[0], config.frame));
    }
    bits
}

/// One reassembled packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredPacket {
    /// Sequence number carried in the packet.
    pub seq: u8,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Hamming corrections applied inside this packet.
    pub corrections: usize,
}

/// Result of depacketising a received bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reassembly {
    /// Packets recovered, in sequence order (duplicates dropped).
    pub packets: Vec<RecoveredPacket>,
    /// Sequence numbers in `0..expected` that never arrived (only
    /// meaningful when the expected count is known).
    pub missing: Vec<u8>,
    /// The reassembled payload (holes skipped).
    pub payload: Vec<u8>,
}

/// Scans a received bitstream for packet markers and reassembles the
/// payload. `expected_packets` (when known) drives the missing-packet
/// report; pass `None` to accept whatever arrives.
pub fn depacketize(
    received: &[u8],
    config: PacketConfig,
    expected_packets: Option<usize>,
) -> Reassembly {
    let m = START_MARKER.len();
    let mut packets: Vec<RecoveredPacket> = Vec::new();
    let mut pos = 0usize;
    while pos + m <= received.len() {
        match deframe(&received[pos..], config.frame, 1) {
            Some(d) if !d.payload.is_empty() => {
                let seq = d.payload[0];
                let plausible = expected_packets.is_none_or(|n| (seq as usize) < n);
                if plausible && !packets.iter().any(|p| p.seq == seq) {
                    packets.push(RecoveredPacket {
                        seq,
                        data: d.payload[1..].to_vec(),
                        corrections: d.corrections,
                    });
                }
                // Advance past the whole packet: marker + the coded
                // body ((2-byte length + body) × 8 bits at rate 4/7).
                let body_bits = (2 + d.payload.len()) * 14;
                pos += d.payload_start + body_bits;
            }
            _ => break,
        }
    }
    packets.sort_by_key(|p| p.seq);
    let missing = match expected_packets {
        Some(n) => (0..n as u8).filter(|s| !packets.iter().any(|p| p.seq == *s)).collect(),
        None => Vec::new(),
    };
    let payload = packets.iter().flat_map(|p| p.data.iter().copied()).collect();
    Reassembly { packets, missing, payload }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_multiple_packets() {
        let cfg = PacketConfig { packet_bytes: 8, ..PacketConfig::default() };
        let payload = b"0123456789abcdefghijklmn"; // 24 bytes → 3 packets
        let bits = packetize(payload, cfg);
        let out = depacketize(&bits, cfg, Some(3));
        assert_eq!(out.packets.len(), 3);
        assert!(out.missing.is_empty());
        assert_eq!(out.payload, payload.to_vec());
    }

    #[test]
    fn an_indel_costs_one_packet_not_the_rest() {
        let cfg = PacketConfig { packet_bytes: 8, ..PacketConfig::default() };
        let payload = b"0123456789abcdefghijklmn";
        let mut bits = packetize(payload, cfg);
        // Delete a bit inside packet 1's body (past its marker).
        let packet_len = bits.len() / 3;
        bits.remove(packet_len + packet_len / 2);
        let out = depacketize(&bits, cfg, Some(3));
        // Packets 0 and 2 still arrive exactly.
        let p0 = out.packets.iter().find(|p| p.seq == 0).expect("packet 0");
        let p2 = out.packets.iter().find(|p| p.seq == 2).expect("packet 2");
        assert_eq!(p0.data, b"01234567".to_vec());
        assert_eq!(p2.data, b"ghijklmn".to_vec());
    }

    #[test]
    fn duplicate_sequence_numbers_are_dropped() {
        let cfg = PacketConfig { packet_bytes: 4, ..PacketConfig::default() };
        let mut bits = packetize(b"abcd", cfg);
        let copy = bits.clone();
        bits.extend(copy); // replay the same packet
        let out = depacketize(&bits, cfg, Some(1));
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.payload, b"abcd".to_vec());
    }

    #[test]
    fn missing_packets_are_reported() {
        let cfg = PacketConfig { packet_bytes: 4, ..PacketConfig::default() };
        let bits_full = packetize(b"aaaabbbbcccc", cfg);
        // Keep only the first and last thirds (drop packet 1 wholesale).
        let third = bits_full.len() / 3;
        let mut bits = bits_full[..third].to_vec();
        bits.extend_from_slice(&bits_full[2 * third..]);
        let out = depacketize(&bits, cfg, Some(3));
        assert_eq!(out.missing, vec![1]);
        assert_eq!(out.payload, b"aaaacccc".to_vec());
    }

    #[test]
    fn empty_payload_round_trips() {
        let cfg = PacketConfig::default();
        let bits = packetize(&[], cfg);
        let out = depacketize(&bits, cfg, None);
        assert!(out.payload.len() <= 1);
    }

    #[test]
    #[should_panic(expected = "256 packets")]
    fn oversized_payload_panics() {
        let cfg = PacketConfig { packet_bytes: 1, ..PacketConfig::default() };
        packetize(&vec![0u8; 300], cfg);
    }
}
