//! Synchronization-robust marker coding for the deletion channel.
//!
//! The E3 impairment sweep showed the reproduced channel's real
//! failure mode is *deletions*: dropped-sample gaps shift every bit
//! after them, and the rigid Hamming(7,4)+interleaver stack (§IV-B4)
//! only corrects substitutions, so one deletion destroys everything
//! downstream. This module adds the classic remedy — a
//! marker/watermark-style code: a short known marker
//! ([`SEGMENT_MARKER`], a Barker-7 word chosen for its aperiodic
//! autocorrelation) is inserted before every `segment_len` coded bits.
//! The decoder tracks the cumulative bit-clock drift by searching a
//! bounded window around each *predicted* marker position; when a
//! marker is found off its prediction the decoder resynchronises, and
//! the bits between two aligned markers are resampled to the segment's
//! nominal length, converting bounded insertions/deletions into a few
//! *substitutions* — exactly what the Hamming layer underneath can
//! absorb.
//!
//! Two recovery mechanisms extend the reach beyond one-bit slips:
//!
//! - **Escalating search**: each consecutive missed marker widens the
//!   next search window ([`MarkerConfig::search_radius`] ×
//!   misses, capped at [`MarkerConfig::max_escalation`]), so a long
//!   gap is re-acquired a few segments later.
//! - **Period aliasing**: a gap close to a whole marker period
//!   re-locks onto the *next* marker in the lattice — one segment is
//!   lost, everything after it is recovered.
//!
//! When even the frame's start marker is destroyed (severity-4
//! dropped-sample gaps do exactly this), [`blind_lock`] finds the
//! periodic marker lattice with no anchor at all, so a deframe-level
//! salvage can still pull data segments out of the wreckage.
//!
//! [`MarkerStream`] is a resumable state machine: alignment decisions
//! are only taken once the full search window is buffered, so feeding
//! it bit-by-bit or all at once yields bit-identical output — the same
//! contract the rest of the streaming receive chain honours.

/// The per-segment marker word: the length-7 Barker code. Its
/// aperiodic autocorrelation sidelobes are ≤ 1, so a shifted overlay
/// of the marker onto itself (the failure mode of a sync search)
/// scores poorly everywhere except the true lag.
pub const SEGMENT_MARKER: [u8; 7] = [1, 1, 1, 0, 0, 1, 0];

/// Parameters of the marker code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerConfig {
    /// Coded bits carried between consecutive markers. Must be a
    /// multiple of 7 so the Hamming(7,4) codeword grid stays aligned
    /// to segment boundaries — the property that lets a blind salvage
    /// decode segments without knowing their index.
    pub segment_len: usize,
    /// Base half-width of the marker search window, in bits: drift of
    /// up to ± this much per segment is recovered without a miss.
    pub search_radius: usize,
    /// Marker-bit mismatches tolerated when scoring a candidate.
    pub max_marker_errors: usize,
    /// Cap on the search-window escalation factor after consecutive
    /// missed markers (window = `search_radius × min(misses + 1, cap)`).
    pub max_escalation: usize,
}

impl MarkerConfig {
    /// A marker code with the given segment length and default search
    /// parameters (radius 4, one tolerated marker-bit error,
    /// escalation capped at 8×).
    ///
    /// # Panics
    ///
    /// Panics if `segment_len` is zero or not a multiple of 7.
    pub fn new(segment_len: usize) -> Self {
        assert!(
            segment_len > 0 && segment_len.is_multiple_of(7),
            "segment_len must be a positive multiple of 7 to preserve the codeword grid"
        );
        MarkerConfig { segment_len, search_radius: 4, max_marker_errors: 1, max_escalation: 8 }
    }

    /// The standard rate: 28 coded bits per marker (1.25× overhead).
    pub fn standard() -> Self {
        Self::new(28)
    }

    /// A denser code for bad channels: 14 coded bits per marker
    /// (1.5× overhead), halving the drift each marker must absorb.
    pub fn dense() -> Self {
        Self::new(14)
    }

    /// On-air bits per segment (marker + data).
    pub fn period(&self) -> usize {
        SEGMENT_MARKER.len() + self.segment_len
    }
}

impl Default for MarkerConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Segments needed to carry `coded_len` bits (at least one).
pub fn segments_for(cfg: MarkerConfig, coded_len: usize) -> usize {
    coded_len.div_ceil(cfg.segment_len).max(1)
}

/// On-air length of a marker-coded stream carrying `coded_len` bits.
pub fn on_air_len(cfg: MarkerConfig, coded_len: usize) -> usize {
    segments_for(cfg, coded_len) * cfg.period()
}

/// Wraps a coded bit stream in the marker code: every
/// [`MarkerConfig::segment_len`] bits are prefixed with
/// [`SEGMENT_MARKER`]; the final segment is zero-padded.
pub fn marker_encode(cfg: MarkerConfig, coded: &[u8]) -> Vec<u8> {
    let segments = segments_for(cfg, coded.len());
    let mut out = Vec::with_capacity(segments * cfg.period());
    for k in 0..segments {
        out.extend_from_slice(&SEGMENT_MARKER);
        let base = k * cfg.segment_len;
        for i in 0..cfg.segment_len {
            out.push(coded.get(base + i).copied().unwrap_or(0) & 1);
        }
    }
    out
}

/// Decoder-side accounting from a [`MarkerStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MarkerStats {
    /// Segments emitted.
    pub segments: usize,
    /// Markers located within the search window and error tolerance.
    pub markers_found: usize,
    /// Markers not found; the predicted position was used instead.
    pub markers_missed: usize,
    /// Markers found *off* their predicted position — each one is a
    /// recovered insertion/deletion event.
    pub resyncs: usize,
    /// Final cumulative drift of the bit clock, in bits (negative:
    /// net deletions; positive: net insertions).
    pub drift_bits: i64,
    /// Nominal on-air bits that fell past the end of the received
    /// stream (zero for a cleanly terminated stream).
    pub truncated_bits: usize,
}

enum Align {
    /// The full search window is not buffered yet (streaming only).
    NeedMore,
    /// Marker accepted at this absolute position.
    Found(usize),
    /// No candidate within tolerance; keep the prediction.
    Missed,
}

/// The drift-tracking marker decoder, as a resumable state machine.
///
/// Feed received bits with [`MarkerStream::push`] and drain decoded
/// segments with [`MarkerStream::next_segment`]. Each call aligns the
/// marker that *closes* the current segment, then resamples the bits
/// between the two aligned markers to the nominal segment length —
/// so insertions and deletions inside a segment surface as a handful
/// of substitutions instead of shifting the rest of the stream.
///
/// Alignment decisions are taken only once every candidate position in
/// the search window is buffered (or `end_of_stream` is passed), which
/// makes the decoder's output independent of how the input was
/// chunked — pushing bit-by-bit and pushing everything at once are
/// bit-identical.
#[derive(Debug, Clone)]
pub struct MarkerStream {
    cfg: MarkerConfig,
    buf: Vec<u8>,
    /// Aligned (or assumed) start of the marker opening the current
    /// segment; `None` until the very first marker is aligned.
    cur: Option<usize>,
    /// Consecutive markers missed (drives window escalation).
    misses: usize,
    /// Total segments the stream is known to carry, once the caller
    /// has learned it (e.g. from the frame's declared length). The
    /// *final* segment has no closing marker on air, so its end is a
    /// virtual boundary at the predicted position — searching there
    /// would only ever false-match whatever bits follow the stream.
    expected: Option<usize>,
    stats: MarkerStats,
}

impl MarkerStream {
    /// A fresh decoder expecting the first marker at bit 0.
    pub fn new(cfg: MarkerConfig) -> Self {
        MarkerStream {
            cfg,
            buf: Vec::new(),
            cur: None,
            misses: 0,
            expected: None,
            stats: MarkerStats::default(),
        }
    }

    /// Declares how many segments the stream carries in total. The
    /// last segment's closing boundary is then taken at its predicted
    /// position instead of searched for — no marker follows the final
    /// segment on air, so a search could only false-match post-stream
    /// bits. Further [`MarkerStream::next_segment`] calls return
    /// `false` once `n` segments have been emitted.
    pub fn expect_segments(&mut self, n: usize) {
        self.expected = Some(n);
    }

    /// The configuration in use.
    pub fn config(&self) -> MarkerConfig {
        self.cfg
    }

    /// Appends received bits.
    pub fn push(&mut self, bits: &[u8]) {
        self.buf.extend(bits.iter().map(|&b| b & 1));
    }

    /// Decoder statistics so far.
    pub fn stats(&self) -> MarkerStats {
        self.stats
    }

    /// Bits of the received stream consumed by emitted segments: the
    /// aligned start of the *next* expected marker. Callers use this
    /// to hand bits after a completed frame to the next scan.
    pub fn consumed_bits(&self) -> usize {
        self.cur.unwrap_or(0)
    }

    /// Current search half-width, escalated by consecutive misses.
    fn window(&self) -> usize {
        self.cfg.search_radius * (self.misses + 1).min(self.cfg.max_escalation)
    }

    /// Marker-bit mismatches at `pos` (requires the window in-buffer).
    fn errors_at(&self, pos: usize) -> usize {
        self.buf[pos..pos + SEGMENT_MARKER.len()]
            .iter()
            .zip(&SEGMENT_MARKER)
            .filter(|(a, b)| *a != *b)
            .count()
    }

    /// Searches the window around `pred` for the best marker
    /// candidate: minimum errors, then minimum distance from the
    /// prediction, then earliest position.
    fn align(&self, pred: usize, end_of_stream: bool) -> Align {
        let m = SEGMENT_MARKER.len();
        let w = self.window();
        let lo = pred.saturating_sub(w);
        let hi = pred + w;
        if !end_of_stream && self.buf.len() < hi + m {
            return Align::NeedMore;
        }
        let mut best: Option<(usize, usize, usize)> = None; // (errors, |Δ|, pos)
        for p in lo..=hi {
            if p + m > self.buf.len() {
                break;
            }
            let errors = self.errors_at(p);
            if errors > self.cfg.max_marker_errors {
                continue;
            }
            let cand = (errors, p.abs_diff(pred), p);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        match best {
            Some((_, _, pos)) => Align::Found(pos),
            None => Align::Missed,
        }
    }

    fn note_found(&mut self, pos: usize, pred: usize, nominal: usize) {
        self.stats.markers_found += 1;
        if pos != pred {
            self.stats.resyncs += 1;
        }
        self.stats.drift_bits = pos as i64 - nominal as i64;
        self.misses = 0;
    }

    fn note_missed(&mut self) {
        self.stats.markers_missed += 1;
        self.misses += 1;
    }

    /// Tries to complete the next segment, appending exactly
    /// [`MarkerConfig::segment_len`] bits to `out` on success.
    ///
    /// Returns `false` when more input is needed (`end_of_stream ==
    /// false`) or when the stream is exhausted (`end_of_stream ==
    /// true` and no data bits remain past the last aligned marker).
    pub fn next_segment(&mut self, out: &mut Vec<u8>, end_of_stream: bool) -> bool {
        if self.expected.is_some_and(|e| self.stats.segments >= e) {
            return false;
        }
        let m = SEGMENT_MARKER.len();
        let period = self.cfg.period();
        // Align the marker that opens this segment (first call only;
        // later segments inherit the alignment that closed their
        // predecessor).
        let a = match self.cur {
            Some(a) => a,
            None => {
                let opened = match self.align(0, end_of_stream) {
                    Align::NeedMore => return false,
                    Align::Found(p) => {
                        self.note_found(p, 0, 0);
                        p
                    }
                    Align::Missed => {
                        self.note_missed();
                        0
                    }
                };
                self.cur = Some(opened);
                opened
            }
        };
        let d0 = a + m;
        if end_of_stream && d0 >= self.buf.len() {
            return false;
        }
        let pred = a + period;
        let end = if self.expected == Some(self.stats.segments + 1) {
            // Final segment: nothing follows it on air, so its end is
            // the predicted boundary — never searched (a search could
            // only false-match whatever bits trail the stream).
            if !end_of_stream && self.buf.len() < pred {
                return false;
            }
            pred
        } else {
            // Align the marker that closes this segment (= opens the
            // next).
            let nominal = (self.stats.segments + 1) * period;
            match self.align(pred, end_of_stream) {
                Align::NeedMore => return false,
                Align::Found(p) => {
                    self.note_found(p, pred, nominal);
                    p
                }
                Align::Missed => {
                    self.note_missed();
                    pred
                }
            }
        };
        self.extract(d0, end, out);
        self.stats.truncated_bits += end.saturating_sub(self.buf.len());
        self.cur = Some(end);
        self.stats.segments += 1;
        true
    }

    /// Resamples the received span `[d0, end)` to the nominal segment
    /// length by midpoint interpolation (integer arithmetic, exact):
    /// identity when the span already has nominal length, otherwise
    /// the cheapest deterministic stretch/squeeze.
    fn extract(&mut self, d0: usize, end: usize, out: &mut Vec<u8>) {
        let s = self.cfg.segment_len;
        let lo = d0.min(self.buf.len());
        let hi = end.min(self.buf.len()).max(lo);
        let span = &self.buf[lo..hi];
        let l = span.len();
        if l == s {
            out.extend_from_slice(span);
        } else if l == 0 {
            out.extend(std::iter::repeat_n(0u8, s));
        } else {
            for i in 0..s {
                let src = ((2 * i + 1) * l) / (2 * s);
                out.push(span[src.min(l - 1)]);
            }
        }
    }
}

/// Decodes a marker-coded stream in one call, pumping exactly
/// `segments` segments (zero-padding any the stream no longer covers)
/// and returning the recovered rigid bits plus decoder statistics.
pub fn marker_decode(
    cfg: MarkerConfig,
    received: &[u8],
    segments: usize,
) -> (Vec<u8>, MarkerStats) {
    let mut ms = MarkerStream::new(cfg);
    ms.expect_segments(segments);
    ms.push(received);
    let mut rigid = Vec::with_capacity(segments * cfg.segment_len);
    while rigid.len() < segments * cfg.segment_len && ms.next_segment(&mut rigid, true) {}
    let mut stats = ms.stats();
    let want = segments * cfg.segment_len;
    if rigid.len() < want {
        stats.truncated_bits += want - rigid.len();
        rigid.resize(want, 0);
    }
    (rigid, stats)
}

/// Finds the marker *lattice* in a bit stream with no anchor at all:
/// scores every phase of the marker period by its exact-marker hits
/// and returns the position of the first exact marker on the winning
/// phase, or `None` if no phase contains one.
///
/// This is the last-ditch salvage for streams whose frame-level start
/// marker was destroyed (severity-4 dropped-sample gaps do exactly
/// this): the periodic segment markers form a comb that survives the
/// loss of any individual tooth.
pub fn blind_lock(cfg: MarkerConfig, bits: &[u8]) -> Option<usize> {
    let m = SEGMENT_MARKER.len();
    let period = cfg.period();
    if bits.len() < m {
        return None;
    }
    let exact_at =
        |pos: usize| bits[pos..pos + m].iter().zip(&SEGMENT_MARKER).all(|(a, b)| (*a & 1) == *b);
    let mut best: Option<(usize, usize)> = None; // (hits, phase), max hits, earliest phase
    for phase in 0..period.min(bits.len() - m + 1) {
        let mut hits = 0usize;
        let mut pos = phase;
        while pos + m <= bits.len() {
            hits += usize::from(exact_at(pos));
            pos += period;
        }
        if best.is_none_or(|(h, _)| hits > h) {
            best = Some((hits, phase));
        }
    }
    let (hits, phase) = best?;
    if hits == 0 {
        return None;
    }
    let mut pos = phase;
    while pos + m <= bits.len() {
        if exact_at(pos) {
            return Some(pos);
        }
        pos += period;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 5 + 2) % 3 == 0) as u8).collect()
    }

    #[test]
    fn barker_marker_has_low_autocorrelation() {
        // Aperiodic autocorrelation sidelobes of Barker-7 in ±1
        // convention are ≤ 1; in bit-agreement terms no shifted
        // overlap agrees on more than (overlap + 1) / 2 positions.
        for lag in 1..7usize {
            let n = 7 - lag;
            let agree = (0..n).filter(|&i| SEGMENT_MARKER[i] == SEGMENT_MARKER[i + lag]).count();
            let c = 2 * agree as i64 - n as i64;
            assert!(c.abs() <= 1, "lag {lag}: sidelobe {c}");
        }
    }

    #[test]
    fn encode_layout_and_padding() {
        let cfg = MarkerConfig::dense(); // segment 14
        let coded = data(20); // 2 segments, 8 pad bits
        let wire = marker_encode(cfg, &coded);
        assert_eq!(wire.len(), on_air_len(cfg, 20));
        assert_eq!(wire.len(), 2 * 21);
        assert_eq!(&wire[..7], &SEGMENT_MARKER);
        assert_eq!(&wire[7..21], &coded[..14]);
        assert_eq!(&wire[21..28], &SEGMENT_MARKER);
        assert_eq!(&wire[28..34], &coded[14..]);
        assert!(wire[34..].iter().all(|&b| b == 0), "tail is zero-padded");
    }

    #[test]
    fn clean_round_trip_is_exact() {
        let cfg = MarkerConfig::standard();
        let coded = data(84); // 3 segments exactly
        let wire = marker_encode(cfg, &coded);
        let (rigid, stats) = marker_decode(cfg, &wire, 3);
        assert_eq!(rigid, coded);
        assert_eq!(stats.segments, 3);
        assert_eq!(stats.markers_missed + stats.resyncs, 0, "clean stream never resyncs");
        assert_eq!(stats.drift_bits, 0);
    }

    #[test]
    fn single_deletion_only_disturbs_its_own_segment() {
        let cfg = MarkerConfig::standard();
        let coded = data(112); // 4 segments
        let mut wire = marker_encode(cfg, &coded);
        wire.remove(45); // inside segment 1's data span (bits 42..70)
        let (rigid, stats) = marker_decode(cfg, &wire, 4);
        assert_eq!(&rigid[..28], &coded[..28], "segment 0 untouched");
        assert_eq!(&rigid[56..], &coded[56..], "segments 2–3 recovered after resync");
        assert!(stats.resyncs >= 1, "the shifted marker must be re-acquired");
        assert_eq!(stats.drift_bits, -1);
        // The damaged segment differs in at most a few positions —
        // substitution-sized damage, not a wholesale shift.
        let errs = rigid[28..56].iter().zip(&coded[28..56]).filter(|(a, b)| a != b).count();
        assert!(errs <= 12, "deletion degraded to {errs} substitutions");
    }

    #[test]
    fn single_insertion_is_recovered_symmetrically() {
        let cfg = MarkerConfig::standard();
        let coded = data(112);
        let mut wire = marker_encode(cfg, &coded);
        wire.insert(50, 1);
        let (rigid, stats) = marker_decode(cfg, &wire, 4);
        assert_eq!(&rigid[..28], &coded[..28]);
        assert_eq!(&rigid[56..], &coded[56..]);
        assert_eq!(stats.drift_bits, 1);
        assert!(stats.resyncs >= 1);
    }

    #[test]
    fn long_gap_relocks_via_period_aliasing() {
        let cfg = MarkerConfig::standard(); // period 35
        let coded = data(280); // 10 segments
        let mut wire = marker_encode(cfg, &coded);
        // Delete 33 bits — the severity-4 dropped-sample gap, one
        // period minus two. The decoder loses at most a couple of
        // segments and re-locks onto the shifted lattice.
        wire.drain(80..113);
        let (rigid, stats) = marker_decode(cfg, &wire, 10);
        let tail_errs = rigid[112..].iter().zip(&coded[112..]).filter(|(a, b)| a != b).count();
        // Everything from segment 4 on decodes; the deleted material
        // near the gap is sacrificed. Note the aliasing: data re-locks
        // one segment early, so compare via contained content.
        assert!(stats.resyncs >= 1, "gap must force at least one resync");
        assert!(
            tail_errs <= rigid.len() - 112,
            "sanity: {tail_errs} errors in {} tail bits",
            rigid.len() - 112
        );
        // The acid test: a long run of post-gap coded bits appears
        // verbatim in the decoded stream (rigid decoding would shift
        // everything by 33 bits and recover nothing).
        let probe = &coded[168..224];
        let found = rigid.windows(probe.len()).any(|w| w == probe);
        assert!(found, "post-gap segments must decode verbatim somewhere in the stream");
    }

    #[test]
    fn streaming_pushes_match_batch_for_every_chunking() {
        let cfg = MarkerConfig::standard();
        let coded = data(140);
        let mut wire = marker_encode(cfg, &coded);
        wire.remove(44);
        wire.insert(90, 0);
        wire[120] ^= 1;
        let segments = segments_for(cfg, coded.len());
        let (batch, batch_stats) = marker_decode(cfg, &wire, segments);
        for chunk in [1usize, 3, 16, wire.len()] {
            let mut ms = MarkerStream::new(cfg);
            ms.expect_segments(segments);
            let mut rigid = Vec::new();
            for c in wire.chunks(chunk) {
                ms.push(c);
                while rigid.len() < segments * cfg.segment_len && ms.next_segment(&mut rigid, false)
                {
                }
            }
            while rigid.len() < segments * cfg.segment_len && ms.next_segment(&mut rigid, true) {}
            assert_eq!(rigid, batch, "chunk {chunk}");
            assert_eq!(ms.stats(), batch_stats, "chunk {chunk}");
        }
    }

    #[test]
    fn truncated_stream_pads_and_reports() {
        let cfg = MarkerConfig::dense();
        let coded = data(42); // 3 segments
        let wire = marker_encode(cfg, &coded);
        let (rigid, stats) = marker_decode(cfg, &wire[..30], 3);
        assert_eq!(rigid.len(), 42, "grid length is preserved");
        assert!(stats.truncated_bits > 0, "truncation must be visible");
        let (clean, clean_stats) = marker_decode(cfg, &wire, 3);
        assert_eq!(clean.len(), 42);
        assert_eq!(clean_stats.truncated_bits, 0, "a full stream is not truncated");
    }

    #[test]
    fn blind_lock_finds_the_lattice_without_an_anchor() {
        let cfg = MarkerConfig::standard();
        let coded = data(140);
        let wire = marker_encode(cfg, &coded);
        // Bury the stream after junk that destroyed the first marker
        // and any fixed anchor.
        let mut bits = vec![0u8, 1, 1, 0, 1, 1, 0, 0, 1, 0, 1];
        let junk = bits.len();
        bits.extend(&wire[10..]); // first marker partially destroyed
        let lock = blind_lock(cfg, &bits).expect("lattice must be found");
        // The first surviving marker is segment 1's, at wire offset 35.
        assert_eq!(lock, junk + 35 - 10);
        // Decoding from the lock recovers segment 1 onward verbatim.
        let (rigid, _) = marker_decode(cfg, &bits[lock..], 4);
        assert_eq!(&rigid[..28], &coded[28..56]);
    }

    #[test]
    fn blind_lock_rejects_markerless_noise() {
        let cfg = MarkerConfig::standard();
        let bits: Vec<u8> = (0..200).map(|i| ((i / 2) % 2) as u8).collect();
        assert_eq!(blind_lock(cfg, &bits), None);
    }

    #[test]
    #[should_panic(expected = "multiple of 7")]
    fn segment_len_must_preserve_the_codeword_grid() {
        MarkerConfig::new(20);
    }
}
