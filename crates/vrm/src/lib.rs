//! Voltage-regulator-module (VRM) substrate: a buck converter with
//! VID tracking and light-load pulse skipping.
//!
//! In the HPCA 2020 PMU side-channel paper, the leak source is the
//! VRM: under heavy load it replenishes its output capacitor every
//! switching period (strong EM spikes at `f_sw` and harmonics); under
//! light load it skips most periods (phase shedding), so the spikes
//! all but vanish. The processor's activity is thereby
//! amplitude-modulated onto the switching emission.
//!
//! - [`vid`]: the discrete voltage grid ([`vid::VidTable`]) the CPU
//!   requests rail voltages on,
//! - [`buck`]: the converter model ([`buck::Buck`]) turning an
//!   [`emsc_pmu::trace::PowerTrace`] into switching pulses, including
//!   the period-randomisation countermeasure,
//! - [`train`]: the [`train::SwitchingTrain`] pulse-train output.
//!
//! # Examples
//!
//! ```
//! use emsc_pmu::{sim::Machine, workload::Program};
//! use emsc_vrm::buck::{Buck, BuckConfig};
//!
//! let machine = Machine::intel_laptop();
//! let program = Program::alternating(500e-6, 500e-6, 20, machine.nominal_ips());
//! let trace = machine.run(&program, 1);
//!
//! let buck = Buck::new(BuckConfig::laptop(970e3));
//! let train = buck.convert(&trace);
//! // The VRM fired thousands of pulses over ~20 ms...
//! assert!(train.pulses.len() > 5_000);
//! // ...but far fewer than one per switching period, because the idle
//! // halves are pulse-skipped.
//! assert!(train.firing_fraction() < 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod buck;
pub mod train;
pub mod vid;

pub use buck::{Buck, BuckConfig, PeriodRandomization};
pub use train::{Pulse, SwitchingTrain};
