//! Voltage-identification (VID) interface between processor and VRM.
//!
//! The processor tells its regulator which rail voltage to produce via
//! a set of VID signals (§II, Intel VRD 11.1). VIDs are discrete: the
//! regulator quantises the request to its step size. Voltage *changes*
//! matter for the side channel because re-charging (or draining) the
//! output capacitance to a new setpoint is itself a burst of switching
//! activity.

/// A VID table: the discrete voltage grid a VRM can produce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VidTable {
    /// Smallest producible voltage, volts.
    pub min_v: f64,
    /// Largest producible voltage, volts.
    pub max_v: f64,
    /// Step between adjacent VID codes, volts (6.25 mV for VRD 11.x).
    pub step_v: f64,
}

impl VidTable {
    /// The Intel VRD 11.1 grid used by desktop/mobile VRMs.
    pub fn vrd11() -> Self {
        VidTable { min_v: 0.3, max_v: 1.6, step_v: 0.00625 }
    }

    /// Quantises a requested voltage to the nearest producible VID
    /// level, clamping to the table's range.
    ///
    /// # Examples
    ///
    /// ```
    /// use emsc_vrm::vid::VidTable;
    /// let t = VidTable::vrd11();
    /// let v = t.quantize(1.1234);
    /// assert!((v - 1.125).abs() < 1e-9);
    /// assert_eq!(t.quantize(9.0), 1.6);
    /// ```
    pub fn quantize(&self, requested_v: f64) -> f64 {
        let clamped = requested_v.clamp(self.min_v, self.max_v);
        let steps = ((clamped - self.min_v) / self.step_v).round();
        self.min_v + steps * self.step_v
    }

    /// Number of VID codes between two voltages (how many steps a
    /// transition must slew through).
    pub fn steps_between(&self, from_v: f64, to_v: f64) -> u32 {
        let a = self.quantize(from_v);
        let b = self.quantize(to_v);
        ((a - b).abs() / self.step_v).round() as u32
    }
}

impl Default for VidTable {
    fn default() -> Self {
        VidTable::vrd11()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_snaps_to_grid() {
        let t = VidTable::vrd11();
        for req in [0.3, 0.7, 1.1, 1.6] {
            let v = t.quantize(req);
            let steps = (v - t.min_v) / t.step_v;
            assert!((steps - steps.round()).abs() < 1e-9, "{req} → {v} off-grid");
        }
    }

    #[test]
    fn quantize_clamps_out_of_range() {
        let t = VidTable::vrd11();
        assert_eq!(t.quantize(0.0), 0.3);
        assert_eq!(t.quantize(2.0), 1.6);
    }

    #[test]
    fn quantize_is_idempotent() {
        let t = VidTable::vrd11();
        for req in [0.31, 0.846, 1.0999, 1.55] {
            let once = t.quantize(req);
            assert_eq!(t.quantize(once), once);
        }
    }

    #[test]
    fn steps_between_counts_grid_distance() {
        let t = VidTable::vrd11();
        assert_eq!(t.steps_between(1.0, 1.0), 0);
        assert_eq!(t.steps_between(1.0, 1.00625), 1);
        assert_eq!(t.steps_between(1.1, 0.4), t.steps_between(0.4, 1.1));
        assert_eq!(t.steps_between(1.1, 0.4), 112);
    }
}
