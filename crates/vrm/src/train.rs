//! The VRM's output as seen by the electromagnetic world: a train of
//! replenishment current pulses.

/// One replenishment event: the VRM connects its output capacitor to
/// the input rail and transfers `charge_c` coulombs in a brief burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Pulse time, seconds.
    pub t_s: f64,
    /// Charge transferred, coulombs. The EM field transient scales
    /// with this (Faraday: the burst of `di/dt`).
    pub charge_c: f64,
}

/// The complete switching activity of a VRM over a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchingTrain {
    /// Fired pulses in time order.
    pub pulses: Vec<Pulse>,
    /// Nominal switching period, seconds (1–4 µs for laptop VRMs).
    pub nominal_period_s: f64,
    /// Total simulated span, seconds.
    pub duration_s: f64,
}

impl SwitchingTrain {
    /// Nominal switching frequency, hertz.
    pub fn switching_frequency_hz(&self) -> f64 {
        1.0 / self.nominal_period_s
    }

    /// Total charge delivered, coulombs.
    pub fn total_charge_c(&self) -> f64 {
        self.pulses.iter().map(|p| p.charge_c).sum()
    }

    /// Mean pulse rate over the run, pulses/second.
    pub fn pulse_rate_hz(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.pulses.len() as f64 / self.duration_s
        }
    }

    /// Fraction of switching periods in which the VRM actually fired —
    /// 1.0 in continuous (heavy-load) operation, ≪ 1 under pulse
    /// skipping at light load.
    pub fn firing_fraction(&self) -> f64 {
        let periods = self.duration_s / self.nominal_period_s;
        if periods <= 0.0 {
            0.0
        } else {
            (self.pulses.len() as f64 / periods).min(1.0)
        }
    }

    /// Pulses whose time lies in `[t0_s, t1_s)`.
    pub fn pulses_in(&self, t0_s: f64, t1_s: f64) -> &[Pulse] {
        let lo = self.pulses.partition_point(|p| p.t_s < t0_s);
        let hi = self.pulses.partition_point(|p| p.t_s < t1_s);
        &self.pulses[lo..hi]
    }

    /// Mean replenishment current (charge/time) over `[t0_s, t1_s)` —
    /// the quantity amplitude-modulated onto the EM carrier.
    pub fn mean_current_in(&self, t0_s: f64, t1_s: f64) -> f64 {
        let span = t1_s - t0_s;
        if span <= 0.0 {
            return 0.0;
        }
        self.pulses_in(t0_s, t1_s).iter().map(|p| p.charge_c).sum::<f64>() / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train() -> SwitchingTrain {
        SwitchingTrain {
            pulses: (0..100).map(|k| Pulse { t_s: k as f64 * 1e-6, charge_c: 2e-6 }).collect(),
            nominal_period_s: 1e-6,
            duration_s: 100e-6,
        }
    }

    #[test]
    fn aggregates() {
        let t = train();
        assert!((t.switching_frequency_hz() - 1e6).abs() < 1.0);
        assert!((t.total_charge_c() - 200e-6).abs() < 1e-12);
        assert!((t.pulse_rate_hz() - 1e6).abs() < 1.0);
        assert!((t.firing_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pulses_in_selects_window() {
        let t = train();
        // Query between pulse times to avoid float-boundary ambiguity.
        let w = t.pulses_in(9.5e-6, 19.5e-6);
        assert_eq!(w.len(), 10);
        assert!((w[0].t_s - 10e-6).abs() < 1e-12, "w0 {}", w[0].t_s);
        assert!((w[9].t_s - 19e-6).abs() < 1e-12);
    }

    #[test]
    fn mean_current_matches_charge_over_time() {
        let t = train();
        // 2 µC per 1 µs ⇒ 2 A.
        assert!((t.mean_current_in(0.0, 100e-6) - 2.0).abs() < 1e-9);
        assert_eq!(t.mean_current_in(5e-6, 5e-6), 0.0);
    }

    #[test]
    fn sparse_train_has_low_firing_fraction() {
        let t = SwitchingTrain {
            pulses: (0..10).map(|k| Pulse { t_s: k as f64 * 10e-6, charge_c: 2e-6 }).collect(),
            nominal_period_s: 1e-6,
            duration_s: 100e-6,
        };
        assert!((t.firing_fraction() - 0.1).abs() < 1e-9);
    }
}
