//! Buck (step-down) converter model with light-load pulse skipping.
//!
//! §II of the paper: the VRM keeps an output capacitor at the VID
//! voltage, periodically connecting it to the (10–20 V) input in a
//! burst of current that replenishes the charge the load drained. At
//! light load a typical VRM "does not switch [for some periods],
//! skipping the replenishment of the still-almost-full capacitor"
//! (phase shedding / pulse skipping) — which is exactly what makes the
//! emanation amplitude track processor activity.
//!
//! The model walks the switching clock tick by tick, integrates the
//! load charge drawn from the capacitor, and fires a replenishment
//! pulse whenever the accumulated droop exceeds the controller's
//! ripple threshold. VID transitions inject (or absorb) the capacitor
//! re-charge `ΔQ = C·ΔV`.

use emsc_pmu::trace::PowerTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::train::{Pulse, SwitchingTrain};
use crate::vid::VidTable;

/// Switching-period randomisation (a circuit-level countermeasure,
/// §VI): each period is drawn uniformly from
/// `nominal · [1−spread, 1+spread]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodRandomization {
    /// Relative spread (0.1 = ±10 %).
    pub spread: f64,
    /// RNG seed for the period sequence.
    pub seed: u64,
}

/// Buck-converter configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BuckConfig {
    /// Nominal switching frequency, hertz (250 kHz – 1 MHz typical).
    pub switching_frequency_hz: f64,
    /// Input supply voltage (battery/adapter), volts.
    pub input_voltage_v: f64,
    /// Output capacitance, farads.
    pub output_capacitance_f: f64,
    /// Output ripple the controller tolerates before replenishing,
    /// volts. Sets the pulse-skip threshold: `Q_fire = C·ΔV`.
    pub ripple_threshold_v: f64,
    /// Maximum charge one pulse can transfer (current capability ×
    /// period), coulombs.
    pub max_pulse_charge_c: f64,
    /// Scale applied to the trace's load current before conversion.
    /// 1.0 for a motherboard VR driving the core rail directly; ≈0.6
    /// for the *input stage* feeding a FIVR (same power drawn from a
    /// higher intermediate voltage).
    pub current_scale: f64,
    /// VID grid.
    pub vid: VidTable,
    /// VID transition slew rate, volts/second (VR soft-start limits
    /// the inrush when the rail re-charges after a voltage-gated
    /// C-state; VRD-class parts slew at ~10 mV/µs).
    pub vid_slew_v_per_s: f64,
    /// Optional switching-period randomisation countermeasure.
    pub randomization: Option<PeriodRandomization>,
}

impl BuckConfig {
    /// A laptop core-rail VRM switching at `f_sw` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `f_sw` is not positive.
    pub fn laptop(f_sw: f64) -> Self {
        assert!(f_sw > 0.0, "switching frequency must be positive");
        let period = 1.0 / f_sw;
        BuckConfig {
            switching_frequency_hz: f_sw,
            input_voltage_v: 12.0,
            output_capacitance_f: 300e-6,
            ripple_threshold_v: 5e-3,
            // 30 A current capability.
            max_pulse_charge_c: 30.0 * period,
            current_scale: 1.0,
            vid: VidTable::vrd11(),
            vid_slew_v_per_s: 1.0e4,
            randomization: None,
        }
    }

    /// The input-stage VR feeding a fully-integrated voltage regulator
    /// (Haswell+ FIVR parts): the FIVR itself switches at ~140 MHz —
    /// far outside an RTL-SDR's band — but its *input* rail (~1.8 V)
    /// is supplied by an ordinary motherboard buck whose load still
    /// tracks core power. This is why the paper's Haswell/Broadwell
    /// laptops leak at ~1 MHz despite having FIVRs.
    pub fn fivr_input_stage(f_sw: f64) -> Self {
        BuckConfig {
            // Same power at ~1.8 V instead of ~1.1 V core voltage.
            current_scale: 0.6,
            ..BuckConfig::laptop(f_sw)
        }
    }

    /// Nominal switching period, seconds.
    pub fn period_s(&self) -> f64 {
        1.0 / self.switching_frequency_hz
    }

    /// The charge threshold at which the controller fires, coulombs.
    pub fn fire_threshold_c(&self) -> f64 {
        self.output_capacitance_f * self.ripple_threshold_v
    }
}

/// The buck converter simulator.
#[derive(Debug, Clone)]
pub struct Buck {
    config: BuckConfig,
}

impl Buck {
    /// Creates a converter from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is not physical (non-positive
    /// frequency, capacitance or thresholds).
    pub fn new(config: BuckConfig) -> Self {
        assert!(config.switching_frequency_hz > 0.0, "switching frequency must be positive");
        assert!(config.output_capacitance_f > 0.0, "capacitance must be positive");
        assert!(config.ripple_threshold_v > 0.0, "ripple threshold must be positive");
        assert!(config.max_pulse_charge_c > 0.0, "pulse charge cap must be positive");
        Buck { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BuckConfig {
        &self.config
    }

    /// Converts a processor power trace into the VRM's switching
    /// pulse train.
    ///
    /// Walks the switching clock across the whole trace; each tick
    /// integrates the load charge since the previous tick, adds any
    /// VID-transition recharge, and fires when the deficit reaches the
    /// ripple threshold.
    pub fn convert(&self, trace: &PowerTrace) -> SwitchingTrain {
        let cfg = &self.config;
        let nominal = cfg.period_s();
        let fire_at = cfg.fire_threshold_c();
        let mut rng = cfg.randomization.map(|r| (r, StdRng::seed_from_u64(r.seed)));

        let segments = trace.segments();
        let duration = trace.duration_s();
        let mut pulses = Vec::new();
        let mut t = 0.0_f64;
        let mut seg_idx = 0usize;
        // Deficit: charge the capacitor is missing relative to its
        // setpoint. Negative = surplus (after a downward VID step).
        let mut deficit_c = 0.0_f64;
        let mut rail_v = segments.first().map(|s| cfg.vid.quantize(s.voltage_v)).unwrap_or(0.0);
        let mut target_vid = rail_v;

        while t < duration {
            let period = match &mut rng {
                Some((r, rng)) => nominal * (1.0 + r.spread * (2.0 * rng.gen::<f64>() - 1.0)),
                None => nominal,
            };
            let t_next = t + period;
            // Integrate load charge over [t, t_next), walking segments.
            while seg_idx < segments.len() {
                let s = &segments[seg_idx];
                let lo = t.max(s.start_s);
                let hi = t_next.min(s.end_s());
                if hi > lo {
                    deficit_c += cfg.current_scale * s.current_a * (hi - lo);
                }
                if s.start_s < t_next {
                    target_vid = cfg.vid.quantize(s.voltage_v);
                }
                if s.end_s() <= t_next {
                    seg_idx += 1;
                } else {
                    break;
                }
            }
            // Slew the rail toward the VID target; the re-charge (or
            // discharge surplus) enters the deficit gradually, soft-
            // start style.
            if (target_vid - rail_v).abs() > 1e-12 {
                let max_step = cfg.vid_slew_v_per_s * period;
                let dv = (target_vid - rail_v).clamp(-max_step, max_step);
                deficit_c += cfg.output_capacitance_f * dv;
                rail_v += dv;
            }
            // Controller decision at the tick.
            if deficit_c >= fire_at {
                let charge = deficit_c.min(cfg.max_pulse_charge_c);
                pulses.push(Pulse { t_s: t_next.min(duration), charge_c: charge });
                deficit_c -= charge;
            }
            t = t_next;
        }
        SwitchingTrain { pulses, nominal_period_s: nominal, duration_s: duration }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_pmu::trace::ActivityKind;

    fn flat_trace(current_a: f64, duration_s: f64) -> PowerTrace {
        let mut t = PowerTrace::new();
        t.push(duration_s, 0, 0, current_a, 1.1, ActivityKind::Work);
        t
    }

    fn buck_1mhz() -> Buck {
        Buck::new(BuckConfig::laptop(1.0e6))
    }

    #[test]
    fn heavy_load_fires_every_period() {
        // 8 A × 1 µs = 8 µC per period ≫ 1.5 µC threshold.
        let train = buck_1mhz().convert(&flat_trace(8.0, 1e-3));
        assert!((train.firing_fraction() - 1.0).abs() < 0.01, "{}", train.firing_fraction());
        // Steady state: each pulse carries one period's charge.
        let mid = &train.pulses[train.pulses.len() / 2];
        assert!((mid.charge_c - 8e-6).abs() < 1e-7, "pulse charge {}", mid.charge_c);
    }

    #[test]
    fn light_load_skips_pulses() {
        // 0.1 A × 1 µs = 0.1 µC per period; threshold 1.5 µC ⇒ fire
        // every ~15 periods.
        let train = buck_1mhz().convert(&flat_trace(0.1, 1e-3));
        let frac = train.firing_fraction();
        assert!((frac - 1.0 / 15.0).abs() < 0.02, "firing fraction {frac}");
    }

    #[test]
    fn charge_is_conserved() {
        for current in [0.05, 0.5, 3.0, 8.0] {
            let duration = 2e-3;
            let train = buck_1mhz().convert(&flat_trace(current, duration));
            let delivered = train.total_charge_c();
            let drawn = current * duration;
            assert!(
                (delivered - drawn).abs() / drawn < 0.02,
                "I={current}: delivered {delivered}, drawn {drawn}"
            );
        }
    }

    #[test]
    fn mean_replenish_current_tracks_load() {
        // Same VID in both phases so the contrast isolates the load
        // effect (a downward VID step would suppress idle pulses even
        // harder — see `downward_vid_step_suppresses_pulses`).
        let mut trace = PowerTrace::new();
        trace.push(1e-3, 0, 0, 8.0, 1.1, ActivityKind::Work);
        trace.push(2e-3, 6, 0, 0.1, 1.1, ActivityKind::Idle);
        let train = buck_1mhz().convert(&trace);
        let active = train.mean_current_in(0.1e-3, 0.9e-3);
        let idle = train.mean_current_in(1.5e-3, 2.9e-3);
        assert!(active > 7.0, "active {active}");
        assert!(idle > 0.0 && idle < 0.3, "idle {idle}");
        assert!(active / idle > 20.0, "contrast {}", active / idle);
    }

    #[test]
    fn upward_vid_step_injects_recharge_ramp() {
        // Constant light load, but a 0.4 V → 1.1 V VID step midway:
        // ΔQ = 300 µF × 0.7 V = 210 µC, delivered over the soft-start
        // slew (0.7 V at 10 mV/µs = 70 µs, ~3 A average).
        let mut trace = PowerTrace::new();
        trace.push(1e-3, 6, 0, 0.1, 0.4, ActivityKind::Idle);
        trace.push(1e-3, 0, 0, 0.1, 1.1, ActivityKind::Work);
        let train = buck_1mhz().convert(&trace);
        let before = train.mean_current_in(0.5e-3, 0.9e-3);
        let during = train.mean_current_in(1.0e-3, 1.07e-3);
        let after = train.mean_current_in(1.2e-3, 1.9e-3);
        assert!(during > 2.0, "ramp current {during}");
        assert!(during > 10.0 * (before + 1e-9), "ramp {during} vs before {before}");
        // Slew-limited: nowhere near the VRM's 30 A capability.
        assert!(during < 8.0, "ramp {during} should be soft-started");
        // Once re-charged, back to the light-load regime.
        assert!(after < 0.3, "after {after}");
    }

    #[test]
    fn downward_vid_step_suppresses_pulses() {
        // After a downward VID step the capacitor is overcharged: the
        // VRM skips until the load drains the surplus.
        let mut trace = PowerTrace::new();
        trace.push(1e-3, 0, 0, 2.0, 1.1, ActivityKind::Work);
        trace.push(2e-3, 0, 0, 2.0, 0.7, ActivityKind::Work);
        let train = buck_1mhz().convert(&trace);
        // Surplus 300 µF × 0.4 V = 120 µC at 2 A takes 60 µs to drain.
        let right_after = train.mean_current_in(1.0e-3, 1.05e-3);
        let later = train.mean_current_in(1.5e-3, 2.0e-3);
        assert!(right_after < 0.2 * later, "suppressed {right_after} vs later {later}");
    }

    #[test]
    fn pulse_charge_never_exceeds_capability() {
        let mut trace = PowerTrace::new();
        trace.push(0.2e-3, 6, 0, 0.05, 0.4, ActivityKind::Idle);
        trace.push(0.2e-3, 0, 0, 8.0, 1.1, ActivityKind::Work);
        let train = buck_1mhz().convert(&trace);
        let cap = buck_1mhz().config().max_pulse_charge_c;
        for p in &train.pulses {
            assert!(p.charge_c <= cap + 1e-15);
        }
    }

    #[test]
    fn pulses_are_time_ordered_and_on_grid() {
        let train = buck_1mhz().convert(&flat_trace(8.0, 0.5e-3));
        for w in train.pulses.windows(2) {
            assert!(w[0].t_s < w[1].t_s);
        }
        // Without randomization, every pulse time is a multiple of the period.
        for p in &train.pulses {
            let phase = p.t_s / train.nominal_period_s;
            assert!((phase - phase.round()).abs() < 1e-6, "off-grid pulse at {}", p.t_s);
        }
    }

    #[test]
    fn randomization_moves_pulses_off_grid() {
        let mut cfg = BuckConfig::laptop(1.0e6);
        cfg.randomization = Some(PeriodRandomization { spread: 0.2, seed: 1 });
        let train = Buck::new(cfg).convert(&flat_trace(8.0, 0.5e-3));
        let off_grid = train
            .pulses
            .iter()
            .filter(|p| {
                let phase = p.t_s / train.nominal_period_s;
                (phase - phase.round()).abs() > 0.02
            })
            .count();
        assert!(off_grid > train.pulses.len() / 2, "{off_grid} off-grid");
    }

    #[test]
    fn fivr_input_stage_scales_load_but_keeps_contrast() {
        let mut active = PowerTrace::new();
        active.push(1e-3, 0, 0, 8.0, 1.1, ActivityKind::Work);
        let mobo = Buck::new(BuckConfig::laptop(1e6)).convert(&active);
        let fivr = Buck::new(BuckConfig::fivr_input_stage(1e6)).convert(&active);
        let ratio = fivr.total_charge_c() / mobo.total_charge_c();
        assert!((ratio - 0.6).abs() < 0.05, "ratio {ratio}");
        // The input stage still fires continuously under load…
        assert!((fivr.firing_fraction() - 1.0).abs() < 0.05);
        // …and still skips at idle: the modulation (and the leak) remains.
        let mut idle = PowerTrace::new();
        idle.push(1e-3, 6, 0, 0.1, 1.1, ActivityKind::Idle);
        let fivr_idle = Buck::new(BuckConfig::fivr_input_stage(1e6)).convert(&idle);
        assert!(fivr_idle.firing_fraction() < 0.1);
    }

    #[test]
    fn empty_trace_produces_empty_train() {
        let train = buck_1mhz().convert(&PowerTrace::new());
        assert!(train.pulses.is_empty());
        assert_eq!(train.duration_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "capacitance")]
    fn invalid_config_panics() {
        let mut cfg = BuckConfig::laptop(1e6);
        cfg.output_capacitance_f = 0.0;
        Buck::new(cfg);
    }
}
