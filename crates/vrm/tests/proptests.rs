//! Property-based tests for the buck converter.

use emsc_pmu::trace::{ActivityKind, PowerTrace};
use emsc_vrm::buck::{Buck, BuckConfig};
use emsc_vrm::vid::VidTable;
use proptest::prelude::*;

fn load_trace() -> impl Strategy<Value = PowerTrace> {
    prop::collection::vec((0.01f64..10.0, 1e-5f64..5e-4), 1..12).prop_map(|segments| {
        let mut t = PowerTrace::new();
        for (current, dur) in segments {
            t.push(dur, 0, 0, current, 1.1, ActivityKind::Work);
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn charge_is_conserved_within_tolerance(trace in load_trace(), f_sw in 3e5f64..1.2e6) {
        let buck = Buck::new(BuckConfig::laptop(f_sw));
        let train = buck.convert(&trace);
        let drawn: f64 = trace
            .segments()
            .iter()
            .map(|s| s.current_a * s.duration_s)
            .sum();
        let delivered = train.total_charge_c();
        // Delivered charge never exceeds drawn (deficit can remain in
        // the capacitor) and tracks it within one firing threshold.
        prop_assert!(delivered <= drawn + 1e-12);
        prop_assert!(drawn - delivered <= buck.config().fire_threshold_c() + 1e-12);
    }

    #[test]
    fn pulses_are_ordered_and_bounded(trace in load_trace(), f_sw in 3e5f64..1.2e6) {
        let buck = Buck::new(BuckConfig::laptop(f_sw));
        let train = buck.convert(&trace);
        let cap = buck.config().max_pulse_charge_c;
        let mut last = -1.0;
        for p in &train.pulses {
            prop_assert!(p.t_s > last);
            prop_assert!(p.charge_c > 0.0 && p.charge_c <= cap + 1e-15);
            prop_assert!(p.t_s <= trace.duration_s() + 1e-9);
            last = p.t_s;
        }
    }

    #[test]
    fn firing_fraction_increases_with_load(f_sw in 4e5f64..1.2e6, base in 0.05f64..0.5) {
        let mk = |current: f64| {
            let mut t = PowerTrace::new();
            t.push(2e-3, 0, 0, current, 1.1, ActivityKind::Work);
            Buck::new(BuckConfig::laptop(f_sw)).convert(&t).firing_fraction()
        };
        let light = mk(base);
        let heavy = mk(base * 20.0);
        prop_assert!(heavy >= light, "light {} heavy {}", light, heavy);
    }

    #[test]
    fn vid_quantize_stays_on_grid(v in -1.0f64..3.0) {
        let t = VidTable::vrd11();
        let q = t.quantize(v);
        prop_assert!(q >= t.min_v - 1e-12 && q <= t.max_v + 1e-12);
        let steps = (q - t.min_v) / t.step_v;
        prop_assert!((steps - steps.round()).abs() < 1e-6);
        prop_assert_eq!(t.quantize(q), q);
    }
}
