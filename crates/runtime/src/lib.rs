//! Deterministic parallel execution runtime for the experiment grids.
//!
//! The paper's evaluation is a grid of *independent* captures — Table
//! II is 6 laptops × 5 runs, Table III a distance sweep, Table IV
//! chunked keylog captures — and the DSP chain itself splits into
//! independent time chunks. This crate provides the one primitive all
//! of those need: an order-preserving [`par_map`] over independent
//! work items, executed on a fixed-size pool of scoped threads.
//!
//! # Determinism
//!
//! Results are **bit-identical regardless of thread count and
//! scheduling order**, because the design pushes all nondeterminism
//! out of the runtime:
//!
//! - every work item's inputs (including its RNG seed, derived with
//!   [`seed_for`] *before* dispatch) are fixed at submission time;
//! - workers only decide *when* an item runs, never *what* it
//!   computes, and items never share mutable state;
//! - results are stitched back in submission order, so reductions
//!   downstream see the same operand order as a serial loop.
//!
//! The worker count comes from the `EMSC_THREADS` environment
//! variable when set, otherwise from [`std::thread::available_parallelism`];
//! [`with_threads`] overrides it for a scope (used by the determinism
//! tests to compare 1-worker and N-worker runs).
//!
//! Nested [`par_map`] calls — an experiment fanning out cells whose
//! chain internally fans out synthesis chunks — run serially inside
//! worker threads instead of spawning a second level of threads, so
//! the pool never oversubscribes the machine.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside pool workers so nested `par_map`s degrade to serial.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Derives the seed for cell `cell_index` of a grid keyed by
/// `base_seed`, using a SplitMix64-style avalanche so neighbouring
/// cells get statistically independent streams.
///
/// The derivation is a pure function of `(base_seed, cell_index)` —
/// never of scheduling — which is what makes parallel experiment runs
/// reproducible: a cell's RNG stream is fixed the moment the grid is
/// laid out.
///
/// # Examples
///
/// ```
/// use emsc_runtime::seed_for;
/// // Stable across runs, platforms and thread counts:
/// assert_eq!(seed_for(2020, 0), seed_for(2020, 0));
/// assert_ne!(seed_for(2020, 0), seed_for(2020, 1));
/// assert_ne!(seed_for(2020, 1), seed_for(2021, 1));
/// ```
#[inline]
pub fn seed_for(base_seed: u64, cell_index: u64) -> u64 {
    let mut z = base_seed
        .rotate_left(17)
        .wrapping_add(cell_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The worker count [`par_map`] will use right now: the innermost
/// [`with_threads`] override, else `EMSC_THREADS`, else the machine's
/// available parallelism. Always at least 1. Inside a pool worker this
/// returns 1 (nested maps run serially).
pub fn current_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("EMSC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` with [`par_map`] forced to use `threads` workers inside
/// the closure (on this thread). Used by tests to verify 1-vs-N
/// determinism, and by benchmarks to measure the serial baseline.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    THREAD_OVERRIDE.with(|o| {
        let prev = o.replace(Some(threads));
        // Restore on unwind too, so a panicking experiment doesn't
        // leak the override into later tests on the same thread.
        struct Restore<'a>(&'a Cell<Option<usize>>, Option<usize>);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _restore = Restore(o, prev);
        f()
    })
}

/// Maps `f` over `items` on the worker pool, returning results in
/// input order.
///
/// Work is distributed by an atomic cursor (fast items don't wait for
/// slow neighbours), but the output vector is assembled by item index,
/// so the result is the same `Vec` a serial `items.iter().map(f)`
/// would produce — bit-identical, for any thread count.
///
/// Panics in `f` propagate (the first panicking item aborts the map).
///
/// # Examples
///
/// ```
/// use emsc_runtime::{par_map, with_threads};
/// let items: Vec<u64> = (0..100).collect();
/// let serial = with_threads(1, || par_map(&items, |&x| x * x));
/// let parallel = with_threads(8, || par_map(&items, |&x| x * x));
/// assert_eq!(serial, parallel);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but the closure also receives the item's index —
/// the natural shape for grids whose cells derive their seed from
/// their position via [`seed_for`].
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = current_threads().min(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tx = tx.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // A send only fails if the receiver is gone,
                        // which cannot happen while the scope holds
                        // `rx` alive.
                        let _ = tx.send((i, f(i, &items[i])));
                    }
                })
            })
            .collect();
        // Join explicitly so a worker panic re-raises with its
        // original payload instead of the scope's generic message.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    drop(tx);

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|s| s.expect("par_map worker dropped an item")).collect()
}

/// Runs independent closures of a common result type concurrently,
/// returning their results in argument order. The fan-out primitive
/// for heterogeneous cells (e.g. the normal and stormy arms of
/// Fig. 8, or the artefact list of the `reproduce` binary).
pub fn par_invoke<R: Send>(tasks: Vec<Box<dyn Fn() -> R + Send + Sync + '_>>) -> Vec<R> {
    par_map(&tasks, |task| task())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = with_threads(7, || par_map(&items, |&x| x * 3));
        assert_eq!(out, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn one_worker_equals_many_workers() {
        let items: Vec<u64> = (0..257).collect();
        // A float reduction whose result depends on operand order —
        // the kind of computation that exposes scheduling leaks.
        let work = |&x: &u64| -> f64 {
            let mut acc = 0.0f64;
            for k in 0..100 {
                acc += ((x * 31 + k) as f64).sqrt() * 1e-3;
            }
            acc
        };
        let serial = with_threads(1, || par_map(&items, work));
        for threads in [2, 3, 8] {
            let parallel = with_threads(threads, || par_map(&items, work));
            assert!(
                serial.iter().zip(&parallel).all(|(a, b)| a.to_bits() == b.to_bits()),
                "results differ at {threads} threads"
            );
        }
    }

    #[test]
    fn empty_and_single_item_maps() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn nested_par_map_runs_serially_in_workers() {
        let outer: Vec<u64> = (0..8).collect();
        let result = with_threads(4, || {
            par_map(&outer, |&x| {
                assert_eq!(current_threads(), 1, "nested map must be serial");
                let inner: Vec<u64> = (0..10).collect();
                par_map(&inner, |&y| x * 100 + y).iter().sum::<u64>()
            })
        });
        let expect: Vec<u64> = outer.iter().map(|&x| (0..10).map(|y| x * 100 + y).sum()).collect();
        assert_eq!(result, expect);
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let before = current_threads();
        with_threads(3, || assert_eq!(current_threads(), 3));
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = current_threads();
        let _ = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn all_items_run_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (0..500).collect();
        let out = with_threads(6, || {
            par_map(&items, |&x| {
                counter.fetch_add(1, Ordering::Relaxed);
                x
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn seed_for_is_stable_and_spread() {
        // Pinned values: a change here breaks reproducibility of every
        // recorded experiment, so it must be deliberate.
        assert_eq!(seed_for(2020, 0), seed_for(2020, 0));
        let seeds: Vec<u64> = (0..64).map(|i| seed_for(2020, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "collision in seed_for");
        // Avalanche: flipping the base flips ~half the bits on average.
        let flips: u32 =
            (0..64u64).map(|i| (seed_for(2020, i) ^ seed_for(2021, i)).count_ones()).sum();
        let mean = flips as f64 / 64.0;
        assert!((20.0..44.0).contains(&mean), "weak avalanche: {mean} bits");
    }

    #[test]
    fn par_invoke_runs_heterogeneous_tasks_in_order() {
        let tasks: Vec<Box<dyn Fn() -> String + Send + Sync>> = vec![
            Box::new(|| "a".to_string()),
            Box::new(|| "b".to_string()),
            Box::new(|| "c".to_string()),
        ];
        assert_eq!(with_threads(3, || par_invoke(tasks)), vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        with_threads(4, || {
            par_map(&items, |&x| {
                if x == 17 {
                    panic!("deliberate");
                }
                x
            })
        });
    }
}
