//! k-nearest-neighbour classification of page-load fingerprints.
//!
//! The paper frames fingerprinting as reducing the search space for
//! what the victim did; a small k-NN over burst features is the
//! standard baseline classifier for that framing.

use crate::features::{feature_scales, FeatureVector, FEATURE_DIM};

/// One labelled training observation.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledVisit {
    /// Site label.
    pub label: String,
    /// Observed features.
    pub features: FeatureVector,
}

/// A trained k-NN fingerprint classifier.
#[derive(Debug, Clone)]
pub struct Classifier {
    k: usize,
    training: Vec<LabeledVisit>,
    scales: [f64; FEATURE_DIM],
}

impl Classifier {
    /// Trains (memorises) on the labelled visits.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or there are fewer than `k` visits.
    pub fn train(training: Vec<LabeledVisit>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(training.len() >= k, "need at least k training visits");
        let features: Vec<FeatureVector> = training.iter().map(|v| v.features).collect();
        let scales = feature_scales(&features);
        Classifier { k, training, scales }
    }

    /// Number of neighbours consulted.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Classifies an observation: majority label among the k nearest
    /// training visits (ties broken toward the nearer neighbour).
    pub fn classify(&self, observation: &FeatureVector) -> &str {
        let mut by_distance: Vec<(f64, &str)> = self
            .training
            .iter()
            .map(|v| (observation.distance(&v.features, &self.scales), v.label.as_str()))
            .collect();
        by_distance.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let neighbours = &by_distance[..self.k.min(by_distance.len())];
        // Majority vote; first-encountered (nearest) wins ties.
        let mut best: (&str, usize) = ("", 0);
        for &(_, label) in neighbours {
            let votes = neighbours.iter().filter(|(_, l)| *l == label).count();
            if votes > best.1 {
                best = (label, votes);
            }
        }
        best.0
    }
}

/// Leave-one-out accuracy over a labelled set — the standard small-
/// sample evaluation.
pub fn leave_one_out_accuracy(visits: &[LabeledVisit], k: usize) -> f64 {
    leave_one_out(visits, k).accuracy()
}

/// A (true label, predicted label) count matrix from leave-one-out
/// evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Confusion {
    /// Distinct labels, in first-seen order.
    pub labels: Vec<String>,
    /// `counts[t][p]`: visits of true label `t` predicted as `p`.
    pub counts: Vec<Vec<usize>>,
}

impl Confusion {
    /// Overall accuracy: trace over total.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.labels.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (diagonal over row sum), paired with labels.
    pub fn per_class_recall(&self) -> Vec<(String, f64)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let row: usize = self.counts[i].iter().sum();
                let r = if row == 0 { 0.0 } else { self.counts[i][i] as f64 / row as f64 };
                (l.clone(), r)
            })
            .collect()
    }

    /// Renders the matrix as a compact text table.
    pub fn render(&self) -> String {
        let mut out = String::from("true \\ predicted\n");
        for (i, l) in self.labels.iter().enumerate() {
            out.push_str(&format!("{:<14}", l));
            for c in &self.counts[i] {
                out.push_str(&format!(" {c:>3}"));
            }
            out.push('\n');
        }
        out
    }
}

impl Classifier {
    /// Open-world classification: returns `None` when the nearest
    /// training visit is farther than `max_distance` (normalised
    /// units) — "this doesn't look like any site I know".
    pub fn classify_open(&self, observation: &FeatureVector, max_distance: f64) -> Option<&str> {
        let nearest = self
            .training
            .iter()
            .map(|v| observation.distance(&v.features, &self.scales))
            .fold(f64::INFINITY, f64::min);
        (nearest <= max_distance).then(|| self.classify(observation))
    }
}

/// Leave-one-out evaluation returning the full confusion matrix.
pub fn leave_one_out(visits: &[LabeledVisit], k: usize) -> Confusion {
    let mut labels: Vec<String> = Vec::new();
    for v in visits {
        if !labels.contains(&v.label) {
            labels.push(v.label.clone());
        }
    }
    let n = labels.len();
    let mut counts = vec![vec![0usize; n]; n];
    if visits.len() >= 2 {
        for i in 0..visits.len() {
            let mut training: Vec<LabeledVisit> = visits.to_vec();
            let held_out = training.remove(i);
            let classifier = Classifier::train(training, k.min(visits.len() - 1));
            let predicted = classifier.classify(&held_out.features).to_string();
            let t = labels.iter().position(|l| *l == held_out.label).expect("seen label");
            if let Some(p) = labels.iter().position(|l| *l == predicted) {
                counts[t][p] += 1;
            }
        }
    }
    Confusion { labels, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(label: &str, v: [f64; FEATURE_DIM]) -> LabeledVisit {
        LabeledVisit { label: label.into(), features: FeatureVector { values: v } }
    }

    fn clustered_set() -> Vec<LabeledVisit> {
        let mut out = Vec::new();
        for i in 0..5 {
            let d = i as f64 * 0.01;
            out.push(visit("a", [1.0 + d, 2.0, 3.0, 0.5, 0.2, 0.1]));
            out.push(visit("b", [5.0 + d, 1.0, 1.0, 1.5, 0.9, 0.8]));
            out.push(visit("c", [0.2 + d, 8.0, 6.0, 0.1, 0.05, 1.5]));
        }
        out
    }

    #[test]
    fn classifies_cluster_members_correctly() {
        let set = clustered_set();
        let classifier = Classifier::train(set.clone(), 3);
        let probe = FeatureVector { values: [1.02, 2.0, 3.0, 0.5, 0.2, 0.1] };
        assert_eq!(classifier.classify(&probe), "a");
        let probe_b = FeatureVector { values: [5.03, 1.0, 1.0, 1.5, 0.9, 0.8] };
        assert_eq!(classifier.classify(&probe_b), "b");
    }

    #[test]
    fn leave_one_out_on_separable_clusters_is_perfect() {
        let acc = leave_one_out_accuracy(&clustered_set(), 3);
        assert!((acc - 1.0).abs() < 1e-12, "accuracy {acc}");
    }

    #[test]
    fn leave_one_out_on_identical_features_is_chance() {
        // All sites look the same ⇒ accuracy collapses toward 1/classes.
        let mut set = Vec::new();
        for i in 0..12 {
            let label = ["a", "b", "c"][i % 3];
            set.push(visit(label, [1.0, 1.0, 1.0, 1.0, 1.0, 1.0]));
        }
        let acc = leave_one_out_accuracy(&set, 3);
        assert!(acc < 0.7, "accuracy {acc} suspiciously high for identical features");
    }

    #[test]
    fn confusion_matrix_diagonal_for_separable_clusters() {
        let c = leave_one_out(&clustered_set(), 3);
        assert_eq!(c.labels.len(), 3);
        assert!((c.accuracy() - 1.0).abs() < 1e-12);
        for (label, recall) in c.per_class_recall() {
            assert!((recall - 1.0).abs() < 1e-12, "{label} recall {recall}");
        }
        let text = c.render();
        assert!(text.contains('a') && text.contains("predicted"));
    }

    #[test]
    fn open_world_rejects_outliers() {
        let classifier = Classifier::train(clustered_set(), 3);
        let inlier = FeatureVector { values: [1.01, 2.0, 3.0, 0.5, 0.2, 0.1] };
        let outlier = FeatureVector { values: [100.0, -50.0, 80.0, 9.0, 7.0, 12.0] };
        assert_eq!(classifier.classify_open(&inlier, 3.0), Some("a"));
        assert_eq!(classifier.classify_open(&outlier, 3.0), None);
        // A huge radius accepts anything.
        assert!(classifier.classify_open(&outlier, 1e9).is_some());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        Classifier::train(clustered_set(), 0);
    }
}
