//! Feature extraction from detected activity bursts.
//!
//! The attacker sees only what the EM detector gives her: a list of
//! activity bursts with start times and durations. The features below
//! capture the structure §III says is exploitable — *how long* the
//! processor was active and in what pattern.

use emsc_keylog::detect::DetectedBurst;

/// Number of features in a [`FeatureVector`].
pub const FEATURE_DIM: usize = 6;

/// A fixed-size feature vector describing one observed page load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector {
    /// The features: total active time, load span, burst count,
    /// longest burst, mean burst, mean inter-burst gap.
    pub values: [f64; FEATURE_DIM],
}

impl FeatureVector {
    /// Extracts features from a burst list (assumed to belong to one
    /// page load, time-ordered). Returns `None` when no bursts were
    /// detected.
    pub fn from_bursts(bursts: &[DetectedBurst]) -> Option<Self> {
        if bursts.is_empty() {
            return None;
        }
        let total_active: f64 = bursts.iter().map(|b| b.duration_s).sum();
        let start = bursts.first().expect("non-empty").start_s;
        let end = bursts.iter().map(|b| b.end_s()).fold(0.0, f64::max);
        let span = end - start;
        let count = bursts.len() as f64;
        let longest = bursts.iter().map(|b| b.duration_s).fold(0.0, f64::max);
        let mean = total_active / count;
        let mean_gap = if bursts.len() > 1 {
            bursts.windows(2).map(|w| (w[1].start_s - w[0].end_s()).max(0.0)).sum::<f64>()
                / (bursts.len() - 1) as f64
        } else {
            0.0
        };
        Some(FeatureVector { values: [total_active, span, count, longest, mean, mean_gap] })
    }

    /// Euclidean distance to another vector under per-dimension scales
    /// (pass the training set's standard deviations to normalise).
    pub fn distance(&self, other: &FeatureVector, scales: &[f64; FEATURE_DIM]) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .zip(scales)
            .map(|((a, b), s)| {
                let d = (a - b) / s.max(1e-9);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Per-dimension standard deviations of a feature set (for distance
/// normalisation). Dimensions with no spread get scale 1.
pub fn feature_scales(features: &[FeatureVector]) -> [f64; FEATURE_DIM] {
    let mut scales = [1.0; FEATURE_DIM];
    if features.len() < 2 {
        return scales;
    }
    for (d, scale) in scales.iter_mut().enumerate() {
        let mean = features.iter().map(|f| f.values[d]).sum::<f64>() / features.len() as f64;
        let var = features.iter().map(|f| (f.values[d] - mean).powi(2)).sum::<f64>()
            / (features.len() - 1) as f64;
        if var.sqrt() > 1e-12 {
            *scale = var.sqrt();
        }
    }
    scales
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(start_s: f64, duration_s: f64) -> DetectedBurst {
        DetectedBurst { start_s, duration_s }
    }

    #[test]
    fn features_of_a_known_pattern() {
        let bursts = [burst(1.0, 0.2), burst(1.5, 0.1), burst(2.0, 0.3)];
        let f = FeatureVector::from_bursts(&bursts).unwrap();
        let [total, span, count, longest, mean, mean_gap] = f.values;
        assert!((total - 0.6).abs() < 1e-12);
        assert!((span - 1.3).abs() < 1e-12); // 1.0 → 2.3
        assert!((count - 3.0).abs() < 1e-12);
        assert!((longest - 0.3).abs() < 1e-12);
        assert!((mean - 0.2).abs() < 1e-12);
        // gaps: 1.5−1.2 = 0.3 and 2.0−1.6 = 0.4 → mean 0.35
        assert!((mean_gap - 0.35).abs() < 1e-12);
    }

    #[test]
    fn empty_bursts_give_no_features() {
        assert!(FeatureVector::from_bursts(&[]).is_none());
    }

    #[test]
    fn single_burst_has_zero_gap() {
        let f = FeatureVector::from_bursts(&[burst(0.5, 0.4)]).unwrap();
        assert_eq!(f.values[5], 0.0);
        assert!((f.values[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn distance_is_zero_to_self_and_symmetric() {
        let a = FeatureVector { values: [1.0, 2.0, 3.0, 0.5, 0.2, 0.1] };
        let b = FeatureVector { values: [2.0, 1.0, 3.0, 0.4, 0.3, 0.2] };
        let scales = [1.0; FEATURE_DIM];
        assert_eq!(a.distance(&a, &scales), 0.0);
        assert!((a.distance(&b, &scales) - b.distance(&a, &scales)).abs() < 1e-12);
        assert!(a.distance(&b, &scales) > 0.0);
    }

    #[test]
    fn scales_normalise_spread() {
        let features = vec![
            FeatureVector { values: [0.0, 100.0, 0.0, 0.0, 0.0, 0.0] },
            FeatureVector { values: [1.0, 300.0, 0.0, 0.0, 0.0, 0.0] },
            FeatureVector { values: [2.0, 200.0, 0.0, 0.0, 0.0, 0.0] },
        ];
        let scales = feature_scales(&features);
        assert!((scales[0] - 1.0).abs() < 1e-9);
        assert!((scales[1] - 100.0).abs() < 1e-9);
        assert_eq!(scales[2], 1.0, "zero-spread dimension keeps scale 1");
    }
}
