//! Website/application fingerprinting over the PMU EM side channel.
//!
//! §III of the paper lists, beyond the covert channel and keylogging,
//! a third way to exploit the VRM emanation: "the attacker can monitor
//! these signals to infer … how long the processor was active to
//! process a certain task. Such information, for example, can be used
//! for website fingerprinting." This crate implements that attack
//! end to end (as an *extension* — the paper describes but does not
//! evaluate it):
//!
//! - [`workload`]: synthetic page-load activity profiles
//!   ([`workload::SiteProfile`]) with per-visit jitter,
//! - [`features`]: burst-pattern features extracted from what the EM
//!   detector sees ([`features::FeatureVector`]),
//! - [`classify`]: a k-NN classifier with leave-one-out evaluation.
//!
//! The full physical chain is composed in
//! `emsc_core::fingerprint_run`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod classify;
pub mod features;
pub mod workload;

pub use classify::{leave_one_out, leave_one_out_accuracy, Classifier, Confusion, LabeledVisit};
pub use features::{FeatureVector, FEATURE_DIM};
pub use workload::{site_library, SiteProfile};
