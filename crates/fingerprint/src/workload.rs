//! Synthetic website/application activity profiles.
//!
//! §III's attack model (ii)(b): "the attacker can monitor these
//! signals to infer how long the processor was active to process a
//! certain task. Such information, for example, can be used for
//! website fingerprinting (i.e., by measuring how long it takes to
//! load a webpage, the attacker can infer which website was loaded)."
//!
//! A page load is a characteristic burst pattern: network/parse,
//! layout, script execution, image decodes — each site with its own
//! total duration and burst structure. The profiles here are
//! synthetic but structurally distinct, which is all the attack needs.

use emsc_pmu::sim::ExternalEvent;
use emsc_pmu::trace::ActivityKind;
use rand::Rng;

/// One activity burst within a page-load profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileBurst {
    /// Offset from the start of the load, seconds.
    pub offset_s: f64,
    /// Busy duration, seconds.
    pub duration_s: f64,
}

/// A site's characteristic load profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteProfile {
    /// Site label.
    pub name: String,
    /// Activity bursts of one visit.
    pub bursts: Vec<ProfileBurst>,
}

impl SiteProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `bursts` is empty.
    pub fn new(name: impl Into<String>, bursts: Vec<ProfileBurst>) -> Self {
        assert!(!bursts.is_empty(), "a profile needs at least one burst");
        SiteProfile { name: name.into(), bursts }
    }

    /// Total busy time of one visit, seconds.
    pub fn total_active_s(&self) -> f64 {
        self.bursts.iter().map(|b| b.duration_s).sum()
    }

    /// Time from first burst start to last burst end, seconds.
    pub fn load_time_s(&self) -> f64 {
        self.bursts.iter().map(|b| b.offset_s + b.duration_s).fold(0.0, f64::max)
    }

    /// Renders one visit as machine events starting at `start_s`, with
    /// multiplicative jitter on burst durations and small offset noise
    /// (network variability).
    pub fn visit_events<R: Rng + ?Sized>(
        &self,
        start_s: f64,
        jitter: f64,
        rng: &mut R,
    ) -> Vec<ExternalEvent> {
        self.bursts
            .iter()
            .map(|b| {
                let dj = 1.0 + jitter * (2.0 * rng.gen::<f64>() - 1.0);
                let oj = 1.0 + 0.5 * jitter * (2.0 * rng.gen::<f64>() - 1.0);
                ExternalEvent {
                    t_s: start_s + b.offset_s * oj,
                    duration_s: (b.duration_s * dj).max(1e-3),
                    kind: ActivityKind::Work,
                }
            })
            .collect()
    }
}

/// A small library of structurally distinct sites (news portal, video
/// page, search box, webmail, static documentation).
pub fn site_library() -> Vec<SiteProfile> {
    let b = |offset_s: f64, duration_s: f64| ProfileBurst { offset_s, duration_s };
    vec![
        // Heavy news portal: long parse, many ad/script bursts.
        SiteProfile::new(
            "news-portal",
            vec![
                b(0.00, 0.35),
                b(0.45, 0.20),
                b(0.75, 0.18),
                b(1.05, 0.22),
                b(1.45, 0.15),
                b(1.75, 0.12),
            ],
        ),
        // Video page: medium parse then sustained decode ramp-up.
        SiteProfile::new("video", vec![b(0.00, 0.25), b(0.35, 0.55), b(1.10, 0.45)]),
        // Search landing page: one short burst, then idle.
        SiteProfile::new("search", vec![b(0.00, 0.12), b(0.25, 0.06)]),
        // Webmail: moderate load, then periodic sync bursts.
        SiteProfile::new(
            "webmail",
            vec![b(0.00, 0.28), b(0.50, 0.10), b(1.20, 0.10), b(1.90, 0.10)],
        ),
        // Static documentation: quick parse, one layout pass.
        SiteProfile::new("docs", vec![b(0.00, 0.16), b(0.22, 0.10)]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn library_profiles_are_distinct() {
        let lib = site_library();
        assert!(lib.len() >= 5);
        for (i, a) in lib.iter().enumerate() {
            for b in lib.iter().skip(i + 1) {
                assert_ne!(a.name, b.name);
                // Distinguishable by at least one gross feature.
                let active_diff = (a.total_active_s() - b.total_active_s()).abs();
                let count_diff = a.bursts.len().abs_diff(b.bursts.len());
                assert!(
                    active_diff > 0.05 || count_diff > 0,
                    "{} and {} look identical",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn visits_jitter_but_preserve_structure() {
        let lib = site_library();
        let mut rng = StdRng::seed_from_u64(5);
        let site = &lib[0];
        let a = site.visit_events(1.0, 0.1, &mut rng);
        let c = site.visit_events(1.0, 0.1, &mut rng);
        assert_eq!(a.len(), site.bursts.len());
        assert_ne!(a, c, "visits vary");
        for (ev, b) in a.iter().zip(&site.bursts) {
            assert!((ev.t_s - 1.0 - b.offset_s).abs() < 0.3);
            assert!((ev.duration_s - b.duration_s).abs() / b.duration_s < 0.2);
        }
    }

    #[test]
    fn load_time_exceeds_active_time_when_bursts_are_spread() {
        for site in site_library() {
            assert!(site.load_time_s() >= site.total_active_s() - 1e-9, "{}", site.name);
        }
    }

    #[test]
    #[should_panic(expected = "at least one burst")]
    fn empty_profile_panics() {
        SiteProfile::new("x", Vec::new());
    }
}
