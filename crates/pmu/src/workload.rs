//! Program models: the workloads whose execution modulates the
//! processor's power states.
//!
//! The paper drives the side channel with tiny user-level programs
//! (Fig. 1 and Fig. 3): an infinite loop alternating a busy spin with
//! a `usleep`. A [`Program`] is a finite sequence of [`Op`]s; the
//! simulator executes them against its timing and power-state models.

/// One operation of a simulated user-level program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Spin executing `iterations` simple ALU iterations (Fig. 1
    /// lines 5–6: `dummy1 += dummy1 + i`).
    Busy {
        /// Loop iterations to execute.
        iterations: u64,
    },
    /// Request an OS sleep (`usleep`/`Sleep`) of the given duration.
    Sleep {
        /// Requested sleep time, seconds.
        duration_s: f64,
    },
}

/// A finite straight-line program (loops are unrolled at build time).
///
/// # Examples
///
/// Building the paper's Fig. 1 micro-benchmark — alternate busy/idle
/// phases of 5 ms each, 100 times, on a machine executing 3 × 10⁹
/// iterations per second:
///
/// ```
/// use emsc_pmu::workload::Program;
/// let p = Program::alternating(5e-3, 5e-3, 100, 3.0e9);
/// assert_eq!(p.ops().len(), 200);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends a busy spin of `iterations` loop iterations.
    pub fn busy(&mut self, iterations: u64) -> &mut Self {
        self.ops.push(Op::Busy { iterations });
        self
    }

    /// Appends a busy spin lasting roughly `duration_s` seconds on a
    /// machine that retires `iterations_per_second` loop iterations
    /// per second at its nominal P-state.
    pub fn busy_for(&mut self, duration_s: f64, iterations_per_second: f64) -> &mut Self {
        self.busy((duration_s * iterations_per_second).round().max(0.0) as u64)
    }

    /// Appends an OS sleep request.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is negative.
    pub fn sleep(&mut self, duration_s: f64) -> &mut Self {
        assert!(duration_s >= 0.0, "sleep duration must be non-negative");
        self.ops.push(Op::Sleep { duration_s });
        self
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The Fig. 1 micro-benchmark: `reps` repetitions of
    /// (busy `t_active_s`, sleep `t_idle_s`).
    pub fn alternating(t_active_s: f64, t_idle_s: f64, reps: usize, ips: f64) -> Self {
        let mut p = Program::new();
        for _ in 0..reps {
            p.busy_for(t_active_s, ips).sleep(t_idle_s);
        }
        p
    }

    /// A program that only sleeps, in chunks — the "machine is idle"
    /// baseline used by the keylogging evaluation.
    pub fn idle(total_s: f64, chunk_s: f64) -> Self {
        let mut p = Program::new();
        let mut remaining = total_s;
        // Ignore sub-nanosecond floating-point residue so the final
        // chunk doesn't become a degenerate sleep request.
        while remaining > 1e-9 {
            let d = remaining.min(chunk_s);
            p.sleep(d);
            remaining -= d;
        }
        p
    }

    /// Rough lower bound on the program's runtime (ignores overheads
    /// and jitter), for sizing capture buffers.
    pub fn nominal_duration_s(&self, ips: f64) -> f64 {
        self.ops
            .iter()
            .map(|op| match *op {
                Op::Busy { iterations } => iterations as f64 / ips,
                Op::Sleep { duration_s } => duration_s,
            })
            .sum()
    }
}

impl Extend<Op> for Program {
    fn extend<T: IntoIterator<Item = Op>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<Op> for Program {
    fn from_iter<T: IntoIterator<Item = Op>>(iter: T) -> Self {
        Program { ops: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_in_order() {
        let mut p = Program::new();
        p.busy(100).sleep(1e-3).busy(50);
        assert_eq!(
            p.ops(),
            &[
                Op::Busy { iterations: 100 },
                Op::Sleep { duration_s: 1e-3 },
                Op::Busy { iterations: 50 },
            ]
        );
    }

    #[test]
    fn busy_for_converts_time_to_iterations() {
        let mut p = Program::new();
        p.busy_for(2e-3, 1e9);
        assert_eq!(p.ops(), &[Op::Busy { iterations: 2_000_000 }]);
    }

    #[test]
    fn alternating_micro_benchmark_shape() {
        let p = Program::alternating(1e-3, 2e-3, 3, 1e9);
        assert_eq!(p.ops().len(), 6);
        assert!(matches!(p.ops()[0], Op::Busy { .. }));
        assert!(matches!(p.ops()[1], Op::Sleep { duration_s } if duration_s == 2e-3));
        let nominal = p.nominal_duration_s(1e9);
        assert!((nominal - 9e-3).abs() < 1e-9);
    }

    #[test]
    fn idle_program_covers_duration() {
        let p = Program::idle(0.95, 0.25);
        assert_eq!(p.ops().len(), 4); // 0.25 ×3 + 0.2 (residue dropped)
        assert!((p.nominal_duration_s(1e9) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn collects_from_iterator() {
        let ops = vec![Op::Busy { iterations: 1 }, Op::Sleep { duration_s: 0.5 }];
        let p: Program = ops.clone().into_iter().collect();
        assert_eq!(p.ops(), ops.as_slice());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sleep_panics() {
        Program::new().sleep(-0.5);
    }
}
