//! Operating-system sleep/timer models.
//!
//! The covert channel's bit rate is limited by how precisely the
//! transmitter can control idleness (§IV-A, §IV-C2): `usleep()` on
//! Linux/macOS has microsecond-class granularity but is "lengthened
//! slightly due to other system activities", and below ~10 µs the
//! actual sleep time becomes highly variable; Windows `Sleep()` has a
//! 1 ms timer granularity, capping Windows laptops at ~1 kbps in
//! Table II. This module models those behaviours as distributions over
//! *actual* sleep duration given a *requested* one.

use rand::Rng;

/// Which OS timer API the transmitter uses, with its granularity and
/// jitter behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SleepModel {
    /// POSIX `usleep()` as implemented by Linux (hrtimers): requests
    /// are honoured at microsecond granularity with a small positive
    /// overhead and an exponential "lengthening" tail.
    LinuxUsleep,
    /// macOS `usleep()`: same shape as Linux with marginally larger
    /// scheduling jitter.
    MacosUsleep,
    /// Win32 `Sleep()`: millisecond argument, quantised up to the
    /// timer tick (modelled at 1 ms), with tick-scale jitter.
    WindowsSleep,
    /// A custom model, for experiments.
    Custom {
        /// Requests are rounded up to a multiple of this, seconds.
        granularity_s: f64,
        /// Fixed entry/exit overhead added to every sleep, seconds.
        overhead_s: f64,
        /// Mean of the exponential lengthening tail, seconds.
        jitter_mean_s: f64,
    },
}

impl SleepModel {
    /// Timer granularity: actual sleeps are a multiple of this.
    pub fn granularity_s(self) -> f64 {
        match self {
            SleepModel::LinuxUsleep => 1e-6,
            SleepModel::MacosUsleep => 1e-6,
            SleepModel::WindowsSleep => 1e-3,
            SleepModel::Custom { granularity_s, .. } => granularity_s,
        }
    }

    /// Fixed call overhead (syscall entry/exit, timer programming).
    pub fn overhead_s(self) -> f64 {
        match self {
            SleepModel::LinuxUsleep => 3e-6,
            SleepModel::MacosUsleep => 5e-6,
            SleepModel::WindowsSleep => 20e-6,
            SleepModel::Custom { overhead_s, .. } => overhead_s,
        }
    }

    /// Mean of the exponential lengthening applied on top of the
    /// quantised request.
    pub fn jitter_mean_s(self) -> f64 {
        match self {
            SleepModel::LinuxUsleep => 4e-6,
            SleepModel::MacosUsleep => 7e-6,
            SleepModel::WindowsSleep => 150e-6,
            SleepModel::Custom { jitter_mean_s, .. } => jitter_mean_s,
        }
    }

    /// The smallest request the OS can honour usefully; the paper
    /// found ~10 µs to be the floor below which `usleep` idle periods
    /// become "highly variable" (§IV-A).
    pub fn practical_floor_s(self) -> f64 {
        match self {
            SleepModel::LinuxUsleep | SleepModel::MacosUsleep => 10e-6,
            SleepModel::WindowsSleep => 1e-3,
            SleepModel::Custom { granularity_s, .. } => granularity_s,
        }
    }

    /// Draws the *actual* duration of a sleep requested for
    /// `requested_s` seconds.
    ///
    /// The result is always ≥ the quantised request (sleeps are never
    /// shortened), is lengthened by call overhead plus an exponential
    /// tail, and becomes proportionally more variable below the
    /// practical floor.
    ///
    /// # Panics
    ///
    /// Panics if `requested_s` is negative.
    pub fn actual_sleep<R: Rng + ?Sized>(self, requested_s: f64, rng: &mut R) -> f64 {
        assert!(requested_s >= 0.0, "cannot request a negative sleep");
        let g = self.granularity_s();
        let quantised = (requested_s / g).ceil() * g;
        let mut jitter_mean = self.jitter_mean_s();
        // Below the practical floor the relative variability blows up:
        // scale the jitter tail by how far below the floor we are. The
        // multiplier is capped — even `usleep(1)` returns within tens
        // of microseconds, it is just wildly imprecise relative to the
        // request.
        let floor = self.practical_floor_s();
        if requested_s > 0.0 && requested_s < floor {
            jitter_mean *= (1.0 + 3.0 * (floor / requested_s - 1.0)).min(20.0);
        }
        let tail = exponential(jitter_mean, rng);
        quantised + self.overhead_s() + tail
    }
}

/// Draws from an exponential distribution with the given mean (zero
/// mean ⇒ always zero).
pub fn exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    fn sample_sleeps(model: SleepModel, req: f64, n: usize) -> Vec<f64> {
        let mut r = rng();
        (0..n).map(|_| model.actual_sleep(req, &mut r)).collect()
    }

    #[test]
    fn sleeps_are_never_shortened() {
        for model in [SleepModel::LinuxUsleep, SleepModel::MacosUsleep, SleepModel::WindowsSleep] {
            for &req in &[0.0, 1e-6, 100e-6, 1e-3, 0.5] {
                for &actual in &sample_sleeps(model, req, 200) {
                    assert!(actual >= req, "{model:?} shortened {req} to {actual}");
                }
            }
        }
    }

    #[test]
    fn linux_hits_requested_duration_closely() {
        let samples = sample_sleeps(SleepModel::LinuxUsleep, 100e-6, 2000);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // 100 µs request: mean actual ≈ 100 + 3 + 4 µs.
        assert!((mean - 107e-6).abs() < 3e-6, "mean {mean}");
    }

    #[test]
    fn windows_quantises_to_milliseconds() {
        let samples = sample_sleeps(SleepModel::WindowsSleep, 100e-6, 500);
        // Requested 100 µs, but granularity forces ≥ 1 ms.
        for &s in &samples {
            assert!(s >= 1e-3, "windows slept only {s}");
        }
    }

    #[test]
    fn windows_granularity_dominates_unix() {
        let win = sample_sleeps(SleepModel::WindowsSleep, 100e-6, 500);
        let lin = sample_sleeps(SleepModel::LinuxUsleep, 100e-6, 500);
        let wmean = win.iter().sum::<f64>() / win.len() as f64;
        let lmean = lin.iter().sum::<f64>() / lin.len() as f64;
        assert!(wmean > 8.0 * lmean, "windows {wmean} vs linux {lmean}");
    }

    #[test]
    fn sub_floor_requests_are_highly_variable() {
        let fine = sample_sleeps(SleepModel::LinuxUsleep, 50e-6, 2000);
        let coarse = sample_sleeps(SleepModel::LinuxUsleep, 2e-6, 2000);
        let cv = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64;
            var.sqrt() / m
        };
        assert!(
            cv(&coarse) > 2.0 * cv(&fine),
            "cv below floor {} vs above {}",
            cv(&coarse),
            cv(&fine)
        );
    }

    #[test]
    fn jitter_is_positively_skewed() {
        let samples = sample_sleeps(SleepModel::LinuxUsleep, 100e-6, 5000);
        let m = samples.iter().sum::<f64>() / samples.len() as f64;
        let med = {
            let mut s = samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(m > med, "mean {m} should exceed median {med} (right skew)");
    }

    #[test]
    fn exponential_mean_is_accurate() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(5.0, &mut r)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
        assert_eq!(exponential(0.0, &mut r), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sample_sleeps(SleepModel::MacosUsleep, 100e-6, 50);
        let b = sample_sleeps(SleepModel::MacosUsleep, 100e-6, 50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "negative sleep")]
    fn negative_request_panics() {
        SleepModel::LinuxUsleep.actual_sleep(-1.0, &mut rng());
    }
}
