//! Power-state governors: who decides which P-/C-state to use, when.
//!
//! Up to Haswell/Broadwell the OS writes the desired P-state into a
//! model-specific register; from Skylake on, *Speed Shift* (HWP) lets
//! the hardware pick P-states autonomously and much faster (§II).
//! C-states are chosen by an OS idle governor (Linux's "menu"
//! governor) from the predicted idle interval. Both can be disabled in
//! BIOS — the countermeasure experiment of §III.

use crate::power::{CState, PState, PowerStateTable};

/// Who controls P-state selection, and how quickly it reacts.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PStateMode {
    /// Hardware-controlled P-states (Intel Speed Shift / HWP,
    /// Skylake+): sub-millisecond ramp to full speed.
    SpeedShift {
        /// Time from waking to reaching P0, seconds.
        ramp_s: f64,
    },
    /// OS-driven DVFS (pre-Skylake): reacts at the governor's sampling
    /// period, so short bursts may run entirely at a low P-state.
    OsDriven {
        /// Governor sampling/ramp period, seconds.
        ramp_s: f64,
    },
    /// Pinned to one P-state (e.g. via `cpufrequtils`, §II).
    Fixed(u8),
}

impl PStateMode {
    /// Default Speed-Shift behaviour (post-Skylake parts).
    pub fn speed_shift() -> Self {
        PStateMode::SpeedShift { ramp_s: 0.3e-3 }
    }

    /// Default OS-driven behaviour (pre-Skylake parts).
    pub fn os_driven() -> Self {
        PStateMode::OsDriven { ramp_s: 4e-3 }
    }

    /// Busy time needed to ramp from the deepest P-state to P0.
    pub fn ramp_s(self) -> f64 {
        match self {
            PStateMode::SpeedShift { ramp_s } | PStateMode::OsDriven { ramp_s } => ramp_s,
            PStateMode::Fixed(_) => 0.0,
        }
    }

    /// Idle time over which the governor's utilisation estimate —
    /// and with it the selected P-state — decays back to the deepest
    /// state. Periodic duty-cycle workloads (like the covert
    /// transmitter alternating ~100 µs busy/idle) therefore *hold*
    /// a high P-state across their short sleeps, which is what real
    /// HWP/ondemand governors do.
    pub fn decay_s(self) -> f64 {
        match self {
            PStateMode::SpeedShift { .. } => 5e-3,
            // ondemand-style governors keep their utilisation estimate
            // across many sampling periods, so the estimate decays far
            // more slowly than HWP reacts.
            PStateMode::OsDriven { .. } => 100e-3,
            PStateMode::Fixed(_) => f64::INFINITY,
        }
    }
}

/// DVFS (P-state) policy, including the BIOS enable switch.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DvfsPolicy {
    /// BIOS switch: `false` forces nominal voltage/frequency (P0)
    /// always, as in the §III experiment.
    pub enabled: bool,
    /// Selection mode when enabled.
    pub mode: PStateMode,
}

impl DvfsPolicy {
    /// Enabled, hardware-controlled policy.
    pub fn speed_shift() -> Self {
        DvfsPolicy { enabled: true, mode: PStateMode::speed_shift() }
    }

    /// Enabled, OS-controlled policy.
    pub fn os_driven() -> Self {
        DvfsPolicy { enabled: true, mode: PStateMode::os_driven() }
    }

    /// P-states disabled in BIOS: the core always runs at P0.
    pub fn disabled() -> Self {
        DvfsPolicy { enabled: false, mode: PStateMode::Fixed(0) }
    }

    /// Plans a *cold-start* work burst of `duration_s` seconds as a
    /// sequence of `(sub-duration, P-state)` phases: a ramp phase at
    /// the deepest P-state followed by the rest at P0 (or all-P0 /
    /// all-fixed when the mode dictates). The simulator uses the
    /// stateful [`GovernorState`] instead, which carries ramp progress
    /// across bursts; this method describes the first burst after a
    /// long idle.
    pub fn plan_burst(&self, duration_s: f64, table: &PowerStateTable) -> Vec<(f64, PState)> {
        if duration_s <= 0.0 {
            return Vec::new();
        }
        if !self.enabled {
            return vec![(duration_s, table.p0())];
        }
        match self.mode {
            PStateMode::Fixed(i) => {
                let p = table
                    .pstates
                    .get(i as usize)
                    .copied()
                    .unwrap_or_else(|| table.deepest_pstate());
                vec![(duration_s, p)]
            }
            PStateMode::SpeedShift { ramp_s } | PStateMode::OsDriven { ramp_s } => {
                let ramp = ramp_s.min(duration_s);
                let mut plan = vec![(ramp, table.deepest_pstate())];
                if duration_s > ramp {
                    plan.push((duration_s - ramp, table.p0()));
                }
                plan
            }
        }
    }
}

/// Running state of the DVFS governor: where in the ramp the core
/// currently sits. `level` = 0 means the deepest P-state, 1 means P0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorState {
    /// Current ramp level in `[0, 1]`.
    pub level: f64,
}

impl GovernorState {
    /// Cold state: deepest P-state.
    pub fn cold() -> Self {
        GovernorState { level: 0.0 }
    }

    /// Decays the level after `idle_s` seconds of idleness under the
    /// given policy.
    pub fn idle(&mut self, policy: &DvfsPolicy, idle_s: f64) {
        if !policy.enabled {
            self.level = 1.0;
            return;
        }
        let decay = policy.mode.decay_s();
        if decay.is_finite() && decay > 0.0 {
            self.level = (self.level - idle_s / decay).max(0.0);
        }
    }

    /// Plans a busy burst of `duration_s` seconds starting at the
    /// current level, advancing the level, and returning
    /// `(sub-duration, P-state)` phases. At most two phases: the
    /// remaining ramp (at the P-state of the ramp midpoint) and the
    /// rest at P0.
    pub fn busy(
        &mut self,
        policy: &DvfsPolicy,
        table: &PowerStateTable,
        duration_s: f64,
    ) -> Vec<(f64, PState)> {
        if duration_s <= 0.0 {
            return Vec::new();
        }
        if !policy.enabled {
            self.level = 1.0;
            return vec![(duration_s, table.p0())];
        }
        if let PStateMode::Fixed(i) = policy.mode {
            let p =
                table.pstates.get(i as usize).copied().unwrap_or_else(|| table.deepest_pstate());
            return vec![(duration_s, p)];
        }
        let ramp = policy.mode.ramp_s();
        let remaining_ramp_s = (1.0 - self.level) * ramp;
        if duration_s >= remaining_ramp_s {
            let mut plan = Vec::with_capacity(2);
            if remaining_ramp_s > 0.0 {
                let mid = (self.level + 1.0) / 2.0;
                plan.push((remaining_ramp_s, pstate_for_level(table, mid)));
            }
            plan.push((duration_s - remaining_ramp_s, table.p0()));
            self.level = 1.0;
            plan
        } else {
            let end = self.level + duration_s / ramp;
            let mid = (self.level + end) / 2.0;
            self.level = end;
            vec![(duration_s, pstate_for_level(table, mid))]
        }
    }
}

/// The P-state corresponding to a ramp level (0 = deepest, 1 = P0).
fn pstate_for_level(table: &PowerStateTable, level: f64) -> PState {
    let n = table.pstates.len();
    let idx = ((1.0 - level.clamp(0.0, 1.0)) * (n - 1) as f64).round() as usize;
    table.pstates[idx.min(n - 1)]
}

/// C-state (idle) policy, including the BIOS enable switch and a
/// depth cap.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CStatePolicy {
    /// BIOS switch: `false` means idling spins in C0 (the OS "idle"
    /// process of §III footnote 2).
    pub enabled: bool,
    /// Deepest C-state index the OS may request.
    pub max_index: u8,
}

impl CStatePolicy {
    /// All C-states available (the common default).
    pub fn all() -> Self {
        CStatePolicy { enabled: true, max_index: u8::MAX }
    }

    /// C-states disabled in BIOS.
    pub fn disabled() -> Self {
        CStatePolicy { enabled: false, max_index: 0 }
    }

    /// Menu-governor selection: the deepest permitted state whose
    /// target residency fits the expected idle interval and whose exit
    /// latency is small relative to it. Returns `None` when C-states
    /// are disabled (caller spins instead).
    pub fn select(&self, table: &PowerStateTable, expected_idle_s: f64) -> Option<CState> {
        if !self.enabled {
            return None;
        }
        let mut chosen = table.cstates[0];
        for &c in &table.cstates {
            let fits_residency = c.target_residency_s <= expected_idle_s;
            let fits_latency = 2.0 * c.exit_latency_s <= expected_idle_s;
            if c.index <= self.max_index && fits_residency && fits_latency {
                chosen = c;
            }
        }
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PowerStateTable {
        PowerStateTable::intel_mobile()
    }

    #[test]
    fn disabled_dvfs_runs_everything_at_p0() {
        let plan = DvfsPolicy::disabled().plan_burst(10e-3, &table());
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].1.index, 0);
        assert_eq!(plan[0].0, 10e-3);
    }

    #[test]
    fn speed_shift_ramps_then_runs_at_p0() {
        let plan = DvfsPolicy::speed_shift().plan_burst(10e-3, &table());
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].1.index, table().deepest_pstate().index);
        assert!((plan[0].0 - 0.3e-3).abs() < 1e-12);
        assert_eq!(plan[1].1.index, 0);
        assert!((plan[0].0 + plan[1].0 - 10e-3).abs() < 1e-12);
    }

    #[test]
    fn short_bursts_never_reach_p0_under_os_dvfs() {
        let plan = DvfsPolicy::os_driven().plan_burst(1e-3, &table());
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].1.index, table().deepest_pstate().index);
    }

    #[test]
    fn speed_shift_reacts_faster_than_os_driven() {
        let d = 2e-3;
        let ss = DvfsPolicy::speed_shift().plan_burst(d, &table());
        let os = DvfsPolicy::os_driven().plan_burst(d, &table());
        let p0_time = |plan: &[(f64, PState)]| {
            plan.iter().filter(|(_, p)| p.index == 0).map(|(t, _)| *t).sum::<f64>()
        };
        assert!(p0_time(&ss) > p0_time(&os));
    }

    #[test]
    fn fixed_mode_pins_the_pstate() {
        let policy = DvfsPolicy { enabled: true, mode: PStateMode::Fixed(3) };
        let plan = policy.plan_burst(5e-3, &table());
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].1.index, 3);
    }

    #[test]
    fn empty_plan_for_zero_duration() {
        assert!(DvfsPolicy::speed_shift().plan_burst(0.0, &table()).is_empty());
    }

    #[test]
    fn governor_state_holds_pstate_across_short_idles() {
        let policy = DvfsPolicy::speed_shift();
        let t = table();
        let mut g = GovernorState::cold();
        // Warm up: a long burst reaches P0.
        g.busy(&policy, &t, 2e-3);
        assert!((g.level - 1.0).abs() < 1e-12);
        // 100 µs of idle barely dents the level...
        g.idle(&policy, 100e-6);
        assert!(g.level > 0.95, "level {}", g.level);
        // ...so the next short burst runs at P0 throughout.
        let plan = g.busy(&policy, &t, 100e-6);
        assert_eq!(plan.last().unwrap().1.index, 0);
        // A long idle decays back to cold.
        g.idle(&policy, 1.0);
        assert_eq!(g.level, 0.0);
    }

    #[test]
    fn governor_state_ramps_cumulatively() {
        let policy = DvfsPolicy::speed_shift();
        let t = table();
        let mut g = GovernorState::cold();
        // Two 100 µs bursts with negligible idle between them make
        // more ramp progress than one.
        let p1 = g.busy(&policy, &t, 100e-6);
        g.idle(&policy, 10e-6);
        let p2 = g.busy(&policy, &t, 100e-6);
        let i1 = p1.last().unwrap().1.index;
        let i2 = p2.last().unwrap().1.index;
        assert!(i2 < i1, "second burst should be faster: {i1} then {i2}");
    }

    #[test]
    fn menu_governor_deepens_with_idle_time() {
        let p = CStatePolicy::all();
        let t = table();
        let c_short = p.select(&t, 5e-6).unwrap();
        let c_mid = p.select(&t, 150e-6).unwrap();
        let c_long = p.select(&t, 5e-3).unwrap();
        assert!(c_short.index < c_mid.index);
        assert!(c_mid.index < c_long.index);
        assert_eq!(c_long.index, 7);
    }

    #[test]
    fn latency_constraint_prevents_deep_states_for_short_idles() {
        let p = CStatePolicy::all();
        let t = table();
        // 300 µs fits C6 residency (300 µs) but 2·85 µs latency also fits;
        // 170 µs fits C3 residency but not C6 latency comfortably.
        let c = p.select(&t, 170e-6).unwrap();
        assert_eq!(c.index, 3);
    }

    #[test]
    fn max_index_caps_depth() {
        let p = CStatePolicy { enabled: true, max_index: 2 };
        let c = p.select(&table(), 1.0).unwrap();
        assert_eq!(c.index, 2);
    }

    #[test]
    fn disabled_cstates_select_none() {
        assert_eq!(CStatePolicy::disabled().select(&table(), 1.0), None);
    }
}
