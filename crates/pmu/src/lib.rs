//! Discrete-event CPU power-management simulator.
//!
//! This crate is the bottom substrate for reproducing the HPCA 2020
//! paper *"A New Side-Channel Vulnerability on Modern Computers by
//! Exploiting Electromagnetic Emanations from the Power Management
//! Unit"*. The paper's channel is driven entirely by the time series
//! of processor power-state residency: when the core executes it draws
//! amperes from its voltage regulator; when it parks in a deep C-state
//! it draws almost nothing. Everything the attacker ever sees is a
//! consequence of that trace, so this crate simulates it faithfully:
//!
//! - [`power`]: P-state / C-state tables and the current-draw model,
//! - [`governor`]: DVFS policies (Speed Shift vs. OS-driven) and the
//!   menu-style C-state governor, including the BIOS disable switches
//!   exercised by the paper's §III experiment,
//! - [`timer`]: OS sleep models (`usleep` vs. Windows `Sleep`) with
//!   the granularity and positive-skew jitter that bound the covert
//!   channel's bit rate,
//! - [`workload`]: the Fig. 1 / Fig. 3 style micro-benchmark programs,
//! - [`noise`]: interrupt / housekeeping / background-load processes,
//! - [`sim`]: the [`sim::Machine`] engine tying it together,
//! - [`trace`]: the [`trace::PowerTrace`] output format,
//! - [`energy`]: RAPL-style energy accounting over traces,
//! - [`multicore`]: several cores sharing one voltage rail.
//!
//! # Examples
//!
//! ```
//! use emsc_pmu::sim::Machine;
//! use emsc_pmu::workload::Program;
//!
//! let machine = Machine::intel_laptop();
//! // Alternate 500 µs of work with 500 µs of sleep, 50 times.
//! let program = Program::alternating(500e-6, 500e-6, 50, machine.nominal_ips());
//! let trace = machine.run(&program, 42);
//! assert!(trace.duration_s() > 45e-3);
//! // Work draws far more current than idle: the side channel's root cause.
//! assert!(trace.mean_current_a() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod energy;
pub mod governor;
pub mod multicore;
pub mod noise;
pub mod power;
pub mod sim;
pub mod timer;
pub mod trace;
pub mod workload;

pub use sim::{ExternalEvent, Machine, MachineBuilder};
pub use trace::{ActivityKind, PowerTrace, Segment};
