//! Multi-core composition: several cores sharing one voltage rail.
//!
//! The paper's laptops are multi-core parts with a single core-rail
//! VRM: the regulator sees the *sum* of all cores' currents, and the
//! rail voltage follows the most demanding core (shared voltage
//! plane). This matters for the §IV-C2 stress experiment — a
//! background hog runs on *another* core, concurrently with the
//! transmitter, not time-sliced into its sleep slots.

use crate::sim::Machine;
use crate::trace::{ActivityKind, PowerTrace};
use crate::workload::Program;

/// A package of identical cores on one shared rail.
#[derive(Debug, Clone)]
pub struct MultiCoreMachine {
    /// Per-core behaviour (power tables, governors, timers, noise).
    pub core: Machine,
    /// Number of cores.
    pub cores: usize,
}

impl MultiCoreMachine {
    /// Creates a package of `cores` identical cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(core: Machine, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        MultiCoreMachine { core, cores }
    }

    /// Runs one program per core (missing entries idle) and returns
    /// the combined rail trace. Each core gets an independent noise
    /// stream derived from `seed`.
    pub fn run(&self, programs: &[Program], seed: u64) -> PowerTrace {
        assert!(
            programs.len() <= self.cores,
            "more programs than cores ({} > {})",
            programs.len(),
            self.cores
        );
        let mut traces: Vec<PowerTrace> = programs
            .iter()
            .enumerate()
            .map(|(c, p)| self.core.run(p, seed ^ ((c as u64 + 1) << 40)))
            .collect();
        let horizon = traces.iter().map(PowerTrace::duration_s).fold(0.0, f64::max);
        // Idle cores park in the deepest C-state for the whole run.
        let deep = self.core.table.cstates.last().copied();
        for _ in programs.len()..self.cores {
            let mut t = PowerTrace::new();
            if let Some(c) = deep {
                t.push(
                    horizon,
                    c.index,
                    0,
                    self.core.table.idle_current_a(c),
                    self.core.table.retention_voltage_v,
                    ActivityKind::Idle,
                );
            }
            traces.push(t);
        }
        combine_traces(&traces, deep.map(|c| self.core.table.idle_current_a(c)).unwrap_or(0.0))
    }
}

/// Sums per-core traces into one rail trace: current adds, voltage is
/// the maximum requested (shared plane), C-state is the shallowest,
/// and the activity label prefers `Work` over overhead over idle.
/// Cores whose trace ends early contribute `tail_current_a` after
/// their end (parked).
pub fn combine_traces(traces: &[PowerTrace], tail_current_a: f64) -> PowerTrace {
    let mut boundaries: Vec<f64> = Vec::new();
    for t in traces {
        for s in t.segments() {
            boundaries.push(s.start_s);
            boundaries.push(s.end_s());
        }
    }
    boundaries.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    boundaries.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut out = PowerTrace::new();
    for w in boundaries.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi - lo <= 0.0 {
            continue;
        }
        let mid = (lo + hi) / 2.0;
        let mut current = 0.0;
        let mut voltage: f64 = 0.0;
        let mut cstate = u8::MAX;
        let mut pstate = 0u8;
        let mut kind = ActivityKind::Idle;
        for t in traces {
            match t.segment_at(mid) {
                Some(s) => {
                    current += s.current_a;
                    if s.voltage_v > voltage {
                        voltage = s.voltage_v;
                        pstate = s.pstate;
                    }
                    cstate = cstate.min(s.cstate);
                    kind = prefer(kind, s.kind);
                }
                None => current += tail_current_a,
            }
        }
        out.push(
            hi - lo,
            if cstate == u8::MAX { 0 } else { cstate },
            pstate,
            current,
            voltage.max(1e-3),
            kind,
        );
    }
    out
}

/// Label priority when cores disagree: the program under test wins,
/// then overhead activity, then idle.
fn prefer(a: ActivityKind, b: ActivityKind) -> ActivityKind {
    use ActivityKind::*;
    let rank = |k: ActivityKind| match k {
        Work => 4,
        Background => 3,
        Interrupt => 2,
        Wake => 1,
        Idle => 0,
    };
    if rank(b) > rank(a) {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseConfig;
    use crate::sim::MachineBuilder;

    fn quiet_core() -> Machine {
        MachineBuilder::new().noise(NoiseConfig::silent()).build()
    }

    #[test]
    fn currents_add_across_cores() {
        let core = quiet_core();
        let pkg = MultiCoreMachine::new(core.clone(), 2);
        let mut busy = Program::new();
        busy.busy_for(2e-3, core.steady_state_ips());
        // Both cores run the same busy program: rail current roughly
        // doubles a single-core run's mean.
        let single = core.run(&busy, 3);
        let dual = pkg.run(&[busy.clone(), busy.clone()], 3);
        let ratio = dual.mean_current_a() / single.mean_current_a();
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn idle_cores_contribute_only_parked_current() {
        let core = quiet_core();
        let pkg = MultiCoreMachine::new(core.clone(), 4);
        let mut busy = Program::new();
        busy.busy_for(2e-3, core.steady_state_ips());
        let one_of_four = pkg.run(&[busy.clone()], 3);
        let single = core.run(&busy, 3);
        // 3 parked cores at 0.04 A each.
        let delta = one_of_four.mean_current_a() - single.mean_current_a();
        assert!((delta - 3.0 * 0.04).abs() < 0.02, "delta {delta}");
    }

    #[test]
    fn rail_voltage_follows_the_most_demanding_core() {
        let core = quiet_core();
        let pkg = MultiCoreMachine::new(core.clone(), 2);
        let mut busy = Program::new();
        busy.busy_for(5e-3, core.steady_state_ips());
        let mut sleepy = Program::new();
        sleepy.sleep(5e-3);
        let trace = pkg.run(&[busy, sleepy], 3);
        // While one core is at P0, the rail voltage must be P0's.
        let p0_v = core.table.p0().voltage_v;
        let at_work = trace.segment_at(2e-3).expect("mid-trace segment");
        assert!((at_work.voltage_v - p0_v).abs() < 0.2, "rail {}", at_work.voltage_v);
    }

    #[test]
    fn combined_trace_is_contiguous() {
        let core = quiet_core();
        let pkg = MultiCoreMachine::new(core.clone(), 3);
        let a = Program::alternating(300e-6, 300e-6, 10, core.steady_state_ips());
        let mut b = Program::new();
        b.sleep(2e-3);
        b.busy_for(1e-3, core.steady_state_ips());
        let trace = pkg.run(&[a, b], 5);
        let mut t = 0.0;
        for s in trace.segments() {
            assert!((s.start_s - t).abs() < 1e-9);
            assert!(s.duration_s > 0.0);
            t = s.end_s();
        }
    }

    #[test]
    fn work_label_survives_concurrent_background() {
        let core = quiet_core();
        let pkg = MultiCoreMachine::new(core.clone(), 2);
        let mut work = Program::new();
        work.busy_for(1e-3, core.steady_state_ips());
        let mut hog = Program::new();
        hog.busy_for(1e-3, core.steady_state_ips());
        let trace = pkg.run(&[work, hog], 7);
        // Both run Work programs; combined label is Work throughout the overlap.
        assert!(trace
            .segments()
            .iter()
            .any(|s| s.kind == ActivityKind::Work && s.current_a > 10.0));
    }

    #[test]
    #[should_panic(expected = "more programs")]
    fn too_many_programs_panics() {
        let pkg = MultiCoreMachine::new(quiet_core(), 1);
        pkg.run(&[Program::new(), Program::new()], 0);
    }
}
