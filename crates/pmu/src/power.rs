//! Processor performance states (P-states) and idle states (C-states).
//!
//! Modern Intel-style processors expose Demand Based Switching with a
//! set of *P-states* (voltage/frequency operating points used while
//! executing) and *C-states* (increasingly deep idle modes). The
//! side-channel exists because transitions between these states change
//! the load presented to the voltage regulator (§II of the paper).

/// One performance state: a voltage/frequency operating point.
///
/// `P0` is the highest-performance state; higher indices are slower
/// and lower-voltage (matching Intel numbering).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PState {
    /// Index in the platform's P-state table (0 = fastest).
    pub index: u8,
    /// Core clock frequency in hertz.
    pub frequency_hz: f64,
    /// Core supply voltage in volts (the VID the CPU requests).
    pub voltage_v: f64,
}

impl PState {
    /// Creates a P-state.
    ///
    /// # Panics
    ///
    /// Panics if frequency or voltage is not positive.
    pub fn new(index: u8, frequency_hz: f64, voltage_v: f64) -> Self {
        assert!(frequency_hz > 0.0, "frequency must be positive");
        assert!(voltage_v > 0.0, "voltage must be positive");
        PState { index, frequency_hz, voltage_v }
    }
}

/// How much of the core a C-state gates (§II: "C1 through C3 only
/// apply clock-gating, C4 through C6 reduce the voltage, and new
/// Enhanced C-states can do both").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GatingClass {
    /// C0: executing instructions, nothing gated.
    None,
    /// Clock gating only (shallow states).
    Clock,
    /// Voltage reduction (deep states).
    Voltage,
    /// Combined clock and voltage gating (enhanced states).
    Enhanced,
}

/// One idle state.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CState {
    /// Index: 0 = C0 (active), larger = deeper idle.
    pub index: u8,
    /// What this state gates.
    pub gating: GatingClass,
    /// Time to wake back to C0, seconds.
    pub exit_latency_s: f64,
    /// Minimum profitable residency, seconds: the menu governor only
    /// selects this state when it predicts at least this much idleness.
    pub target_residency_s: f64,
    /// Core current draw while resident, amperes (the quantity the
    /// VRM — and therefore the attacker — observes).
    pub current_a: f64,
}

impl CState {
    /// Creates a C-state.
    ///
    /// # Panics
    ///
    /// Panics if any latency/current is negative.
    pub fn new(
        index: u8,
        gating: GatingClass,
        exit_latency_s: f64,
        target_residency_s: f64,
        current_a: f64,
    ) -> Self {
        assert!(exit_latency_s >= 0.0 && target_residency_s >= 0.0 && current_a >= 0.0);
        CState { index, gating, exit_latency_s, target_residency_s, current_a }
    }
}

/// The platform's full power-state tables plus the active-execution
/// current model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerStateTable {
    /// P-states, ordered P0 first.
    pub pstates: Vec<PState>,
    /// C-states, ordered C0 (active) first, deepening.
    pub cstates: Vec<CState>,
    /// Static leakage current at C0, amperes.
    pub leakage_a: f64,
    /// Rail voltage retained in voltage-gated C-states, volts.
    pub retention_voltage_v: f64,
    /// Dynamic current per (GHz · volt²) of switching activity; the
    /// classic `I ∝ C·V·f` CMOS model folded into one coefficient.
    pub dynamic_a_per_ghz_v2: f64,
}

impl PowerStateTable {
    /// A representative Intel mobile-class table (Haswell-era values;
    /// individual laptops in `emsc-core` tweak these).
    pub fn intel_mobile() -> Self {
        PowerStateTable {
            pstates: vec![
                PState::new(0, 3.0e9, 1.10),
                PState::new(1, 2.6e9, 1.02),
                PState::new(2, 2.2e9, 0.96),
                PState::new(3, 1.8e9, 0.90),
                PState::new(4, 1.4e9, 0.84),
                PState::new(5, 1.0e9, 0.78),
                PState::new(6, 0.8e9, 0.72),
            ],
            cstates: vec![
                CState::new(0, GatingClass::None, 0.0, 0.0, 0.0), // current comes from active model
                CState::new(1, GatingClass::Clock, 1e-6, 2e-6, 0.9),
                CState::new(2, GatingClass::Clock, 10e-6, 20e-6, 0.55),
                CState::new(3, GatingClass::Clock, 33e-6, 100e-6, 0.35),
                CState::new(6, GatingClass::Voltage, 85e-6, 300e-6, 0.10),
                CState::new(7, GatingClass::Enhanced, 120e-6, 1e-3, 0.04),
            ],
            leakage_a: 0.5,
            retention_voltage_v: 0.40,
            dynamic_a_per_ghz_v2: 2.2,
        }
    }

    /// The fastest P-state (P0).
    ///
    /// # Panics
    ///
    /// Panics if the table has no P-states.
    pub fn p0(&self) -> PState {
        self.pstates[0]
    }

    /// The slowest (deepest) P-state.
    ///
    /// # Panics
    ///
    /// Panics if the table has no P-states.
    pub fn deepest_pstate(&self) -> PState {
        *self.pstates.last().expect("P-state table must not be empty")
    }

    /// Current drawn while actively executing (C0) in P-state `p`:
    /// leakage plus the `C·V²·f`-style dynamic term.
    pub fn active_current_a(&self, p: PState) -> f64 {
        self.leakage_a
            + self.dynamic_a_per_ghz_v2 * (p.frequency_hz / 1e9) * p.voltage_v * p.voltage_v
    }

    /// Current drawn while resident in C-state `c` (for `C0` use
    /// [`PowerStateTable::active_current_a`]).
    pub fn idle_current_a(&self, c: CState) -> f64 {
        if c.index == 0 {
            self.active_current_a(self.p0())
        } else {
            c.current_a
        }
    }

    /// The core rail voltage while resident in C-state `c` with
    /// P-state `p` selected: voltage-gated states drop to the
    /// retention voltage, everything else holds the P-state's VID.
    pub fn rail_voltage_v(&self, c: CState, p: PState) -> f64 {
        match c.gating {
            GatingClass::Voltage | GatingClass::Enhanced => self.retention_voltage_v,
            GatingClass::None | GatingClass::Clock => p.voltage_v,
        }
    }

    /// The deepest C-state whose target residency fits within the
    /// `predicted_idle_s` window — the menu-governor selection rule.
    /// Returns C0 when even C1 doesn't fit.
    pub fn deepest_cstate_for(&self, predicted_idle_s: f64) -> CState {
        let mut chosen = self.cstates[0];
        for &c in &self.cstates {
            if c.target_residency_s <= predicted_idle_s {
                chosen = c;
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_table_is_ordered() {
        let t = PowerStateTable::intel_mobile();
        for w in t.pstates.windows(2) {
            assert!(w[0].frequency_hz > w[1].frequency_hz, "P-states must slow down");
            assert!(w[0].voltage_v > w[1].voltage_v, "P-state voltage must drop");
        }
        for w in t.cstates.windows(2) {
            assert!(w[0].exit_latency_s <= w[1].exit_latency_s);
            assert!(w[0].target_residency_s <= w[1].target_residency_s);
        }
    }

    #[test]
    fn deeper_cstates_draw_less_current() {
        let t = PowerStateTable::intel_mobile();
        let mut last = f64::INFINITY;
        for &c in t.cstates.iter().skip(1) {
            let i = t.idle_current_a(c);
            assert!(i < last, "C{} current {} should drop", c.index, i);
            last = i;
        }
    }

    #[test]
    fn active_current_scales_with_frequency_and_voltage() {
        let t = PowerStateTable::intel_mobile();
        let fast = t.active_current_a(t.p0());
        let slow = t.active_current_a(t.deepest_pstate());
        assert!(fast > 2.0 * slow, "fast {fast} vs slow {slow}");
        // The active/idle contrast that creates the side channel:
        let deep_idle = t.idle_current_a(*t.cstates.last().unwrap());
        assert!(fast / deep_idle > 50.0, "contrast {}", fast / deep_idle);
    }

    #[test]
    fn menu_rule_picks_deepest_fitting_state() {
        let t = PowerStateTable::intel_mobile();
        assert_eq!(t.deepest_cstate_for(0.0).index, 0);
        assert_eq!(t.deepest_cstate_for(5e-6).index, 1);
        assert_eq!(t.deepest_cstate_for(120e-6).index, 3);
        assert_eq!(t.deepest_cstate_for(400e-6).index, 6);
        assert_eq!(t.deepest_cstate_for(10e-3).index, 7);
    }

    #[test]
    fn c0_idle_current_is_active_current() {
        let t = PowerStateTable::intel_mobile();
        let c0 = t.cstates[0];
        assert_eq!(t.idle_current_a(c0), t.active_current_a(t.p0()));
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_pstate_panics() {
        PState::new(0, 0.0, 1.0);
    }
}
