//! Power traces: the time series of power-state residency and load
//! current that the simulator produces and the VRM consumes.

/// Why the processor was in the state a segment describes. Useful for
/// ground truth when evaluating detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityKind {
    /// Executing the program under test (the covert transmitter, a
    /// keystroke handler, …).
    Work,
    /// Resident in an idle C-state.
    Idle,
    /// Waking up from an idle state (exit latency).
    Wake,
    /// Servicing an interrupt or other OS housekeeping.
    Interrupt,
    /// A background process unrelated to the program under test.
    Background,
}

/// A maximal interval of constant power state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start time, seconds from trace origin.
    pub start_s: f64,
    /// Length, seconds.
    pub duration_s: f64,
    /// C-state index resident during the segment (0 = executing).
    pub cstate: u8,
    /// P-state index if executing.
    pub pstate: u8,
    /// Core current drawn from the VRM, amperes.
    pub current_a: f64,
    /// Rail voltage the VRM is asked to supply (VID), volts.
    pub voltage_v: f64,
    /// Ground-truth label.
    pub kind: ActivityKind,
}

impl Segment {
    /// End time of the segment, seconds.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }
}

/// A complete power trace: contiguous, non-overlapping [`Segment`]s
/// ordered by start time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerTrace {
    segments: Vec<Segment>,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PowerTrace::default()
    }

    /// Appends a segment of `duration_s` seconds at the end of the
    /// trace. Zero- or negative-length segments are ignored. Adjacent
    /// segments with identical state are merged.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        duration_s: f64,
        cstate: u8,
        pstate: u8,
        current_a: f64,
        voltage_v: f64,
        kind: ActivityKind,
    ) {
        if duration_s <= 0.0 {
            return;
        }
        let start_s = self.duration_s();
        if let Some(last) = self.segments.last_mut() {
            if last.cstate == cstate
                && last.pstate == pstate
                && last.kind == kind
                && (last.current_a - current_a).abs() < 1e-12
                && (last.voltage_v - voltage_v).abs() < 1e-12
            {
                last.duration_s += duration_s;
                return;
            }
        }
        self.segments.push(Segment {
            start_s,
            duration_s,
            cstate,
            pstate,
            current_a,
            voltage_v,
            kind,
        });
    }

    /// All segments in time order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total trace duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.segments.last().map_or(0.0, Segment::end_s)
    }

    /// Load current at time `t_s` (0 outside the trace). `O(log n)`.
    pub fn current_at(&self, t_s: f64) -> f64 {
        self.segment_at(t_s).map_or(0.0, |s| s.current_a)
    }

    /// The segment covering time `t_s`, if any.
    pub fn segment_at(&self, t_s: f64) -> Option<&Segment> {
        if t_s < 0.0 {
            return None;
        }
        let idx = self.segments.partition_point(|s| s.end_s() <= t_s);
        self.segments.get(idx).filter(|s| s.start_s <= t_s)
    }

    /// Mean current over the whole trace, amperes.
    pub fn mean_current_a(&self) -> f64 {
        let total = self.duration_s();
        if total <= 0.0 {
            return 0.0;
        }
        self.segments.iter().map(|s| s.current_a * s.duration_s).sum::<f64>() / total
    }

    /// Fraction of time spent executing (C0).
    pub fn active_fraction(&self) -> f64 {
        let total = self.duration_s();
        if total <= 0.0 {
            return 0.0;
        }
        self.segments.iter().filter(|s| s.cstate == 0).map(|s| s.duration_s).sum::<f64>() / total
    }

    /// Samples the current waveform at `sample_rate` Hz (`O(n + m)`).
    pub fn resample(&self, sample_rate: f64) -> Vec<f64> {
        let n = (self.duration_s() * sample_rate).floor() as usize;
        let mut out = Vec::with_capacity(n);
        let mut seg_idx = 0;
        for i in 0..n {
            let t = i as f64 / sample_rate;
            while seg_idx < self.segments.len() && self.segments[seg_idx].end_s() <= t {
                seg_idx += 1;
            }
            out.push(if seg_idx < self.segments.len() && self.segments[seg_idx].start_s <= t {
                self.segments[seg_idx].current_a
            } else {
                0.0
            });
        }
        out
    }

    /// Returns a copy of the trace with "blink" windows blanked to a
    /// constant current — the architecture-blinking countermeasure of
    /// §VI (Althoff et al., ISCA 2018): during a blink the core runs
    /// from locally stored charge, so the PMU (and its EM emission)
    /// sees a constant draw instead of the program's activity.
    ///
    /// Every `period_s`, the first `duty · period_s` seconds are
    /// blanked to `level_a` amperes at the trace's prevailing voltage.
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not positive or `duty` is outside
    /// `[0, 1]`.
    pub fn with_blinking(&self, period_s: f64, duty: f64, level_a: f64) -> PowerTrace {
        assert!(period_s > 0.0, "blink period must be positive");
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0, 1]");
        let mut out = PowerTrace::new();
        let total = self.duration_s();
        let mut t = 0.0;
        while t < total {
            let blink_end = (t + duty * period_s).min(total);
            if blink_end > t {
                let voltage = self.segment_at(t).map_or(1.0, |s| s.voltage_v);
                out.push(blink_end - t, 0, 0, level_a, voltage, ActivityKind::Background);
            }
            let window_end = (t + period_s).min(total);
            // Copy the untouched remainder of the window segment-by-segment.
            let mut cursor = blink_end;
            while cursor < window_end {
                let Some(seg) = self.segment_at(cursor) else { break };
                let upto = seg.end_s().min(window_end);
                out.push(
                    upto - cursor,
                    seg.cstate,
                    seg.pstate,
                    seg.current_a,
                    seg.voltage_v,
                    seg.kind,
                );
                cursor = upto;
            }
            t = window_end;
        }
        out
    }

    /// Start times of every maximal run of `Work` activity — the
    /// ground-truth "burst" times used to score keystroke detectors.
    pub fn work_burst_times(&self) -> Vec<f64> {
        let mut out = Vec::new();
        let mut in_burst = false;
        for s in &self.segments {
            let is_work = s.kind == ActivityKind::Work && s.cstate == 0;
            if is_work && !in_burst {
                out.push(s.start_s);
            }
            in_burst = is_work;
        }
        out
    }
}

impl FromIterator<Segment> for PowerTrace {
    fn from_iter<I: IntoIterator<Item = Segment>>(iter: I) -> Self {
        let mut trace = PowerTrace::new();
        for s in iter {
            trace.push(s.duration_s, s.cstate, s.pstate, s.current_a, s.voltage_v, s.kind);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> PowerTrace {
        let mut t = PowerTrace::new();
        t.push(1.0, 0, 0, 8.0, 1.0, ActivityKind::Work);
        t.push(2.0, 6, 0, 0.1, 1.0, ActivityKind::Idle);
        t.push(1.0, 0, 0, 8.0, 1.0, ActivityKind::Work);
        t
    }

    #[test]
    fn segments_are_contiguous() {
        let t = sample_trace();
        assert_eq!(t.segments().len(), 3);
        for w in t.segments().windows(2) {
            assert!((w[0].end_s() - w[1].start_s).abs() < 1e-12);
        }
        assert_eq!(t.duration_s(), 4.0);
    }

    #[test]
    fn adjacent_identical_segments_merge() {
        let mut t = PowerTrace::new();
        t.push(1.0, 0, 0, 8.0, 1.0, ActivityKind::Work);
        t.push(0.5, 0, 0, 8.0, 1.0, ActivityKind::Work);
        assert_eq!(t.segments().len(), 1);
        assert_eq!(t.duration_s(), 1.5);
    }

    #[test]
    fn zero_length_pushes_are_ignored() {
        let mut t = PowerTrace::new();
        t.push(0.0, 0, 0, 8.0, 1.0, ActivityKind::Work);
        t.push(-1.0, 0, 0, 8.0, 1.0, ActivityKind::Work);
        assert!(t.segments().is_empty());
    }

    #[test]
    fn current_lookup() {
        let t = sample_trace();
        assert_eq!(t.current_at(0.5), 8.0);
        assert_eq!(t.current_at(1.5), 0.1);
        assert_eq!(t.current_at(3.5), 8.0);
        assert_eq!(t.current_at(-0.1), 0.0);
        assert_eq!(t.current_at(99.0), 0.0);
        // boundary belongs to the later segment
        assert_eq!(t.current_at(1.0), 0.1);
    }

    #[test]
    fn mean_current_weighted_by_duration() {
        let t = sample_trace();
        let expect = (8.0 * 2.0 + 0.1 * 2.0) / 4.0;
        assert!((t.mean_current_a() - expect).abs() < 1e-12);
        assert!((t.active_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resample_reproduces_waveform() {
        let t = sample_trace();
        let x = t.resample(10.0);
        assert_eq!(x.len(), 40);
        assert_eq!(x[0], 8.0);
        assert_eq!(x[15], 0.1);
        assert_eq!(x[35], 8.0);
    }

    #[test]
    fn work_burst_times_finds_rising_edges() {
        let mut t = PowerTrace::new();
        t.push(0.1, 6, 0, 0.1, 1.0, ActivityKind::Idle);
        t.push(0.05, 0, 0, 8.0, 1.0, ActivityKind::Work);
        t.push(0.2, 6, 0, 0.1, 1.0, ActivityKind::Idle);
        t.push(0.01, 0, 0, 6.0, 1.0, ActivityKind::Interrupt);
        t.push(0.2, 6, 0, 0.1, 1.0, ActivityKind::Idle);
        t.push(0.05, 0, 0, 8.0, 1.0, ActivityKind::Work);
        let bursts = t.work_burst_times();
        assert_eq!(bursts.len(), 2);
        assert!((bursts[0] - 0.1).abs() < 1e-12);
        assert!((bursts[1] - 0.56).abs() < 1e-12);
    }

    #[test]
    fn blinking_blanks_the_requested_windows() {
        let t = sample_trace(); // 4 s total
        let blinked = t.with_blinking(1.0, 0.5, 2.0);
        assert!((blinked.duration_s() - 4.0).abs() < 1e-9);
        // First half of every second is the blink level…
        assert_eq!(blinked.current_at(0.25), 2.0);
        assert_eq!(blinked.current_at(1.25), 2.0);
        assert_eq!(blinked.current_at(3.25), 2.0);
        // …the rest passes through.
        assert_eq!(blinked.current_at(0.75), 8.0);
        assert_eq!(blinked.current_at(1.75), 0.1);
    }

    #[test]
    fn full_duty_blinking_flattens_everything() {
        let t = sample_trace();
        let blinked = t.with_blinking(0.5, 1.0, 3.0);
        for s in blinked.segments() {
            assert_eq!(s.current_a, 3.0);
        }
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn invalid_duty_panics() {
        sample_trace().with_blinking(1.0, 1.5, 1.0);
    }

    #[test]
    fn from_iterator_rebases_times() {
        let src = sample_trace();
        let t: PowerTrace = src.segments().iter().copied().collect();
        assert_eq!(t, src);
    }
}
