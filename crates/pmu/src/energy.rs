//! Energy accounting over power traces (RAPL-style).
//!
//! Intel's Running Average Power Limit exposes cumulative package
//! energy; this module computes the same quantities from a simulated
//! [`PowerTrace`]. Two uses here: sanity-checking the physics (the
//! covert channel costs real joules — the §VI countermeasure
//! discussion notes the "significant" energy overheads of disabling
//! power states), and reporting energy-per-bit figures for the
//! transmitter.

use crate::trace::{ActivityKind, PowerTrace};

/// Energy/power summary of a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Total energy drawn from the core rail, joules.
    pub total_j: f64,
    /// Mean power, watts.
    pub mean_w: f64,
    /// Peak instantaneous power, watts.
    pub peak_w: f64,
    /// Energy spent executing the program under test (Work), joules.
    pub work_j: f64,
    /// Energy spent idling (C-state residency or idle spin), joules.
    pub idle_j: f64,
    /// Energy spent on interrupts/background/wake transitions, joules.
    pub overhead_j: f64,
}

impl EnergyReport {
    /// Computes the report for a trace (`P = V · I` per segment).
    pub fn from_trace(trace: &PowerTrace) -> Self {
        let mut total_j = 0.0;
        let mut work_j = 0.0;
        let mut idle_j = 0.0;
        let mut overhead_j = 0.0;
        let mut peak_w = 0.0f64;
        for s in trace.segments() {
            let p = s.current_a * s.voltage_v;
            let e = p * s.duration_s;
            total_j += e;
            peak_w = peak_w.max(p);
            match s.kind {
                ActivityKind::Work => work_j += e,
                ActivityKind::Idle => idle_j += e,
                ActivityKind::Wake | ActivityKind::Interrupt | ActivityKind::Background => {
                    overhead_j += e
                }
            }
        }
        let duration = trace.duration_s();
        EnergyReport {
            total_j,
            mean_w: if duration > 0.0 { total_j / duration } else { 0.0 },
            peak_w,
            work_j,
            idle_j,
            overhead_j,
        }
    }

    /// Energy per transmitted bit, joules, given how many bits the
    /// trace carried.
    pub fn energy_per_bit_j(&self, bits: usize) -> f64 {
        if bits == 0 {
            0.0
        } else {
            self.total_j / bits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::{CStatePolicy, DvfsPolicy};
    use crate::noise::NoiseConfig;
    use crate::sim::MachineBuilder;
    use crate::workload::Program;

    #[test]
    fn known_trace_energy() {
        let mut t = PowerTrace::new();
        t.push(2.0, 0, 0, 5.0, 1.0, ActivityKind::Work); // 10 J
        t.push(2.0, 6, 0, 0.5, 0.4, ActivityKind::Idle); // 0.4 J
        let r = EnergyReport::from_trace(&t);
        assert!((r.total_j - 10.4).abs() < 1e-12);
        assert!((r.work_j - 10.0).abs() < 1e-12);
        assert!((r.idle_j - 0.4).abs() < 1e-12);
        assert!((r.mean_w - 10.4 / 4.0).abs() < 1e-12);
        assert!((r.peak_w - 5.0).abs() < 1e-12);
        assert!((r.energy_per_bit_j(52) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_zero() {
        let r = EnergyReport::from_trace(&PowerTrace::new());
        assert_eq!(r.total_j, 0.0);
        assert_eq!(r.mean_w, 0.0);
        assert_eq!(r.energy_per_bit_j(0), 0.0);
    }

    #[test]
    fn duty_cycle_workload_power_is_plausible() {
        // 50 % duty at mobile-class currents: a few watts mean power.
        let m = MachineBuilder::new().noise(NoiseConfig::silent()).build();
        let p = Program::alternating(500e-6, 500e-6, 100, m.steady_state_ips());
        let r = EnergyReport::from_trace(&m.run(&p, 1));
        assert!((1.0..15.0).contains(&r.mean_w), "mean power {} W out of laptop range", r.mean_w);
        assert!(r.peak_w > r.mean_w);
        assert!(r.work_j > r.idle_j);
    }

    #[test]
    fn disabling_power_states_costs_energy() {
        // §VI: disabling P/C-states has "significant" energy overheads.
        let program_for = |m: &crate::sim::Machine| {
            Program::alternating(500e-6, 500e-6, 100, m.steady_state_ips())
        };
        let normal = MachineBuilder::new().noise(NoiseConfig::silent()).build();
        let hardened = MachineBuilder::new()
            .noise(NoiseConfig::silent())
            .cstates(CStatePolicy::disabled())
            .dvfs(DvfsPolicy::disabled())
            .build();
        let e_normal = EnergyReport::from_trace(&normal.run(&program_for(&normal), 1));
        let e_hardened = EnergyReport::from_trace(&hardened.run(&program_for(&hardened), 1));
        assert!(
            e_hardened.mean_w > 1.5 * e_normal.mean_w,
            "hardened {} W vs normal {} W",
            e_hardened.mean_w,
            e_normal.mean_w
        );
    }
}
