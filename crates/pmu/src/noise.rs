//! System-activity noise: interrupts, housekeeping and background
//! processes.
//!
//! The paper's measurements were all taken "in the presence of other
//! system's normal activities (i.e., handling interrupts,
//! context-switch, etc.)" (§IV-C1), and §IV-B4 attributes bit
//! insertions/deletions to exactly these events. This module models
//! them as superimposed point processes that briefly wake the core
//! while the program under test sleeps.

use rand::Rng;

use crate::timer::exponential;

/// What produced a noise event (ground truth for detector scoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Short interrupt: timer tick, device IRQ, context switch.
    ShortInterrupt,
    /// Rare, long burst: page-fault storm, kernel housekeeping; the
    /// cause of bit deletions/insertions in §IV-B4.
    LongInterrupt,
    /// A resource-intensive background process (the §IV-C2 stress
    /// experiment).
    Background,
}

/// One wake-the-core noise event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseEvent {
    /// Event start, seconds.
    pub t_s: f64,
    /// How long the core stays busy servicing it, seconds.
    pub duration_s: f64,
    /// What it was.
    pub kind: NoiseKind,
}

/// Rates and durations of the noise processes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseConfig {
    /// Poisson rate of short interrupts, events/second.
    pub short_rate_hz: f64,
    /// Mean service time of a short interrupt, seconds.
    pub short_duration_s: f64,
    /// Poisson rate of long bursts, events/second.
    pub long_rate_hz: f64,
    /// Mean service time of a long burst, seconds.
    pub long_duration_s: f64,
    /// Duty cycle (0–1) of a heavy background task, or 0 when absent.
    pub background_duty: f64,
    /// Burst length of the background task when active, seconds.
    pub background_burst_s: f64,
}

impl NoiseConfig {
    /// Normal OS background activity: frequent tiny interrupts, rare
    /// longer bursts, no heavy background task.
    pub fn normal() -> Self {
        NoiseConfig {
            short_rate_hz: 150.0,
            short_duration_s: 4e-6,
            long_rate_hz: 1.2,
            long_duration_s: 250e-6,
            background_duty: 0.0,
            background_burst_s: 0.0,
        }
    }

    /// Perfectly quiet machine (useful for isolating other effects in
    /// tests and ablations).
    pub fn silent() -> Self {
        NoiseConfig {
            short_rate_hz: 0.0,
            short_duration_s: 0.0,
            long_rate_hz: 0.0,
            long_duration_s: 0.0,
            background_duty: 0.0,
            background_burst_s: 0.0,
        }
    }

    /// Normal activity plus a resource-intensive background process
    /// (the §IV-C2 experiment that forces a ~15 % TR reduction).
    pub fn with_heavy_background() -> Self {
        NoiseConfig {
            // §IV-C2: "the OS tends to produce short bursts of
            // activity which do not affect our covert-channel
            // detection much since they are smaller than one
            // sleep/active period", plus far more frequent long
            // bursts than a quiet system. (Modelled as elevated
            // interrupt pressure; a duty-cycle CPU hog serialised
            // into the transmitter's own sleep slots is maximally
            // adversarial in a single-core model and overstates the
            // damage the paper observed.)
            short_rate_hz: 500.0,
            long_rate_hz: 12.0,
            ..NoiseConfig::normal()
        }
    }
}

/// A stateful generator of noise events, advancing monotonically in
/// time so the simulator can pull events interval-by-interval.
#[derive(Debug, Clone)]
pub struct NoiseProcess<R: Rng> {
    config: NoiseConfig,
    rng: R,
    next_short_s: f64,
    next_long_s: f64,
    next_background_s: f64,
}

impl<R: Rng> NoiseProcess<R> {
    /// Creates a process starting at time zero.
    pub fn new(config: NoiseConfig, mut rng: R) -> Self {
        let next_short_s = next_arrival(0.0, config.short_rate_hz, &mut rng);
        let next_long_s = next_arrival(0.0, config.long_rate_hz, &mut rng);
        let next_background_s = if config.background_duty > 0.0 {
            background_period(&config) * rng.gen::<f64>()
        } else {
            f64::INFINITY
        };
        NoiseProcess { config, rng, next_short_s, next_long_s, next_background_s }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Returns every event starting in `[t0_s, t1_s)`, in time order.
    /// Must be called with non-decreasing `t0_s` across calls.
    pub fn events_in(&mut self, t0_s: f64, t1_s: f64) -> Vec<NoiseEvent> {
        let mut events = Vec::new();
        // Catch the generators up to t0 (events before the window are
        // dropped — the core was busy and absorbed them).
        while self.next_short_s < t0_s {
            self.next_short_s =
                next_arrival(self.next_short_s, self.config.short_rate_hz, &mut self.rng);
        }
        while self.next_long_s < t0_s {
            self.next_long_s =
                next_arrival(self.next_long_s, self.config.long_rate_hz, &mut self.rng);
        }
        while self.next_background_s < t0_s {
            self.next_background_s = next_arrival(
                self.next_background_s,
                1.0 / background_period(&self.config),
                &mut self.rng,
            );
        }
        while self.next_short_s < t1_s {
            events.push(NoiseEvent {
                t_s: self.next_short_s,
                duration_s: exponential(self.config.short_duration_s, &mut self.rng),
                kind: NoiseKind::ShortInterrupt,
            });
            self.next_short_s =
                next_arrival(self.next_short_s, self.config.short_rate_hz, &mut self.rng);
        }
        while self.next_long_s < t1_s {
            events.push(NoiseEvent {
                t_s: self.next_long_s,
                duration_s: self.config.long_duration_s * (0.5 + self.rng.gen::<f64>()),
                kind: NoiseKind::LongInterrupt,
            });
            self.next_long_s =
                next_arrival(self.next_long_s, self.config.long_rate_hz, &mut self.rng);
        }
        while self.next_background_s < t1_s {
            events.push(NoiseEvent {
                t_s: self.next_background_s,
                duration_s: self.config.background_burst_s,
                kind: NoiseKind::Background,
            });
            // Poisson arrivals: scheduler quanta are jittered, and a
            // strictly periodic process would alias against the covert
            // channel's bit clock.
            self.next_background_s = next_arrival(
                self.next_background_s,
                1.0 / background_period(&self.config),
                &mut self.rng,
            );
        }
        events.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap_or(std::cmp::Ordering::Equal));
        events
    }
}

fn next_arrival<R: Rng + ?Sized>(now_s: f64, rate_hz: f64, rng: &mut R) -> f64 {
    if rate_hz <= 0.0 {
        f64::INFINITY
    } else {
        now_s + exponential(1.0 / rate_hz, rng)
    }
}

fn background_period(config: &NoiseConfig) -> f64 {
    if config.background_duty <= 0.0 {
        f64::INFINITY
    } else {
        config.background_burst_s / config.background_duty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn process(cfg: NoiseConfig) -> NoiseProcess<StdRng> {
        NoiseProcess::new(cfg, StdRng::seed_from_u64(42))
    }

    #[test]
    fn silent_config_produces_no_events() {
        let mut p = process(NoiseConfig::silent());
        assert!(p.events_in(0.0, 100.0).is_empty());
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut p = process(NoiseConfig::normal());
        let events = p.events_in(0.0, 50.0);
        let shorts = events.iter().filter(|e| e.kind == NoiseKind::ShortInterrupt).count();
        let expected = 150.0 * 50.0;
        assert!(
            (shorts as f64 - expected).abs() < 4.0 * expected.sqrt(),
            "got {shorts}, expected ≈{expected}"
        );
        let longs = events.iter().filter(|e| e.kind == NoiseKind::LongInterrupt).count();
        let expected_long = 1.2 * 50.0;
        assert!(
            (longs as f64 - expected_long).abs() < 5.0 * expected_long.sqrt(),
            "got {longs}, expected ≈{expected_long}"
        );
    }

    #[test]
    fn events_are_ordered_and_in_window() {
        let mut p = process(NoiseConfig::with_heavy_background());
        let events = p.events_in(1.0, 2.0);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].t_s <= w[1].t_s);
        }
        for e in &events {
            assert!((1.0..2.0).contains(&e.t_s));
        }
    }

    #[test]
    fn successive_windows_do_not_repeat_events() {
        let mut p = process(NoiseConfig::normal());
        let a = p.events_in(0.0, 1.0);
        let b = p.events_in(1.0, 2.0);
        if let (Some(last), Some(first)) = (a.last(), b.first()) {
            assert!(last.t_s < first.t_s);
        }
    }

    #[test]
    fn long_interrupts_are_much_longer_than_short() {
        let mut p = process(NoiseConfig::normal());
        let events = p.events_in(0.0, 30.0);
        let mean = |k: NoiseKind| {
            let v: Vec<f64> = events.iter().filter(|e| e.kind == k).map(|e| e.duration_s).collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        assert!(mean(NoiseKind::LongInterrupt) > 10.0 * mean(NoiseKind::ShortInterrupt));
    }

    #[test]
    fn background_duty_cycle_is_respected() {
        let cfg = NoiseConfig::with_heavy_background();
        let mut p = process(cfg);
        let events = p.events_in(0.0, 10.0);
        let busy: f64 =
            events.iter().filter(|e| e.kind == NoiseKind::Background).map(|e| e.duration_s).sum();
        let duty = busy / 10.0;
        assert!((duty - cfg.background_duty).abs() < 0.02, "duty {duty}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = process(NoiseConfig::normal()).events_in(0.0, 5.0);
        let b = process(NoiseConfig::normal()).events_in(0.0, 5.0);
        assert_eq!(a, b);
    }
}
