//! The discrete-event machine simulator: executes a [`Program`]
//! against the power-state, timer and noise models and produces the
//! [`PowerTrace`] the VRM (and hence the attacker) observes.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::governor::{CStatePolicy, DvfsPolicy, PStateMode};
use crate::noise::{NoiseConfig, NoiseKind, NoiseProcess};
use crate::power::PowerStateTable;
use crate::timer::SleepModel;
use crate::trace::{ActivityKind, PowerTrace};
use crate::workload::{Op, Program};

/// An externally-injected burst of processor activity (e.g. a
/// keystroke interrupt plus its handling), for event-driven scenarios
/// where no explicit program runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExternalEvent {
    /// When the event fires, seconds.
    pub t_s: f64,
    /// How long the core stays busy handling it, seconds.
    pub duration_s: f64,
    /// Ground-truth label for the resulting activity.
    pub kind: ActivityKind,
}

/// A complete simulated machine.
///
/// # Examples
///
/// Run the paper's Fig. 1 micro-benchmark and confirm the trace
/// alternates between high-current work and low-current idle:
///
/// ```
/// use emsc_pmu::sim::Machine;
/// use emsc_pmu::workload::Program;
///
/// let machine = Machine::intel_laptop();
/// let program = Program::alternating(1e-3, 1e-3, 10, machine.nominal_ips());
/// let trace = machine.run(&program, 7);
/// assert!(trace.active_fraction() > 0.3 && trace.active_fraction() < 0.7);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    /// P-/C-state tables and current model.
    pub table: PowerStateTable,
    /// OS sleep API behaviour.
    pub sleep_model: SleepModel,
    /// P-state policy (BIOS + governor).
    pub dvfs: DvfsPolicy,
    /// C-state policy (BIOS + menu governor).
    pub cstates: CStatePolicy,
    /// System noise processes.
    pub noise: NoiseConfig,
    /// Simple-loop iterations retired per core cycle.
    pub loop_ipc: f64,
}

impl Machine {
    /// A representative Linux laptop with Speed Shift, all power
    /// states enabled and normal OS noise.
    pub fn intel_laptop() -> Self {
        Machine {
            table: PowerStateTable::intel_mobile(),
            sleep_model: SleepModel::LinuxUsleep,
            dvfs: DvfsPolicy::speed_shift(),
            cstates: CStatePolicy::all(),
            noise: NoiseConfig::normal(),
            loop_ipc: 1.0,
        }
    }

    /// Loop iterations per second at P-state `p`.
    pub fn iterations_per_second(&self, p: crate::power::PState) -> f64 {
        p.frequency_hz * self.loop_ipc
    }

    /// Loop iterations per second at the nominal (P0) operating point.
    pub fn nominal_ips(&self) -> f64 {
        self.iterations_per_second(self.table.p0())
    }

    /// The sustained execution speed a duty-cycle workload sees once
    /// the DVFS governor has warmed up: P0 unless the policy pins a
    /// different P-state. (Periodic short-burst workloads hold their
    /// ramp level across brief sleeps, so the steady state is what
    /// matters for calibration — the paper's authors likewise tuned
    /// LOOP_PERIOD on the live machine.)
    pub fn steady_state_ips(&self) -> f64 {
        let p = match (self.dvfs.enabled, self.dvfs.mode) {
            (true, PStateMode::Fixed(i)) => self
                .table
                .pstates
                .get(i as usize)
                .copied()
                .unwrap_or_else(|| self.table.deepest_pstate()),
            _ => self.table.p0(),
        };
        self.iterations_per_second(p)
    }

    /// How long a busy burst of `iterations` loop iterations takes at
    /// the governor's steady state.
    pub fn burst_duration_s(&self, iterations: u64) -> f64 {
        iterations as f64 / self.steady_state_ips()
    }

    /// Iterations needed for a steady-state busy burst of roughly
    /// `duration_s` seconds (inverse of [`Machine::burst_duration_s`]).
    pub fn iterations_for_duration(&self, duration_s: f64) -> u64 {
        if duration_s <= 0.0 {
            return 0;
        }
        (duration_s * self.steady_state_ips()).round() as u64
    }

    /// Expected (mean) wall-clock cost of an OS sleep request on this
    /// machine: timer quantisation + call overhead + mean lengthening
    /// + the C-state exit latency paid on wake-up.
    pub fn expected_sleep_s(&self, requested_s: f64) -> f64 {
        let g = self.sleep_model.granularity_s();
        let quantised = (requested_s / g).ceil() * g;
        let base = quantised + self.sleep_model.overhead_s() + self.sleep_model.jitter_mean_s();
        let wake = self.cstates.select(&self.table, base).map_or(0.0, |c| c.exit_latency_s);
        base + wake
    }

    /// Executes `program` and returns the resulting power trace.
    /// Deterministic for a given `(program, seed)` pair.
    pub fn run(&self, program: &Program, seed: u64) -> PowerTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut noise =
            NoiseProcess::new(self.noise, StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15));
        let mut trace = PowerTrace::new();
        let mut level = 0.0; // DVFS ramp level (0 = deepest, 1 = P0)
        for op in program.ops() {
            match *op {
                Op::Busy { iterations } => {
                    self.emit_busy(&mut trace, &mut level, iterations, ActivityKind::Work)
                }
                Op::Sleep { duration_s } => {
                    let actual = self.sleep_model.actual_sleep(duration_s, &mut rng);
                    self.emit_idle(&mut trace, &mut noise, &mut level, actual);
                }
            }
        }
        trace
    }

    /// Simulates an otherwise-idle machine for `duration_s` seconds
    /// with externally-injected activity bursts (keystrokes, browser
    /// housekeeping). Events must be within the duration; overlapping
    /// events are serialised in arrival order.
    pub fn run_events(&self, duration_s: f64, events: &[ExternalEvent], seed: u64) -> PowerTrace {
        let mut sorted = events.to_vec();
        sorted.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap_or(std::cmp::Ordering::Equal));
        let mut noise =
            NoiseProcess::new(self.noise, StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15));
        let mut trace = PowerTrace::new();
        let mut level = 0.0;
        for ev in &sorted {
            let now = trace.duration_s();
            if ev.t_s > now {
                self.emit_idle(&mut trace, &mut noise, &mut level, ev.t_s - now);
            }
            let iterations = (ev.duration_s * self.nominal_ips()) as u64;
            self.emit_busy(&mut trace, &mut level, iterations, ev.kind);
        }
        let now = trace.duration_s();
        if duration_s > now {
            self.emit_idle(&mut trace, &mut noise, &mut level, duration_s - now);
        }
        trace
    }

    /// Emits a work burst of `iterations` loop iterations, walking the
    /// DVFS ramp staircase from the governor's current `level` (0 =
    /// deepest P-state, 1 = P0): each P-state table step takes
    /// `ramp / (n−1)` seconds of busy time, and the level persists
    /// across bursts so periodic duty-cycle workloads quickly settle
    /// at P0.
    fn emit_busy(
        &self,
        trace: &mut PowerTrace,
        level: &mut f64,
        iterations: u64,
        kind: ActivityKind,
    ) {
        if iterations == 0 {
            return;
        }
        let mut remaining = iterations as f64;
        let emit = |trace: &mut PowerTrace, p: crate::power::PState, dur: f64| {
            trace.push(dur, 0, p.index, self.table.active_current_a(p), p.voltage_v, kind);
        };
        if !self.dvfs.enabled {
            let p = self.table.p0();
            emit(trace, p, remaining / self.iterations_per_second(p));
            *level = 1.0;
            return;
        }
        if let PStateMode::Fixed(i) = self.dvfs.mode {
            let p = self
                .table
                .pstates
                .get(i as usize)
                .copied()
                .unwrap_or_else(|| self.table.deepest_pstate());
            emit(trace, p, remaining / self.iterations_per_second(p));
            return;
        }
        let ramp = self.dvfs.mode.ramp_s();
        let n = self.table.pstates.len();
        let step_level = 1.0 / (n - 1).max(1) as f64;
        while remaining > 0.0 {
            if *level >= 1.0 - 1e-12 || ramp <= 0.0 {
                let p = self.table.p0();
                emit(trace, p, remaining / self.iterations_per_second(p));
                *level = 1.0;
                break;
            }
            // Current staircase step: index n-1-k for level in
            // [k·Δ, (k+1)·Δ).
            let k = (*level / step_level).floor() as usize;
            let p = self.table.pstates[(n - 1).saturating_sub(k)];
            let step_end = ((k + 1) as f64 * step_level).min(1.0);
            let step_time = (step_end - *level) * ramp;
            let ips = self.iterations_per_second(p);
            let capacity = step_time * ips;
            if remaining >= capacity {
                emit(trace, p, step_time);
                remaining -= capacity;
                *level = step_end;
            } else {
                let dur = remaining / ips;
                emit(trace, p, dur);
                *level += dur / ramp;
                remaining = 0.0;
            }
        }
    }

    /// Emits an idle interval of `idle_s` seconds: C-state residency
    /// punctuated by noise wake-ups, or a C0 spin when C-states are
    /// disabled. Decays the DVFS ramp level.
    fn emit_idle(
        &self,
        trace: &mut PowerTrace,
        noise: &mut NoiseProcess<StdRng>,
        level: &mut f64,
        idle_s: f64,
    ) {
        if idle_s <= 0.0 {
            return;
        }
        if self.dvfs.enabled {
            let decay = self.dvfs.mode.decay_s();
            if decay.is_finite() && decay > 0.0 {
                *level = (*level - idle_s / decay).max(0.0);
            }
        } else {
            *level = 1.0;
        }
        let start = trace.duration_s();
        let end = start + idle_s;
        match self.cstates.select(&self.table, idle_s) {
            None => {
                // BIOS-disabled C-states: the OS "idle" process spins.
                // With DVFS enabled the idle loop drops to the deepest
                // P-state; without it, it spins at nominal P0 (§III).
                let p =
                    if self.dvfs.enabled { self.table.deepest_pstate() } else { self.table.p0() };
                // The OS "idle" process is an ordinary loop (§III
                // footnote 2): from the VRM's perspective it draws
                // like any other execution, so no modulation remains.
                let current = self.table.active_current_a(p);
                trace.push(idle_s, 0, p.index, current, p.voltage_v, ActivityKind::Idle);
            }
            Some(c) => {
                let idle_current = self.table.idle_current_a(c);
                let idle_voltage = self.table.rail_voltage_v(c, self.table.deepest_pstate());
                let p0_voltage = self.table.p0().voltage_v;
                // Exit current is modest: the core is mostly waiting
                // on PLL relock / state restore, not executing.
                let wake_current = 0.35 * self.table.active_current_a(self.table.p0());
                let mut cursor = start;
                for ev in noise.events_in(start, end) {
                    if ev.duration_s <= 0.0 {
                        continue;
                    }
                    if ev.t_s > cursor {
                        trace.push(
                            ev.t_s - cursor,
                            c.index,
                            0,
                            idle_current,
                            idle_voltage,
                            ActivityKind::Idle,
                        );
                        cursor = ev.t_s;
                    }
                    // Wake, service, re-enter idle. Service runs at P0
                    // current (interrupt handlers don't wait for DVFS).
                    trace.push(
                        c.exit_latency_s,
                        0,
                        0,
                        wake_current,
                        p0_voltage,
                        ActivityKind::Wake,
                    );
                    let kind = match ev.kind {
                        NoiseKind::Background => ActivityKind::Background,
                        _ => ActivityKind::Interrupt,
                    };
                    trace.push(
                        ev.duration_s,
                        0,
                        0,
                        self.table.active_current_a(self.table.p0()),
                        p0_voltage,
                        kind,
                    );
                    cursor += c.exit_latency_s + ev.duration_s;
                }
                if end > cursor {
                    trace.push(
                        end - cursor,
                        c.index,
                        0,
                        idle_current,
                        idle_voltage,
                        ActivityKind::Idle,
                    );
                }
                // Final wake-up back to C0 for whatever follows.
                trace.push(c.exit_latency_s, 0, 0, wake_current, p0_voltage, ActivityKind::Wake);
            }
        }
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::intel_laptop()
    }
}

/// Builder for [`Machine`] variants (countermeasures, other OSes).
///
/// # Examples
///
/// ```
/// use emsc_pmu::sim::MachineBuilder;
/// use emsc_pmu::timer::SleepModel;
///
/// let windows_box = MachineBuilder::new()
///     .sleep_model(SleepModel::WindowsSleep)
///     .build();
/// assert_eq!(windows_box.sleep_model, SleepModel::WindowsSleep);
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    machine: Machine,
}

impl MachineBuilder {
    /// Starts from [`Machine::intel_laptop`] defaults.
    pub fn new() -> Self {
        MachineBuilder { machine: Machine::intel_laptop() }
    }

    /// Sets the power-state table.
    pub fn table(mut self, table: PowerStateTable) -> Self {
        self.machine.table = table;
        self
    }

    /// Sets the OS sleep model.
    pub fn sleep_model(mut self, model: SleepModel) -> Self {
        self.machine.sleep_model = model;
        self
    }

    /// Sets the DVFS policy.
    pub fn dvfs(mut self, dvfs: DvfsPolicy) -> Self {
        self.machine.dvfs = dvfs;
        self
    }

    /// Sets the C-state policy.
    pub fn cstates(mut self, cstates: CStatePolicy) -> Self {
        self.machine.cstates = cstates;
        self
    }

    /// Sets the noise configuration.
    pub fn noise(mut self, noise: NoiseConfig) -> Self {
        self.machine.noise = noise;
        self
    }

    /// Sets loop IPC.
    pub fn loop_ipc(mut self, ipc: f64) -> Self {
        self.machine.loop_ipc = ipc;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Machine {
        self.machine
    }
}

impl Default for MachineBuilder {
    fn default() -> Self {
        MachineBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ActivityKind;

    fn quiet_machine() -> Machine {
        MachineBuilder::new().noise(NoiseConfig::silent()).build()
    }

    #[test]
    fn busy_then_sleep_produces_contrast() {
        let m = quiet_machine();
        let mut p = Program::new();
        p.busy_for(1e-3, m.nominal_ips()).sleep(1e-3);
        let trace = m.run(&p, 1);
        let work_current = trace
            .segments()
            .iter()
            .filter(|s| s.kind == ActivityKind::Work)
            .map(|s| s.current_a)
            .fold(0.0f64, f64::max);
        let idle_current = trace
            .segments()
            .iter()
            .filter(|s| s.kind == ActivityKind::Idle)
            .map(|s| s.current_a)
            .fold(f64::INFINITY, f64::min);
        assert!(work_current / idle_current > 20.0, "contrast {} / {}", work_current, idle_current);
    }

    #[test]
    fn sleep_duration_respects_timer_model() {
        let m = quiet_machine();
        let mut p = Program::new();
        p.sleep(100e-6);
        let trace = m.run(&p, 3);
        // Actual ≥ requested, and not wildly longer on Linux.
        assert!(trace.duration_s() >= 100e-6);
        assert!(trace.duration_s() < 200e-6, "slept {}", trace.duration_s());
    }

    #[test]
    fn speed_shift_ramp_appears_in_trace() {
        let m = quiet_machine();
        let mut p = Program::new();
        p.busy_for(5e-3, m.nominal_ips());
        let trace = m.run(&p, 5);
        let work: Vec<_> =
            trace.segments().iter().filter(|s| s.kind == ActivityKind::Work).collect();
        // The cold-start ramp walks the P-state staircase, then the
        // rest of the burst runs at P0.
        assert!(work.len() >= 3, "staircase expected, got {} phases", work.len());
        for w in work.windows(2) {
            assert!(w[0].pstate > w[1].pstate, "P-state must rise through the ramp");
            assert!(w[0].current_a < w[1].current_a);
        }
        assert_eq!(work.last().unwrap().pstate, 0);
        // The ramp (6 steps × 50 µs) is a small fraction of the burst.
        let p0_time: f64 = work.iter().filter(|s| s.pstate == 0).map(|s| s.duration_s).sum();
        assert!(p0_time > 4e-3, "P0 time {p0_time}");
    }

    #[test]
    fn iterations_are_conserved_across_ramp() {
        // Total executed time must satisfy: iters = Σ dur·ips(phase).
        let m = quiet_machine();
        let iters: u64 = 10_000_000;
        let mut p = Program::new();
        p.busy(iters);
        let trace = m.run(&p, 0);
        let executed: f64 = trace
            .segments()
            .iter()
            .filter(|s| s.kind == ActivityKind::Work)
            .map(|s| {
                let pstate = m.table.pstates[s.pstate as usize];
                s.duration_s * m.iterations_per_second(pstate)
            })
            .sum();
        assert!((executed - iters as f64).abs() / (iters as f64) < 1e-6);
    }

    #[test]
    fn disabled_cstates_spin_instead_of_idling() {
        let m = MachineBuilder::new()
            .noise(NoiseConfig::silent())
            .cstates(CStatePolicy::disabled())
            .build();
        let mut p = Program::new();
        p.sleep(1e-3);
        let trace = m.run(&p, 2);
        assert!(trace.segments().iter().all(|s| s.cstate == 0));
        // Spinning draws real current even though "idle".
        assert!(trace.mean_current_a() > 1.0);
    }

    #[test]
    fn both_disabled_removes_all_contrast() {
        let m = MachineBuilder::new()
            .noise(NoiseConfig::silent())
            .cstates(CStatePolicy::disabled())
            .dvfs(DvfsPolicy::disabled())
            .build();
        let mut p = Program::new();
        p.busy_for(1e-3, m.nominal_ips()).sleep(1e-3);
        let trace = m.run(&p, 2);
        let min = trace.segments().iter().map(|s| s.current_a).fold(f64::INFINITY, f64::min);
        let max = trace.segments().iter().map(|s| s.current_a).fold(0.0f64, f64::max);
        assert!(max / min < 1.2, "no contrast expected: {min}..{max}");
    }

    #[test]
    fn only_cstates_disabled_keeps_contrast_via_pstates() {
        let m = MachineBuilder::new()
            .noise(NoiseConfig::silent())
            .cstates(CStatePolicy::disabled())
            .dvfs(DvfsPolicy::speed_shift())
            .build();
        let mut p = Program::new();
        p.busy_for(5e-3, m.nominal_ips()).sleep(5e-3);
        let trace = m.run(&p, 2);
        let min = trace.segments().iter().map(|s| s.current_a).fold(f64::INFINITY, f64::min);
        let max = trace.segments().iter().map(|s| s.current_a).fold(0.0f64, f64::max);
        assert!(max / min > 2.0, "P-state contrast expected: {min}..{max}");
    }

    #[test]
    fn noise_inserts_interrupt_segments_into_idle() {
        let m = MachineBuilder::new().noise(NoiseConfig::normal()).build();
        let p = Program::idle(0.5, 0.1);
        let trace = m.run(&p, 11);
        let interrupts =
            trace.segments().iter().filter(|s| s.kind == ActivityKind::Interrupt).count();
        // 150 Hz for 0.5 s ⇒ ~75 short interrupts (Poisson).
        assert!(interrupts > 30, "only {interrupts} interrupts");
    }

    #[test]
    fn run_events_places_bursts_at_requested_times() {
        let m = quiet_machine();
        let events = [
            ExternalEvent { t_s: 0.10, duration_s: 40e-3, kind: ActivityKind::Work },
            ExternalEvent { t_s: 0.30, duration_s: 40e-3, kind: ActivityKind::Work },
        ];
        let trace = m.run_events(0.5, &events, 9);
        let bursts = trace.work_burst_times();
        assert_eq!(bursts.len(), 2);
        assert!((bursts[0] - 0.10).abs() < 2e-3, "burst at {}", bursts[0]);
        assert!((bursts[1] - 0.30).abs() < 2e-3, "burst at {}", bursts[1]);
        assert!(trace.duration_s() >= 0.5);
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let m = Machine::intel_laptop();
        let p = Program::alternating(200e-6, 200e-6, 20, m.nominal_ips());
        assert_eq!(m.run(&p, 77), m.run(&p, 77));
        assert_ne!(m.run(&p, 77), m.run(&p, 78));
    }
}
