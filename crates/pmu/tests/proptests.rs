//! Property-based tests for the power-management simulator.

use emsc_pmu::noise::NoiseConfig;
use emsc_pmu::sim::{Machine, MachineBuilder};
use emsc_pmu::timer::SleepModel;
use emsc_pmu::workload::{Op, Program};
use proptest::prelude::*;

fn small_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(
        prop_oneof![
            (1u64..3_000_000).prop_map(|iterations| Op::Busy { iterations }),
            (1e-6f64..2e-3).prop_map(|duration_s| Op::Sleep { duration_s }),
        ],
        1..12,
    )
    .prop_map(|ops| ops.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn traces_are_contiguous_and_positive(program in small_program(), seed in any::<u64>()) {
        let machine = Machine::intel_laptop();
        let trace = machine.run(&program, seed);
        let mut t = 0.0;
        for s in trace.segments() {
            prop_assert!((s.start_s - t).abs() < 1e-9, "gap at {}", s.start_s);
            prop_assert!(s.duration_s > 0.0);
            prop_assert!(s.current_a >= 0.0);
            prop_assert!(s.voltage_v >= 0.0);
            t = s.end_s();
        }
    }

    #[test]
    fn trace_lasts_at_least_the_nominal_program(program in small_program(), seed in any::<u64>()) {
        // Sleeps are never shortened and busy work must execute, so
        // the trace can't be shorter than the nominal duration.
        let machine = MachineBuilder::new().noise(NoiseConfig::silent()).build();
        let nominal = program.nominal_duration_s(machine.nominal_ips());
        let trace = machine.run(&program, seed);
        prop_assert!(trace.duration_s() >= nominal - 1e-9);
    }

    #[test]
    fn busy_iterations_are_conserved(iters in 1u64..20_000_000, seed in any::<u64>()) {
        let machine = MachineBuilder::new().noise(NoiseConfig::silent()).build();
        let mut p = Program::new();
        p.busy(iters);
        let trace = machine.run(&p, seed);
        let executed: f64 = trace
            .segments()
            .iter()
            .filter(|s| s.cstate == 0)
            .map(|s| {
                let pstate = machine.table.pstates[s.pstate as usize];
                s.duration_s * machine.iterations_per_second(pstate)
            })
            .sum();
        prop_assert!((executed - iters as f64).abs() / (iters as f64) < 1e-6);
    }

    #[test]
    fn same_seed_same_trace(program in small_program(), seed in any::<u64>()) {
        let machine = Machine::intel_laptop();
        prop_assert_eq!(machine.run(&program, seed), machine.run(&program, seed));
    }

    #[test]
    fn sleeps_never_shrink(req in 0.0f64..0.01, seed in any::<u64>()) {
        for model in [SleepModel::LinuxUsleep, SleepModel::MacosUsleep, SleepModel::WindowsSleep] {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let actual = model.actual_sleep(req, &mut rng);
            prop_assert!(actual >= req);
        }
    }

    #[test]
    fn disabled_everything_is_flat(program in small_program(), seed in any::<u64>()) {
        use emsc_pmu::governor::{CStatePolicy, DvfsPolicy};
        let machine = MachineBuilder::new()
            .noise(NoiseConfig::silent())
            .cstates(CStatePolicy::disabled())
            .dvfs(DvfsPolicy::disabled())
            .build();
        let trace = machine.run(&program, seed);
        if !trace.segments().is_empty() {
            let min = trace.segments().iter().map(|s| s.current_a).fold(f64::INFINITY, f64::min);
            let max = trace.segments().iter().map(|s| s.current_a).fold(0.0f64, f64::max);
            prop_assert!(max / min < 1.2, "contrast {} remains", max / min);
        }
    }
}
