//! Electromagnetic emanation synthesis and propagation.
//!
//! Bridges the gap between the VRM's switching activity
//! ([`emsc_vrm::train::SwitchingTrain`]) and the I/Q samples an
//! RTL-SDR would capture: harmonic-rich pulse synthesis at complex
//! baseband ([`synth`]), near-field `1/r³` propagation with antenna
//! and wall models ([`path`]), environmental interferers and AWGN
//! ([`interference`]), and the [`scene::Scene`] composition tying a
//! measurement setup together.
//!
//! # Examples
//!
//! ```
//! use emsc_pmu::{sim::Machine, workload::Program};
//! use emsc_vrm::buck::{Buck, BuckConfig};
//! use emsc_emfield::scene::Scene;
//!
//! let machine = Machine::intel_laptop();
//! let program = Program::alternating(1e-3, 1e-3, 5, machine.nominal_ips());
//! let trace = machine.run(&program, 3);
//! let train = Buck::new(BuckConfig::laptop(970e3)).convert(&trace);
//!
//! let scene = Scene::near_field(970e3);
//! let analog = scene.render(&train, 3);
//! assert!(analog.len() > 20_000); // ≥ 10 ms at 2.4 Msps
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod interference;
pub mod path;
pub mod scene;
pub mod synth;

pub use path::{Antenna, Path};
pub use scene::Scene;
pub use synth::SynthConfig;
