//! Scene composition: emitter → path → interference → receiver input.
//!
//! A [`Scene`] bundles everything between the VRM's switching pulses
//! and the SDR's antenna connector: the synthesis configuration, the
//! propagation path, environmental interferers, and the receiver-side
//! noise floor. Rendering a scene produces the ideal analog baseband
//! waveform that [`emsc_sdr::Frontend::digitize`] then quantises.

use emsc_sdr::iq::Complex;
use emsc_vrm::train::SwitchingTrain;

use crate::interference::{add_awgn, add_awgn_window, Interferer};
use crate::path::Path;
use crate::synth::{
    pulses_sorted, render_train, render_train_window_hint, samples_for, SynthConfig,
};

/// A complete RF scene.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// Tuner/sampling configuration.
    pub synth: SynthConfig,
    /// Propagation path from the laptop's VRM to the antenna.
    pub path: Path,
    /// Other emitters in the environment.
    pub interferers: Vec<Interferer>,
    /// Receiver-side noise standard deviation per complex sample
    /// (thermal + environmental background), in received units.
    pub noise_sigma: f64,
    /// Emission strength: received amplitude per ampere of replenish
    /// current at the near-field reference path. Folds the VRM's loop
    /// geometry and the probe's coupling into one constant.
    pub emission_scale: f64,
}

impl Scene {
    /// The near-field measurement setup of §IV-C2: coil probe at
    /// 10 cm, quiet lab, RTL-SDR tuned for the given `f_sw`.
    pub fn near_field(f_sw: f64) -> Self {
        Scene {
            synth: SynthConfig::rtl_sdr_for(f_sw),
            path: Path::near_field(),
            interferers: Vec::new(),
            noise_sigma: 2.0,
            emission_scale: 1.0,
        }
    }

    /// Line-of-sight loop-antenna setup at `distance_m` (Table III).
    pub fn line_of_sight(f_sw: f64, distance_m: f64) -> Self {
        Scene { path: Path::line_of_sight(distance_m), ..Scene::near_field(f_sw) }
    }

    /// The Fig. 10 through-the-wall setup, complete with the printer
    /// and refrigerator interferers the paper kept in the rooms.
    pub fn through_wall(f_sw: f64) -> Self {
        Scene {
            path: Path::through_wall(),
            interferers: vec![Interferer::printer(0.8), Interferer::refrigerator(0.5)],
            ..Scene::near_field(f_sw)
        }
    }

    /// Renders the received analog baseband waveform for a switching
    /// train. Deterministic for a given `(train, seed)`.
    pub fn render(&self, train: &SwitchingTrain, seed: u64) -> Vec<Complex> {
        let n = samples_for(train, self.synth);
        let mut buf = render_train(train, self.synth, n);
        let gain = self.path.gain() * self.emission_scale;
        for s in buf.iter_mut() {
            *s = s.scale(gain);
        }
        for (i, intf) in self.interferers.iter().enumerate() {
            intf.add_to(
                &mut buf,
                self.synth.sample_rate,
                self.synth.center_freq,
                seed ^ (i as u64) << 32,
            );
        }
        add_awgn(&mut buf, self.noise_sigma, seed ^ 0x00ff_00ff_00ff_00ff);
        buf
    }

    /// Renders the window `[start, start + out.len())` of the received
    /// waveform into a caller-zeroed slice, bit-identical to the same
    /// index range of [`Scene::render`] for the same `(train, seed)`.
    ///
    /// This is the fused TX chain's per-block composition: synthesis,
    /// path gain, interferer combs and AWGN are all applied to the
    /// block while it is cache-resident, and every stage is
    /// window-invariant ([`render_train_window`], positional
    /// interferer phases, blockwise sub-seeded noise) so the
    /// decomposition into blocks is unobservable in the output.
    pub fn render_window_into(
        &self,
        train: &SwitchingTrain,
        seed: u64,
        start: usize,
        out: &mut [Complex],
    ) {
        self.window_renderer(train, seed).render_into(start, out);
    }

    /// A renderer for many windows of one `(train, seed)` run: probes
    /// the train's pulse ordering once (O(pulses)) so each window pays
    /// only the documented binary-search + warm-up overhead. This is
    /// what a blockwise producer should hold for the run's lifetime;
    /// [`Scene::render_window_into`] is the one-shot form.
    pub fn window_renderer<'a>(
        &'a self,
        train: &'a SwitchingTrain,
        seed: u64,
    ) -> WindowRenderer<'a> {
        WindowRenderer { scene: self, train, seed, sorted: pulses_sorted(train) }
    }

    /// Signal-to-noise ratio (dB) a steady replenish current of
    /// `current_a` amperes would enjoy in one FFT bin of `fft_size`
    /// points: the link-budget summary used to pick workable bit rates.
    pub fn bin_snr_db(&self, current_a: f64, fft_size: usize) -> f64 {
        let line = current_a * self.path.gain() * self.emission_scale * fft_size as f64;
        let noise = self.noise_sigma * (fft_size as f64).sqrt();
        20.0 * (line / noise).log10()
    }
}

/// Windowed renderer bound to one `(scene, train, seed)` run — see
/// [`Scene::window_renderer`]. Every window it renders is bit-identical
/// to the matching range of [`Scene::render`].
#[derive(Debug, Clone, Copy)]
pub struct WindowRenderer<'a> {
    scene: &'a Scene,
    train: &'a SwitchingTrain,
    seed: u64,
    sorted: bool,
}

impl WindowRenderer<'_> {
    /// Renders the window `[start, start + out.len())` of the received
    /// waveform into a caller-zeroed slice: synthesis, path gain,
    /// interferer combs and AWGN, all applied while the block is
    /// cache-resident. Every stage is window-invariant (globally
    /// anchored phasors, positional interferer phases, blockwise
    /// sub-seeded noise), so the decomposition into blocks is
    /// unobservable in the output.
    pub fn render_into(&self, start: usize, out: &mut [Complex]) {
        let scene = self.scene;
        render_train_window_hint(self.train, scene.synth, self.sorted, start, out);
        let gain = scene.path.gain() * scene.emission_scale;
        for s in out.iter_mut() {
            *s = s.scale(gain);
        }
        for (i, intf) in scene.interferers.iter().enumerate() {
            intf.add_to_window(
                out,
                scene.synth.sample_rate,
                scene.synth.center_freq,
                self.seed ^ (i as u64) << 32,
                start,
            );
        }
        add_awgn_window(out, scene.noise_sigma, self.seed ^ 0x00ff_00ff_00ff_00ff, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::fft::{frequency_bin, plan_for};
    use emsc_vrm::train::Pulse;

    fn regular_train(f_sw: f64, charge_c: f64, duration_s: f64) -> SwitchingTrain {
        let period = 1.0 / f_sw;
        let n = (duration_s / period) as usize;
        SwitchingTrain {
            pulses: (0..n).map(|k| Pulse { t_s: k as f64 * period, charge_c }).collect(),
            nominal_period_s: period,
            duration_s,
        }
    }

    fn line_amp(buf: &[Complex], fs: f64, f_bb: f64) -> f64 {
        let n = 8192;
        let mut spec = buf[..n].to_vec();
        plan_for(n).forward(&mut spec);
        let k = frequency_bin(f_bb, n, fs);
        spec[k].abs() / n as f64
    }

    #[test]
    fn near_field_line_is_far_above_noise() {
        let f_sw = 970e3;
        let scene = Scene::near_field(f_sw);
        let train = regular_train(f_sw, 8e-6, 8e-3);
        let buf = scene.render(&train, 5);
        let line = line_amp(&buf, scene.synth.sample_rate, scene.synth.baseband(f_sw));
        let noise_bin = line_amp(&buf, scene.synth.sample_rate, scene.synth.baseband(f_sw) + 200e3);
        assert!(line / noise_bin > 30.0, "line {line}, noise {noise_bin}");
    }

    #[test]
    fn distance_reduces_line_amplitude() {
        let f_sw = 970e3;
        let train = regular_train(f_sw, 8e-6, 8e-3);
        let mut amps = Vec::new();
        for d in [1.0, 1.5, 2.5] {
            let scene = Scene::line_of_sight(f_sw, d);
            let buf = scene.render(&train, 5);
            amps.push(line_amp(&buf, scene.synth.sample_rate, scene.synth.baseband(f_sw)));
        }
        assert!(amps[0] > amps[1] && amps[1] > amps[2], "{amps:?}");
    }

    #[test]
    fn wall_scene_has_interferers_but_signal_survives() {
        let f_sw = 970e3;
        let scene = Scene::through_wall(f_sw);
        let train = regular_train(f_sw, 8e-6, 8e-3);
        let buf = scene.render(&train, 5);
        let fs = scene.synth.sample_rate;
        let line = line_amp(&buf, fs, scene.synth.baseband(f_sw));
        // Printer harmonic (310 kHz × 4 = 1.24 MHz ⇒ −215 kHz baseband) is present…
        let printer = line_amp(&buf, fs, 310e3 * 4.0 - scene.synth.center_freq);
        assert!(printer > 0.1, "printer line {printer}");
        // …and does not sit on the VRM bin, whose line is still detectable.
        let off_bin = line_amp(&buf, fs, scene.synth.baseband(f_sw) + 150e3);
        assert!(line > 3.0 * off_bin, "line {line} vs floor {off_bin}");
    }

    #[test]
    fn bin_snr_budget_orders_scenarios() {
        let f_sw = 970e3;
        let near = Scene::near_field(f_sw).bin_snr_db(8.0, 1024);
        let m1 = Scene::line_of_sight(f_sw, 1.0).bin_snr_db(8.0, 1024);
        let m25 = Scene::line_of_sight(f_sw, 2.5).bin_snr_db(8.0, 1024);
        let wall = Scene::through_wall(f_sw).bin_snr_db(8.0, 1024);
        assert!(near > m1 && m1 > m25 && m25 > wall, "{near} {m1} {m25} {wall}");
        // Near-field budget is comfortably positive; the wall case is
        // the marginal one, as in the paper.
        assert!(near > 30.0);
        assert!(wall > 0.0 && wall < near - 20.0);
    }

    #[test]
    fn windowed_scene_render_composes_bitwise() {
        // through_wall exercises every stage: synthesis, path gain,
        // both interferer combs and AWGN.
        let f_sw = 970e3;
        let scene = Scene::through_wall(f_sw);
        let train = regular_train(f_sw, 8e-6, 4e-3);
        let whole = scene.render(&train, 77);
        let n = whole.len();
        for window in [7usize, 997, 4096, n] {
            let mut composed = vec![Complex::ZERO; n];
            let mut start = 0;
            while start < n {
                let len = window.min(n - start);
                scene.render_window_into(&train, 77, start, &mut composed[start..start + len]);
                start += len;
            }
            for (i, (a, b)) in composed.iter().zip(&whole).enumerate() {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "window {window}: sample {i} differs"
                );
            }
        }
    }

    #[test]
    fn render_is_deterministic() {
        let f_sw = 1e6;
        let scene = Scene::through_wall(f_sw);
        let train = regular_train(f_sw, 4e-6, 2e-3);
        assert_eq!(scene.render(&train, 9), scene.render(&train, 9));
        assert_ne!(scene.render(&train, 9), scene.render(&train, 10));
    }
}
