//! Synthesis of the VRM's electromagnetic emission at complex baseband.
//!
//! Each replenishment pulse is a burst of `di/dt` which, by Faraday's
//! law, produces a magnetic-field transient whose strength scales with
//! the transferred charge. A pulse train that fires every switching
//! period therefore emits strong spectral lines at `f_sw` and its
//! harmonics; a pulse-skipped train emits proportionally weaker lines
//! (§II of the paper).
//!
//! We synthesise the *complex baseband* representation of that field
//! around a tuner centre frequency `f_c` at sample rate `fs`: a pulse
//! of charge `Q` at time `t_k` contributes a band-limited impulse
//!
//! ```text
//! s(t) += Q · fs · e^{−2πi·f_c·t_k} · k((t − t_k)·fs)
//! ```
//!
//! where `k` is a windowed-sinc interpolation kernel. The kernel acts
//! as the receiver's anti-alias filter (out-of-band harmonics are
//! attenuated instead of folding onto the measurement bins), while the
//! complex exponential carries the carrier phase, so spectral lines,
//! PFM sub-harmonics, and the phase decoherence caused by the
//! switching-randomisation countermeasure all emerge naturally in the
//! capture's spectrum.

use std::sync::OnceLock;

use emsc_sdr::iq::Complex;
use emsc_vrm::train::SwitchingTrain;

/// Half-width of the interpolation kernel, in samples.
const KERNEL_HALF_WIDTH: usize = 6;

/// Kernel look-up table resolution, entries per unit sample offset.
/// Linear interpolation at this density keeps the worst-case kernel
/// error below ~2·10⁻⁶ of the peak — two orders of magnitude under
/// the synthesis accuracy contract (−90 dB, asserted in tests).
const LUT_RES: usize = 1024;

/// Fast-path pulses between exact carrier-phasor re-computations.
/// The incremental rotation drifts ≲ 1 ulp per step, so the error at
/// refresh time stays ~1e-13 — the same periodic drift-control pattern
/// as `emsc_sdr::sliding::SlidingDft`.
const PHASOR_REFRESH: usize = 256;

/// Samples per render chunk. Chunks are fixed-size and self-contained,
/// so a capture renders bit-identically whether the chunks run on one
/// thread or many.
const CHUNK_SAMPLES: usize = 1 << 16;

/// Which synthesis implementation [`render_train`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SynthMode {
    /// Table-driven kernel, incrementally rotated carrier phasor,
    /// chunked rendering (parallelised across the worker pool).
    /// Matches [`SynthMode::Exact`] to better than −90 dB.
    #[default]
    Fast,
    /// Reference scalar path: per-pulse `cis` and analytically
    /// evaluated kernel. Kept for accuracy audits and tests.
    Exact,
}

/// Synthesis parameters: where the receiver is tuned and how fast it
/// samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Complex sample rate, samples/second.
    pub sample_rate: f64,
    /// Tuner centre frequency, hertz. Choose it so `f_sw` and `2·f_sw`
    /// both land within `±sample_rate/2`.
    pub center_freq: f64,
    /// Synthesis implementation (fast LUT path by default).
    pub mode: SynthMode,
}

impl SynthConfig {
    /// The paper's receiver setup for a given switching frequency:
    /// 2.4 Msps with the tuner centred midway between the fundamental
    /// and its first harmonic so both are in-band (§IV-B1 uses exactly
    /// those two components).
    pub fn rtl_sdr_for(f_sw: f64) -> Self {
        SynthConfig { sample_rate: 2.4e6, center_freq: 1.5 * f_sw, mode: SynthMode::default() }
    }

    /// The same receiver with the reference scalar synthesis path.
    pub fn exact(self) -> Self {
        SynthConfig { mode: SynthMode::Exact, ..self }
    }

    /// Baseband offset of RF frequency `f` under this configuration.
    pub fn baseband(&self, f: f64) -> f64 {
        f - self.center_freq
    }
}

/// Windowed-sinc interpolation kernel evaluated at a fractional sample
/// offset `x` (Hann-windowed, cutoff at Nyquist).
fn kernel(x: f64) -> f64 {
    let half = KERNEL_HALF_WIDTH as f64;
    if x.abs() >= half {
        return 0.0;
    }
    let sinc = if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    };
    let window = 0.5 * (1.0 + (std::f64::consts::PI * x / half).cos());
    sinc * window
}

/// The precomputed kernel table: `kernel(−H + i/LUT_RES)` for
/// `i = 0 ..= 2·H·LUT_RES`, plus one trailing zero so a lookup landing
/// exactly on the right edge can still read `values[i + 1]`. Test
/// oracle for the transposed row table the render loop actually walks.
#[cfg(test)]
fn kernel_lut() -> &'static [f64] {
    static LUT: OnceLock<Vec<f64>> = OnceLock::new();
    LUT.get_or_init(|| {
        let n = 2 * KERNEL_HALF_WIDTH * LUT_RES;
        let mut values: Vec<f64> =
            (0..=n).map(|i| kernel(i as f64 / LUT_RES as f64 - KERNEL_HALF_WIDTH as f64)).collect();
        values.push(0.0);
        values
    })
}

/// Width of one row of the transposed kernel table: one entry per tap
/// a pulse can touch (2·H + 1).
const LUT_ROW: usize = 2 * KERNEL_HALF_WIDTH + 1;

/// The kernel table transposed for the render loop's access pattern.
///
/// A pulse's taps all share one fractional offset `j/LUT_RES` and walk
/// the flat table with stride `LUT_RES` — 26 scattered cache lines per
/// pulse through a 98 KB table that does not fit in L1. Row `j` of
/// this table gathers those strided entries contiguously:
/// `rows[j·LUT_ROW + m] = kernel((j + m·LUT_RES)/LUT_RES − H)`, so one
/// pulse reads exactly two adjacent rows (`j` for the left sample,
/// `j + 1` for the interpolation partner — row `LUT_RES` holds the
/// integer-lattice values that the flat table's `i + 1` wrap lands
/// on). The argument expression matches the flat table's bit for bit,
/// so every interpolated value is unchanged.
fn kernel_lut_rows() -> &'static [f64] {
    static ROWS: OnceLock<Vec<f64>> = OnceLock::new();
    ROWS.get_or_init(|| {
        let mut rows = Vec::with_capacity((LUT_RES + 1) * LUT_ROW);
        for j in 0..=LUT_RES {
            for m in 0..LUT_ROW {
                let i = j + m * LUT_RES;
                rows.push(kernel(i as f64 / LUT_RES as f64 - KERNEL_HALF_WIDTH as f64));
            }
        }
        rows
    })
}

/// Linearly interpolated kernel lookup. `x` must lie in `[−H, H]`
/// (callers construct sample indices so that it does). The render loop
/// inlines a strided form of this walk (index += `LUT_RES`, fixed
/// fraction); this reference form remains the oracle for its tests.
#[cfg(test)]
#[inline]
fn kernel_fast(x: f64, lut: &[f64]) -> f64 {
    let pos = (x + KERNEL_HALF_WIDTH as f64) * LUT_RES as f64;
    let i = pos as usize;
    let frac = pos - i as f64;
    lut[i] + (lut[i + 1] - lut[i]) * frac
}

/// Renders a switching train into an ideal (noise-free, unit-path)
/// complex-baseband waveform of `n_samples` samples.
///
/// The output amplitude is in "source amperes": a VRM continuously
/// replenishing `I` amperes produces a spectral line of complex
/// amplitude ≈ `I` at baseband frequency `f_sw − f_c`.
///
/// # Examples
///
/// ```
/// use emsc_vrm::train::{Pulse, SwitchingTrain};
/// use emsc_emfield::synth::{render_train, SynthConfig};
///
/// // A perfectly regular 1 MHz train carrying 2 µC per pulse.
/// let train = SwitchingTrain {
///     pulses: (0..2000).map(|k| Pulse { t_s: k as f64 * 1e-6, charge_c: 2e-6 }).collect(),
///     nominal_period_s: 1e-6,
///     duration_s: 2e-3,
/// };
/// let cfg = SynthConfig::rtl_sdr_for(1e6);
/// let iq = render_train(&train, cfg, 4096);
/// assert_eq!(iq.len(), 4096);
/// ```
pub fn render_train(train: &SwitchingTrain, config: SynthConfig, n_samples: usize) -> Vec<Complex> {
    match config.mode {
        // The fast path assumes time-ordered pulses (every generator
        // in this workspace emits them that way); fall back to the
        // reference path for the rare unsorted train.
        SynthMode::Fast if pulses_are_sorted(train) => render_train_fast(train, config, n_samples),
        _ => render_train_exact(train, config, n_samples),
    }
}

fn pulses_are_sorted(train: &SwitchingTrain) -> bool {
    train.pulses.windows(2).all(|w| w[0].t_s <= w[1].t_s)
}

/// Reference synthesis: per-pulse `Complex::cis` and the analytic
/// kernel. O(pulses × kernel width), single-threaded.
pub fn render_train_exact(
    train: &SwitchingTrain,
    config: SynthConfig,
    n_samples: usize,
) -> Vec<Complex> {
    let fs = config.sample_rate;
    let mut out = vec![Complex::ZERO; n_samples];
    for pulse in &train.pulses {
        let carrier = Complex::cis(-2.0 * std::f64::consts::PI * config.center_freq * pulse.t_s);
        let amp = pulse.charge_c * fs;
        let center = pulse.t_s * fs;
        let lo = (center - KERNEL_HALF_WIDTH as f64).ceil().max(0.0) as usize;
        let hi =
            ((center + KERNEL_HALF_WIDTH as f64).floor() as usize).min(n_samples.saturating_sub(1));
        for (n, slot) in out.iter_mut().enumerate().take(hi + 1).skip(lo) {
            *slot += carrier.scale(amp * kernel(n as f64 - center));
        }
    }
    out
}

/// Fast synthesis: table-driven kernel, incrementally rotated carrier
/// phasor, independent fixed-size time chunks fanned across the
/// worker pool. Requires time-ordered pulses.
///
/// Determinism: a chunk's samples depend only on the chunk index and
/// the (immutable) train, and chunk results are stitched in index
/// order — so the waveform is bit-identical for any worker count.
fn render_train_fast(
    train: &SwitchingTrain,
    config: SynthConfig,
    n_samples: usize,
) -> Vec<Complex> {
    let n_chunks = n_samples.div_ceil(CHUNK_SAMPLES).max(1);
    if n_chunks == 1 {
        return render_chunk(train, config, 0, n_samples);
    }
    // Chunk values depend only on the chunk index and the train, so a
    // single worker can write them straight into the final buffer —
    // skipping the per-chunk allocations and the stitch copy the
    // fan-out path pays — and stay bit-identical to the pool result.
    if emsc_runtime::current_threads() == 1 {
        let mut out = vec![Complex::ZERO; n_samples];
        for c in 0..n_chunks {
            let start = c * CHUNK_SAMPLES;
            let len = CHUNK_SAMPLES.min(n_samples - start);
            render_chunk_into(train, config, start, &mut out[start..start + len]);
        }
        return out;
    }
    let chunk_ids: Vec<usize> = (0..n_chunks).collect();
    let chunks = emsc_runtime::par_map(&chunk_ids, |&c| {
        let start = c * CHUNK_SAMPLES;
        let len = CHUNK_SAMPLES.min(n_samples - start);
        render_chunk(train, config, start, len)
    });
    let mut out = Vec::with_capacity(n_samples);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Renders the samples `[start, start + len)` of the capture: the
/// contributions of every pulse whose kernel support intersects the
/// chunk, processed in time order with an incremental carrier phasor.
fn render_chunk(
    train: &SwitchingTrain,
    config: SynthConfig,
    start: usize,
    len: usize,
) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; len];
    render_chunk_into(train, config, start, &mut out);
    out
}

/// [`render_chunk`] into a caller-zeroed slice (`out.len()` is the
/// chunk length).
fn render_chunk_into(
    train: &SwitchingTrain,
    config: SynthConfig,
    start: usize,
    out: &mut [Complex],
) {
    let len = out.len();
    let fs = config.sample_rate;
    let omega = -2.0 * std::f64::consts::PI * config.center_freq;
    let lut = kernel_lut_rows();

    // Pulses whose kernel support [t·fs − H, t·fs + H] can reach this
    // chunk (binary search over the time-ordered train).
    let t_min = (start as f64 - KERNEL_HALF_WIDTH as f64) / fs;
    let t_max = ((start + len) as f64 + KERNEL_HALF_WIDTH as f64) / fs;
    let first = train.pulses.partition_point(|p| p.t_s < t_min);
    let last = train.pulses.partition_point(|p| p.t_s < t_max);

    // Incremental carrier phasor: exact `cis` for the first pulse and
    // every PHASOR_REFRESH-th after it; in between, one complex
    // multiply by a Δt rotator that is recomputed only when the pulse
    // spacing changes. Regular trains therefore amortise `cis` to
    // ~1/256 calls per pulse; jittered trains degrade gracefully to
    // one `cis` per pulse.
    let mut carrier = Complex::ZERO;
    let mut prev_t = 0.0f64;
    let mut cached_dt = f64::NAN;
    let mut rotator = Complex::ZERO;
    let mut since_refresh = PHASOR_REFRESH;

    for pulse in &train.pulses[first..last] {
        if since_refresh >= PHASOR_REFRESH {
            carrier = Complex::cis(omega * pulse.t_s);
            since_refresh = 0;
        } else {
            let dt = pulse.t_s - prev_t;
            if dt != cached_dt {
                cached_dt = dt;
                rotator = Complex::cis(omega * dt);
            }
            carrier *= rotator;
        }
        since_refresh += 1;
        prev_t = pulse.t_s;

        let amp = pulse.charge_c * fs;
        let center = pulse.t_s * fs;
        let lo = (center - KERNEL_HALF_WIDTH as f64).ceil().max(start as f64) as usize;
        let hi_abs = (center + KERNEL_HALF_WIDTH as f64).floor();
        if hi_abs < start as f64 {
            continue;
        }
        let hi = (hi_abs as usize).min(start + len - 1);
        // Hoisted LUT walk over the transposed row table: the
        // fractional part is computed once per pulse and the taps read
        // two contiguous rows instead of striding through the flat
        // table. This differs from recomputing `kernel_fast(n −
        // center)` per tap only in the last ulps of the interpolation
        // weight — far inside the fast path's −90 dB accuracy contract
        // (pinned in tests below).
        let pos = (lo as f64 - center + KERNEL_HALF_WIDTH as f64) * LUT_RES as f64;
        let i0 = pos as usize;
        let frac = pos - i0 as f64;
        let (j, t0) = (i0 % LUT_RES, i0 / LUT_RES);
        let row_a = &lut[j * LUT_ROW + t0..(j + 1) * LUT_ROW];
        let row_b = &lut[(j + 1) * LUT_ROW + t0..(j + 2) * LUT_ROW];
        let dst = &mut out[lo - start..hi + 1 - start];
        // A pulse clear of the chunk edges touches 12 or 13 taps
        // depending on its fractional center; dispatching those two
        // counts to a const-length block lets the compiler unroll and
        // schedule the taps as one straight-line group. Same ops in
        // the same order — bit-identical to the generic loop below,
        // which keeps handling the edge-clipped stragglers.
        match dst.len() {
            N_FULL => tap_block::<N_FULL>(dst, row_a, row_b, frac, amp, carrier),
            N_SHORT => tap_block::<N_SHORT>(dst, row_a, row_b, frac, amp, carrier),
            _ => {
                for ((slot, &a), &b) in dst.iter_mut().zip(row_a).zip(row_b) {
                    let k = a + (b - a) * frac;
                    *slot += carrier.scale(amp * k);
                }
            }
        }
    }
}

/// All-taps count of an unclipped pulse with near-integer center.
const N_FULL: usize = LUT_ROW;
/// Taps of an unclipped pulse with a strictly fractional center.
const N_SHORT: usize = LUT_ROW - 1;

/// One pulse's tap updates at a compile-time count: `dst[i] +=
/// carrier · (amp · k_i)` with the same per-tap expression as the
/// generic loop in [`render_chunk_into`].
#[inline]
fn tap_block<const N: usize>(
    dst: &mut [Complex],
    row_a: &[f64],
    row_b: &[f64],
    frac: f64,
    amp: f64,
    carrier: Complex,
) {
    let dst: &mut [Complex; N] = dst.try_into().expect("tap count");
    let row_a: &[f64; N] = row_a[..N].try_into().expect("row length");
    let row_b: &[f64; N] = row_b[..N].try_into().expect("row length");
    for i in 0..N {
        let k = row_a[i] + (row_b[i] - row_a[i]) * frac;
        dst[i] += carrier.scale(amp * k);
    }
}

/// Number of samples needed to cover a train's full duration.
pub fn samples_for(train: &SwitchingTrain, config: SynthConfig) -> usize {
    (train.duration_s * config.sample_rate).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::fft::{frequency_bin, plan_for};
    use emsc_vrm::train::Pulse;

    fn regular_train(f_sw: f64, charge_c: f64, duration_s: f64) -> SwitchingTrain {
        let period = 1.0 / f_sw;
        let n = (duration_s / period) as usize;
        SwitchingTrain {
            pulses: (0..n).map(|k| Pulse { t_s: k as f64 * period, charge_c }).collect(),
            nominal_period_s: period,
            duration_s,
        }
    }

    fn spectrum_peak_near(iq: &[Complex], fs: f64, f_bb: f64, fft_size: usize) -> f64 {
        let mut spec = iq[..fft_size].to_vec();
        plan_for(fft_size).forward(&mut spec);
        let k = frequency_bin(f_bb, fft_size, fs);
        // allow ±1 bin
        let mut best = 0.0f64;
        for dk in [-1i64, 0, 1] {
            let idx = (k as i64 + dk).rem_euclid(fft_size as i64) as usize;
            best = best.max(spec[idx].abs());
        }
        best / fft_size as f64
    }

    #[test]
    fn kernel_is_interpolating() {
        assert!((kernel(0.0) - 1.0).abs() < 1e-12);
        for m in 1..KERNEL_HALF_WIDTH {
            assert!(kernel(m as f64).abs() < 1e-12, "kernel({m}) not zero");
        }
        assert_eq!(kernel(100.0), 0.0);
    }

    #[test]
    fn spectral_line_amplitude_equals_mean_current() {
        // 937.5 kHz train of 8 µC pulses = 8 A mean replenish current.
        // (937.5 kHz puts the baseband line exactly on FFT bin −1600
        // of 8192 at 2.4 Msps, avoiding scalloping loss in the check.)
        let f_sw = 937.5e3;
        let train = regular_train(f_sw, 8e-6, 10e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let iq = render_train(&train, cfg, samples_for(&train, cfg));
        let line = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        assert!((line - 8.0).abs() / 8.0 < 0.15, "line amplitude {line}");
    }

    #[test]
    fn first_harmonic_is_present() {
        let f_sw = 970e3;
        let train = regular_train(f_sw, 5e-6, 10e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let iq = render_train(&train, cfg, samples_for(&train, cfg));
        let h1 = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let h2 = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(2.0 * f_sw), 8192);
        assert!(h1 > 2.0, "fundamental {h1}");
        assert!(h2 > 1.0, "harmonic {h2}");
    }

    #[test]
    fn sparse_train_has_proportionally_weaker_line() {
        let f_sw = 937.5e3;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let dense = regular_train(f_sw, 8e-6, 10e-3);
        // Every 16th period, same per-pulse charge-cap style as PFM:
        let sparse = SwitchingTrain {
            pulses: dense.pulses.iter().step_by(16).copied().collect(),
            ..dense.clone()
        };
        let iq_d = render_train(&dense, cfg, samples_for(&dense, cfg));
        let iq_s = render_train(&sparse, cfg, samples_for(&sparse, cfg));
        let line_d = spectrum_peak_near(&iq_d, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let line_s = spectrum_peak_near(&iq_s, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let ratio = line_d / line_s;
        assert!((ratio - 16.0).abs() < 3.0, "ratio {ratio}");
    }

    #[test]
    fn randomized_periods_spread_the_line() {
        // Jitter each pulse time by ±50 % of a period: the coherent
        // line at f_sw collapses.
        let f_sw = 937.5e3;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let regular = regular_train(f_sw, 8e-6, 10e-3);
        let mut jittered = regular.clone();
        let mut state = 0x12345u64;
        for p in &mut jittered.pulses {
            // xorshift for a dependency-free deterministic jitter
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            p.t_s += u / f_sw;
        }
        let iq_r = render_train(&regular, cfg, samples_for(&regular, cfg));
        let iq_j = render_train(&jittered, cfg, samples_for(&jittered, cfg));
        let line_r = spectrum_peak_near(&iq_r, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let line_j = spectrum_peak_near(&iq_j, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        assert!(line_r > 3.0 * line_j, "regular {line_r} vs jittered {line_j}");
    }

    #[test]
    fn out_of_band_harmonics_are_attenuated() {
        // Harmonic 3 of a 970 kHz train sits at 2.91 MHz, outside the
        // ±1.2 MHz band around the 1.455 MHz tuner: after the kernel's
        // anti-alias response its folded image must be much weaker
        // than the in-band lines.
        let f_sw = 970e3;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let train = regular_train(f_sw, 8e-6, 10e-3);
        let iq = render_train(&train, cfg, samples_for(&train, cfg));
        let in_band = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        // Folded image of h3: offset 2.91 MHz − 1.455 MHz = 1.455 MHz
        // wraps to 1.455 − 2.4 = −0.945 MHz.
        let folded = spectrum_peak_near(
            &iq,
            cfg.sample_rate,
            2.0 * f_sw - 2.4e6 + f_sw - cfg.center_freq,
            8192,
        );
        assert!(in_band > 4.0 * folded, "in-band {in_band} vs folded {folded}");
    }

    #[test]
    fn render_is_linear_in_charge() {
        let f_sw = 1e6;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let a = regular_train(f_sw, 2e-6, 2e-3);
        let b = regular_train(f_sw, 4e-6, 2e-3);
        let ia = render_train(&a, cfg, 4096);
        let ib = render_train(&b, cfg, 4096);
        for (x, y) in ia.iter().zip(&ib) {
            assert!((y.abs() - 2.0 * x.abs()).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_train_renders_silence() {
        let train = SwitchingTrain { pulses: Vec::new(), nominal_period_s: 1e-6, duration_s: 1e-3 };
        let cfg = SynthConfig::rtl_sdr_for(1e6);
        let iq = render_train(&train, cfg, 2400);
        assert!(iq.iter().all(|z| z.abs() == 0.0));
    }

    /// RMS error of the fast path relative to the exact path, in dB.
    fn relative_error_db(fast: &[Complex], exact: &[Complex]) -> f64 {
        let err: f64 = fast.iter().zip(exact).map(|(a, b)| (*a - *b).norm_sqr()).sum();
        let sig: f64 = exact.iter().map(|z| z.norm_sqr()).sum();
        10.0 * (err / sig.max(1e-300)).log10()
    }

    #[test]
    fn fast_path_matches_exact_below_minus_90_db() {
        // Regular train — the phasor's amortised-rotation regime —
        // long enough to span several chunks.
        let f_sw = 937.5e3;
        let train = regular_train(f_sw, 8e-6, 60e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let n = samples_for(&train, cfg);
        assert!(n > CHUNK_SAMPLES, "test must cover the chunked path");
        let fast = render_train(&train, cfg, n);
        let exact = render_train_exact(&train, cfg, n);
        let db = relative_error_db(&fast, &exact);
        assert!(db <= -90.0, "fast path error {db:.1} dB");
    }

    #[test]
    fn fast_path_matches_exact_on_jittered_trains() {
        // Jitter defeats the Δt rotator cache — every pulse recomputes
        // its rotator — and still must meet the accuracy contract.
        let f_sw = 937.5e3;
        let mut train = regular_train(f_sw, 8e-6, 10e-3);
        let mut state = 0xABCDu64;
        for p in &mut train.pulses {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            p.t_s = (p.t_s + 0.4 * u / f_sw).max(0.0);
        }
        train.pulses.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let n = samples_for(&train, cfg);
        let fast = render_train(&train, cfg, n);
        let exact = render_train_exact(&train, cfg, n);
        let db = relative_error_db(&fast, &exact);
        assert!(db <= -90.0, "fast path error {db:.1} dB");
    }

    #[test]
    fn exact_mode_flag_selects_the_reference_path() {
        let f_sw = 1e6;
        let train = regular_train(f_sw, 2e-6, 2e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let via_flag = render_train(&train, cfg.exact(), 4096);
        let direct = render_train_exact(&train, cfg, 4096);
        assert!(via_flag.iter().zip(&direct).all(|(a, b)| a.re == b.re && a.im == b.im));
    }

    #[test]
    fn unsorted_trains_fall_back_to_the_exact_path() {
        let f_sw = 1e6;
        let mut train = regular_train(f_sw, 2e-6, 2e-3);
        train.pulses.reverse();
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let fast_cfg = render_train(&train, cfg, 4096);
        let exact = render_train_exact(&train, cfg, 4096);
        assert!(fast_cfg.iter().zip(&exact).all(|(a, b)| a.re == b.re && a.im == b.im));
    }

    #[test]
    fn chunked_render_is_thread_count_independent() {
        let f_sw = 937.5e3;
        let train = regular_train(f_sw, 8e-6, 60e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let n = samples_for(&train, cfg);
        let serial = emsc_runtime::with_threads(1, || render_train(&train, cfg, n));
        let parallel = emsc_runtime::with_threads(8, || render_train(&train, cfg, n));
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()));
    }

    #[test]
    fn strided_lut_walk_matches_per_tap_lookup() {
        // `render_chunk` hoists the LUT interpolation: the index
        // strides by LUT_RES with a once-per-pulse fractional part.
        // Check it against the naive per-tap `kernel_fast` for awkward
        // fractional centers, including the exact-edge case.
        let lut = kernel_lut();
        for &center in &[123.456_789f64, 7.000_001, 99_999.500_000_3, 6.0, 1234.0] {
            let lo = (center - KERNEL_HALF_WIDTH as f64).ceil() as usize;
            let hi = (center + KERNEL_HALF_WIDTH as f64).floor() as usize;
            let pos = (lo as f64 - center + KERNEL_HALF_WIDTH as f64) * LUT_RES as f64;
            let mut idx = pos as usize;
            let frac = pos - idx as f64;
            for n in lo..=hi {
                let strided = lut[idx] + (lut[idx + 1] - lut[idx]) * frac;
                let direct = kernel_fast(n as f64 - center, lut);
                assert!(
                    (strided - direct).abs() < 1e-9,
                    "center {center} n {n}: strided {strided} direct {direct}"
                );
                idx += LUT_RES;
            }
        }
    }

    #[test]
    fn transposed_rows_match_flat_lut_bitwise() {
        // Every entry of the row table must be the flat table's
        // strided entry bit for bit, so the render walk's interpolated
        // values are unchanged by the transposition. Row entries past
        // the flat table's end land outside the kernel support and
        // must be exactly zero.
        let flat = kernel_lut();
        let rows = kernel_lut_rows();
        assert_eq!(rows.len(), (LUT_RES + 1) * LUT_ROW);
        for j in 0..=LUT_RES {
            for m in 0..LUT_ROW {
                let i = j + m * LUT_RES;
                let want = if i < flat.len() { flat[i] } else { 0.0 };
                assert_eq!(
                    rows[j * LUT_ROW + m].to_bits(),
                    want.to_bits(),
                    "row {j} tap {m} (flat index {i})"
                );
            }
        }
    }

    mod lut_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn lut_kernel_tracks_analytic_kernel(x in -6.5f64..6.5) {
                let lut = kernel_lut();
                let clamped = x.clamp(-(KERNEL_HALF_WIDTH as f64), KERNEL_HALF_WIDTH as f64);
                let approx = kernel_fast(clamped, lut);
                let truth = kernel(clamped);
                prop_assert!((approx - truth).abs() < 3e-6, "x {} err {}", clamped, (approx - truth).abs());
            }

            #[test]
            fn fast_render_matches_exact_for_random_trains(
                f_sw in 0.5e6f64..1.2e6,
                charge in 1e-6f64..9e-6,
                jitter in 0.0f64..0.45,
            ) {
                let mut train = regular_train(f_sw, charge, 4e-3);
                let mut state = (f_sw as u64) ^ 0x5EED;
                for p in &mut train.pulses {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
                    p.t_s = (p.t_s + jitter * u / f_sw).max(0.0);
                }
                train.pulses.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());
                let cfg = SynthConfig::rtl_sdr_for(f_sw);
                let n = samples_for(&train, cfg);
                let fast = render_train(&train, cfg, n);
                let exact = render_train_exact(&train, cfg, n);
                let db = relative_error_db(&fast, &exact);
                prop_assert!(db <= -90.0, "error {} dB", db);
            }
        }
    }
}
