//! Synthesis of the VRM's electromagnetic emission at complex baseband.
//!
//! Each replenishment pulse is a burst of `di/dt` which, by Faraday's
//! law, produces a magnetic-field transient whose strength scales with
//! the transferred charge. A pulse train that fires every switching
//! period therefore emits strong spectral lines at `f_sw` and its
//! harmonics; a pulse-skipped train emits proportionally weaker lines
//! (§II of the paper).
//!
//! We synthesise the *complex baseband* representation of that field
//! around a tuner centre frequency `f_c` at sample rate `fs`: a pulse
//! of charge `Q` at time `t_k` contributes a band-limited impulse
//!
//! ```text
//! s(t) += Q · fs · e^{−2πi·f_c·t_k} · k((t − t_k)·fs)
//! ```
//!
//! where `k` is a windowed-sinc interpolation kernel. The kernel acts
//! as the receiver's anti-alias filter (out-of-band harmonics are
//! attenuated instead of folding onto the measurement bins), while the
//! complex exponential carries the carrier phase, so spectral lines,
//! PFM sub-harmonics, and the phase decoherence caused by the
//! switching-randomisation countermeasure all emerge naturally in the
//! capture's spectrum.

use emsc_sdr::iq::Complex;
use emsc_vrm::train::SwitchingTrain;

/// Half-width of the interpolation kernel, in samples.
const KERNEL_HALF_WIDTH: usize = 6;

/// Synthesis parameters: where the receiver is tuned and how fast it
/// samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Complex sample rate, samples/second.
    pub sample_rate: f64,
    /// Tuner centre frequency, hertz. Choose it so `f_sw` and `2·f_sw`
    /// both land within `±sample_rate/2`.
    pub center_freq: f64,
}

impl SynthConfig {
    /// The paper's receiver setup for a given switching frequency:
    /// 2.4 Msps with the tuner centred midway between the fundamental
    /// and its first harmonic so both are in-band (§IV-B1 uses exactly
    /// those two components).
    pub fn rtl_sdr_for(f_sw: f64) -> Self {
        SynthConfig { sample_rate: 2.4e6, center_freq: 1.5 * f_sw }
    }

    /// Baseband offset of RF frequency `f` under this configuration.
    pub fn baseband(&self, f: f64) -> f64 {
        f - self.center_freq
    }
}

/// Windowed-sinc interpolation kernel evaluated at a fractional sample
/// offset `x` (Hann-windowed, cutoff at Nyquist).
fn kernel(x: f64) -> f64 {
    let half = KERNEL_HALF_WIDTH as f64;
    if x.abs() >= half {
        return 0.0;
    }
    let sinc = if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    };
    let window = 0.5 * (1.0 + (std::f64::consts::PI * x / half).cos());
    sinc * window
}

/// Renders a switching train into an ideal (noise-free, unit-path)
/// complex-baseband waveform of `n_samples` samples.
///
/// The output amplitude is in "source amperes": a VRM continuously
/// replenishing `I` amperes produces a spectral line of complex
/// amplitude ≈ `I` at baseband frequency `f_sw − f_c`.
///
/// # Examples
///
/// ```
/// use emsc_vrm::train::{Pulse, SwitchingTrain};
/// use emsc_emfield::synth::{render_train, SynthConfig};
///
/// // A perfectly regular 1 MHz train carrying 2 µC per pulse.
/// let train = SwitchingTrain {
///     pulses: (0..2000).map(|k| Pulse { t_s: k as f64 * 1e-6, charge_c: 2e-6 }).collect(),
///     nominal_period_s: 1e-6,
///     duration_s: 2e-3,
/// };
/// let cfg = SynthConfig::rtl_sdr_for(1e6);
/// let iq = render_train(&train, cfg, 4096);
/// assert_eq!(iq.len(), 4096);
/// ```
pub fn render_train(train: &SwitchingTrain, config: SynthConfig, n_samples: usize) -> Vec<Complex> {
    let fs = config.sample_rate;
    let mut out = vec![Complex::ZERO; n_samples];
    for pulse in &train.pulses {
        let carrier = Complex::cis(-2.0 * std::f64::consts::PI * config.center_freq * pulse.t_s);
        let amp = pulse.charge_c * fs;
        let center = pulse.t_s * fs;
        let lo = (center - KERNEL_HALF_WIDTH as f64).ceil().max(0.0) as usize;
        let hi = ((center + KERNEL_HALF_WIDTH as f64).floor() as usize).min(n_samples.saturating_sub(1));
        for (n, slot) in out.iter_mut().enumerate().take(hi + 1).skip(lo) {
            *slot += carrier.scale(amp * kernel(n as f64 - center));
        }
    }
    out
}

/// Number of samples needed to cover a train's full duration.
pub fn samples_for(train: &SwitchingTrain, config: SynthConfig) -> usize {
    (train.duration_s * config.sample_rate).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::fft::{fft, frequency_bin};
    use emsc_vrm::train::Pulse;

    fn regular_train(f_sw: f64, charge_c: f64, duration_s: f64) -> SwitchingTrain {
        let period = 1.0 / f_sw;
        let n = (duration_s / period) as usize;
        SwitchingTrain {
            pulses: (0..n).map(|k| Pulse { t_s: k as f64 * period, charge_c }).collect(),
            nominal_period_s: period,
            duration_s,
        }
    }

    fn spectrum_peak_near(iq: &[Complex], fs: f64, f_bb: f64, fft_size: usize) -> f64 {
        let spec = fft(&iq[..fft_size]);
        let k = frequency_bin(f_bb, fft_size, fs);
        // allow ±1 bin
        let mut best = 0.0f64;
        for dk in [-1i64, 0, 1] {
            let idx = (k as i64 + dk).rem_euclid(fft_size as i64) as usize;
            best = best.max(spec[idx].abs());
        }
        best / fft_size as f64
    }

    #[test]
    fn kernel_is_interpolating() {
        assert!((kernel(0.0) - 1.0).abs() < 1e-12);
        for m in 1..KERNEL_HALF_WIDTH {
            assert!(kernel(m as f64).abs() < 1e-12, "kernel({m}) not zero");
        }
        assert_eq!(kernel(100.0), 0.0);
    }

    #[test]
    fn spectral_line_amplitude_equals_mean_current() {
        // 937.5 kHz train of 8 µC pulses = 8 A mean replenish current.
        // (937.5 kHz puts the baseband line exactly on FFT bin −1600
        // of 8192 at 2.4 Msps, avoiding scalloping loss in the check.)
        let f_sw = 937.5e3;
        let train = regular_train(f_sw, 8e-6, 10e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let iq = render_train(&train, cfg, samples_for(&train, cfg));
        let line = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        assert!((line - 8.0).abs() / 8.0 < 0.15, "line amplitude {line}");
    }

    #[test]
    fn first_harmonic_is_present() {
        let f_sw = 970e3;
        let train = regular_train(f_sw, 5e-6, 10e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let iq = render_train(&train, cfg, samples_for(&train, cfg));
        let h1 = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let h2 = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(2.0 * f_sw), 8192);
        assert!(h1 > 2.0, "fundamental {h1}");
        assert!(h2 > 1.0, "harmonic {h2}");
    }

    #[test]
    fn sparse_train_has_proportionally_weaker_line() {
        let f_sw = 937.5e3;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let dense = regular_train(f_sw, 8e-6, 10e-3);
        // Every 16th period, same per-pulse charge-cap style as PFM:
        let sparse = SwitchingTrain {
            pulses: dense
                .pulses
                .iter()
                .step_by(16)
                .copied()
                .collect(),
            ..dense.clone()
        };
        let iq_d = render_train(&dense, cfg, samples_for(&dense, cfg));
        let iq_s = render_train(&sparse, cfg, samples_for(&sparse, cfg));
        let line_d = spectrum_peak_near(&iq_d, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let line_s = spectrum_peak_near(&iq_s, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let ratio = line_d / line_s;
        assert!((ratio - 16.0).abs() < 3.0, "ratio {ratio}");
    }

    #[test]
    fn randomized_periods_spread_the_line() {
        // Jitter each pulse time by ±50 % of a period: the coherent
        // line at f_sw collapses.
        let f_sw = 937.5e3;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let regular = regular_train(f_sw, 8e-6, 10e-3);
        let mut jittered = regular.clone();
        let mut state = 0x12345u64;
        for p in &mut jittered.pulses {
            // xorshift for a dependency-free deterministic jitter
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            p.t_s += u / f_sw;
        }
        let iq_r = render_train(&regular, cfg, samples_for(&regular, cfg));
        let iq_j = render_train(&jittered, cfg, samples_for(&jittered, cfg));
        let line_r = spectrum_peak_near(&iq_r, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let line_j = spectrum_peak_near(&iq_j, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        assert!(line_r > 3.0 * line_j, "regular {line_r} vs jittered {line_j}");
    }

    #[test]
    fn out_of_band_harmonics_are_attenuated() {
        // Harmonic 3 of a 970 kHz train sits at 2.91 MHz, outside the
        // ±1.2 MHz band around the 1.455 MHz tuner: after the kernel's
        // anti-alias response its folded image must be much weaker
        // than the in-band lines.
        let f_sw = 970e3;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let train = regular_train(f_sw, 8e-6, 10e-3);
        let iq = render_train(&train, cfg, samples_for(&train, cfg));
        let in_band = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        // Folded image of h3: offset 2.91 MHz − 1.455 MHz = 1.455 MHz
        // wraps to 1.455 − 2.4 = −0.945 MHz.
        let folded = spectrum_peak_near(&iq, cfg.sample_rate, 2.0 * f_sw - 2.4e6 + f_sw - cfg.center_freq, 8192);
        assert!(in_band > 4.0 * folded, "in-band {in_band} vs folded {folded}");
    }

    #[test]
    fn render_is_linear_in_charge() {
        let f_sw = 1e6;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let a = regular_train(f_sw, 2e-6, 2e-3);
        let b = regular_train(f_sw, 4e-6, 2e-3);
        let ia = render_train(&a, cfg, 4096);
        let ib = render_train(&b, cfg, 4096);
        for (x, y) in ia.iter().zip(&ib) {
            assert!((y.abs() - 2.0 * x.abs()).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_train_renders_silence() {
        let train = SwitchingTrain { pulses: Vec::new(), nominal_period_s: 1e-6, duration_s: 1e-3 };
        let cfg = SynthConfig::rtl_sdr_for(1e6);
        let iq = render_train(&train, cfg, 2400);
        assert!(iq.iter().all(|z| z.abs() == 0.0));
    }
}
