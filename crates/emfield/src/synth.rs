//! Synthesis of the VRM's electromagnetic emission at complex baseband.
//!
//! Each replenishment pulse is a burst of `di/dt` which, by Faraday's
//! law, produces a magnetic-field transient whose strength scales with
//! the transferred charge. A pulse train that fires every switching
//! period therefore emits strong spectral lines at `f_sw` and its
//! harmonics; a pulse-skipped train emits proportionally weaker lines
//! (§II of the paper).
//!
//! We synthesise the *complex baseband* representation of that field
//! around a tuner centre frequency `f_c` at sample rate `fs`: a pulse
//! of charge `Q` at time `t_k` contributes a band-limited impulse
//!
//! ```text
//! s(t) += Q · fs · e^{−2πi·f_c·t_k} · k((t − t_k)·fs)
//! ```
//!
//! where `k` is a windowed-sinc interpolation kernel. The kernel acts
//! as the receiver's anti-alias filter (out-of-band harmonics are
//! attenuated instead of folding onto the measurement bins), while the
//! complex exponential carries the carrier phase, so spectral lines,
//! PFM sub-harmonics, and the phase decoherence caused by the
//! switching-randomisation countermeasure all emerge naturally in the
//! capture's spectrum.

use std::sync::OnceLock;

use emsc_sdr::iq::Complex;
use emsc_vrm::train::SwitchingTrain;

/// Half-width of the interpolation kernel, in samples.
const KERNEL_HALF_WIDTH: usize = 6;

/// Kernel look-up table resolution, entries per unit sample offset.
/// Linear interpolation at this density keeps the worst-case kernel
/// error below ~2·10⁻⁶ of the peak — two orders of magnitude under
/// the synthesis accuracy contract (−90 dB, asserted in tests).
const LUT_RES: usize = 1024;

/// Fast-path pulses between exact carrier-phasor re-computations.
/// The incremental rotation drifts ≲ 1 ulp per step, so the error at
/// refresh time stays ~1e-13 — the same periodic drift-control pattern
/// as `emsc_sdr::sliding::SlidingDft`. Anchors sit at *global pulse
/// indices* (`p % PHASOR_REFRESH == 0`), never at chunk boundaries, so
/// the phasor at any pulse is a function of the train alone and every
/// window decomposition reproduces it bit for bit.
const PHASOR_REFRESH: usize = 256;

/// Samples per render chunk on the whole-buffer fast path. Windows are
/// self-contained and window-invariant (see [`render_train_window`]),
/// so a capture renders bit-identically whether the chunks run on one
/// thread or many — and at any other block size.
const CHUNK_SAMPLES: usize = 1 << 16;

/// Which synthesis implementation [`render_train`] (and its
/// chunk-windowed form [`render_train_window`]) uses.
///
/// Both modes render *window-invariantly*: the samples of any window
/// `[start, start + len)` are bit-identical to the same index range of
/// a whole-buffer render, so callers may decompose a capture into
/// blocks of any size — the fused TX chain renders L1-sized blocks,
/// the whole-buffer path renders [`CHUNK_SAMPLES`]-sized chunks across
/// the worker pool, and both agree exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SynthMode {
    /// Table-driven kernel with a globally-anchored incremental
    /// carrier phasor (exact `cis` at every [`PHASOR_REFRESH`]-th
    /// pulse *of the train*, one complex multiply in between).
    /// Matches [`SynthMode::Exact`] to better than −90 dB.
    #[default]
    Fast,
    /// Reference scalar path: per-pulse `cis` and analytically
    /// evaluated kernel. Kept for accuracy audits and tests. Every
    /// tap is computed from absolute sample indices, so the windowed
    /// form is trivially bit-identical to the whole-buffer form.
    Exact,
}

/// Synthesis parameters: where the receiver is tuned and how fast it
/// samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Complex sample rate, samples/second.
    pub sample_rate: f64,
    /// Tuner centre frequency, hertz. Choose it so `f_sw` and `2·f_sw`
    /// both land within `±sample_rate/2`.
    pub center_freq: f64,
    /// Synthesis implementation (fast LUT path by default).
    pub mode: SynthMode,
}

impl SynthConfig {
    /// The paper's receiver setup for a given switching frequency:
    /// 2.4 Msps with the tuner centred midway between the fundamental
    /// and its first harmonic so both are in-band (§IV-B1 uses exactly
    /// those two components).
    pub fn rtl_sdr_for(f_sw: f64) -> Self {
        SynthConfig { sample_rate: 2.4e6, center_freq: 1.5 * f_sw, mode: SynthMode::default() }
    }

    /// The same receiver with the reference scalar synthesis path.
    pub fn exact(self) -> Self {
        SynthConfig { mode: SynthMode::Exact, ..self }
    }

    /// Baseband offset of RF frequency `f` under this configuration.
    pub fn baseband(&self, f: f64) -> f64 {
        f - self.center_freq
    }
}

/// Windowed-sinc interpolation kernel evaluated at a fractional sample
/// offset `x` (Hann-windowed, cutoff at Nyquist).
fn kernel(x: f64) -> f64 {
    let half = KERNEL_HALF_WIDTH as f64;
    if x.abs() >= half {
        return 0.0;
    }
    let sinc = if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    };
    let window = 0.5 * (1.0 + (std::f64::consts::PI * x / half).cos());
    sinc * window
}

/// The precomputed kernel table: `kernel(−H + i/LUT_RES)` for
/// `i = 0 ..= 2·H·LUT_RES`, plus one trailing zero so a lookup landing
/// exactly on the right edge can still read `values[i + 1]`. Test
/// oracle for the transposed row table the render loop actually walks.
#[cfg(test)]
fn kernel_lut() -> &'static [f64] {
    static LUT: OnceLock<Vec<f64>> = OnceLock::new();
    LUT.get_or_init(|| {
        let n = 2 * KERNEL_HALF_WIDTH * LUT_RES;
        let mut values: Vec<f64> =
            (0..=n).map(|i| kernel(i as f64 / LUT_RES as f64 - KERNEL_HALF_WIDTH as f64)).collect();
        values.push(0.0);
        values
    })
}

/// Width of one row of the transposed kernel table: one entry per tap
/// a pulse can touch (2·H + 1).
const LUT_ROW: usize = 2 * KERNEL_HALF_WIDTH + 1;

/// The kernel table transposed for the render loop's access pattern.
///
/// A pulse's taps all share one fractional offset `j/LUT_RES` and walk
/// the flat table with stride `LUT_RES` — 26 scattered cache lines per
/// pulse through a 98 KB table that does not fit in L1. Row `j` of
/// this table gathers those strided entries contiguously:
/// `rows[j·LUT_ROW + m] = kernel((j + m·LUT_RES)/LUT_RES − H)`, so one
/// pulse reads exactly two adjacent rows (`j` for the left sample,
/// `j + 1` for the interpolation partner — row `LUT_RES` holds the
/// integer-lattice values that the flat table's `i + 1` wrap lands
/// on). The argument expression matches the flat table's bit for bit,
/// so every interpolated value is unchanged.
fn kernel_lut_rows() -> &'static [f64] {
    static ROWS: OnceLock<Vec<f64>> = OnceLock::new();
    ROWS.get_or_init(|| {
        let mut rows = Vec::with_capacity((LUT_RES + 1) * LUT_ROW);
        for j in 0..=LUT_RES {
            for m in 0..LUT_ROW {
                let i = j + m * LUT_RES;
                rows.push(kernel(i as f64 / LUT_RES as f64 - KERNEL_HALF_WIDTH as f64));
            }
        }
        rows
    })
}

/// Linearly interpolated kernel lookup. `x` must lie in `[−H, H]`
/// (callers construct sample indices so that it does). The render loop
/// inlines a strided form of this walk (index += `LUT_RES`, fixed
/// fraction); this reference form remains the oracle for its tests.
#[cfg(test)]
#[inline]
fn kernel_fast(x: f64, lut: &[f64]) -> f64 {
    let pos = (x + KERNEL_HALF_WIDTH as f64) * LUT_RES as f64;
    let i = pos as usize;
    let frac = pos - i as f64;
    lut[i] + (lut[i + 1] - lut[i]) * frac
}

/// Renders a switching train into an ideal (noise-free, unit-path)
/// complex-baseband waveform of `n_samples` samples.
///
/// The output amplitude is in "source amperes": a VRM continuously
/// replenishing `I` amperes produces a spectral line of complex
/// amplitude ≈ `I` at baseband frequency `f_sw − f_c`.
///
/// # Examples
///
/// ```
/// use emsc_vrm::train::{Pulse, SwitchingTrain};
/// use emsc_emfield::synth::{render_train, SynthConfig};
///
/// // A perfectly regular 1 MHz train carrying 2 µC per pulse.
/// let train = SwitchingTrain {
///     pulses: (0..2000).map(|k| Pulse { t_s: k as f64 * 1e-6, charge_c: 2e-6 }).collect(),
///     nominal_period_s: 1e-6,
///     duration_s: 2e-3,
/// };
/// let cfg = SynthConfig::rtl_sdr_for(1e6);
/// let iq = render_train(&train, cfg, 4096);
/// assert_eq!(iq.len(), 4096);
/// ```
pub fn render_train(train: &SwitchingTrain, config: SynthConfig, n_samples: usize) -> Vec<Complex> {
    match config.mode {
        // The fast path assumes time-ordered pulses (every generator
        // in this workspace emits them that way); fall back to the
        // reference path for the rare unsorted train.
        SynthMode::Fast if pulses_are_sorted(train) => render_train_fast(train, config, n_samples),
        _ => render_train_exact(train, config, n_samples),
    }
}

/// Whether the train's pulses are time-ordered — the precondition for
/// the binary-searched fast paths. O(pulses); callers rendering many
/// windows of one train should probe once and pass the result to
/// [`render_train_window_hint`] instead of paying this per window.
pub fn pulses_sorted(train: &SwitchingTrain) -> bool {
    train.pulses.windows(2).all(|w| w[0].t_s <= w[1].t_s)
}

fn pulses_are_sorted(train: &SwitchingTrain) -> bool {
    pulses_sorted(train)
}

/// Renders the window `[start, start + out.len())` of a capture —
/// bit-identical to the same index range of a whole-buffer
/// [`render_train`] — *adding* each pulse's contribution into the
/// caller-zeroed `out` slice.
///
/// This is the chunk-windowed entry the fused TX chain renders its
/// cache-resident blocks through. Window invariance holds because
/// nothing in either mode depends on the window placement:
///
/// - the carrier phasor anchors at global pulse indices (an exact
///   `cis` at every [`PHASOR_REFRESH`]-th pulse *of the train*), and a
///   window warms it up from the nearest anchor at or before its first
///   pulse — the Δt rotator is a pure function of the pulse spacing,
///   so the warm-up reproduces the whole-buffer product exactly;
/// - each pulse's kernel-LUT row and interpolation fraction are
///   computed from the pulse's *intrinsic* first tap (`⌈center − H⌉`,
///   which may precede the window); clipping at the window edge only
///   shifts an integer row offset, never the fraction.
///
/// Cost per window beyond the taps themselves: one binary search over
/// the train and at most `PHASOR_REFRESH − 1` carrier warm-up
/// multiplies, both negligible at kilosample block sizes.
pub fn render_train_window(
    train: &SwitchingTrain,
    config: SynthConfig,
    start: usize,
    out: &mut [Complex],
) {
    render_train_window_hint(train, config, pulses_sorted(train), start, out)
}

/// [`render_train_window`] with the [`pulses_sorted`] probe hoisted
/// out: `sorted` **must** equal `pulses_sorted(train)`. This is the
/// entry for blockwise producers — the probe is O(pulses), so paying
/// it once per run instead of once per block keeps the per-window
/// overhead at the documented binary-search + warm-up level. Both
/// modes narrow to the window's pulse range when `sorted` (skipped
/// pulses contribute nothing in-window, so output is bit-identical to
/// the full walk).
pub fn render_train_window_hint(
    train: &SwitchingTrain,
    config: SynthConfig,
    sorted: bool,
    start: usize,
    out: &mut [Complex],
) {
    match config.mode {
        SynthMode::Fast if sorted => render_window_fast(train, config, start, out),
        _ => render_window_exact(train, config, sorted, start, out),
    }
}

/// Reference synthesis: per-pulse `Complex::cis` and the analytic
/// kernel. O(pulses × kernel width), single-threaded.
pub fn render_train_exact(
    train: &SwitchingTrain,
    config: SynthConfig,
    n_samples: usize,
) -> Vec<Complex> {
    let mut out = vec![Complex::ZERO; n_samples];
    render_window_exact(train, config, false, 0, &mut out);
    out
}

/// Windowed reference path: absolute sample indices and per-pulse
/// `cis`, so a window is bit-identical to the matching range of the
/// whole-buffer render by construction. When the caller vouches the
/// train is time-ordered, the pulse walk narrows to the window's
/// support range by binary search (out-of-range pulses contribute
/// nothing in-window, so the narrowed walk is bit-identical); an
/// unsorted train falls back to walking every pulse.
fn render_window_exact(
    train: &SwitchingTrain,
    config: SynthConfig,
    sorted: bool,
    start: usize,
    out: &mut [Complex],
) {
    let len = out.len();
    if len == 0 {
        return;
    }
    let fs = config.sample_rate;
    let pulses = if sorted {
        let t_min = (start as f64 - KERNEL_HALF_WIDTH as f64) / fs;
        let t_max = ((start + len) as f64 + KERNEL_HALF_WIDTH as f64) / fs;
        let first = train.pulses.partition_point(|p| p.t_s < t_min);
        let last = train.pulses.partition_point(|p| p.t_s < t_max);
        &train.pulses[first..last]
    } else {
        &train.pulses[..]
    };
    for pulse in pulses {
        let carrier = Complex::cis(-2.0 * std::f64::consts::PI * config.center_freq * pulse.t_s);
        let amp = pulse.charge_c * fs;
        let center = pulse.t_s * fs;
        let lo = (center - KERNEL_HALF_WIDTH as f64).ceil().max(start as f64) as usize;
        let hi = ((center + KERNEL_HALF_WIDTH as f64).floor() as usize).min(start + len - 1);
        if lo > hi {
            continue;
        }
        for n in lo..=hi {
            out[n - start] += carrier.scale(amp * kernel(n as f64 - center));
        }
    }
}

/// Fast synthesis: table-driven kernel, globally-anchored incremental
/// carrier phasor, independent fixed-size windows fanned across the
/// worker pool. Requires time-ordered pulses.
///
/// Determinism: windows are invariant (see [`render_train_window`]) and
/// stitched in index order, so the waveform is bit-identical for any
/// worker count and any chunk size.
fn render_train_fast(
    train: &SwitchingTrain,
    config: SynthConfig,
    n_samples: usize,
) -> Vec<Complex> {
    let n_chunks = n_samples.div_ceil(CHUNK_SAMPLES).max(1);
    // Window values depend only on the window placement and the train,
    // so a single worker can write them straight into the final buffer
    // — skipping the per-chunk allocations and the stitch copy the
    // fan-out path pays — and stay bit-identical to the pool result.
    if n_chunks == 1 || emsc_runtime::current_threads() == 1 {
        let mut out = vec![Complex::ZERO; n_samples];
        for c in 0..n_chunks {
            let start = c * CHUNK_SAMPLES;
            let len = CHUNK_SAMPLES.min(n_samples - start);
            render_window_fast(train, config, start, &mut out[start..start + len]);
        }
        return out;
    }
    let chunk_ids: Vec<usize> = (0..n_chunks).collect();
    let chunks = emsc_runtime::par_map(&chunk_ids, |&c| {
        let start = c * CHUNK_SAMPLES;
        let len = CHUNK_SAMPLES.min(n_samples - start);
        let mut out = vec![Complex::ZERO; len];
        render_window_fast(train, config, start, &mut out);
        out
    });
    let mut out = Vec::with_capacity(n_samples);
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Incremental carrier phasor with global pulse-index anchors: pulse
/// `p` gets an exact `cis` whenever `p % PHASOR_REFRESH == 0` and one
/// complex multiply by a Δt rotator otherwise. The rotator is a pure
/// function of the spacing (the cache only avoids recomputing the same
/// value), so the phasor at pulse `p` depends on the train alone —
/// any window that warms up from the anchor at `p − p % PHASOR_REFRESH`
/// reproduces it bit for bit. Regular trains amortise `cis` to ~1/256
/// calls per pulse; jittered trains degrade gracefully to one per.
struct CarrierPhasor {
    omega: f64,
    value: Complex,
    prev_t: f64,
    cached_dt: f64,
    rotator: Complex,
}

impl CarrierPhasor {
    fn new(omega: f64) -> Self {
        CarrierPhasor {
            omega,
            value: Complex::ZERO,
            prev_t: 0.0,
            cached_dt: f64::NAN,
            rotator: Complex::ZERO,
        }
    }

    /// Advances to pulse `pulse_idx` (global index) at time `t_s` and
    /// returns its carrier phasor.
    #[inline]
    fn step(&mut self, pulse_idx: usize, t_s: f64) -> Complex {
        if pulse_idx.is_multiple_of(PHASOR_REFRESH) {
            self.value = Complex::cis(self.omega * t_s);
        } else {
            let dt = t_s - self.prev_t;
            if dt != self.cached_dt {
                self.cached_dt = dt;
                self.rotator = Complex::cis(self.omega * dt);
            }
            self.value *= self.rotator;
        }
        self.prev_t = t_s;
        self.value
    }
}

/// The fast path's windowed core: the contributions of every pulse
/// whose kernel support intersects `[start, start + out.len())`,
/// processed in time order (see [`render_train_window`] for the
/// window-invariance argument).
fn render_window_fast(
    train: &SwitchingTrain,
    config: SynthConfig,
    start: usize,
    out: &mut [Complex],
) {
    let len = out.len();
    if len == 0 {
        return;
    }
    let fs = config.sample_rate;
    let omega = -2.0 * std::f64::consts::PI * config.center_freq;
    let lut = kernel_lut_rows();

    // Pulses whose kernel support [t·fs − H, t·fs + H] can reach this
    // window (binary search over the time-ordered train).
    let t_min = (start as f64 - KERNEL_HALF_WIDTH as f64) / fs;
    let t_max = ((start + len) as f64 + KERNEL_HALF_WIDTH as f64) / fs;
    let first = train.pulses.partition_point(|p| p.t_s < t_min);
    let last = train.pulses.partition_point(|p| p.t_s < t_max);
    if first == last {
        return;
    }

    // Warm the carrier up from the global anchor at or before `first`.
    let mut carrier = CarrierPhasor::new(omega);
    let anchor = first - first % PHASOR_REFRESH;
    for (q, pulse) in train.pulses[anchor..first].iter().enumerate() {
        carrier.step(anchor + q, pulse.t_s);
    }

    let end = start + len;
    for (q, pulse) in train.pulses[first..last].iter().enumerate() {
        let c = carrier.step(first + q, pulse.t_s);
        let amp = pulse.charge_c * fs;
        let center = pulse.t_s * fs;
        // Intrinsic tap window [⌈center − H⌉, ⌊center + H⌋]: the LUT
        // row and fraction come from the intrinsic first tap (which
        // may precede the window), so they are window-invariant;
        // clipping only advances the integer row offset `skip`.
        let lo_intr_f = (center - KERNEL_HALF_WIDTH as f64).ceil();
        let hi_abs = (center + KERNEL_HALF_WIDTH as f64).floor();
        if hi_abs < start as f64 {
            continue;
        }
        let hi = (hi_abs as usize).min(end - 1);
        let lo_intr = lo_intr_f as i64;
        let lo = lo_intr.max(start as i64) as usize;
        if lo > hi {
            continue;
        }
        let skip = (lo as i64 - lo_intr) as usize;
        // Hoisted LUT walk over the transposed row table: the
        // fractional part is computed once per pulse and the taps read
        // two contiguous rows instead of striding through the flat
        // table. This differs from recomputing `kernel_fast(n −
        // center)` per tap only in the last ulps of the interpolation
        // weight — far inside the fast path's −90 dB accuracy contract
        // (pinned in tests below).
        let pos = (lo_intr_f - center + KERNEL_HALF_WIDTH as f64) * LUT_RES as f64;
        let j = pos as usize;
        let frac = pos - j as f64;
        let row_a = &lut[j * LUT_ROW + skip..(j + 1) * LUT_ROW];
        let row_b = &lut[(j + 1) * LUT_ROW + skip..(j + 2) * LUT_ROW];
        let dst = &mut out[lo - start..hi + 1 - start];
        // A pulse clear of the window edges touches 12 or 13 taps
        // depending on its fractional center; dispatching those two
        // counts to a const-length block lets the compiler unroll and
        // schedule the taps as one straight-line group. Same ops in
        // the same order — bit-identical to the generic loop below,
        // which keeps handling the edge-clipped stragglers.
        match dst.len() {
            N_FULL => tap_block::<N_FULL>(dst, row_a, row_b, frac, amp, c),
            N_SHORT => tap_block::<N_SHORT>(dst, row_a, row_b, frac, amp, c),
            _ => {
                for ((slot, &a), &b) in dst.iter_mut().zip(row_a).zip(row_b) {
                    let k = a + (b - a) * frac;
                    *slot += c.scale(amp * k);
                }
            }
        }
    }
}

/// All-taps count of an unclipped pulse with near-integer center.
const N_FULL: usize = LUT_ROW;
/// Taps of an unclipped pulse with a strictly fractional center.
const N_SHORT: usize = LUT_ROW - 1;

/// One pulse's tap updates at a compile-time count: `dst[i] +=
/// carrier · (amp · k_i)` with the same per-tap expression as the
/// generic loop in [`render_chunk_into`].
#[inline]
fn tap_block<const N: usize>(
    dst: &mut [Complex],
    row_a: &[f64],
    row_b: &[f64],
    frac: f64,
    amp: f64,
    carrier: Complex,
) {
    let dst: &mut [Complex; N] = dst.try_into().expect("tap count");
    let row_a: &[f64; N] = row_a[..N].try_into().expect("row length");
    let row_b: &[f64; N] = row_b[..N].try_into().expect("row length");
    for i in 0..N {
        let k = row_a[i] + (row_b[i] - row_a[i]) * frac;
        dst[i] += carrier.scale(amp * k);
    }
}

/// Number of samples needed to cover a train's full duration.
pub fn samples_for(train: &SwitchingTrain, config: SynthConfig) -> usize {
    (train.duration_s * config.sample_rate).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::fft::{frequency_bin, plan_for};
    use emsc_vrm::train::Pulse;

    fn regular_train(f_sw: f64, charge_c: f64, duration_s: f64) -> SwitchingTrain {
        let period = 1.0 / f_sw;
        let n = (duration_s / period) as usize;
        SwitchingTrain {
            pulses: (0..n).map(|k| Pulse { t_s: k as f64 * period, charge_c }).collect(),
            nominal_period_s: period,
            duration_s,
        }
    }

    fn spectrum_peak_near(iq: &[Complex], fs: f64, f_bb: f64, fft_size: usize) -> f64 {
        let mut spec = iq[..fft_size].to_vec();
        plan_for(fft_size).forward(&mut spec);
        let k = frequency_bin(f_bb, fft_size, fs);
        // allow ±1 bin
        let mut best = 0.0f64;
        for dk in [-1i64, 0, 1] {
            let idx = (k as i64 + dk).rem_euclid(fft_size as i64) as usize;
            best = best.max(spec[idx].abs());
        }
        best / fft_size as f64
    }

    #[test]
    fn kernel_is_interpolating() {
        assert!((kernel(0.0) - 1.0).abs() < 1e-12);
        for m in 1..KERNEL_HALF_WIDTH {
            assert!(kernel(m as f64).abs() < 1e-12, "kernel({m}) not zero");
        }
        assert_eq!(kernel(100.0), 0.0);
    }

    #[test]
    fn spectral_line_amplitude_equals_mean_current() {
        // 937.5 kHz train of 8 µC pulses = 8 A mean replenish current.
        // (937.5 kHz puts the baseband line exactly on FFT bin −1600
        // of 8192 at 2.4 Msps, avoiding scalloping loss in the check.)
        let f_sw = 937.5e3;
        let train = regular_train(f_sw, 8e-6, 10e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let iq = render_train(&train, cfg, samples_for(&train, cfg));
        let line = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        assert!((line - 8.0).abs() / 8.0 < 0.15, "line amplitude {line}");
    }

    #[test]
    fn first_harmonic_is_present() {
        let f_sw = 970e3;
        let train = regular_train(f_sw, 5e-6, 10e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let iq = render_train(&train, cfg, samples_for(&train, cfg));
        let h1 = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let h2 = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(2.0 * f_sw), 8192);
        assert!(h1 > 2.0, "fundamental {h1}");
        assert!(h2 > 1.0, "harmonic {h2}");
    }

    #[test]
    fn sparse_train_has_proportionally_weaker_line() {
        let f_sw = 937.5e3;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let dense = regular_train(f_sw, 8e-6, 10e-3);
        // Every 16th period, same per-pulse charge-cap style as PFM:
        let sparse = SwitchingTrain {
            pulses: dense.pulses.iter().step_by(16).copied().collect(),
            ..dense.clone()
        };
        let iq_d = render_train(&dense, cfg, samples_for(&dense, cfg));
        let iq_s = render_train(&sparse, cfg, samples_for(&sparse, cfg));
        let line_d = spectrum_peak_near(&iq_d, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let line_s = spectrum_peak_near(&iq_s, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let ratio = line_d / line_s;
        assert!((ratio - 16.0).abs() < 3.0, "ratio {ratio}");
    }

    #[test]
    fn randomized_periods_spread_the_line() {
        // Jitter each pulse time by ±50 % of a period: the coherent
        // line at f_sw collapses.
        let f_sw = 937.5e3;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let regular = regular_train(f_sw, 8e-6, 10e-3);
        let mut jittered = regular.clone();
        let mut state = 0x12345u64;
        for p in &mut jittered.pulses {
            // xorshift for a dependency-free deterministic jitter
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            p.t_s += u / f_sw;
        }
        let iq_r = render_train(&regular, cfg, samples_for(&regular, cfg));
        let iq_j = render_train(&jittered, cfg, samples_for(&jittered, cfg));
        let line_r = spectrum_peak_near(&iq_r, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        let line_j = spectrum_peak_near(&iq_j, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        assert!(line_r > 3.0 * line_j, "regular {line_r} vs jittered {line_j}");
    }

    #[test]
    fn out_of_band_harmonics_are_attenuated() {
        // Harmonic 3 of a 970 kHz train sits at 2.91 MHz, outside the
        // ±1.2 MHz band around the 1.455 MHz tuner: after the kernel's
        // anti-alias response its folded image must be much weaker
        // than the in-band lines.
        let f_sw = 970e3;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let train = regular_train(f_sw, 8e-6, 10e-3);
        let iq = render_train(&train, cfg, samples_for(&train, cfg));
        let in_band = spectrum_peak_near(&iq, cfg.sample_rate, cfg.baseband(f_sw), 8192);
        // Folded image of h3: offset 2.91 MHz − 1.455 MHz = 1.455 MHz
        // wraps to 1.455 − 2.4 = −0.945 MHz.
        let folded = spectrum_peak_near(
            &iq,
            cfg.sample_rate,
            2.0 * f_sw - 2.4e6 + f_sw - cfg.center_freq,
            8192,
        );
        assert!(in_band > 4.0 * folded, "in-band {in_band} vs folded {folded}");
    }

    #[test]
    fn render_is_linear_in_charge() {
        let f_sw = 1e6;
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let a = regular_train(f_sw, 2e-6, 2e-3);
        let b = regular_train(f_sw, 4e-6, 2e-3);
        let ia = render_train(&a, cfg, 4096);
        let ib = render_train(&b, cfg, 4096);
        for (x, y) in ia.iter().zip(&ib) {
            assert!((y.abs() - 2.0 * x.abs()).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_train_renders_silence() {
        let train = SwitchingTrain { pulses: Vec::new(), nominal_period_s: 1e-6, duration_s: 1e-3 };
        let cfg = SynthConfig::rtl_sdr_for(1e6);
        let iq = render_train(&train, cfg, 2400);
        assert!(iq.iter().all(|z| z.abs() == 0.0));
    }

    /// RMS error of the fast path relative to the exact path, in dB.
    fn relative_error_db(fast: &[Complex], exact: &[Complex]) -> f64 {
        let err: f64 = fast.iter().zip(exact).map(|(a, b)| (*a - *b).norm_sqr()).sum();
        let sig: f64 = exact.iter().map(|z| z.norm_sqr()).sum();
        10.0 * (err / sig.max(1e-300)).log10()
    }

    #[test]
    fn fast_path_matches_exact_below_minus_90_db() {
        // Regular train — the phasor's amortised-rotation regime —
        // long enough to span several chunks.
        let f_sw = 937.5e3;
        let train = regular_train(f_sw, 8e-6, 60e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let n = samples_for(&train, cfg);
        assert!(n > CHUNK_SAMPLES, "test must cover the chunked path");
        let fast = render_train(&train, cfg, n);
        let exact = render_train_exact(&train, cfg, n);
        let db = relative_error_db(&fast, &exact);
        assert!(db <= -90.0, "fast path error {db:.1} dB");
    }

    #[test]
    fn fast_path_matches_exact_on_jittered_trains() {
        // Jitter defeats the Δt rotator cache — every pulse recomputes
        // its rotator — and still must meet the accuracy contract.
        let f_sw = 937.5e3;
        let mut train = regular_train(f_sw, 8e-6, 10e-3);
        let mut state = 0xABCDu64;
        for p in &mut train.pulses {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            p.t_s = (p.t_s + 0.4 * u / f_sw).max(0.0);
        }
        train.pulses.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let n = samples_for(&train, cfg);
        let fast = render_train(&train, cfg, n);
        let exact = render_train_exact(&train, cfg, n);
        let db = relative_error_db(&fast, &exact);
        assert!(db <= -90.0, "fast path error {db:.1} dB");
    }

    #[test]
    fn exact_mode_flag_selects_the_reference_path() {
        let f_sw = 1e6;
        let train = regular_train(f_sw, 2e-6, 2e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let via_flag = render_train(&train, cfg.exact(), 4096);
        let direct = render_train_exact(&train, cfg, 4096);
        assert!(via_flag.iter().zip(&direct).all(|(a, b)| a.re == b.re && a.im == b.im));
    }

    #[test]
    fn unsorted_trains_fall_back_to_the_exact_path() {
        let f_sw = 1e6;
        let mut train = regular_train(f_sw, 2e-6, 2e-3);
        train.pulses.reverse();
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let fast_cfg = render_train(&train, cfg, 4096);
        let exact = render_train_exact(&train, cfg, 4096);
        assert!(fast_cfg.iter().zip(&exact).all(|(a, b)| a.re == b.re && a.im == b.im));
    }

    #[test]
    fn chunked_render_is_thread_count_independent() {
        let f_sw = 937.5e3;
        let train = regular_train(f_sw, 8e-6, 60e-3);
        let cfg = SynthConfig::rtl_sdr_for(f_sw);
        let n = samples_for(&train, cfg);
        let serial = emsc_runtime::with_threads(1, || render_train(&train, cfg, n));
        let parallel = emsc_runtime::with_threads(8, || render_train(&train, cfg, n));
        assert!(serial
            .iter()
            .zip(&parallel)
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()));
    }

    /// Renders `n` samples as a sequence of `window`-sized blocks
    /// through the public chunk-windowed entry.
    fn render_by_windows(
        train: &SwitchingTrain,
        cfg: SynthConfig,
        n: usize,
        window: usize,
    ) -> Vec<Complex> {
        let mut out = vec![Complex::ZERO; n];
        let mut start = 0;
        while start < n {
            let len = window.min(n - start);
            render_train_window(train, cfg, start, &mut out[start..start + len]);
            start += len;
        }
        out
    }

    fn assert_bitwise_eq(a: &[Complex], b: &[Complex], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "{what}: sample {i} differs ({x:?} vs {y:?})"
            );
        }
    }

    #[test]
    fn windowed_render_composes_bitwise_with_whole_buffer() {
        // Window invariance is the foundation of the fused TX chain:
        // any block decomposition must reproduce the whole-buffer
        // render bit for bit, in both modes, for regular and jittered
        // trains (the latter defeats the Δt-rotator cache, exercising
        // the per-pulse `cis` warm-up).
        let f_sw = 937.5e3;
        let mut jittered = regular_train(f_sw, 8e-6, 4e-3);
        let mut state = 0x9E37u64;
        for p in &mut jittered.pulses {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            p.t_s = (p.t_s + 0.4 * u / f_sw).max(0.0);
        }
        jittered.pulses.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());
        for train in [regular_train(f_sw, 8e-6, 4e-3), jittered] {
            for cfg in [SynthConfig::rtl_sdr_for(f_sw), SynthConfig::rtl_sdr_for(f_sw).exact()] {
                let n = samples_for(&train, cfg);
                let whole = render_train(&train, cfg, n);
                for window in [1usize, 7, 997, 4096] {
                    let composed = render_by_windows(&train, cfg, n, window);
                    assert_bitwise_eq(&composed, &whole, &format!("window {window}"));
                }
            }
        }
    }

    #[test]
    fn window_boundary_straddling_a_pulse_edge_is_bitwise_stable() {
        // A pulse whose 13-tap kernel support straddles the boundary
        // between two windows is rendered twice — its left taps by one
        // window, its right taps by the next — with the same LUT row,
        // fraction and carrier both times. Pin that for an even and an
        // odd boundary cutting straight through a pulse's support,
        // including a pulse whose center sits exactly on the boundary.
        let fs = 2.4e6;
        let cfg = SynthConfig { sample_rate: fs, center_freq: 1.4e6, mode: SynthMode::Fast };
        let train = SwitchingTrain {
            pulses: vec![
                Pulse { t_s: 94.3 / fs, charge_c: 3e-6 }, // straddles n = 100
                Pulse { t_s: 100.0 / fs, charge_c: 2e-6 }, // center exactly at 100
                Pulse { t_s: 103.9 / fs, charge_c: 4e-6 }, // straddles from the right
                Pulse { t_s: 151.5 / fs, charge_c: 5e-6 }, // straddles the odd cut at 153
            ],
            nominal_period_s: 1e-6,
            duration_s: 200.0 / fs,
        };
        let n = 200;
        let whole = render_train(&train, cfg, n);
        for (label, cuts) in [("even", vec![100usize]), ("odd", vec![153usize])] {
            let mut out = vec![Complex::ZERO; n];
            let mut edges = vec![0usize];
            edges.extend(&cuts);
            edges.push(n);
            for w in edges.windows(2) {
                render_train_window(&train, cfg, w[0], &mut out[w[0]..w[1]]);
            }
            assert_bitwise_eq(&out, &whole, &format!("{label} boundary"));
        }
    }

    #[test]
    fn strided_lut_walk_matches_per_tap_lookup() {
        // `render_chunk` hoists the LUT interpolation: the index
        // strides by LUT_RES with a once-per-pulse fractional part.
        // Check it against the naive per-tap `kernel_fast` for awkward
        // fractional centers, including the exact-edge case.
        let lut = kernel_lut();
        for &center in &[123.456_789f64, 7.000_001, 99_999.500_000_3, 6.0, 1234.0] {
            let lo = (center - KERNEL_HALF_WIDTH as f64).ceil() as usize;
            let hi = (center + KERNEL_HALF_WIDTH as f64).floor() as usize;
            let pos = (lo as f64 - center + KERNEL_HALF_WIDTH as f64) * LUT_RES as f64;
            let mut idx = pos as usize;
            let frac = pos - idx as f64;
            for n in lo..=hi {
                let strided = lut[idx] + (lut[idx + 1] - lut[idx]) * frac;
                let direct = kernel_fast(n as f64 - center, lut);
                assert!(
                    (strided - direct).abs() < 1e-9,
                    "center {center} n {n}: strided {strided} direct {direct}"
                );
                idx += LUT_RES;
            }
        }
    }

    #[test]
    fn transposed_rows_match_flat_lut_bitwise() {
        // Every entry of the row table must be the flat table's
        // strided entry bit for bit, so the render walk's interpolated
        // values are unchanged by the transposition. Row entries past
        // the flat table's end land outside the kernel support and
        // must be exactly zero.
        let flat = kernel_lut();
        let rows = kernel_lut_rows();
        assert_eq!(rows.len(), (LUT_RES + 1) * LUT_ROW);
        for j in 0..=LUT_RES {
            for m in 0..LUT_ROW {
                let i = j + m * LUT_RES;
                let want = if i < flat.len() { flat[i] } else { 0.0 };
                assert_eq!(
                    rows[j * LUT_ROW + m].to_bits(),
                    want.to_bits(),
                    "row {j} tap {m} (flat index {i})"
                );
            }
        }
    }

    mod lut_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn lut_kernel_tracks_analytic_kernel(x in -6.5f64..6.5) {
                let lut = kernel_lut();
                let clamped = x.clamp(-(KERNEL_HALF_WIDTH as f64), KERNEL_HALF_WIDTH as f64);
                let approx = kernel_fast(clamped, lut);
                let truth = kernel(clamped);
                prop_assert!((approx - truth).abs() < 3e-6, "x {} err {}", clamped, (approx - truth).abs());
            }

            #[test]
            fn fast_render_matches_exact_for_random_trains(
                f_sw in 0.5e6f64..1.2e6,
                charge in 1e-6f64..9e-6,
                jitter in 0.0f64..0.45,
            ) {
                let mut train = regular_train(f_sw, charge, 4e-3);
                let mut state = (f_sw as u64) ^ 0x5EED;
                for p in &mut train.pulses {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
                    p.t_s = (p.t_s + jitter * u / f_sw).max(0.0);
                }
                train.pulses.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());
                let cfg = SynthConfig::rtl_sdr_for(f_sw);
                let n = samples_for(&train, cfg);
                let fast = render_train(&train, cfg, n);
                let exact = render_train_exact(&train, cfg, n);
                let db = relative_error_db(&fast, &exact);
                prop_assert!(db <= -90.0, "error {} dB", db);
            }
        }
    }
}
