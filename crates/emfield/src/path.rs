//! Propagation: antennas, distance and walls.
//!
//! At VRM frequencies (≲1 MHz, λ ≳ 300 m) every measurement in the
//! paper is deep in the near field, where the magnetic field of a
//! small current loop falls off as `1/r³`. Received signal strength is
//! therefore `source · antenna_gain / r³ · wall_loss`. The paper's two
//! receive antennas differ enormously in aperture: a 5 mm, 33-turn
//! coin probe pressed 10 cm from the keyboard, and a 30 cm AOR LA390
//! loop with a built-in 20 dB amplifier carried in a briefcase.

/// A receiving magnetic antenna.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Antenna {
    /// The handmade coin-shaped probe of §IV-C1: 33 turns, 5 mm
    /// radius, no amplifier, <$5.
    CoilProbe,
    /// The AOR LA390 wideband loop of §IV-C1: 30 cm radius with a
    /// built-in 20 dB amplifier, $200.
    LoopAntenna,
    /// A custom antenna with the given relative gain (linear, relative
    /// to the coil probe).
    Custom {
        /// Linear gain relative to [`Antenna::CoilProbe`].
        relative_gain: f64,
    },
}

impl Antenna {
    /// Linear voltage gain relative to the coil probe.
    ///
    /// The loop's effective area is (300 mm / 5 mm)² ≈ 3600× the
    /// coil's, with 1/33 the turns and a 20 dB (10×) amplifier; the
    /// net ≈ 900× lets briefcase-range measurements at metres come
    /// close to (but not exceed) the coil's SNR at centimetres, which
    /// is exactly the regime the paper reports (Table II vs. III).
    pub fn relative_gain(self) -> f64 {
        match self {
            Antenna::CoilProbe => 1.0,
            Antenna::LoopAntenna => 900.0,
            Antenna::Custom { relative_gain } => relative_gain,
        }
    }
}

/// The geometry between emitter and receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Path {
    /// Antenna in use.
    pub antenna: Antenna,
    /// Emitter–receiver distance, metres.
    pub distance_m: f64,
    /// Total wall penetration loss along the path, decibels (0 for
    /// line of sight; the paper's 35 cm structural wall costs ~14 dB
    /// at these frequencies — magnetic near fields penetrate masonry
    /// fairly well at 1 MHz).
    pub wall_loss_db: f64,
    /// Misalignment between the antenna's axis and the magnetic field,
    /// radians. The paper "manually set the antenna's orientation to
    /// maximize the signal SNR" (§IV-C3), i.e. 0; a loop turned 90°
    /// away couples nothing.
    pub misalignment_rad: f64,
}

impl Path {
    /// Near-field probe placement: 10 cm, coil probe, no wall.
    pub fn near_field() -> Self {
        Path {
            antenna: Antenna::CoilProbe,
            distance_m: 0.10,
            wall_loss_db: 0.0,
            misalignment_rad: 0.0,
        }
    }

    /// Loop antenna at the given line-of-sight distance.
    pub fn line_of_sight(distance_m: f64) -> Self {
        Path { antenna: Antenna::LoopAntenna, distance_m, wall_loss_db: 0.0, misalignment_rad: 0.0 }
    }

    /// The paper's Fig. 10 setup: loop antenna, 1.5 m total distance
    /// including a 35 cm structural wall.
    pub fn through_wall() -> Self {
        Path {
            antenna: Antenna::LoopAntenna,
            distance_m: 1.5,
            wall_loss_db: 14.0,
            misalignment_rad: 0.0,
        }
    }

    /// Linear amplitude gain of the whole path, such that
    /// `received = source · gain()`.
    ///
    /// Normalised so the near-field reference ([`Path::near_field`])
    /// has gain 1: `gain = antenna · (0.1 m / r)³ · 10^(−wall/20)`.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is not positive.
    pub fn gain(&self) -> f64 {
        assert!(self.distance_m > 0.0, "distance must be positive");
        let r3 = (0.10 / self.distance_m).powi(3);
        let wall = 10f64.powf(-self.wall_loss_db / 20.0);
        let orientation = self.misalignment_rad.cos().abs();
        self.antenna.relative_gain() * r3 * wall * orientation / Antenna::CoilProbe.relative_gain()
    }

    /// Path gain in decibels relative to the near-field reference.
    pub fn gain_db(&self) -> f64 {
        20.0 * self.gain().log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_field_reference_gain_is_unity() {
        assert!((Path::near_field().gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gain_falls_with_distance_cubed() {
        let g1 = Path::line_of_sight(1.0).gain();
        let g2 = Path::line_of_sight(2.0).gain();
        assert!((g1 / g2 - 8.0).abs() < 1e-9, "ratio {}", g1 / g2);
    }

    #[test]
    fn loop_at_one_metre_comparable_to_probe_at_ten_cm() {
        // The paper achieves covert rates at 1 m (loop) within ~2× of
        // 10 cm (probe); path gains must be the same order.
        let probe = Path::near_field().gain();
        let loop1m = Path::line_of_sight(1.0).gain();
        let ratio = probe / loop1m;
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn wall_attenuates() {
        let los = Path::line_of_sight(1.5).gain();
        let nlos = Path::through_wall().gain();
        let db = 20.0 * (los / nlos).log10();
        assert!((db - 14.0).abs() < 1e-9);
    }

    #[test]
    fn distance_ordering_matches_paper_setups() {
        // 10 cm probe > 1 m loop > 1.5 m loop > 2.5 m loop > wall path.
        let g10cm = Path::near_field().gain();
        let g1m = Path::line_of_sight(1.0).gain();
        let g15 = Path::line_of_sight(1.5).gain();
        let g25 = Path::line_of_sight(2.5).gain();
        let gwall = Path::through_wall().gain();
        assert!(g10cm > g1m && g1m > g15 && g15 > g25);
        assert!(g15 > gwall);
    }

    #[test]
    fn gain_db_consistent_with_gain() {
        let p = Path::line_of_sight(2.5);
        assert!((10f64.powf(p.gain_db() / 20.0) - p.gain()).abs() < 1e-12);
    }

    #[test]
    fn misalignment_reduces_gain() {
        let aligned = Path::line_of_sight(1.0);
        let mut skewed = aligned;
        skewed.misalignment_rad = std::f64::consts::FRAC_PI_3; // 60°
        assert!((skewed.gain() / aligned.gain() - 0.5).abs() < 1e-12);
        let mut orthogonal = aligned;
        orthogonal.misalignment_rad = std::f64::consts::FRAC_PI_2;
        assert!(orthogonal.gain() < 1e-12 * aligned.gain());
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn zero_distance_panics() {
        Path {
            antenna: Antenna::CoilProbe,
            distance_m: 0.0,
            wall_loss_db: 0.0,
            misalignment_rad: 0.0,
        }
        .gain();
    }
}
