//! Environmental interference: other switching emitters and thermal
//! noise.
//!
//! The paper's NLoS experiment (Fig. 10) deliberately includes "other
//! electronic devices such as a printer in the transmitter's room and
//! a refrigerator in the receiver's room which also generate
//! unintentional EM emanations". Those devices contain their own
//! switching converters/inverters, so we model each interferer as a
//! comb of harmonics from its own switching fundamental, plus additive
//! white Gaussian thermal noise.

use emsc_sdr::iq::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One interfering emitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// Switching fundamental of the interferer, hertz.
    pub fundamental_hz: f64,
    /// Received amplitude of its fundamental (same units as the
    /// signal of interest after path loss).
    pub amplitude: f64,
    /// Number of harmonics to include.
    pub harmonics: u32,
    /// Per-harmonic amplitude rolloff factor (amplitude of harmonic
    /// `h` is `amplitude · rolloff^(h−1)`).
    pub rolloff: f64,
}

impl Interferer {
    /// A laser-printer switching supply near the transmitter.
    pub fn printer(amplitude: f64) -> Self {
        Interferer { fundamental_hz: 310e3, amplitude, harmonics: 8, rolloff: 0.6 }
    }

    /// A refrigerator compressor inverter near the receiver.
    pub fn refrigerator(amplitude: f64) -> Self {
        Interferer { fundamental_hz: 64e3, amplitude, harmonics: 20, rolloff: 0.8 }
    }

    /// Adds this interferer's comb to `buf` (complex baseband around
    /// `center_freq` at `sample_rate`), with a deterministic per-
    /// harmonic starting phase derived from `seed`.
    pub fn add_to(&self, buf: &mut [Complex], sample_rate: f64, center_freq: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ (self.fundamental_hz.to_bits()));
        for h in 1..=self.harmonics {
            let f_rf = self.fundamental_hz * h as f64;
            let f_bb = f_rf - center_freq;
            if f_bb.abs() > sample_rate / 2.0 {
                continue;
            }
            let amp = self.amplitude * self.rolloff.powi(h as i32 - 1);
            let phase0: f64 = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            let step = 2.0 * std::f64::consts::PI * f_bb / sample_rate;
            let mut phase = phase0;
            for slot in buf.iter_mut() {
                *slot += Complex::from_polar(amp, phase);
                phase += step;
            }
        }
    }
}

/// Adds circular complex AWGN of standard deviation `sigma` (per
/// complex sample) to `buf`, deterministically from `seed`.
pub fn add_awgn(buf: &mut [Complex], sigma: f64, seed: u64) {
    if sigma <= 0.0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let s = sigma / 2f64.sqrt();
    for slot in buf.iter_mut() {
        // Box–Muller
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        // sin_cos is one fused libm call and bit-identical to the
        // separate sin()/cos() it replaces.
        let (sin, cos) = theta.sin_cos();
        *slot += Complex::new(s * r * cos, s * r * sin);
    }
}

/// Adds impulsive interference to `buf`: each sample independently
/// carries an impulse with probability `density`, of magnitude
/// `amplitude` and uniformly random phase. This is the analog-domain
/// counterpart of `emsc_sdr::impair::Impairment::ImpulseBurst` —
/// motor brushes, relay contacts and switching transients near the
/// receiver, injected *before* the front end's AGC and quantisation so
/// the impulses also steal ADC dynamic range. Deterministic from
/// `seed`; `density` is clamped to `[0, 1]` and non-positive
/// amplitudes are a no-op.
pub fn add_impulsive_noise(buf: &mut [Complex], density: f64, amplitude: f64, seed: u64) {
    if amplitude <= 0.0 || !density.is_finite() || density <= 0.0 {
        return;
    }
    let density = density.min(1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    for slot in buf.iter_mut() {
        if rng.gen_bool(density) {
            let phase = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            *slot += Complex::from_polar(amplitude, phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::fft::{fft, frequency_bin};

    #[test]
    fn awgn_statistics() {
        let mut buf = vec![Complex::ZERO; 50_000];
        add_awgn(&mut buf, 0.5, 7);
        let mean: Complex = buf.iter().copied().sum::<Complex>() / buf.len() as f64;
        assert!(mean.abs() < 0.01, "mean {}", mean.abs());
        let power: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / buf.len() as f64;
        assert!((power - 0.25).abs() < 0.01, "power {power}");
    }

    #[test]
    fn awgn_zero_sigma_is_noop() {
        let mut buf = vec![Complex::new(1.0, -1.0); 16];
        add_awgn(&mut buf, 0.0, 3);
        assert!(buf.iter().all(|z| *z == Complex::new(1.0, -1.0)));
    }

    #[test]
    fn awgn_deterministic_per_seed() {
        let mut a = vec![Complex::ZERO; 64];
        let mut b = vec![Complex::ZERO; 64];
        add_awgn(&mut a, 1.0, 42);
        add_awgn(&mut b, 1.0, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn interferer_comb_lands_on_harmonics() {
        let fs = 2.4e6;
        let fc = 1.4e6;
        let n = 8192;
        let mut buf = vec![Complex::ZERO; n];
        let intf = Interferer { fundamental_hz: 300e3, amplitude: 1.0, harmonics: 8, rolloff: 0.5 };
        intf.add_to(&mut buf, fs, fc, 1);
        let spec = fft(&buf);
        // Harmonic 5 at 1.5 MHz is in-band at +100 kHz baseband.
        let k5 = frequency_bin(1.5e6 - fc, n, fs);
        let a5 = spec[k5].abs() / n as f64;
        assert!((a5 - 0.5f64.powi(4)).abs() < 0.02, "h5 amplitude {a5}");
        // Harmonic 1 at 300 kHz is out of band (−1.1 MHz edge? in-band: −1.1 MHz is within ±1.2) —
        // pick harmonic far out of band instead: none beyond ±1.2 MHz must appear.
        let out_of_band_energy: f64 = (0..n)
            .filter(|&k| {
                let f = emsc_sdr::fft::bin_frequency(k, n, fs);
                f.abs() > 1.19e6
            })
            .map(|k| spec[k].abs() / n as f64)
            .fold(0.0, f64::max);
        assert!(out_of_band_energy < 0.05, "edge leakage {out_of_band_energy}");
    }

    #[test]
    fn impulsive_noise_is_sparse_and_deterministic() {
        let mut a = vec![Complex::ZERO; 10_000];
        let mut b = vec![Complex::ZERO; 10_000];
        add_impulsive_noise(&mut a, 0.01, 2.0, 11);
        add_impulsive_noise(&mut b, 0.01, 2.0, 11);
        assert_eq!(a, b);
        let hits = a.iter().filter(|z| z.abs() > 1e-12).count();
        assert!((50..200).contains(&hits), "expected ~100 impulses, got {hits}");
        for z in a.iter().filter(|z| z.abs() > 1e-12) {
            assert!((z.abs() - 2.0).abs() < 1e-9, "impulse magnitude {}", z.abs());
        }
        let mut c = vec![Complex::ZERO; 10_000];
        add_impulsive_noise(&mut c, 0.01, 2.0, 12);
        assert_ne!(a, c, "seed must move the impulses");
    }

    #[test]
    fn impulsive_noise_degenerate_parameters_are_noops() {
        let orig = vec![Complex::new(0.5, -0.5); 64];
        for (density, amplitude) in
            [(0.0, 1.0), (-1.0, 1.0), (f64::NAN, 1.0), (0.5, 0.0), (0.5, -3.0)]
        {
            let mut buf = orig.clone();
            add_impulsive_noise(&mut buf, density, amplitude, 5);
            assert_eq!(buf, orig, "density {density}, amplitude {amplitude}");
        }
        // Density above 1 clamps instead of panicking in gen_bool.
        let mut buf = vec![Complex::ZERO; 32];
        add_impulsive_noise(&mut buf, 2.0, 1.0, 5);
        assert!(buf.iter().all(|z| z.abs() > 0.0), "density 1 must hit every sample");
    }

    #[test]
    fn printer_and_fridge_have_distinct_fundamentals() {
        let p = Interferer::printer(1.0);
        let f = Interferer::refrigerator(1.0);
        assert_ne!(p.fundamental_hz, f.fundamental_hz);
        // Neither coincides with a typical VRM fundamental (~970 kHz):
        for intf in [p, f] {
            for h in 1..=intf.harmonics {
                let f_h = intf.fundamental_hz * h as f64;
                // Separation > 2 FFT bins at 2.4 Msps / 1024 points (2.34 kHz/bin).
                assert!((f_h - 970e3).abs() > 5e3, "harmonic {f_h} collides with f_sw");
            }
        }
    }
}
