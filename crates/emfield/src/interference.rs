//! Environmental interference: other switching emitters and thermal
//! noise.
//!
//! The paper's NLoS experiment (Fig. 10) deliberately includes "other
//! electronic devices such as a printer in the transmitter's room and
//! a refrigerator in the receiver's room which also generate
//! unintentional EM emanations". Those devices contain their own
//! switching converters/inverters, so we model each interferer as a
//! comb of harmonics from its own switching fundamental, plus additive
//! white Gaussian thermal noise.

use std::sync::OnceLock;

use emsc_sdr::iq::Complex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One interfering emitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferer {
    /// Switching fundamental of the interferer, hertz.
    pub fundamental_hz: f64,
    /// Received amplitude of its fundamental (same units as the
    /// signal of interest after path loss).
    pub amplitude: f64,
    /// Number of harmonics to include.
    pub harmonics: u32,
    /// Per-harmonic amplitude rolloff factor (amplitude of harmonic
    /// `h` is `amplitude · rolloff^(h−1)`).
    pub rolloff: f64,
}

impl Interferer {
    /// A laser-printer switching supply near the transmitter.
    pub fn printer(amplitude: f64) -> Self {
        Interferer { fundamental_hz: 310e3, amplitude, harmonics: 8, rolloff: 0.6 }
    }

    /// A refrigerator compressor inverter near the receiver.
    pub fn refrigerator(amplitude: f64) -> Self {
        Interferer { fundamental_hz: 64e3, amplitude, harmonics: 20, rolloff: 0.8 }
    }

    /// Adds this interferer's comb to `buf` (complex baseband around
    /// `center_freq` at `sample_rate`), with a deterministic per-
    /// harmonic starting phase derived from `seed`.
    pub fn add_to(&self, buf: &mut [Complex], sample_rate: f64, center_freq: f64, seed: u64) {
        self.add_to_window(buf, sample_rate, center_freq, seed, 0);
    }

    /// [`Interferer::add_to`] for the window of the capture beginning
    /// at absolute sample `start`: each sample's phase is the
    /// *positional* `phase0 + step · n` for its absolute index `n`, so
    /// any window decomposition reproduces the whole-buffer comb bit
    /// for bit. The per-harmonic `phase0` draw happens only for
    /// in-band harmonics (out-of-band harmonics consume no RNG draws),
    /// exactly as the whole-buffer path always has.
    pub fn add_to_window(
        &self,
        buf: &mut [Complex],
        sample_rate: f64,
        center_freq: f64,
        seed: u64,
        start: usize,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ (self.fundamental_hz.to_bits()));
        for h in 1..=self.harmonics {
            let f_rf = self.fundamental_hz * h as f64;
            let f_bb = f_rf - center_freq;
            if f_bb.abs() > sample_rate / 2.0 {
                continue;
            }
            let amp = self.amplitude * self.rolloff.powi(h as i32 - 1);
            let phase0: f64 = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            let step = 2.0 * std::f64::consts::PI * f_bb / sample_rate;
            for (k, slot) in buf.iter_mut().enumerate() {
                let phase = phase0 + step * (start + k) as f64;
                *slot += Complex::from_polar(amp, phase);
            }
        }
    }
}

/// Samples per AWGN seeding block: the noise stream is defined on a
/// fixed grid of `AWGN_BLOCK`-sample blocks, block `b` drawing its
/// samples from a fresh xoshiro256++ stream positionally sub-seeded by
/// `emsc_runtime::seed_for(seed, b)`. A window therefore only needs
/// the seeds of the blocks it overlaps — any decomposition of the
/// capture reproduces the same noise bit for bit, which is what lets
/// the fused TX chain add noise per cache-resident block. 64 matches
/// the digitiser's 64-sample mixer-anchor grid, keeps the per-block
/// reseed (four splitmix64 steps) well under 0.1 ns/sample, and
/// bounds the draw-discard cost of an unaligned window start.
pub const AWGN_BLOCK: usize = 64;

/// Adds circular complex AWGN of standard deviation `sigma` (per
/// complex sample) to `buf`, deterministically from `seed`.
///
/// The sampler is a 256-layer Marsaglia–Tsang ziggurat over a
/// xoshiro256++ generator — an *exact* unit-normal distribution (the
/// wedge/tail corrections are taken, not approximated) at roughly one
/// table lookup plus one 64-bit RNG step per draw. Noise synthesis is
/// a large, shared cost of every simulated capture, and nothing in the
/// repo pins the per-sample bit pattern across implementations — only
/// determinism per seed and the channel statistics, both of which this
/// sampler preserves. The stream is blockwise sub-seeded on the
/// [`AWGN_BLOCK`] grid (see [`add_awgn_window`]).
pub fn add_awgn(buf: &mut [Complex], sigma: f64, seed: u64) {
    add_awgn_window(buf, sigma, seed, 0);
}

/// [`add_awgn`] for the window of the capture beginning at absolute
/// sample `start`: adds exactly the noise the whole-buffer call would
/// have added to indices `start..start + buf.len()`, bit for bit.
///
/// Block `b` of the [`AWGN_BLOCK`] grid draws `2·AWGN_BLOCK` normals
/// (re then im per sample, in index order) from its own positionally
/// seeded generator. A window aligned to the grid pays no overhead; a
/// window starting mid-block discards the `2·(start % AWGN_BLOCK)`
/// draws that precede it (draw-exact skipping — the ziggurat consumes
/// a variable number of RNG words per normal, so the draws must be
/// taken, not skipped arithmetically).
pub fn add_awgn_window(buf: &mut [Complex], sigma: f64, seed: u64, start: usize) {
    if sigma <= 0.0 || buf.is_empty() {
        return;
    }
    let zig = Ziggurat::tables();
    let s = sigma / 2f64.sqrt();
    let mut pos = start;
    let mut filled = 0usize;
    while filled < buf.len() {
        let block = pos / AWGN_BLOCK;
        let offset = pos % AWGN_BLOCK;
        let take = (AWGN_BLOCK - offset).min(buf.len() - filled);
        let mut rng = Xoshiro256::from_seed(emsc_runtime::seed_for(seed, block as u64));
        for _ in 0..2 * offset {
            zig.sample(&mut rng);
        }
        for slot in &mut buf[filled..filled + take] {
            let re = zig.sample(&mut rng);
            let im = zig.sample(&mut rng);
            *slot += Complex::new(s * re, s * im);
        }
        pos += take;
        filled += take;
    }
}

/// xoshiro256++ (Blackman & Vigna, public domain), seeded through
/// splitmix64 as its authors recommend. Passes BigCrush; an order of
/// magnitude cheaper per 64-bit output than the ChaCha-based `StdRng`
/// it replaces in the noise hot loop.
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 { s: [next_sm(), next_sm(), next_sm(), next_sm()] }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `(0, 1]` — safe under `ln()`.
    #[inline]
    fn uniform_pos(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Layer tables for the 256-layer ziggurat of the standard normal.
struct Ziggurat {
    /// Layer right edges, `x[0] > x[1] > … > x[256] = 0`; `x[0]` is the
    /// virtual base-layer edge `v / f(r)`.
    x: [f64; 257],
    /// `f(x[i]) = exp(-x[i]²/2)` for the wedge test.
    y: [f64; 257],
}

/// Rightmost rectangle edge for 256 layers.
const ZIG_R: f64 = 3.654_152_885_361_009;
/// Area of each layer (and of the base strip + tail).
const ZIG_V: f64 = 0.004_928_673_233_974_655;

impl Ziggurat {
    /// The process-wide tables, built once with the classic
    /// Marsaglia–Tsang recurrence. They used to live on the stack of
    /// each `add_awgn` call — negligible against a megasample buffer,
    /// but the blockwise windowed path may be entered once per
    /// [`AWGN_BLOCK`], so the few microseconds of `exp`/`ln`/`sqrt`
    /// now amortise to zero behind a `OnceLock` (same values bit for
    /// bit; the recurrence is deterministic).
    fn tables() -> &'static Self {
        static TABLES: OnceLock<Ziggurat> = OnceLock::new();
        TABLES.get_or_init(|| {
            let f = |x: f64| (-0.5 * x * x).exp();
            let mut x = [0.0f64; 257];
            x[0] = ZIG_V / f(ZIG_R);
            x[1] = ZIG_R;
            for i in 2..256 {
                x[i] = (-2.0 * (ZIG_V / x[i - 1] + f(x[i - 1])).ln()).sqrt();
            }
            x[256] = 0.0;
            let mut y = [0.0f64; 257];
            for i in 0..257 {
                y[i] = f(x[i]);
            }
            Ziggurat { x, y }
        })
    }

    /// One exact standard-normal draw.
    #[inline]
    fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        loop {
            let bits = rng.next_u64();
            let i = (bits & 0xFF) as usize;
            let sign = if bits & 0x100 != 0 { -1.0 } else { 1.0 };
            let u = ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
            let x = u * self.x[i];
            if x < self.x[i + 1] {
                // Entirely inside the next layer: accept (≈98.5%).
                return sign * x;
            }
            if i == 0 {
                // Base layer overshoot: sample the exact tail beyond r
                // (Marsaglia's exponential-majorant rejection).
                loop {
                    let xt = -rng.uniform_pos().ln() / ZIG_R;
                    let yt = -rng.uniform_pos().ln();
                    if yt + yt > xt * xt {
                        return sign * (ZIG_R + xt);
                    }
                }
            }
            // Wedge: uniform vertical coordinate against the exact pdf.
            let y = self.y[i]
                + (rng.next_u64() >> 11) as f64
                    * (1.0 / (1u64 << 53) as f64)
                    * (self.y[i + 1] - self.y[i]);
            if y < (-0.5 * x * x).exp() {
                return sign * x;
            }
        }
    }
}

/// Adds impulsive interference to `buf`: each sample independently
/// carries an impulse with probability `density`, of magnitude
/// `amplitude` and uniformly random phase. This is the analog-domain
/// counterpart of `emsc_sdr::impair::Impairment::ImpulseBurst` —
/// motor brushes, relay contacts and switching transients near the
/// receiver, injected *before* the front end's AGC and quantisation so
/// the impulses also steal ADC dynamic range. Deterministic from
/// `seed`; `density` is clamped to `[0, 1]` and non-positive
/// amplitudes are a no-op.
pub fn add_impulsive_noise(buf: &mut [Complex], density: f64, amplitude: f64, seed: u64) {
    if amplitude <= 0.0 || !density.is_finite() || density <= 0.0 {
        return;
    }
    let density = density.min(1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    for slot in buf.iter_mut() {
        if rng.gen_bool(density) {
            let phase = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
            *slot += Complex::from_polar(amplitude, phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::fft::{frequency_bin, plan_for};

    #[test]
    fn awgn_statistics() {
        let mut buf = vec![Complex::ZERO; 50_000];
        add_awgn(&mut buf, 0.5, 7);
        let mean: Complex = buf.iter().copied().sum::<Complex>() / buf.len() as f64;
        assert!(mean.abs() < 0.01, "mean {}", mean.abs());
        let power: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / buf.len() as f64;
        assert!((power - 0.25).abs() < 0.01, "power {power}");
    }

    #[test]
    fn awgn_tail_fractions_are_gaussian() {
        // The ziggurat's wedge/tail handling must reproduce the normal
        // law, not just its variance: check the per-component exceedance
        // fractions at 1σ/2σ/3σ against erfc (0.3173 / 0.0455 / 0.0027).
        let mut buf = vec![Complex::ZERO; 200_000];
        add_awgn(&mut buf, 1.0, 99);
        let s = 1.0 / 2f64.sqrt();
        let n = (buf.len() * 2) as f64;
        let frac = |k: f64| {
            buf.iter().flat_map(|z| [z.re, z.im]).filter(|v| v.abs() > k * s).count() as f64 / n
        };
        assert!((frac(1.0) - 0.3173).abs() < 0.01, "1σ tail {}", frac(1.0));
        assert!((frac(2.0) - 0.0455).abs() < 0.005, "2σ tail {}", frac(2.0));
        assert!((frac(3.0) - 0.0027).abs() < 0.0012, "3σ tail {}", frac(3.0));
    }

    #[test]
    fn awgn_zero_sigma_is_noop() {
        let mut buf = vec![Complex::new(1.0, -1.0); 16];
        add_awgn(&mut buf, 0.0, 3);
        assert!(buf.iter().all(|z| *z == Complex::new(1.0, -1.0)));
    }

    #[test]
    fn awgn_deterministic_per_seed() {
        let mut a = vec![Complex::ZERO; 64];
        let mut b = vec![Complex::ZERO; 64];
        add_awgn(&mut a, 1.0, 42);
        add_awgn(&mut b, 1.0, 42);
        assert_eq!(a, b);
    }

    fn assert_bitwise_eq(a: &[Complex], b: &[Complex], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "{what}: sample {i} differs ({x:?} vs {y:?})"
            );
        }
    }

    #[test]
    fn awgn_windows_compose_bitwise_with_whole_buffer() {
        // The blockwise sub-seeded stream must be decomposition-
        // independent: grid-aligned, grid-misaligned and single-sample
        // windows all reproduce the whole-buffer noise bit for bit.
        let n = 10 * AWGN_BLOCK + 17;
        let mut whole = vec![Complex::ZERO; n];
        add_awgn(&mut whole, 1.3, 2020);
        for window in [1usize, 7, AWGN_BLOCK, 3 * AWGN_BLOCK + 5, n] {
            let mut composed = vec![Complex::ZERO; n];
            let mut start = 0;
            while start < n {
                let len = window.min(n - start);
                add_awgn_window(&mut composed[start..start + len], 1.3, 2020, start);
                start += len;
            }
            assert_bitwise_eq(&composed, &whole, &format!("window {window}"));
        }
    }

    #[test]
    fn awgn_blocks_are_positionally_independent() {
        // A window deep inside the stream must not depend on having
        // generated anything before it: render the tail directly at
        // its absolute offset and compare against the whole buffer.
        let n = 5 * AWGN_BLOCK;
        let mut whole = vec![Complex::ZERO; n];
        add_awgn(&mut whole, 0.7, 99);
        let tail_at = 2 * AWGN_BLOCK + 13;
        let mut tail = vec![Complex::ZERO; n - tail_at];
        add_awgn_window(&mut tail, 0.7, 99, tail_at);
        assert_bitwise_eq(&tail, &whole[tail_at..], "detached tail");
    }

    #[test]
    fn interferer_windows_compose_bitwise_with_whole_buffer() {
        let fs = 2.4e6;
        let fc = 1.4e6;
        let n = 4096 + 31;
        let intf = Interferer::printer(0.8);
        let mut whole = vec![Complex::ZERO; n];
        intf.add_to(&mut whole, fs, fc, 5);
        for window in [1usize, 7, 997, n] {
            let mut composed = vec![Complex::ZERO; n];
            let mut start = 0;
            while start < n {
                let len = window.min(n - start);
                intf.add_to_window(&mut composed[start..start + len], fs, fc, 5, start);
                start += len;
            }
            assert_bitwise_eq(&composed, &whole, &format!("window {window}"));
        }
    }

    #[test]
    fn interferer_comb_lands_on_harmonics() {
        let fs = 2.4e6;
        let fc = 1.4e6;
        let n = 8192;
        let mut buf = vec![Complex::ZERO; n];
        let intf = Interferer { fundamental_hz: 300e3, amplitude: 1.0, harmonics: 8, rolloff: 0.5 };
        intf.add_to(&mut buf, fs, fc, 1);
        let mut spec = buf.clone();
        plan_for(n).forward(&mut spec);
        // Harmonic 5 at 1.5 MHz is in-band at +100 kHz baseband.
        let k5 = frequency_bin(1.5e6 - fc, n, fs);
        let a5 = spec[k5].abs() / n as f64;
        assert!((a5 - 0.5f64.powi(4)).abs() < 0.02, "h5 amplitude {a5}");
        // Harmonic 1 at 300 kHz is out of band (−1.1 MHz edge? in-band: −1.1 MHz is within ±1.2) —
        // pick harmonic far out of band instead: none beyond ±1.2 MHz must appear.
        let out_of_band_energy: f64 = (0..n)
            .filter(|&k| {
                let f = emsc_sdr::fft::bin_frequency(k, n, fs);
                f.abs() > 1.19e6
            })
            .map(|k| spec[k].abs() / n as f64)
            .fold(0.0, f64::max);
        assert!(out_of_band_energy < 0.05, "edge leakage {out_of_band_energy}");
    }

    #[test]
    fn impulsive_noise_is_sparse_and_deterministic() {
        let mut a = vec![Complex::ZERO; 10_000];
        let mut b = vec![Complex::ZERO; 10_000];
        add_impulsive_noise(&mut a, 0.01, 2.0, 11);
        add_impulsive_noise(&mut b, 0.01, 2.0, 11);
        assert_eq!(a, b);
        let hits = a.iter().filter(|z| z.abs() > 1e-12).count();
        assert!((50..200).contains(&hits), "expected ~100 impulses, got {hits}");
        for z in a.iter().filter(|z| z.abs() > 1e-12) {
            assert!((z.abs() - 2.0).abs() < 1e-9, "impulse magnitude {}", z.abs());
        }
        let mut c = vec![Complex::ZERO; 10_000];
        add_impulsive_noise(&mut c, 0.01, 2.0, 12);
        assert_ne!(a, c, "seed must move the impulses");
    }

    #[test]
    fn impulsive_noise_degenerate_parameters_are_noops() {
        let orig = vec![Complex::new(0.5, -0.5); 64];
        for (density, amplitude) in
            [(0.0, 1.0), (-1.0, 1.0), (f64::NAN, 1.0), (0.5, 0.0), (0.5, -3.0)]
        {
            let mut buf = orig.clone();
            add_impulsive_noise(&mut buf, density, amplitude, 5);
            assert_eq!(buf, orig, "density {density}, amplitude {amplitude}");
        }
        // Density above 1 clamps instead of panicking in gen_bool.
        let mut buf = vec![Complex::ZERO; 32];
        add_impulsive_noise(&mut buf, 2.0, 1.0, 5);
        assert!(buf.iter().all(|z| z.abs() > 0.0), "density 1 must hit every sample");
    }

    #[test]
    fn printer_and_fridge_have_distinct_fundamentals() {
        let p = Interferer::printer(1.0);
        let f = Interferer::refrigerator(1.0);
        assert_ne!(p.fundamental_hz, f.fundamental_hz);
        // Neither coincides with a typical VRM fundamental (~970 kHz):
        for intf in [p, f] {
            for h in 1..=intf.harmonics {
                let f_h = intf.fundamental_hz * h as f64;
                // Separation > 2 FFT bins at 2.4 Msps / 1024 points (2.34 kHz/bin).
                assert!((f_h - 970e3).abs() > 5e3, "harmonic {f_h} collides with f_sw");
            }
        }
    }
}
