//! Keystroke logging via the PMU EM side channel (§V of the paper).
//!
//! Every keypress briefly wakes the otherwise-idle processor, which
//! makes the VRM's emanation flare — so a radio across the wall can
//! count keystrokes, time them, and group them into words:
//!
//! - [`typist`]: a human typing model implementing Salthouse's
//!   empirical inter-key timing effects over QWERTY geometry,
//! - [`burst`]: keystroke → CPU-activity-burst mapping (plus the
//!   browser housekeeping that causes false positives),
//! - [`detect`]: the §V-C detector — short non-overlapping STFT
//!   windows, band thresholding, and the ≥30 ms duration filter —
//!   with TPR/FPR scoring against ground truth,
//! - [`stream`]: the resumable [`stream::StreamingDetector`], fed I/Q
//!   in chunks and bit-identical to the batch detector,
//! - [`words`]: gap-based word grouping and the Table IV word-length
//!   precision/recall metrics,
//! - [`identify`]: §V-B's timing-based search-space reduction — how
//!   many bits of key-guessing work the inter-key intervals save.
//!
//! The full physical chain is composed in `emsc-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod burst;
pub mod detect;
pub mod identify;
pub mod stream;
pub mod typist;
pub mod words;

pub use burst::BurstModel;
pub use detect::{
    score_detections, DetectError, DetectedBurst, DetectionReport, DetectionScore, Detector,
    DetectorConfig,
};
pub use stream::{DetectProgress, StreamingDetector};

pub use identify::{
    digraph_candidates, search_space_reduction, DigraphCandidates, SearchSpaceReduction,
};
pub use typist::{Keystroke, Typist, TypistConfig};
pub use words::{group_words, score_words, word_lengths, WordScore};
