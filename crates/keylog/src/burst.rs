//! Mapping keystrokes to processor activity bursts.
//!
//! §V-B: "pressing a key creates a *burst* of activity on the
//! processor which, in turn, causes the (otherwise idle) processor to
//! briefly switch to an *active* state". The burst is not just the
//! keyboard interrupt: the scan-code traverses the input stack, the
//! focused application (the paper types into Chrome) updates its DOM
//! and re-renders, and the compositor redraws. We model the aggregate
//! as tens of milliseconds of elevated activity per keystroke, plus
//! unrelated browser housekeeping bursts that act as false-positive
//! sources.

use emsc_pmu::sim::ExternalEvent;
use emsc_pmu::trace::ActivityKind;
use rand::Rng;

use crate::typist::Keystroke;

/// How a keystroke translates into CPU activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstModel {
    /// Mean busy time triggered by one keystroke, seconds.
    pub keystroke_busy_s: f64,
    /// Multiplicative spread on the busy time (0.3 = ±30 %).
    pub keystroke_jitter: f64,
    /// Rate of unrelated application housekeeping bursts, events/s.
    pub housekeeping_rate_hz: f64,
    /// Mean duration of a housekeeping burst, seconds (typically much
    /// shorter than a keystroke's — the paper filters them with the
    /// 30 ms duration threshold).
    pub housekeeping_busy_s: f64,
    /// Rate of *long* housekeeping bursts (GC pauses, re-renders),
    /// events/s. These exceed the 30 ms filter and are the main
    /// false-positive source the paper reports ("false positives are
    /// mainly caused by other system activity, such as handling of
    /// the browser requests").
    pub long_housekeeping_rate_hz: f64,
    /// Duration of a long housekeeping burst, seconds.
    pub long_housekeeping_busy_s: f64,
}

impl BurstModel {
    /// Typing into a browser (the paper's Chrome setup).
    pub fn browser() -> Self {
        BurstModel {
            keystroke_busy_s: 0.055,
            keystroke_jitter: 0.30,
            housekeeping_rate_hz: 1.0,
            housekeeping_busy_s: 0.012,
            long_housekeeping_rate_hz: 0.12,
            long_housekeeping_busy_s: 0.045,
        }
    }

    /// Converts a keystroke stream (plus background housekeeping over
    /// `duration_s`) into the machine's external-event list.
    pub fn events_for<R: Rng + ?Sized>(
        &self,
        keystrokes: &[Keystroke],
        duration_s: f64,
        rng: &mut R,
    ) -> Vec<ExternalEvent> {
        let mut events = Vec::with_capacity(keystrokes.len() + 8);
        for k in keystrokes {
            let jitter = 1.0 + self.keystroke_jitter * (2.0 * rng.gen::<f64>() - 1.0);
            events.push(ExternalEvent {
                t_s: k.press_s,
                duration_s: self.keystroke_busy_s * jitter,
                kind: ActivityKind::Work,
            });
        }
        // Housekeeping as Poisson processes over the whole capture.
        let poisson = |rate_hz: f64, base_s: f64, rng: &mut R, out: &mut Vec<ExternalEvent>| {
            if rate_hz <= 0.0 {
                return;
            }
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / rate_hz;
                if t >= duration_s {
                    break;
                }
                out.push(ExternalEvent {
                    t_s: t,
                    duration_s: base_s * (0.5 + rng.gen::<f64>()),
                    kind: ActivityKind::Background,
                });
            }
        };
        poisson(self.housekeeping_rate_hz, self.housekeeping_busy_s, rng, &mut events);
        poisson(self.long_housekeeping_rate_hz, self.long_housekeeping_busy_s, rng, &mut events);
        events.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap_or(std::cmp::Ordering::Equal));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typist::Typist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_keystroke_becomes_a_work_event() {
        let typist = Typist::default();
        let mut rng = StdRng::seed_from_u64(5);
        let keys = typist.type_text("hello", 0.5, &mut rng);
        let events = BurstModel::browser().events_for(&keys, 3.0, &mut rng);
        let work: Vec<_> = events.iter().filter(|e| e.kind == ActivityKind::Work).collect();
        assert_eq!(work.len(), 5);
        for (w, k) in work.iter().zip(&keys) {
            assert!((w.t_s - k.press_s).abs() < 1e-12);
            assert!(w.duration_s > 0.03, "keystroke burst too short: {}", w.duration_s);
        }
    }

    #[test]
    fn housekeeping_bursts_are_mostly_short() {
        let mut rng = StdRng::seed_from_u64(9);
        let events = BurstModel::browser().events_for(&[], 60.0, &mut rng);
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.kind == ActivityKind::Background));
        let long = events.iter().filter(|e| e.duration_s >= 0.03).count();
        let short = events.len() - long;
        // ~1 Hz short vs ~0.12 Hz long.
        assert!(short > 4 * long, "short {short} vs long {long}");
        // The long tail exists — it is the paper's FP source.
        assert!(long >= 1, "expected at least one long housekeeping burst");
    }

    #[test]
    fn events_are_sorted() {
        let typist = Typist::default();
        let mut rng = StdRng::seed_from_u64(5);
        let keys = typist.type_text("some words here", 1.0, &mut rng);
        let events = BurstModel::browser().events_for(&keys, 10.0, &mut rng);
        for w in events.windows(2) {
            assert!(w[0].t_s <= w[1].t_s);
        }
    }

    #[test]
    fn keystroke_bursts_exceed_the_papers_duration_filter() {
        // The §V-C detector drops bursts shorter than 30 ms; real
        // keystrokes must (almost) always survive that filter.
        let typist = Typist::default();
        let mut rng = StdRng::seed_from_u64(17);
        let keys = typist.type_text("abcdefghij klmnop qrstuv", 0.0, &mut rng);
        let events = BurstModel::browser().events_for(&keys, 10.0, &mut rng);
        let long =
            events.iter().filter(|e| e.kind == ActivityKind::Work && e.duration_s >= 0.03).count();
        assert!(long as f64 >= 0.95 * keys.len() as f64);
    }
}
