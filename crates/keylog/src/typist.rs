//! Human typist model: turning text into keystroke timings.
//!
//! §V-B of the paper leans on Salthouse's empirical regularities of
//! transcription typing \[78\] and Feit et al. \[79\]:
//!
//! 1. keys *far apart* on the keyboard are pressed in quicker
//!    succession than keys close together (different hands/fingers
//!    move in parallel),
//! 2. frequent letter pairs are typed faster than infrequent ones,
//! 3. practice shortens inter-key intervals (e.g. the space bar after
//!    a common word).
//!
//! This module implements those effects over a QWERTY geometry and
//! produces the ground-truth keystroke stream the detector is scored
//! against.

use rand::Rng;

/// A single keystroke: the paper's 3-tuple `(t_p, t_r, k)` (§V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Keystroke {
    /// Press time, seconds.
    pub press_s: f64,
    /// Release time, seconds.
    pub release_s: f64,
    /// The character produced.
    pub key: char,
}

impl Keystroke {
    /// Dwell time (press to release), seconds.
    pub fn dwell_s(&self) -> f64 {
        self.release_s - self.press_s
    }
}

/// QWERTY key position in (row, column) units of one key pitch.
/// Returns `None` for keys off the main block.
pub fn qwerty_position(key: char) -> Option<(f64, f64)> {
    let rows = ["qwertyuiop", "asdfghjkl", "zxcvbnm"];
    let lower = key.to_ascii_lowercase();
    for (r, row) in rows.iter().enumerate() {
        if let Some(c) = row.find(lower) {
            // Row stagger: each row shifts right by ~0.25/0.5 pitch.
            let stagger = [0.0, 0.25, 0.75][r];
            return Some((r as f64, c as f64 + stagger));
        }
    }
    if lower == ' ' {
        return Some((3.0, 4.5)); // space bar centre
    }
    None
}

/// Euclidean distance between two keys in key pitches (0 when either
/// key is unknown).
pub fn key_distance(a: char, b: char) -> f64 {
    match (qwerty_position(a), qwerty_position(b)) {
        (Some((r1, c1)), Some((r2, c2))) => ((r1 - r2).powi(2) + (c1 - c2).powi(2)).sqrt(),
        _ => 0.0,
    }
}

/// Relative frequency of an English digraph, in `[0, 1]` (1 = most
/// common). A compact table of the most frequent digraphs; everything
/// else gets a small floor value.
pub fn digraph_frequency(a: char, b: char) -> f64 {
    const COMMON: &[(&str, f64)] = &[
        ("th", 1.00),
        ("he", 0.98),
        ("in", 0.91),
        ("er", 0.89),
        ("an", 0.82),
        ("re", 0.72),
        ("nd", 0.62),
        ("on", 0.57),
        ("en", 0.55),
        ("at", 0.53),
        ("ou", 0.52),
        ("ed", 0.50),
        ("ha", 0.49),
        ("to", 0.46),
        ("or", 0.45),
        ("it", 0.43),
        ("is", 0.42),
        ("hi", 0.41),
        ("es", 0.41),
        ("ng", 0.38),
        ("ar", 0.36),
        ("se", 0.34),
        ("st", 0.34),
        ("te", 0.33),
        ("me", 0.31),
        ("ea", 0.30),
        ("ne", 0.28),
        ("we", 0.27),
        ("ll", 0.26),
        ("le", 0.26),
    ];
    let pair: String = [a.to_ascii_lowercase(), b.to_ascii_lowercase()].iter().collect();
    COMMON.iter().find(|(d, _)| **d == pair).map(|&(_, f)| f).unwrap_or(0.05)
}

/// Typist skill/timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypistConfig {
    /// Baseline inter-key interval, seconds (~60 wpm ≈ 0.2 s).
    pub base_interval_s: f64,
    /// Interval reduction per key-pitch of distance (effect 1:
    /// far-apart keys come *faster*).
    pub distance_gain_s: f64,
    /// Interval reduction scale for frequent digraphs (effect 2).
    pub digraph_gain_s: f64,
    /// Interval reduction for the space bar after a word (effect 3,
    /// practice: spaces are the most practised keystroke).
    pub practice_gain_s: f64,
    /// Extra pause before the first key of a new word (readers of the
    /// source text chunk by word; visible as the word gaps in
    /// Fig. 11).
    pub word_pause_s: f64,
    /// Mean key dwell (press → release), seconds.
    pub dwell_s: f64,
    /// Log-normal-ish multiplicative jitter spread (0.2 = ±20 %).
    pub jitter: f64,
}

impl TypistConfig {
    /// An average touch typist (~55–65 wpm).
    pub fn average() -> Self {
        TypistConfig {
            base_interval_s: 0.21,
            distance_gain_s: 0.010,
            digraph_gain_s: 0.06,
            practice_gain_s: 0.04,
            word_pause_s: 0.24,
            dwell_s: 0.085,
            jitter: 0.18,
        }
    }

    /// A skilled touch typist (~90 wpm): shorter intervals, stronger
    /// digraph anticipation, less jitter.
    pub fn professional() -> Self {
        TypistConfig {
            base_interval_s: 0.135,
            distance_gain_s: 0.008,
            digraph_gain_s: 0.045,
            practice_gain_s: 0.03,
            word_pause_s: 0.13,
            dwell_s: 0.06,
            jitter: 0.12,
        }
    }

    /// A hunt-and-peck typist (~25 wpm): long, variable intervals and
    /// big word pauses while searching for keys.
    pub fn hunt_and_peck() -> Self {
        TypistConfig {
            base_interval_s: 0.45,
            distance_gain_s: 0.000,
            digraph_gain_s: 0.03,
            practice_gain_s: 0.02,
            word_pause_s: 0.5,
            dwell_s: 0.11,
            jitter: 0.35,
        }
    }
}

/// The typist: converts text into a keystroke stream.
#[derive(Debug, Clone)]
pub struct Typist {
    config: TypistConfig,
}

impl Typist {
    /// Creates a typist.
    ///
    /// # Panics
    ///
    /// Panics if the base interval or dwell is not positive.
    pub fn new(config: TypistConfig) -> Self {
        assert!(config.base_interval_s > 0.0, "base interval must be positive");
        assert!(config.dwell_s > 0.0, "dwell must be positive");
        Typist { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TypistConfig {
        &self.config
    }

    /// Mean inter-key interval before the key `b`, following `a`.
    pub fn mean_interval_s(&self, a: char, b: char) -> f64 {
        let c = &self.config;
        let mut interval = c.base_interval_s;
        interval -= c.distance_gain_s * key_distance(a, b).min(10.0);
        interval -= c.digraph_gain_s * digraph_frequency(a, b);
        if b == ' ' {
            interval -= c.practice_gain_s;
        }
        if a == ' ' {
            interval += c.word_pause_s;
        }
        interval.max(0.05)
    }

    /// Types `text`, returning the keystroke stream starting at
    /// `start_s` seconds. Deterministic for a given RNG state.
    pub fn type_text<R: Rng + ?Sized>(
        &self,
        text: &str,
        start_s: f64,
        rng: &mut R,
    ) -> Vec<Keystroke> {
        let c = &self.config;
        let mut out = Vec::with_capacity(text.len());
        let mut t = start_s;
        let mut prev: Option<char> = None;
        for key in text.chars() {
            if let Some(p) = prev {
                let mean = self.mean_interval_s(p, key);
                let jitter = 1.0 + c.jitter * (2.0 * rng.gen::<f64>() - 1.0);
                t += mean * jitter;
            }
            let dwell = c.dwell_s * (1.0 + c.jitter * (2.0 * rng.gen::<f64>() - 1.0));
            out.push(Keystroke { press_s: t, release_s: t + dwell, key });
            prev = Some(key);
        }
        out
    }
}

impl Default for Typist {
    fn default() -> Self {
        Typist::new(TypistConfig::average())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn qwerty_geometry_is_sane() {
        assert!(key_distance('a', 's') < key_distance('a', 'l'));
        assert!(key_distance('q', 'p') > 8.0);
        assert_eq!(key_distance('a', '!'), 0.0); // unknown key
                                                 // same key = zero distance
        assert!(key_distance('f', 'f') < 1e-12);
    }

    #[test]
    fn far_keys_are_typed_faster_than_near_keys() {
        // Salthouse effect 1.
        let t = Typist::default();
        // 'a'→'p' spans the keyboard; 'd'→'f' are adjacent. Use pairs
        // with equal digraph frequency (both rare) to isolate distance.
        assert!(t.mean_interval_s('a', 'p') < t.mean_interval_s('d', 'f'));
    }

    #[test]
    fn frequent_digraphs_are_typed_faster() {
        // Salthouse effect 2: 'th' is the most common digraph; 'tq' is
        // about as rare as it gets, at comparable distance.
        let t = Typist::default();
        assert!(t.mean_interval_s('t', 'h') < t.mean_interval_s('t', 'q'));
    }

    #[test]
    fn space_is_faster_than_comparable_letters() {
        // Salthouse effect 3 (practice).
        let t = Typist::default();
        let with_space = t.mean_interval_s('n', ' ');
        let without = t.mean_interval_s('n', 'b');
        assert!(with_space < without);
    }

    #[test]
    fn typed_text_is_ordered_and_keys_match() {
        let t = Typist::default();
        let text = "can you hear me";
        let keys = t.type_text(text, 1.0, &mut rng());
        assert_eq!(keys.len(), text.chars().count());
        assert_eq!(keys[0].press_s, 1.0);
        for w in keys.windows(2) {
            assert!(w[0].press_s < w[1].press_s);
        }
        let typed: String = keys.iter().map(|k| k.key).collect();
        assert_eq!(typed, text);
        for k in &keys {
            assert!(k.dwell_s() > 0.03 && k.dwell_s() < 0.2);
        }
    }

    #[test]
    fn word_boundaries_have_a_pause() {
        let t = Typist::default();
        // Gap into a word-initial key exceeds a within-word gap.
        assert!(t.mean_interval_s(' ', 'h') > 1.4 * t.mean_interval_s('e', 'h'));
    }

    #[test]
    fn typing_rate_is_realistic() {
        // An average typist does ~4–7 keys/second.
        let t = Typist::default();
        let text = "the quick brown fox jumps over the lazy dog and keeps typing more text";
        let keys = t.type_text(text, 0.0, &mut rng());
        let span = keys.last().unwrap().press_s - keys[0].press_s;
        let rate = (keys.len() - 1) as f64 / span;
        assert!((3.0..9.0).contains(&rate), "rate {rate} keys/s");
    }

    #[test]
    fn skill_presets_order_by_speed() {
        let text = "ordering of typing speeds over a sentence";
        let mut rng = rng();
        let mut dur = |cfg: TypistConfig| {
            let keys = Typist::new(cfg).type_text(text, 0.0, &mut rng);
            keys.last().unwrap().press_s
        };
        let pro = dur(TypistConfig::professional());
        let avg = dur(TypistConfig::average());
        let hp = dur(TypistConfig::hunt_and_peck());
        assert!(pro < avg && avg < hp, "pro {pro}, avg {avg}, h&p {hp}");
    }

    #[test]
    fn deterministic_per_seed() {
        let t = Typist::default();
        let a = t.type_text("hello world", 0.0, &mut rng());
        let b = t.type_text("hello world", 0.0, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "base interval")]
    fn invalid_config_panics() {
        Typist::new(TypistConfig { base_interval_s: 0.0, ..TypistConfig::average() });
    }
}
