//! Word reconstruction from detected keystroke times.
//!
//! §V-C, "Word Detection": once keystrokes are detected, "relatively
//! close spikes" are grouped into words (following Berger et al.'s
//! dictionary-attack preprocessing \[75\]). The space bar is itself a
//! keystroke — and, per Salthouse's practice effect, it follows the
//! preceding word *quickly* — so each detected group typically carries
//! the trailing space with it. Word length is estimated as the group
//! size minus that trailing space.

/// Groups detected keystroke times into words.
///
/// A word boundary is declared wherever the inter-keystroke gap
/// exceeds `gap_factor ×` the median gap. Returns the groups as
/// vectors of keystroke times.
pub fn group_words(times: &[f64], gap_factor: f64) -> Vec<Vec<f64>> {
    if times.is_empty() {
        return Vec::new();
    }
    if times.len() == 1 {
        return vec![times.to_vec()];
    }
    let mut gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median_gap = gaps[gaps.len() / 2];
    let threshold = gap_factor * median_gap;
    let mut words = Vec::new();
    let mut current = vec![times[0]];
    for w in times.windows(2) {
        if w[1] - w[0] > threshold {
            words.push(std::mem::take(&mut current));
        }
        current.push(w[1]);
    }
    words.push(current);
    words
}

/// Estimated word lengths from keystroke groups: every group except
/// the last is assumed to include its trailing space keystroke.
pub fn word_lengths(groups: &[Vec<f64>]) -> Vec<usize> {
    let n = groups.len();
    groups
        .iter()
        .enumerate()
        .map(|(i, g)| if i + 1 < n && g.len() > 1 { g.len() - 1 } else { g.len() })
        .collect()
}

/// Word-level accuracy (Table IV, word columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordScore {
    /// Predicted words whose length matched the true word at the same
    /// position.
    pub correct: usize,
    /// Total predicted words.
    pub predicted: usize,
    /// Total true words.
    pub actual: usize,
}

impl WordScore {
    /// Precision: correctly-lengthed words among retrieved words.
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            0.0
        } else {
            self.correct as f64 / self.predicted as f64
        }
    }

    /// Recall: retrieved words over total existing words.
    pub fn recall(&self) -> f64 {
        if self.actual == 0 {
            0.0
        } else {
            self.predicted.min(self.actual) as f64 / self.actual as f64
        }
    }
}

/// Scores predicted word lengths against the true text's words.
///
/// The two sequences are aligned with an edit-distance alignment
/// before counting, so one wrong boundary costs one word rather than
/// positionally shifting (and thus failing) every word after it.
pub fn score_words(predicted_lengths: &[usize], text: &str) -> WordScore {
    let true_lengths: Vec<usize> = text.split_whitespace().map(|w| w.chars().count()).collect();
    let correct = aligned_matches(predicted_lengths, &true_lengths);
    WordScore { correct, predicted: predicted_lengths.len(), actual: true_lengths.len() }
}

/// Number of equal-value pairs in an optimal (unit-cost) alignment of
/// two sequences — i.e. the longest common subsequence restricted to
/// near-diagonal pairings.
fn aligned_matches(a: &[usize], b: &[usize]) -> usize {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0;
    }
    // dp[i][j] = max matches aligning a[..i] with b[..j]
    let mut dp = vec![0usize; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in 1..=n {
        for j in 1..=m {
            let diag = dp[idx(i - 1, j - 1)] + usize::from(a[i - 1] == b[j - 1]);
            dp[idx(i, j)] = diag.max(dp[idx(i - 1, j)]).max(dp[idx(i, j - 1)]);
        }
    }
    dp[idx(n, m)]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keystroke times mimicking "can you": intra-word gaps ~0.15 s,
    /// space attached quickly, then a ~0.5 s pause before the next word.
    fn two_word_times() -> Vec<f64> {
        vec![
            0.00, 0.15, 0.30, 0.42, // c a n ␣
            0.95, 1.10, 1.25, 1.37, // y o u ␣
            1.90, 2.05, // m e (no trailing space)
        ]
    }

    #[test]
    fn groups_split_on_long_gaps() {
        let groups = group_words(&two_word_times(), 2.0);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].len(), 4);
        assert_eq!(groups[1].len(), 4);
        assert_eq!(groups[2].len(), 2);
    }

    #[test]
    fn lengths_strip_trailing_space() {
        let groups = group_words(&two_word_times(), 2.0);
        assert_eq!(word_lengths(&groups), vec![3, 3, 2]);
    }

    #[test]
    fn scoring_matches_by_position() {
        let score = score_words(&[3, 3, 2], "can you me");
        assert_eq!(score.correct, 3);
        assert!((score.precision() - 1.0).abs() < 1e-12);
        assert!((score.recall() - 1.0).abs() < 1e-12);

        let imperfect = score_words(&[3, 4, 2], "can you me");
        assert_eq!(imperfect.correct, 2);
        assert!((imperfect.precision() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_bad_boundary_costs_one_word_not_all() {
        // Predicted merges the 2nd and 3rd words ("you" + "hear" → 7):
        // alignment still credits the surrounding words.
        let score = score_words(&[3, 7, 2], "can you hear me");
        assert_eq!(score.correct, 2, "can and me still count");
    }

    #[test]
    fn missing_words_lower_recall() {
        let score = score_words(&[3, 3], "can you hear me");
        assert_eq!(score.actual, 4);
        assert!((score.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(group_words(&[], 2.0).is_empty());
        assert_eq!(group_words(&[1.0], 2.0), vec![vec![1.0]]);
        assert_eq!(word_lengths(&[vec![1.0]]), vec![1]);
        let empty = score_words(&[], "");
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
    }

    #[test]
    fn uniform_typing_is_one_word() {
        let times: Vec<f64> = (0..10).map(|i| i as f64 * 0.2).collect();
        let groups = group_words(&times, 2.0);
        assert_eq!(groups.len(), 1);
        assert_eq!(word_lengths(&groups), vec![10]);
    }
}
