//! Key identification: shrinking the search space from timing alone.
//!
//! §V-B: "existing work has shown that the duration of each keystroke
//! and the time difference between two consecutive keys can also be
//! leveraged to further reduce the search space for key
//! identification" — Salthouse's regularities make the *inter-key
//! interval* informative about the key *pair* (far-apart pairs come
//! faster; frequent digraphs come faster). This module quantifies that
//! reduction: given an observed interval, how many of the possible
//! digraphs remain plausible, and how many bits of password-guessing
//! entropy the attacker gains.

#[cfg(test)]
use crate::typist::key_distance;
use crate::typist::Typist;

/// The lowercase key set considered for identification.
pub const KEY_SET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', ' ',
];

/// Candidate digraphs consistent with one observed inter-key interval.
#[derive(Debug, Clone)]
pub struct DigraphCandidates {
    /// The observed interval, seconds.
    pub interval_s: f64,
    /// Digraphs whose expected interval lies within the tolerance.
    pub candidates: Vec<(char, char)>,
    /// Total digraphs considered.
    pub universe: usize,
}

impl DigraphCandidates {
    /// Fraction of the digraph universe remaining.
    pub fn reduction(&self) -> f64 {
        if self.universe == 0 {
            return 1.0;
        }
        self.candidates.len() as f64 / self.universe as f64
    }

    /// Entropy gained over a uniform prior, in bits
    /// (`log₂(universe / candidates)`).
    pub fn entropy_gain_bits(&self) -> f64 {
        if self.candidates.is_empty() || self.universe == 0 {
            return 0.0;
        }
        (self.universe as f64 / self.candidates.len() as f64).log2()
    }
}

/// Returns the digraphs whose expected inter-key interval (under the
/// typist model) is within `±tolerance` (relative) of the observed
/// interval.
pub fn digraph_candidates(typist: &Typist, interval_s: f64, tolerance: f64) -> DigraphCandidates {
    let mut candidates = Vec::new();
    let mut universe = 0;
    for &a in KEY_SET {
        for &b in KEY_SET {
            universe += 1;
            let expected = typist.mean_interval_s(a, b);
            if (interval_s - expected).abs() <= tolerance * expected {
                candidates.push((a, b));
            }
        }
    }
    DigraphCandidates { interval_s, candidates, universe }
}

/// Search-space summary for a whole observed keystroke sequence: the
/// per-interval entropy gains and their total — the number of bits of
/// brute-force work the timing analysis saves the attacker.
#[derive(Debug, Clone)]
pub struct SearchSpaceReduction {
    /// Per-interval entropy gain, bits.
    pub per_interval_bits: Vec<f64>,
    /// Total gain over the sequence, bits.
    pub total_bits: f64,
}

/// Analyses the intervals of a detected keystroke time sequence.
pub fn search_space_reduction(
    typist: &Typist,
    times_s: &[f64],
    tolerance: f64,
) -> SearchSpaceReduction {
    let per_interval_bits: Vec<f64> = times_s
        .windows(2)
        .map(|w| digraph_candidates(typist, w[1] - w[0], tolerance).entropy_gain_bits())
        .collect();
    let total_bits = per_interval_bits.iter().sum();
    SearchSpaceReduction { per_interval_bits, total_bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fast_intervals_exclude_slow_digraphs() {
        let typist = Typist::default();
        // A very fast interval: only far-apart or frequent pairs fit.
        let fast = digraph_candidates(&typist, 0.10, 0.1);
        // A middling interval keeps more of the universe.
        let mid = digraph_candidates(&typist, 0.20, 0.1);
        assert!(fast.candidates.len() < mid.candidates.len());
        assert!(fast.entropy_gain_bits() > mid.entropy_gain_bits());
        // The fast candidates are dominated by distant/frequent pairs.
        let mean_distance: f64 =
            fast.candidates.iter().map(|&(a, b)| key_distance(a, b)).sum::<f64>()
                / fast.candidates.len().max(1) as f64;
        let mid_distance: f64 =
            mid.candidates.iter().map(|&(a, b)| key_distance(a, b)).sum::<f64>()
                / mid.candidates.len().max(1) as f64;
        assert!(mean_distance > mid_distance);
    }

    #[test]
    fn entropy_gain_is_nonnegative_and_bounded() {
        let typist = Typist::default();
        for interval in [0.08, 0.12, 0.18, 0.25, 0.4] {
            let c = digraph_candidates(&typist, interval, 0.15);
            let g = c.entropy_gain_bits();
            let max = (c.universe as f64).log2();
            assert!((0.0..=max).contains(&g), "gain {g} for interval {interval}");
        }
    }

    #[test]
    fn real_typing_yields_positive_reduction() {
        let typist = Typist::default();
        let mut rng = StdRng::seed_from_u64(4);
        let keys = typist.type_text("the quick brown fox", 0.0, &mut rng);
        let times: Vec<f64> = keys.iter().map(|k| k.press_s).collect();
        let r = search_space_reduction(&typist, &times, 0.2);
        assert_eq!(r.per_interval_bits.len(), times.len() - 1);
        assert!(r.total_bits > 5.0, "total gain {} bits", r.total_bits);
        // Average of at least ~0.3 bit per keystroke from timing alone.
        let per_key = r.total_bits / r.per_interval_bits.len() as f64;
        assert!(per_key > 0.3, "per-interval {per_key}");
    }

    #[test]
    fn impossible_interval_gains_nothing() {
        let typist = Typist::default();
        let c = digraph_candidates(&typist, 10.0, 0.05);
        assert!(c.candidates.is_empty());
        assert_eq!(c.entropy_gain_bits(), 0.0);
    }

    #[test]
    fn empty_sequence_reduces_nothing() {
        let typist = Typist::default();
        let r = search_space_reduction(&typist, &[], 0.2);
        assert!(r.per_interval_bits.is_empty());
        assert_eq!(r.total_bits, 0.0);
    }
}
