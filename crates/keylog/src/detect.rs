//! The keystroke detector of §V-C.
//!
//! The capture is divided into short non-overlapping STFT windows
//! ("5 ms long" in the paper; we use 8192 samples ≈ 3.4 ms at
//! 2.4 Msps, the nearest power of two); the VRM band's energy per
//! window is thresholded (the Fig. 7 bimodal rule) into active/idle;
//! consecutive active windows are grouped into bursts; and bursts
//! shorter than 30 ms are discarded as non-keystroke activity.

use emsc_sdr::error::CaptureError;
use emsc_sdr::stats::{quantile, Histogram};
use emsc_sdr::stft::{stft, StftConfig};
use emsc_sdr::window::Window;
use emsc_sdr::Capture;

/// Why keystroke detection could not run over a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectError {
    /// The detector configuration violates an invariant (the message
    /// names it).
    InvalidConfig(&'static str),
    /// The capture itself is unusable (empty, shorter than one STFT
    /// window, majority-non-finite, bad sample rate).
    Capture(CaptureError),
}

impl DetectError {
    /// Whether re-capturing could plausibly clear this error: capture
    /// faults follow [`CaptureError::is_retryable`] (transient device
    /// conditions are worth a retry); configuration faults are fatal —
    /// a supervisor should quarantine the session rather than burn its
    /// restart budget on an invariant that can never hold.
    pub fn is_retryable(&self) -> bool {
        match self {
            DetectError::Capture(e) => e.is_retryable(),
            DetectError::InvalidConfig(_) => false,
        }
    }
}

impl std::fmt::Display for DetectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectError::InvalidConfig(msg) => write!(f, "invalid detector configuration: {msg}"),
            DetectError::Capture(e) => write!(f, "unusable capture: {e}"),
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectError::Capture(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CaptureError> for DetectError {
    fn from(e: CaptureError) -> Self {
        DetectError::Capture(e)
    }
}

/// Detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// VRM switching frequency (RF), hertz.
    pub switching_freq_hz: f64,
    /// Harmonics included in the band energy.
    pub harmonics: usize,
    /// STFT window size, samples (non-overlapping; ≈5 ms class).
    pub window_samples: usize,
    /// Minimum keystroke burst duration, seconds (the paper's 30 ms
    /// false-positive filter).
    pub min_burst_s: f64,
    /// Maximum number of consecutive idle windows tolerated inside
    /// one burst (bridges brief dips during a keystroke).
    pub max_gap_windows: usize,
}

impl DetectorConfig {
    /// Paper-faithful defaults for a given switching frequency.
    pub fn new(switching_freq_hz: f64) -> Self {
        DetectorConfig {
            switching_freq_hz,
            harmonics: 2,
            window_samples: 8192,
            min_burst_s: 30e-3,
            max_gap_windows: 2,
        }
    }
}

/// A detected activity burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedBurst {
    /// Burst start, seconds.
    pub start_s: f64,
    /// Burst duration, seconds.
    pub duration_s: f64,
}

impl DetectedBurst {
    /// Burst end, seconds.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }
}

/// Detector output, intermediates included.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionReport {
    /// Per-window band energy.
    pub window_energy: Vec<f64>,
    /// Seconds per window.
    pub window_s: f64,
    /// The threshold used.
    pub threshold: f64,
    /// Bursts that survived the duration filter.
    pub bursts: Vec<DetectedBurst>,
    /// Bursts rejected by the duration filter (kept for analysis).
    pub rejected: Vec<DetectedBurst>,
}

/// Detection quality against ground truth (Table IV, character
/// columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionScore {
    /// True keystrokes matched by a detection.
    pub true_positives: usize,
    /// Detections matching no true keystroke.
    pub false_positives: usize,
    /// True keystrokes with no matching detection.
    pub missed: usize,
}

impl DetectionScore {
    /// True-positive rate: detected keystrokes / actual keystrokes.
    pub fn tpr(&self) -> f64 {
        let total = self.true_positives + self.missed;
        if total == 0 {
            0.0
        } else {
            self.true_positives as f64 / total as f64
        }
    }

    /// False-positive rate: spurious detections / all detections.
    pub fn fpr(&self) -> f64 {
        let total = self.true_positives + self.false_positives;
        if total == 0 {
            0.0
        } else {
            self.false_positives as f64 / total as f64
        }
    }
}

/// The keystroke detector.
#[derive(Debug, Clone)]
pub struct Detector {
    config: DetectorConfig,
}

impl Detector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `window_samples` is not a power of two or the
    /// configuration is otherwise degenerate.
    pub fn new(config: DetectorConfig) -> Self {
        assert!(config.window_samples.is_power_of_two(), "window must be a power of two");
        assert!(config.harmonics > 0, "need at least the fundamental");
        assert!(config.min_burst_s >= 0.0, "burst filter must be non-negative");
        Detector { config }
    }

    /// Fallible variant of [`Detector::new`]: reports a degenerate
    /// configuration as [`DetectError::InvalidConfig`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidConfig`] naming the violated
    /// invariant.
    pub fn try_new(config: DetectorConfig) -> Result<Self, DetectError> {
        if !config.window_samples.is_power_of_two() {
            return Err(DetectError::InvalidConfig("window must be a power of two"));
        }
        if config.harmonics == 0 {
            return Err(DetectError::InvalidConfig("need at least the fundamental"));
        }
        if config.min_burst_s.is_nan() || config.min_burst_s < 0.0 {
            return Err(DetectError::InvalidConfig("burst filter must be non-negative"));
        }
        Ok(Detector { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Computes the per-window VRM-band energies of a capture — the
    /// first detection stage, exposed separately so long recordings
    /// can be processed in chunks (energies concatenate; thresholding
    /// and grouping then run once, globally).
    pub fn window_energies(&self, capture: &Capture) -> Vec<f64> {
        let cfg = &self.config;
        let spec = stft(
            &capture.samples,
            capture.sample_rate,
            &StftConfig::non_overlapping(cfg.window_samples, Window::Hann),
        );
        let freqs: Vec<f64> = (1..=cfg.harmonics)
            .map(|h| cfg.switching_freq_hz * h as f64 - capture.center_freq)
            .filter(|f| f.abs() < capture.sample_rate / 2.0)
            .collect();
        spec.band_energy(&freqs)
    }

    /// Runs detection over a capture.
    ///
    /// Panic-free wrapper over [`Detector::try_detect`]: an unusable
    /// capture degrades to an empty report (no bursts) instead of a
    /// crash.
    pub fn detect(&self, capture: &Capture) -> DetectionReport {
        self.try_detect(capture).unwrap_or_else(|_| DetectionReport {
            window_energy: Vec::new(),
            window_s: 0.0,
            threshold: 0.0,
            bursts: Vec::new(),
            rejected: Vec::new(),
        })
    }

    /// Fallible detection: like [`Detector::detect`] but reporting an
    /// unusable capture as a typed [`DetectError`]. Non-finite window
    /// energies (from isolated corrupt samples) are zeroed before
    /// thresholding; a capture whose samples are *mostly* non-finite
    /// is rejected.
    ///
    /// # Errors
    ///
    /// [`DetectError::Capture`] for an empty capture, one shorter
    /// than a single STFT window, a non-positive/non-finite sample
    /// rate, or a majority-non-finite capture.
    pub fn try_detect(&self, capture: &Capture) -> Result<DetectionReport, DetectError> {
        if !(capture.sample_rate > 0.0 && capture.sample_rate.is_finite()) {
            return Err(DetectError::Capture(CaptureError::InvalidSampleRate));
        }
        if capture.samples.is_empty() {
            return Err(DetectError::Capture(CaptureError::Empty));
        }
        if capture.samples.len() < self.config.window_samples {
            return Err(DetectError::Capture(CaptureError::TooShort {
                needed: self.config.window_samples,
                got: capture.samples.len(),
            }));
        }
        let non_finite =
            capture.samples.iter().filter(|z| !(z.re.is_finite() && z.im.is_finite())).count();
        if non_finite * 2 > capture.samples.len() {
            return Err(DetectError::Capture(CaptureError::NonFinite {
                count: non_finite,
                total: capture.samples.len(),
            }));
        }
        let mut window_energy = self.window_energies(capture);
        // Isolated corrupt samples poison only their own window's
        // energy; zero those windows so they read as idle.
        for e in &mut window_energy {
            if !e.is_finite() {
                *e = 0.0;
            }
        }
        let window_s = self.config.window_samples as f64 / capture.sample_rate;
        Ok(self.detect_from_energies(window_energy, window_s))
    }

    /// Thresholds and groups precomputed window energies (see
    /// [`Detector::window_energies`]).
    pub fn detect_from_energies(&self, window_energy: Vec<f64>, window_s: f64) -> DetectionReport {
        let cfg = &self.config;
        let threshold = select_threshold(&window_energy);
        let active: Vec<bool> = window_energy.iter().map(|&e| e > threshold).collect();

        // Group active windows into bursts, bridging short gaps.
        let mut bursts = Vec::new();
        let mut rejected = Vec::new();
        let mut start: Option<usize> = None;
        let mut gap = 0usize;
        let mut last_active = 0usize;
        for (i, &a) in active.iter().enumerate() {
            match (a, start) {
                (true, None) => {
                    start = Some(i);
                    last_active = i;
                }
                (true, Some(_)) => {
                    gap = 0;
                    last_active = i;
                }
                (false, Some(s)) => {
                    gap += 1;
                    if gap > self.config.max_gap_windows {
                        push_burst(
                            &mut bursts,
                            &mut rejected,
                            s,
                            last_active,
                            window_s,
                            cfg.min_burst_s,
                        );
                        start = None;
                        gap = 0;
                    }
                }
                (false, None) => {}
            }
        }
        if let Some(s) = start {
            push_burst(&mut bursts, &mut rejected, s, last_active, window_s, cfg.min_burst_s);
        }

        DetectionReport { window_energy, window_s, threshold, bursts, rejected }
    }
}

fn push_burst(
    bursts: &mut Vec<DetectedBurst>,
    rejected: &mut Vec<DetectedBurst>,
    start_w: usize,
    end_w: usize,
    window_s: f64,
    min_burst_s: f64,
) {
    let burst = DetectedBurst {
        start_s: start_w as f64 * window_s,
        duration_s: (end_w + 1 - start_w) as f64 * window_s,
    };
    if burst.duration_s >= min_burst_s {
        bursts.push(burst);
    } else {
        rejected.push(burst);
    }
}

/// Threshold between idle-floor and keystroke-burst window energies:
/// bimodal midpoint when possible, robust quantile fallback otherwise.
fn select_threshold(energies: &[f64]) -> f64 {
    if energies.is_empty() {
        return 0.0;
    }
    // `try_from_data` only fails when every energy is non-finite;
    // treat that as "no bimodality" and fall through to the quantile
    // rule instead of panicking.
    let modes = Histogram::try_from_data(energies, 64.min(energies.len().max(2)))
        .ok()
        .and_then(|h| h.two_modes());
    // Keystroke bursts are orders of magnitude above the idle floor;
    // two "modes" closer than 4× apart are just noise-histogram bumps.
    if let Some((lo, hi)) = modes.filter(|(lo, hi)| *hi > 4.0 * lo.max(1e-30)) {
        (lo + hi) / 2.0
    } else {
        // Mostly-idle captures: the keystrokes are sparse outliers, so
        // set the bar well above the idle floor.
        let floor = quantile(energies, 0.5);
        let top = quantile(energies, 0.995);
        floor + 0.25 * (top - floor).max(floor * 3.0)
    }
}

/// Scores detected bursts against ground-truth keystroke press times:
/// a burst matches the nearest unmatched keystroke whose press time is
/// within `tolerance_s` of the burst's start.
pub fn score_detections(
    bursts: &[DetectedBurst],
    truth_press_s: &[f64],
    tolerance_s: f64,
) -> DetectionScore {
    let mut matched = vec![false; truth_press_s.len()];
    let mut true_positives = 0;
    let mut false_positives = 0;
    for b in bursts {
        let mut best: Option<(usize, f64)> = None;
        for (i, &t) in truth_press_s.iter().enumerate() {
            if matched[i] {
                continue;
            }
            let d = (b.start_s - t).abs();
            if d <= tolerance_s && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, _)) => {
                matched[i] = true;
                true_positives += 1;
            }
            None => false_positives += 1,
        }
    }
    let missed = matched.iter().filter(|&&m| !m).count();
    DetectionScore { true_positives, false_positives, missed }
}

/// Convenience: the detected keystroke press-time estimates (burst
/// starts), for downstream word grouping.
pub fn detected_times(report: &DetectionReport) -> Vec<f64> {
    report.bursts.iter().map(|b| b.start_s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::iq::Complex;

    /// Synthetic capture: tone bursts at given times over a noise floor.
    fn capture_with_bursts(bursts: &[(f64, f64)], duration_s: f64) -> Capture {
        let fs = 2.4e6_f64;
        let f_bb = -485e3;
        let n = (duration_s * fs) as usize;
        let mut samples = vec![Complex::ZERO; n];
        let mut state = 77u64;
        for s in samples.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            *s = Complex::new(0.02 * u, 0.02 * u);
        }
        for &(t0, dur) in bursts {
            let a = (t0 * fs) as usize;
            let b = (((t0 + dur) * fs) as usize).min(n);
            for (i, s) in samples.iter_mut().enumerate().take(b).skip(a) {
                *s += Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * f_bb * i as f64 / fs);
            }
        }
        Capture { samples, sample_rate: fs, center_freq: 1.455e6 }
    }

    fn detector() -> Detector {
        Detector::new(DetectorConfig::new(970e3))
    }

    #[test]
    fn detects_well_separated_keystrokes() {
        let truth = [(0.2, 0.05), (0.5, 0.06), (0.9, 0.05)];
        let cap = capture_with_bursts(&truth, 1.2);
        let report = detector().detect(&cap);
        assert_eq!(report.bursts.len(), 3, "bursts: {:?}", report.bursts);
        let score = score_detections(
            &report.bursts,
            &truth.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            0.05,
        );
        assert_eq!(score.true_positives, 3);
        assert_eq!(score.false_positives, 0);
        assert!((score.tpr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_bursts_are_filtered_out() {
        // A 10 ms housekeeping blip must be rejected by the 30 ms rule.
        let cap = capture_with_bursts(&[(0.2, 0.05), (0.5, 0.010)], 0.8);
        let report = detector().detect(&cap);
        assert_eq!(report.bursts.len(), 1);
        assert_eq!(report.rejected.len(), 1);
        assert!(report.rejected[0].duration_s < 0.03);
    }

    #[test]
    fn burst_duration_is_estimated() {
        let cap = capture_with_bursts(&[(0.3, 0.08)], 0.7);
        let report = detector().detect(&cap);
        assert_eq!(report.bursts.len(), 1);
        let b = report.bursts[0];
        assert!((b.start_s - 0.3).abs() < 0.01, "start {}", b.start_s);
        assert!((b.duration_s - 0.08).abs() < 0.015, "duration {}", b.duration_s);
    }

    #[test]
    fn gap_bridging_merges_split_bursts() {
        // Two half-bursts 5 ms apart are one keystroke, not two.
        let cap = capture_with_bursts(&[(0.3, 0.025), (0.33, 0.03)], 0.7);
        let report = detector().detect(&cap);
        assert_eq!(report.bursts.len(), 1, "bursts {:?}", report.bursts);
    }

    #[test]
    fn scoring_counts_false_positives_and_misses() {
        let bursts = [
            DetectedBurst { start_s: 0.2, duration_s: 0.05 },
            DetectedBurst { start_s: 0.6, duration_s: 0.05 }, // spurious
        ];
        let truth = [0.2, 0.9];
        let score = score_detections(&bursts, &truth, 0.05);
        assert_eq!(score.true_positives, 1);
        assert_eq!(score.false_positives, 1);
        assert_eq!(score.missed, 1);
        assert!((score.tpr() - 0.5).abs() < 1e-12);
        assert!((score.fpr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_capture_detects_nothing() {
        let cap = capture_with_bursts(&[], 0.3);
        let report = detector().detect(&cap);
        assert!(report.bursts.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_window_panics() {
        Detector::new(DetectorConfig { window_samples: 12_000, ..DetectorConfig::new(970e3) });
    }

    #[test]
    fn try_new_reports_config_errors() {
        let bad = DetectorConfig { window_samples: 12_000, ..DetectorConfig::new(970e3) };
        assert!(matches!(Detector::try_new(bad), Err(DetectError::InvalidConfig(_))));
        let bad = DetectorConfig { harmonics: 0, ..DetectorConfig::new(970e3) };
        assert!(matches!(Detector::try_new(bad), Err(DetectError::InvalidConfig(_))));
        let bad = DetectorConfig { min_burst_s: f64::NAN, ..DetectorConfig::new(970e3) };
        assert!(matches!(Detector::try_new(bad), Err(DetectError::InvalidConfig(_))));
        assert!(Detector::try_new(DetectorConfig::new(970e3)).is_ok());
    }

    #[test]
    fn try_detect_classifies_degenerate_captures() {
        let d = detector();
        let empty = Capture { samples: Vec::new(), sample_rate: 2.4e6, center_freq: 1.455e6 };
        assert_eq!(d.try_detect(&empty), Err(DetectError::Capture(CaptureError::Empty)));
        let short =
            Capture { samples: vec![Complex::ZERO; 100], sample_rate: 2.4e6, center_freq: 1.455e6 };
        assert!(matches!(
            d.try_detect(&short),
            Err(DetectError::Capture(CaptureError::TooShort { .. }))
        ));
        let bad_rate =
            Capture { samples: vec![Complex::ZERO; 20_000], sample_rate: 0.0, center_freq: 0.0 };
        assert_eq!(
            d.try_detect(&bad_rate),
            Err(DetectError::Capture(CaptureError::InvalidSampleRate))
        );
        let all_nan = Capture {
            samples: vec![Complex::new(f64::NAN, f64::NAN); 20_000],
            sample_rate: 2.4e6,
            center_freq: 1.455e6,
        };
        assert!(matches!(
            d.try_detect(&all_nan),
            Err(DetectError::Capture(CaptureError::NonFinite { .. }))
        ));
        // The panic-free wrapper degrades each of those to no bursts.
        for cap in [&empty, &short, &bad_rate, &all_nan] {
            assert!(d.detect(cap).bursts.is_empty());
        }
    }

    #[test]
    fn try_detect_zeroes_isolated_corrupt_windows() {
        let truth = [(0.2, 0.05)];
        let mut cap = capture_with_bursts(&truth, 0.6);
        // Poison a handful of samples far from the burst.
        for i in 0..50 {
            cap.samples[1_000_000 + i] = Complex::new(f64::NAN, 0.0);
        }
        let report = detector().try_detect(&cap).expect("minority NaN is recoverable");
        assert!(report.window_energy.iter().all(|e| e.is_finite()));
        assert_eq!(report.bursts.len(), 1, "bursts: {:?}", report.bursts);
    }
}
