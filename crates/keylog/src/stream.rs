//! Incremental keystroke detection from chunked I/Q.
//!
//! [`StreamingDetector`] is the resumable counterpart of
//! [`Detector::try_detect`](crate::detect::Detector::try_detect):
//! raw samples are pushed in arbitrarily-sized chunks, each completed
//! STFT window is transformed as soon as its last sample arrives, and
//! [`StreamingDetector::finish`] runs the global threshold/grouping
//! pass over the accumulated window energies.
//!
//! The streaming path is bit-identical to the batch path by
//! construction: windows are non-overlapping, so buffering exactly
//! `window_samples` raw samples and applying the same Hann
//! coefficients, the same FFT plan and the same bin-sum order performs
//! the same floating-point operations the batch
//! [`window_energies`](crate::detect::Detector::window_energies) does,
//! regardless of how the capture was chunked. The trailing partial
//! window is dropped in both paths (it still counts towards the
//! non-finite-majority check, as in batch).

use emsc_sdr::error::CaptureError;
use emsc_sdr::fft::{frequency_bin, FftPlan};
use emsc_sdr::iq::Complex;
use emsc_sdr::window::Window;

use crate::detect::{DetectError, DetectionReport, Detector, DetectorConfig};

/// Progress counters returned by [`StreamingDetector::push`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectProgress {
    /// Completed STFT windows so far (energies accumulated).
    pub windows: usize,
    /// Raw samples consumed so far (including the partial tail window).
    pub samples_seen: usize,
    /// Non-finite raw samples observed so far.
    pub non_finite_samples: usize,
}

/// Resumable keystroke detector: push I/Q chunks, then [`finish`].
///
/// [`finish`]: StreamingDetector::finish
#[derive(Debug, Clone)]
pub struct StreamingDetector {
    detector: Detector,
    sample_rate: f64,
    plan: FftPlan,
    win: Vec<f64>,
    band_bins: Vec<usize>,
    /// Raw samples of the current (incomplete) window.
    window: Vec<Complex>,
    /// FFT scratch, `window_samples` long.
    buf: Vec<Complex>,
    energies: Vec<f64>,
    seen: usize,
    non_finite: usize,
    finished: bool,
}

impl StreamingDetector {
    /// Creates a streaming detector for captures with the given sample
    /// rate and tuner centre frequency.
    ///
    /// # Errors
    ///
    /// [`DetectError::InvalidConfig`] for a degenerate configuration
    /// (as [`Detector::try_new`]), then
    /// [`DetectError::Capture`]([`CaptureError::InvalidSampleRate`])
    /// for a non-positive or non-finite sample rate — the same
    /// precedence the batch path applies.
    pub fn new(
        config: DetectorConfig,
        sample_rate: f64,
        center_freq: f64,
    ) -> Result<Self, DetectError> {
        let detector = Detector::try_new(config)?;
        if !(sample_rate > 0.0 && sample_rate.is_finite()) {
            return Err(DetectError::Capture(CaptureError::InvalidSampleRate));
        }
        let cfg = detector.config();
        let n = cfg.window_samples;
        // Same band selection as `Detector::window_energies`: harmonic
        // order, out-of-capture harmonics dropped, nearest-bin mapping.
        let band_bins: Vec<usize> = (1..=cfg.harmonics)
            .map(|h| cfg.switching_freq_hz * h as f64 - center_freq)
            .filter(|f| f.abs() < sample_rate / 2.0)
            .map(|f| frequency_bin(f, n, sample_rate))
            .collect();
        Ok(StreamingDetector {
            plan: FftPlan::new(n),
            win: Window::Hann.coefficients(n),
            band_bins,
            window: Vec::with_capacity(n),
            buf: vec![Complex::ZERO; n],
            energies: Vec::new(),
            seen: 0,
            non_finite: 0,
            detector,
            sample_rate,
            finished: false,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        self.detector.config()
    }

    /// Raw samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.seen
    }

    /// Non-finite raw samples observed so far.
    pub fn non_finite_samples(&self) -> usize {
        self.non_finite
    }

    /// Completed STFT windows so far.
    pub fn windows(&self) -> usize {
        self.energies.len()
    }

    /// Feeds a chunk of raw I/Q samples.
    ///
    /// Every window completed by this chunk is transformed immediately,
    /// so per-push work is bounded by the chunk size (plus one window
    /// of carry-over).
    ///
    /// # Panics
    ///
    /// Panics if called after [`StreamingDetector::finish`].
    pub fn push(&mut self, chunk: &[Complex]) -> DetectProgress {
        assert!(!self.finished, "push after finish");
        let n = self.detector.config().window_samples;
        // Counters first, then whole windows in bulk: a full window
        // sitting inside the chunk is transformed straight off the
        // caller's slice — no per-sample carry-buffer pushes. The
        // window/transform/band-sum sequence is unchanged, so energies
        // are bit-identical to the per-sample formulation.
        self.non_finite += chunk.iter().filter(|z| !(z.re.is_finite() && z.im.is_finite())).count();
        self.seen += chunk.len();
        let mut remaining = chunk;
        while !remaining.is_empty() {
            if self.window.is_empty() && remaining.len() >= n {
                let (frame, rest) = remaining.split_at(n);
                self.transform_frame(frame);
                remaining = rest;
                continue;
            }
            let take = (n - self.window.len()).min(remaining.len());
            let (head, rest) = remaining.split_at(take);
            self.window.extend_from_slice(head);
            remaining = rest;
            if self.window.len() == n {
                let frame = std::mem::take(&mut self.window);
                self.transform_frame(&frame);
                self.window = frame;
                self.window.clear();
            }
        }
        DetectProgress {
            windows: self.energies.len(),
            samples_seen: self.seen,
            non_finite_samples: self.non_finite,
        }
    }

    /// Same per-frame pipeline as `stft`: window, transform, then sum
    /// the selected bins' magnitudes in band order.
    fn transform_frame(&mut self, frame: &[Complex]) {
        for (slot, (&s, &w)) in self.buf.iter_mut().zip(frame.iter().zip(self.win.iter())) {
            *slot = s.scale(w);
        }
        self.plan.forward(&mut self.buf);
        let energy: f64 = self.band_bins.iter().map(|&k| self.buf[k].abs()).sum();
        self.energies.push(energy);
    }

    /// Classifies the stream and runs the global threshold/grouping
    /// pass, exactly as the batch [`Detector::try_detect`] would over
    /// the concatenation of every pushed chunk.
    ///
    /// # Errors
    ///
    /// [`DetectError::Capture`] with the batch precedence: empty
    /// stream, stream shorter than one window, majority-non-finite
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn finish(&mut self) -> Result<DetectionReport, DetectError> {
        assert!(!self.finished, "finish called twice");
        self.finished = true;
        let needed = self.detector.config().window_samples;
        if self.seen == 0 {
            return Err(DetectError::Capture(CaptureError::Empty));
        }
        if self.seen < needed {
            return Err(DetectError::Capture(CaptureError::TooShort { needed, got: self.seen }));
        }
        if self.non_finite * 2 > self.seen {
            return Err(DetectError::Capture(CaptureError::NonFinite {
                count: self.non_finite,
                total: self.seen,
            }));
        }
        let mut window_energy = std::mem::take(&mut self.energies);
        for e in &mut window_energy {
            if !e.is_finite() {
                *e = 0.0;
            }
        }
        let window_s = needed as f64 / self.sample_rate;
        Ok(self.detector.detect_from_energies(window_energy, window_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_sdr::Capture;

    fn capture_with_bursts(bursts: &[(f64, f64)], duration_s: f64) -> Capture {
        let fs = 2.4e6_f64;
        let f_bb = -485e3;
        let n = (duration_s * fs) as usize;
        let mut samples = vec![Complex::ZERO; n];
        let mut state = 77u64;
        for s in samples.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % 10_000) as f64 / 10_000.0 - 0.5;
            *s = Complex::new(0.02 * u, 0.02 * u);
        }
        for &(t0, dur) in bursts {
            let a = (t0 * fs) as usize;
            let b = (((t0 + dur) * fs) as usize).min(n);
            for (i, s) in samples.iter_mut().enumerate().take(b).skip(a) {
                *s += Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * f_bb * i as f64 / fs);
            }
        }
        Capture { samples, sample_rate: fs, center_freq: 1.455e6 }
    }

    fn streaming(cap: &Capture, chunk: usize) -> StreamingDetector {
        let mut det =
            StreamingDetector::new(DetectorConfig::new(970e3), cap.sample_rate, cap.center_freq)
                .expect("valid config");
        for c in cap.samples.chunks(chunk.max(1)) {
            det.push(c);
        }
        det
    }

    #[test]
    fn streaming_is_bit_identical_to_batch_at_every_chunk_size() {
        let cap = capture_with_bursts(&[(0.1, 0.05), (0.3, 0.06)], 0.5);
        let batch =
            Detector::new(DetectorConfig::new(970e3)).try_detect(&cap).expect("batch detects");
        for chunk in [1usize, 7, 8192, 10_000, usize::MAX] {
            let report = streaming(&cap, chunk).finish().expect("streaming detects");
            assert_eq!(report, batch, "chunk size {chunk}");
        }
    }

    #[test]
    fn nan_laced_stream_matches_batch() {
        let mut cap = capture_with_bursts(&[(0.1, 0.05)], 0.3);
        for i in 0..50 {
            cap.samples[500_000 + i] = Complex::new(f64::NAN, 0.0);
        }
        let batch =
            Detector::new(DetectorConfig::new(970e3)).try_detect(&cap).expect("minority NaN ok");
        let report = streaming(&cap, 997).finish().expect("streaming detects");
        assert_eq!(report, batch);
    }

    #[test]
    fn typed_errors_match_batch_precedence() {
        let cfg = DetectorConfig::new(970e3);
        // Construction-time classification.
        let bad = DetectorConfig { window_samples: 12_000, ..cfg.clone() };
        assert!(matches!(
            StreamingDetector::new(bad, 2.4e6, 0.0),
            Err(DetectError::InvalidConfig(_))
        ));
        assert_eq!(
            StreamingDetector::new(cfg.clone(), 0.0, 0.0).err(),
            Some(DetectError::Capture(CaptureError::InvalidSampleRate))
        );
        // Stream-content classification at finish.
        let mut det = StreamingDetector::new(cfg.clone(), 2.4e6, 1.455e6).unwrap();
        assert_eq!(det.finish(), Err(DetectError::Capture(CaptureError::Empty)));
        let mut det = StreamingDetector::new(cfg.clone(), 2.4e6, 1.455e6).unwrap();
        det.push(&[Complex::ZERO; 100]);
        assert_eq!(
            det.finish(),
            Err(DetectError::Capture(CaptureError::TooShort { needed: 8192, got: 100 }))
        );
        let mut det = StreamingDetector::new(cfg, 2.4e6, 1.455e6).unwrap();
        det.push(&vec![Complex::new(f64::NAN, f64::NAN); 20_000]);
        assert_eq!(
            det.finish(),
            Err(DetectError::Capture(CaptureError::NonFinite { count: 20_000, total: 20_000 }))
        );
    }

    #[test]
    fn progress_counters_track_the_stream() {
        let cfg = DetectorConfig::new(970e3);
        let mut det = StreamingDetector::new(cfg, 2.4e6, 1.455e6).unwrap();
        let p = det.push(&[Complex::ZERO; 8191]);
        assert_eq!(p, DetectProgress { windows: 0, samples_seen: 8191, non_finite_samples: 0 });
        let p = det.push(&[Complex::new(f64::INFINITY, 0.0)]);
        assert_eq!(p, DetectProgress { windows: 1, samples_seen: 8192, non_finite_samples: 1 });
        assert_eq!(det.windows(), 1);
    }
}
