//! Benchmark harness for the paper reproduction.
//!
//! The Criterion benches under `benches/` regenerate every table and
//! figure of the paper at a reduced scale (each bench prints its
//! artefact once before timing a representative kernel); the
//! `reproduce` example in `emsc-examples` runs everything at full
//! scale. This library crate only hosts shared helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic pseudo-random payload used across benches.
pub fn bench_payload(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic() {
        assert_eq!(bench_payload(16, 1), bench_payload(16, 1));
        assert_ne!(bench_payload(16, 1), bench_payload(16, 2));
        assert_eq!(bench_payload(5, 9).len(), 5);
    }
}
