//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! - `ablate_matched_filter`: the paper's rejected receiver vs. the
//!   batch-timing receiver (§IV-B1),
//! - `ablate_harmonics`: Eq. (1) with 1 vs. 2 harmonics in `S`,
//! - `ablate_window`: the receiver's sliding-DFT window size (the
//!   paper's 1024 vs. this reproduction's 256 default),
//! - `ablate_parity`: raw BER vs. Hamming(7,4)-corrected payloads,
//! - `ablate_sleep_period`: TR/BER as SLEEP_PERIOD shrinks toward the
//!   ~10 µs floor of §IV-A,
//! - `ablate_countermeasures`: channel quality under each §VI
//!   mitigation.
//!
//! Each ablation prints its comparison table; the timing loops are
//! token (Criterion requires them) since the interesting output is the
//! table itself. Run with `cargo bench -p emsc-bench --bench ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use emsc_bench::bench_payload;
use emsc_core::chain::{Chain, Setup};
use emsc_core::countermeasure::Countermeasure;
use emsc_core::covert_run::CovertScenario;
use emsc_core::laptop::Laptop;
use emsc_covert::matched::matched_filter_demodulate;
use emsc_covert::metrics::align_semiglobal;
use emsc_covert::rx::RxConfig;
use emsc_covert::tx::TxConfig;
use emsc_sdr::goertzel::block_energies;
use emsc_sdr::sliding::energy_signal;

fn scenario_with(rx: RxConfig) -> CovertScenario {
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let mut s = CovertScenario::for_laptop(&laptop, chain);
    s.rx = rx;
    s
}

fn base_scenario() -> CovertScenario {
    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    CovertScenario::for_laptop(&laptop, chain)
}

fn ablate_matched_filter(c: &mut Criterion) {
    let scenario = base_scenario();
    let payload = bench_payload(32, 5);
    let outcome = scenario.run(&payload, 5);
    let batch_ber = outcome.alignment.ber();

    // Matched filter: fixed symbol clock over the same energy signal.
    let mf_bits = matched_filter_demodulate(
        &outcome.report.energy,
        outcome.report.energy_dt_s,
        scenario.rx.expected_bit_period_s,
    );
    let mf = align_semiglobal(&outcome.tx_bits, &mf_bits);

    println!("\nablate_matched_filter (§IV-B1):");
    println!("  batch-timing receiver : BER {:.2e}", batch_ber);
    println!(
        "  matched filter        : BER {:.2e} ({} ins, {} del) — why the paper rejected it",
        mf.ber(),
        mf.insertions,
        mf.deletions
    );
    c.bench_function("ablate_matched_filter", |b| {
        b.iter(|| {
            matched_filter_demodulate(
                &outcome.report.energy,
                outcome.report.energy_dt_s,
                scenario.rx.expected_bit_period_s,
            )
            .len()
        })
    });
}

fn ablate_harmonics(c: &mut Criterion) {
    let payload = bench_payload(32, 6);
    println!("\nablate_harmonics (Eq. 1 component set S):");
    for harmonics in [1usize, 2] {
        let base = base_scenario();
        let s = scenario_with(RxConfig { harmonics, ..base.rx });
        let o = s.run(&payload, 6);
        println!(
            "  S = fundamental {}          : BER {:.2e}, IP {:.2e}, DP {:.2e}",
            if harmonics == 2 { "+ 1st harmonic" } else { "only          " },
            o.alignment.ber(),
            o.alignment.insertion_probability(),
            o.alignment.deletion_probability()
        );
    }
    c.bench_function("ablate_harmonics_noop", |b| b.iter(|| 0));
}

fn ablate_window(c: &mut Criterion) {
    let payload = bench_payload(32, 7);
    println!("\nablate_window (sliding-DFT size; paper used 1024, we default to 256):");
    for fft_size in [128usize, 256, 512, 1024] {
        let base = base_scenario();
        let s = scenario_with(RxConfig { fft_size, ..base.rx });
        let o = s.run(&payload, 7);
        println!(
            "  M = {:4}: BER {:.2e}, IP {:.2e}, DP {:.2e}",
            fft_size,
            o.alignment.ber(),
            o.alignment.insertion_probability(),
            o.alignment.deletion_probability()
        );
    }
    c.bench_function("ablate_window_noop", |b| b.iter(|| 0));
}

fn ablate_parity(c: &mut Criterion) {
    use emsc_covert::frame::FrameConfig;
    let payload = bench_payload(32, 8);
    println!("\nablate_parity (§IV-B4's error-correcting code):");
    for parity in [false, true] {
        let laptop = Laptop::dell_inspiron();
        let chain = Chain::new(&laptop, Setup::NearField);
        let mut s = CovertScenario::for_laptop(&laptop, chain);
        s.tx = TxConfig { frame: FrameConfig { parity, ..FrameConfig::default() }, ..s.tx };
        let o = s.run(&payload, 8);
        let ok = o.recovered(&payload);
        println!(
            "  parity {}: BER {:.2e}, payload recovered: {}",
            if parity { "on " } else { "off" },
            o.alignment.ber(),
            if ok { "yes" } else { "no" }
        );
    }
    c.bench_function("ablate_parity_noop", |b| b.iter(|| 0));
}

fn ablate_sleep_period(c: &mut Criterion) {
    let payload = bench_payload(24, 9);
    println!("\nablate_sleep_period (§IV-A: the ~10 µs usleep floor):");
    for sleep_us in [200.0f64, 100.0, 50.0, 25.0, 10.0, 5.0] {
        let laptop = Laptop::dell_inspiron();
        let chain = Chain::new(&laptop, Setup::NearField);
        let tx = TxConfig::calibrated_with_overhead(
            &chain.machine,
            sleep_us * 1e-6,
            sleep_us * 1e-6,
            laptop.tx_overhead_s(),
        );
        let expected = tx.expected_bit_period_on(&chain.machine);
        let rx = RxConfig::new(chain.switching_freq_hz(), expected);
        let s = CovertScenario { chain, tx, rx };
        let o = s.run(&payload, 9);
        println!(
            "  SLEEP_PERIOD {:5.0} µs: TR {:5.0} bps, BER {:.2e}, IP {:.2e}, DP {:.2e}",
            sleep_us,
            o.transmission_rate_bps,
            o.alignment.ber(),
            o.alignment.insertion_probability(),
            o.alignment.deletion_probability()
        );
    }
    c.bench_function("ablate_sleep_period_noop", |b| b.iter(|| 0));
}

fn ablate_countermeasures(c: &mut Criterion) {
    let payload = bench_payload(24, 10);
    println!("\nablate_countermeasures (§III + §VI):");
    let laptop = Laptop::dell_inspiron();
    let configs: Vec<(String, Chain)> = vec![
        ("baseline".into(), Chain::new(&laptop, Setup::NearField)),
        (
            Countermeasure::DisableCStates.label(),
            Countermeasure::DisableCStates.apply(Chain::new(&laptop, Setup::NearField)),
        ),
        (
            Countermeasure::DisablePStates.label(),
            Countermeasure::DisablePStates.apply(Chain::new(&laptop, Setup::NearField)),
        ),
        (
            Countermeasure::DisableBoth.label(),
            Countermeasure::DisableBoth.apply(Chain::new(&laptop, Setup::NearField)),
        ),
        (
            Countermeasure::RandomizeVrm { spread: 0.2 }.label(),
            Countermeasure::RandomizeVrm { spread: 0.2 }
                .apply(Chain::new(&laptop, Setup::NearField)),
        ),
        (
            Countermeasure::RandomizeVrm { spread: 0.45 }.label(),
            Countermeasure::RandomizeVrm { spread: 0.45 }
                .apply(Chain::new(&laptop, Setup::NearField)),
        ),
        (
            Countermeasure::Shielding { attenuation_db: 30.0 }.label(),
            Countermeasure::Shielding { attenuation_db: 30.0 }
                .apply(Chain::new(&laptop, Setup::NearField)),
        ),
        (
            Countermeasure::Blinking { period_s: 1e-3, duty: 0.5 }.label(),
            Countermeasure::Blinking { period_s: 1e-3, duty: 0.5 }
                .apply(Chain::new(&laptop, Setup::NearField)),
        ),
    ];
    for (label, chain) in configs {
        let s = CovertScenario::for_laptop(&laptop, chain);
        let o = s.run(&payload, 10);
        println!(
            "  {:<32}: BER {:.2e}, recovered: {}",
            label,
            o.alignment.ber(),
            if o.recovered(&payload) { "yes" } else { "no" }
        );
    }
    c.bench_function("ablate_countermeasures_noop", |b| b.iter(|| 0));
}

fn ablate_label_feature(c: &mut Criterion) {
    use emsc_covert::rx::LabelFeature;
    let payload = bench_payload(32, 11);
    println!("\nablate_label_feature (Eq. 2 mean power vs. RZ differential):");
    for feature in [LabelFeature::MeanPower, LabelFeature::RzDifferential] {
        let base = base_scenario();
        let s = scenario_with(RxConfig { label_feature: feature, ..base.rx });
        let o = s.run(&payload, 11);
        println!(
            "  {:?}: BER {:.2e}, IP {:.2e}, DP {:.2e}",
            feature,
            o.alignment.ber(),
            o.alignment.insertion_probability(),
            o.alignment.deletion_probability()
        );
    }
    c.bench_function("ablate_label_feature_noop", |b| b.iter(|| 0));
}

fn ablate_goertzel(c: &mut Criterion) {
    // Sliding DFT (per-sample, decimated) vs. block-wise Goertzel for
    // the Eq. (1) energy signal: same bins, very different cost and
    // time resolution.
    let n = 240_000;
    let x: Vec<emsc_sdr::iq::Complex> = (0..n)
        .map(|i| emsc_sdr::iq::Complex::cis(2.0 * std::f64::consts::PI * 0.203 * i as f64))
        .collect();
    println!(
        "
ablate_goertzel (energy-signal computation):"
    );
    println!("  sliding DFT : every sample, decimated ×24 (receiver default)");
    println!("  Goertzel    : one value per 256-sample block, no overlap");
    let mut group = c.benchmark_group("ablate_goertzel");
    group.sample_size(20);
    group
        .bench_function("sliding_dft", |b| b.iter(|| energy_signal(&x, 256, &[52, 104], 24).len()));
    group.bench_function("goertzel_blocks", |b| {
        b.iter(|| block_energies(&x, 256, &[52, 104]).len())
    });
    group.finish();
}

criterion_group!(
    ablations,
    ablate_matched_filter,
    ablate_harmonics,
    ablate_window,
    ablate_parity,
    ablate_sleep_period,
    ablate_countermeasures,
    ablate_label_feature,
    ablate_goertzel
);
criterion_main!(ablations);
