//! Performance benches for the computational kernels: FFT, sliding
//! DFT, buck conversion, EM synthesis and the machine simulator.
//!
//! These are real Criterion microbenchmarks (unlike the table/figure
//! regenerators, which mostly print): use them to track the cost of
//! the hot loops. Run with `cargo bench -p emsc-bench --bench kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emsc_emfield::scene::Scene;
use emsc_emfield::synth::{render_train, samples_for, SynthConfig};
use emsc_pmu::sim::Machine;
use emsc_pmu::workload::Program;
use emsc_sdr::fft::FftPlan;
use emsc_sdr::iq::Complex;
use emsc_sdr::sliding::energy_signal;
use emsc_vrm::buck::{Buck, BuckConfig};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        let plan = FftPlan::new(n);
        let x: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos())).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = x.clone();
                plan.forward(&mut buf);
                buf[0]
            })
        });
    }
    group.finish();
}

fn bench_sliding_dft(c: &mut Criterion) {
    let n = 240_000; // 100 ms at 2.4 Msps
    let x: Vec<Complex> =
        (0..n).map(|i| Complex::cis(2.0 * std::f64::consts::PI * 0.2 * i as f64)).collect();
    let mut group = c.benchmark_group("sliding_dft");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    group.bench_function("energy_signal_100ms_2bins", |b| {
        b.iter(|| energy_signal(&x, 256, &[52, 104], 24).len())
    });
    group.finish();
}

fn bench_machine_sim(c: &mut Criterion) {
    let machine = Machine::intel_laptop();
    let program = Program::alternating(100e-6, 100e-6, 500, machine.steady_state_ips());
    let mut group = c.benchmark_group("machine_sim");
    group.bench_function("alternating_500_cycles", |b| {
        b.iter(|| machine.run(&program, 3).segments().len())
    });
    group.finish();
}

fn bench_buck(c: &mut Criterion) {
    let machine = Machine::intel_laptop();
    let program = Program::alternating(100e-6, 100e-6, 500, machine.steady_state_ips());
    let trace = machine.run(&program, 3);
    let buck = Buck::new(BuckConfig::laptop(970e3));
    let mut group = c.benchmark_group("buck_converter");
    group.throughput(Throughput::Elements((trace.duration_s() * 970e3) as u64));
    group.bench_function("convert_100ms_trace", |b| b.iter(|| buck.convert(&trace).pulses.len()));
    group.finish();
}

fn bench_em_synthesis(c: &mut Criterion) {
    let machine = Machine::intel_laptop();
    let program = Program::alternating(100e-6, 100e-6, 200, machine.steady_state_ips());
    let trace = machine.run(&program, 3);
    let train = Buck::new(BuckConfig::laptop(970e3)).convert(&trace);
    let cfg = SynthConfig::rtl_sdr_for(970e3);
    let n = samples_for(&train, cfg);
    let mut group = c.benchmark_group("em_synthesis");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("render_train", |b| b.iter(|| render_train(&train, cfg, n).len()));
    group.bench_function("scene_render_with_noise", |b| {
        let scene = Scene::near_field(970e3);
        b.iter(|| scene.render(&train, 1).len())
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_fft,
    bench_sliding_dft,
    bench_machine_sim,
    bench_buck,
    bench_em_synthesis
);
criterion_main!(kernels);
