//! Regenerates the paper's figures (2, 4–9, 11) at bench scale and
//! times their underlying computations.
//!
//! Run with `cargo bench -p emsc-bench --bench paper_figures`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use emsc_core::experiments::covert_figs;
use emsc_core::experiments::keylog_table::{render_table4, table4, KeylogScale};
use emsc_core::experiments::spectral::{fig11, fig2, fig2_bios, render_bios, Scale};
use emsc_core::experiments::tables::{fig9, render_fig9};

fn bench_fig2(c: &mut Criterion) {
    let f = fig2(Scale::Quick, 2020);
    println!("\n{}", f.render());
    let mut group = c.benchmark_group("fig2_spectrogram");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("alternation_capture_and_stft", |b| {
        b.iter(|| fig2(Scale::Quick, 2020).spike_contrast)
    });
    group.finish();
}

fn bench_bios(c: &mut Criterion) {
    println!("\n{}", render_bios(&fig2_bios(Scale::Quick, 2020)));
    c.bench_function("fig2_bios_noop", |b| b.iter(|| 0));
}

fn bench_fig4_to_8(c: &mut Criterion) {
    println!("\n{}", covert_figs::fig4(2020).render());
    let f5 = covert_figs::fig5(2020);
    println!(
        "Fig. 5 — {:.0} % of bit starts found in the first pass\n",
        f5.raw_edge_coverage * 100.0
    );
    println!("{}", covert_figs::fig6(2020).render());
    println!("{}", covert_figs::fig7(2020).render());
    println!("{}", covert_figs::fig8(2020).render());

    let mut group = c.benchmark_group("fig4_energy_signal");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("fig4_pipeline", |b| b.iter(|| covert_figs::fig4(2020).tx_bits.len()));
    group.finish();

    let mut group = c.benchmark_group("fig6_pulse_width");
    group.sample_size(10).measurement_time(Duration::from_secs(12));
    group.bench_function("fig6_distribution", |b| {
        b.iter(|| covert_figs::fig6(2020).distances_s.len())
    });
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let (baselines, measured) = fig9(3700.0);
    println!("\n{}", render_fig9(&baselines, measured));
    c.bench_function("fig9_comparison", |b| b.iter(emsc_baselines::all_baselines));
}

fn bench_fig11_table4(c: &mut Criterion) {
    println!("\n{}", fig11(2020).render());
    println!("{}", render_table4(&table4(KeylogScale::quick(), 2020)));
    let mut group = c.benchmark_group("table4_keylogging");
    group.sample_size(10).measurement_time(Duration::from_secs(20));
    group.bench_function("keylog_run_quick", |b| {
        b.iter(|| table4(KeylogScale { words: 2 }, 2020).len())
    });
    group.finish();
}

criterion_group!(figures, bench_fig2, bench_bios, bench_fig4_to_8, bench_fig9, bench_fig11_table4);
criterion_main!(figures);
