//! Regenerates the paper's tables (I, II, III, the §IV-C2 stress run
//! and the Fig. 10 NLoS row), then times one representative transfer
//! per table so regressions in the pipeline show up as slowdowns.
//!
//! Run with `cargo bench -p emsc-bench --bench paper_tables`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use emsc_bench::bench_payload;
use emsc_core::chain::{Chain, Setup};
use emsc_core::covert_run::CovertScenario;
use emsc_core::experiments::tables::{
    fig10_nlos, render_channel_rows, table1, table2, table2_background, table3, TableScale,
};
use emsc_core::laptop::Laptop;

fn scale() -> TableScale {
    TableScale { payload_bytes: 24, runs: 1 }
}

fn bench_table1(c: &mut Criterion) {
    println!("\n{}", table1());
    c.bench_function("table1_laptop_inventory", |b| b.iter(Laptop::all));
}

fn bench_table2(c: &mut Criterion) {
    let rows = table2(scale(), 2020);
    println!(
        "\n{}",
        render_channel_rows("Table II (bench scale) — near-field covert channel", &rows)
    );

    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::NearField);
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    let payload = bench_payload(8, 7);
    let mut group = c.benchmark_group("table2_near_field");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("covert_transfer_8_bytes", |b| b.iter(|| scenario.run(&payload, 7)));
    group.finish();
}

fn bench_table2_background(c: &mut Criterion) {
    let rows = table2_background(scale(), 2020);
    println!("\n{}", render_channel_rows("§IV-C2 (bench scale) — background stress", &rows));
    c.bench_function("table2_background_noop", |b| b.iter(|| rows.len()));
}

fn bench_table3(c: &mut Criterion) {
    let rows = table3(scale(), 2020);
    println!("\n{}", render_channel_rows("Table III (bench scale) — distance sweep", &rows));

    let laptop = Laptop::dell_inspiron();
    let chain = Chain::new(&laptop, Setup::LineOfSight(2.5));
    let scenario = CovertScenario::for_laptop(&laptop, chain);
    let payload = bench_payload(8, 9);
    let mut group = c.benchmark_group("table3_distance");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("covert_transfer_2_5m", |b| b.iter(|| scenario.run(&payload, 9)));
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let row = fig10_nlos(scale(), 2020);
    println!("\n{}", render_channel_rows("Fig. 10 (bench scale) — NLoS through wall", &[row]));
    c.bench_function("fig10_noop", |b| b.iter(|| 0));
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2,
    bench_table2_background,
    bench_table3,
    bench_fig10
);
criterion_main!(tables);
