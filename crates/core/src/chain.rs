//! The full side-channel signal chain, end to end.
//!
//! `Program (or events) → Machine → PowerTrace → Buck → SwitchingTrain
//! → Scene → analog baseband → SDR front end → Capture`.
//!
//! A [`Chain`] owns every stage's configuration so a scenario is one
//! value: a laptop, a measurement setup and the BIOS/countermeasure
//! switches.

use emsc_emfield::scene::Scene;
use emsc_pmu::sim::{ExternalEvent, Machine};
use emsc_pmu::trace::PowerTrace;
use emsc_pmu::workload::Program;
use emsc_sdr::{Capture, Frontend, FrontendConfig};
use emsc_vrm::buck::{Buck, BuckConfig};
use emsc_vrm::train::SwitchingTrain;

use crate::laptop::Laptop;

/// Where the receiver sits (maps onto [`Scene`] presets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Setup {
    /// Coin probe at 10 cm (§IV-C2).
    NearField,
    /// Loop antenna at a line-of-sight distance in metres (§IV-C3).
    LineOfSight(f64),
    /// Loop antenna behind the 35 cm wall, with the printer and
    /// refrigerator interferers (Fig. 10).
    ThroughWall,
}

impl Setup {
    /// Builds the EM scene for a given switching frequency.
    pub fn scene(self, f_sw: f64) -> Scene {
        match self {
            Setup::NearField => Scene::near_field(f_sw),
            Setup::LineOfSight(d) => Scene::line_of_sight(f_sw, d),
            Setup::ThroughWall => Scene::through_wall(f_sw),
        }
    }
}

/// Architecture-blinking parameters (the §VI \[101\] countermeasure):
/// during each blink the core runs from locally stored charge and the
/// VRM sees a constant draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlinkingConfig {
    /// Blink scheduling period, seconds.
    pub period_s: f64,
    /// Fraction of each period spent blinked (0–1).
    pub duty: f64,
    /// Constant current the PMU sees during a blink, amperes.
    pub level_a: f64,
}

/// The composed chain.
#[derive(Debug, Clone)]
pub struct Chain {
    /// The victim machine.
    pub machine: Machine,
    /// Its VRM.
    pub vrm: BuckConfig,
    /// The measurement scene.
    pub scene: Scene,
    /// The SDR front end.
    pub frontend: FrontendConfig,
    /// Optional architecture-blinking countermeasure.
    pub blinking: Option<BlinkingConfig>,
}

/// Everything a chain run produces, every stage exposed
/// (C-INTERMEDIATE): the power trace for ground truth, the switching
/// train for VRM-level analysis, and the capture for the receiver.
#[derive(Debug, Clone)]
pub struct ChainRun {
    /// Ground-truth power-state trace.
    pub trace: PowerTrace,
    /// The VRM's switching activity.
    pub train: SwitchingTrain,
    /// The digitised I/Q capture.
    pub capture: Capture,
}

impl Chain {
    /// Builds the chain for a laptop and measurement setup.
    pub fn new(laptop: &Laptop, setup: Setup) -> Self {
        let mut scene = setup.scene(laptop.switching_freq_hz);
        scene.emission_scale *= laptop.emission_scale;
        let frontend = FrontendConfig::rtl_sdr_v3(scene.synth.center_freq);
        Chain { machine: laptop.machine(), vrm: laptop.vrm(), scene, frontend, blinking: None }
    }

    /// The VRM switching frequency this chain is tuned around.
    pub fn switching_freq_hz(&self) -> f64 {
        self.vrm.switching_frequency_hz
    }

    /// Runs a program through the whole chain.
    pub fn run_program(&self, program: &Program, seed: u64) -> ChainRun {
        let trace = self.machine.run(program, seed);
        self.finish(trace, seed)
    }

    /// Runs an event-driven scenario (idle machine + injected bursts).
    pub fn run_events(&self, duration_s: f64, events: &[ExternalEvent], seed: u64) -> ChainRun {
        let trace = self.machine.run_events(duration_s, events, seed);
        self.finish(trace, seed)
    }

    /// Pushes an externally-built power trace (e.g. a multi-core
    /// composition from [`emsc_pmu::multicore`]) through the VRM → EM
    /// → SDR stages.
    pub fn run_trace(&self, trace: PowerTrace, seed: u64) -> ChainRun {
        self.finish(trace, seed)
    }

    /// The staged reference chain: materialise the full analog
    /// waveform, then digitise it in a second sweep. Bit-identical to
    /// the fused path — kept as the oracle the equivalence tests and
    /// the `perf_report` fused section compare against; everything
    /// else should use [`Chain::run_trace`].
    pub fn run_trace_staged(&self, trace: PowerTrace, seed: u64) -> ChainRun {
        let trace = match self.blinking {
            Some(b) => trace.with_blinking(b.period_s, b.duty, b.level_a),
            None => trace,
        };
        let train = Buck::new(self.vrm.clone()).convert(&trace);
        let analog = self.scene.render(&train, seed);
        let capture = Frontend::new(self.frontend.clone()).digitize(&analog);
        ChainRun { trace, train, capture }
    }

    fn finish(&self, trace: PowerTrace, seed: u64) -> ChainRun {
        // Fused blockwise path (see `crate::fused`): same stages, one
        // cache-resident pass per block, bit-identical output.
        crate::fused::ChainStream::new(self, trace, seed).into_run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emsc_pmu::workload::Program;

    #[test]
    fn chain_produces_consistent_stages() {
        let laptop = Laptop::dell_inspiron();
        let chain = Chain::new(&laptop, Setup::NearField);
        let program = Program::alternating(500e-6, 500e-6, 20, chain.machine.steady_state_ips());
        let run = chain.run_program(&program, 7);
        // Stage durations line up (within the sleep-jitter slack).
        assert!(run.train.duration_s >= run.trace.duration_s() - 1e-9);
        let cap_s = run.capture.duration();
        assert!((cap_s - run.trace.duration_s()).abs() < 1e-3);
        assert!(!run.train.pulses.is_empty());
        assert!(!run.capture.samples.is_empty());
    }

    #[test]
    fn setups_map_to_scene_presets() {
        let f = 970e3;
        assert_eq!(Setup::NearField.scene(f).path.distance_m, 0.10);
        assert_eq!(Setup::LineOfSight(2.5).scene(f).path.distance_m, 2.5);
        let wall = Setup::ThroughWall.scene(f);
        assert!(wall.path.wall_loss_db > 0.0);
        assert!(!wall.interferers.is_empty());
    }

    #[test]
    fn emission_scale_multiplies_into_scene() {
        let mut quiet = Laptop::dell_inspiron();
        quiet.emission_scale = 0.5;
        let chain = Chain::new(&quiet, Setup::NearField);
        assert!((chain.scene.emission_scale - 0.5).abs() < 1e-12);
    }

    #[test]
    fn runs_are_deterministic() {
        let laptop = Laptop::lenovo_thinkpad();
        let chain = Chain::new(&laptop, Setup::NearField);
        let program = Program::alternating(200e-6, 200e-6, 10, chain.machine.steady_state_ips());
        let a = chain.run_program(&program, 3);
        let b = chain.run_program(&program, 3);
        assert_eq!(a.capture.samples, b.capture.samples);
    }
}
