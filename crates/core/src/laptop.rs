//! The six evaluation laptops (Table I) as simulation presets.
//!
//! Each preset bundles the properties that matter to the side channel:
//! the OS sleep API (which bounds the covert bit rate), the
//! microarchitecture generation (which selects Speed Shift vs.
//! OS-driven DVFS, §II), the VRM's switching frequency (where the
//! spikes appear, ~970 kHz for the laptop in Fig. 2), and an emission
//! anchor (MacBooks radiate less — the aluminium unibody is a decent
//! shield — but their precise `usleep` still makes them the fastest
//! transmitters in Table II).

use emsc_pmu::governor::{CStatePolicy, DvfsPolicy};
use emsc_pmu::noise::NoiseConfig;
use emsc_pmu::power::PowerStateTable;
use emsc_pmu::sim::{Machine, MachineBuilder};
use emsc_pmu::timer::SleepModel;
use emsc_vrm::buck::BuckConfig;

/// Operating-system family (Table I column 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Os {
    /// Linux (Debian/Ubuntu): microsecond-class `usleep`.
    Linux,
    /// macOS (Mojave): microsecond-class `usleep`.
    Macos,
    /// Windows 8/10: millisecond-class `Sleep`.
    Windows,
}

impl Os {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Os::Linux => "Linux",
            Os::Macos => "macOS",
            Os::Windows => "Windows",
        }
    }
}

/// Intel microarchitecture generation (Table I column 3). Skylake and
/// later support Speed Shift (hardware P-states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Microarch {
    /// Ivy Bridge (2012).
    IvyBridge,
    /// Haswell (2013) — first FIVR generation.
    Haswell,
    /// Broadwell (2014).
    Broadwell,
    /// Skylake (2015) — Speed Shift introduced.
    Skylake,
    /// Kaby Lake (2016).
    KabyLake,
    /// Coffee Lake (2017).
    CoffeeLake,
}

impl Microarch {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Microarch::IvyBridge => "Ivy Bridge",
            Microarch::Haswell => "Haswell",
            Microarch::Broadwell => "Broadwell",
            Microarch::Skylake => "SkyLake",
            Microarch::KabyLake => "Kaby Lake",
            Microarch::CoffeeLake => "Coffee Lake",
        }
    }

    /// Whether the part has hardware-controlled P-states (§II: "more
    /// recently (starting with the Skylake architecture)").
    pub fn has_speed_shift(self) -> bool {
        matches!(self, Microarch::Skylake | Microarch::KabyLake | Microarch::CoffeeLake)
    }
}

/// One evaluation laptop.
#[derive(Debug, Clone)]
pub struct Laptop {
    /// Model name (Table I column 1).
    pub model: &'static str,
    /// Operating system.
    pub os: Os,
    /// Processor generation.
    pub microarch: Microarch,
    /// VRM switching frequency, hertz.
    pub switching_freq_hz: f64,
    /// Emission strength relative to the reference laptop (chassis
    /// material, board layout).
    pub emission_scale: f64,
    /// OS sleep-timer behaviour.
    pub sleep_model: SleepModel,
}

impl Laptop {
    /// Dell Precision 7290 — Windows 10, Kaby Lake.
    pub fn dell_precision() -> Self {
        Laptop {
            model: "DELL Precision 7290",
            os: Os::Windows,
            microarch: Microarch::KabyLake,
            switching_freq_hz: 920e3,
            emission_scale: 1.0,
            sleep_model: SleepModel::Custom {
                granularity_s: 1e-3,
                overhead_s: 15e-6,
                jitter_mean_s: 40e-6,
            },
        }
    }

    /// MacBookPro-2015 — macOS Mojave, Broadwell.
    pub fn macbook_pro_2015() -> Self {
        Laptop {
            model: "MacBookPro (2015)",
            os: Os::Macos,
            microarch: Microarch::Broadwell,
            switching_freq_hz: 1.05e6,
            // Aluminium unibody: weaker emission ⇒ the higher BER the
            // paper measured on both MacBooks.
            emission_scale: 0.12,
            sleep_model: SleepModel::Custom {
                granularity_s: 1e-6,
                overhead_s: 4e-6,
                jitter_mean_s: 9e-6,
            },
        }
    }

    /// Dell Inspiron 15-3537 — Debian Linux, Haswell. The paper's
    /// workhorse (Fig. 2, Table III).
    pub fn dell_inspiron() -> Self {
        Laptop {
            model: "DELL Inspiron 15-3537",
            os: Os::Linux,
            microarch: Microarch::Haswell,
            switching_freq_hz: 970e3,
            emission_scale: 1.0,
            sleep_model: SleepModel::Custom {
                granularity_s: 1e-6,
                overhead_s: 5e-6,
                jitter_mean_s: 18e-6,
            },
        }
    }

    /// MacBookPro-2018 — macOS Mojave, Coffee Lake.
    pub fn macbook_pro_2018() -> Self {
        Laptop {
            model: "MacBookPro (2018)",
            os: Os::Macos,
            microarch: Microarch::CoffeeLake,
            switching_freq_hz: 1.10e6,
            emission_scale: 0.125,
            sleep_model: SleepModel::Custom {
                granularity_s: 1e-6,
                overhead_s: 4e-6,
                jitter_mean_s: 10e-6,
            },
        }
    }

    /// Lenovo ThinkPad — Ubuntu Linux, Skylake.
    pub fn lenovo_thinkpad() -> Self {
        Laptop {
            model: "Lenovo Thinkpad",
            os: Os::Linux,
            microarch: Microarch::Skylake,
            switching_freq_hz: 880e3,
            emission_scale: 0.85,
            sleep_model: SleepModel::Custom {
                granularity_s: 1e-6,
                overhead_s: 6e-6,
                jitter_mean_s: 24e-6,
            },
        }
    }

    /// Sony Ultrabook — Windows 8, Ivy Bridge.
    pub fn sony_ultrabook() -> Self {
        Laptop {
            model: "Sony Ultrabook",
            os: Os::Windows,
            microarch: Microarch::IvyBridge,
            switching_freq_hz: 800e3,
            emission_scale: 0.9,
            sleep_model: SleepModel::Custom {
                granularity_s: 1e-3,
                overhead_s: 20e-6,
                jitter_mean_s: 45e-6,
            },
        }
    }

    /// All six laptops in Table I order.
    pub fn all() -> Vec<Laptop> {
        vec![
            Laptop::dell_precision(),
            Laptop::macbook_pro_2015(),
            Laptop::dell_inspiron(),
            Laptop::macbook_pro_2018(),
            Laptop::lenovo_thinkpad(),
            Laptop::sony_ultrabook(),
        ]
    }

    /// Builds the machine simulator for this laptop (default BIOS
    /// settings: all power states enabled, normal OS noise).
    pub fn machine(&self) -> Machine {
        let dvfs = if self.microarch.has_speed_shift() {
            DvfsPolicy::speed_shift()
        } else {
            DvfsPolicy::os_driven()
        };
        MachineBuilder::new()
            .table(PowerStateTable::intel_mobile())
            .sleep_model(self.sleep_model)
            .dvfs(dvfs)
            .cstates(CStatePolicy::all())
            .noise(NoiseConfig::normal())
            .build()
    }

    /// Builds this laptop's VRM configuration.
    pub fn vrm(&self) -> BuckConfig {
        BuckConfig::laptop(self.switching_freq_hz)
    }

    /// The covert transmitter's SLEEP_PERIOD for this OS (§IV-C1:
    /// 100 µs for UNIX-likes; the millisecond Windows timer forces a
    /// 0.5 ms request that quantises to the 1 ms tick).
    pub fn tx_sleep_period_s(&self) -> f64 {
        match self.os {
            Os::Linux | Os::Macos => 100e-6,
            Os::Windows => 0.5e-3,
        }
    }

    /// Per-bit housekeeping cost of the transmitter loop on this OS
    /// (bit reading + sleep call entry/exit).
    pub fn tx_overhead_s(&self) -> f64 {
        match self.os {
            // usleep entry/exit, hrtimer programming, scheduler round
            // trip and the fgetc of the next bit.
            Os::Linux | Os::Macos => 20e-6,
            // Win32 `Sleep` + file read + scheduler round trip.
            Os::Windows => 80e-6,
        }
    }

    /// The covert transmitter's busy-phase target for this OS (sized
    /// so active and idle phases are comparable, §IV-C1).
    pub fn tx_active_period_s(&self) -> f64 {
        match self.os {
            Os::Linux | Os::Macos => 100e-6,
            // Windows bits are ~1 ms (timer tick); the busy phase must
            // fill a comparable share of the bit for the power
            // labeling to separate.
            Os::Windows => 450e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_has_six_laptops() {
        let all = Laptop::all();
        assert_eq!(all.len(), 6);
        // Distinct models, three OS families represented.
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert_ne!(a.model, b.model);
            }
        }
        assert!(all.iter().any(|l| l.os == Os::Linux));
        assert!(all.iter().any(|l| l.os == Os::Macos));
        assert!(all.iter().any(|l| l.os == Os::Windows));
    }

    #[test]
    fn speed_shift_matches_generation() {
        assert!(!Microarch::Haswell.has_speed_shift());
        assert!(!Microarch::Broadwell.has_speed_shift());
        assert!(!Microarch::IvyBridge.has_speed_shift());
        assert!(Microarch::Skylake.has_speed_shift());
        assert!(Microarch::KabyLake.has_speed_shift());
        assert!(Microarch::CoffeeLake.has_speed_shift());
    }

    #[test]
    fn switching_frequencies_are_in_the_vrm_band() {
        // §II: spikes at 250 kHz – 1 MHz and harmonics.
        for l in Laptop::all() {
            assert!(
                (250e3..=1.2e6).contains(&l.switching_freq_hz),
                "{}: f_sw {}",
                l.model,
                l.switching_freq_hz
            );
        }
    }

    #[test]
    fn windows_laptops_have_millisecond_timers() {
        for l in Laptop::all() {
            let g = l.sleep_model.granularity_s();
            match l.os {
                Os::Windows => assert!(g >= 1e-3, "{}", l.model),
                _ => assert!(g <= 1e-6, "{}", l.model),
            }
        }
    }

    #[test]
    fn machines_reflect_the_preset() {
        let inspiron = Laptop::dell_inspiron();
        let m = inspiron.machine();
        assert_eq!(m.sleep_model, inspiron.sleep_model);
        assert!(m.dvfs.enabled);
        // Haswell: OS-driven DVFS.
        assert_eq!(m.dvfs, DvfsPolicy::os_driven());
        let thinkpad = Laptop::lenovo_thinkpad().machine();
        assert_eq!(thinkpad.dvfs, DvfsPolicy::speed_shift());
    }

    #[test]
    fn macbooks_radiate_less() {
        let all = Laptop::all();
        let mac_max = all
            .iter()
            .filter(|l| l.os == Os::Macos)
            .map(|l| l.emission_scale)
            .fold(0.0f64, f64::max);
        let others_min = all
            .iter()
            .filter(|l| l.os != Os::Macos)
            .map(|l| l.emission_scale)
            .fold(f64::INFINITY, f64::min);
        assert!(mac_max < others_min);
    }
}
