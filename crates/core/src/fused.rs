//! Fused chunked TX chain: synth → AWGN → digitise in one
//! cache-resident pass.
//!
//! [`Chain::run_program`] historically materialised the full analog
//! waveform (`Scene::render` → one multi-megabyte `Vec`), then walked
//! it again in the digitiser — every sample made three round trips
//! through main memory before the receiver saw it. [`ChainStream`]
//! replaces that with a blockwise producer: the switching train is
//! rendered in L1/L2-sized blocks, and synthesis, path gain,
//! interference, AWGN and the AGC peak fold all touch a block while it
//! is cache-resident.
//!
//! # Two passes, one arena
//!
//! The AGC gain is a function of the *global* analog peak, so no block
//! can be digitised before every block has been rendered. Rather than
//! render twice (synthesis + AWGN dominate the chain's TX cost), the
//! stream keeps the rendered analog in a recycled arena:
//!
//! 1. **Render pass** (construction): each block is composed by
//!    [`emsc_emfield::scene::Scene::render_window_into`] and folded
//!    into the running peak while hot in cache.
//! 2. **Digitise pass** ([`ChainStream::next_block`]): each block is
//!    quantised by [`emsc_sdr::Frontend::digitize_window_into`] into a
//!    small recycled buffer the consumer borrows — the full capture
//!    `Vec` never exists unless the caller asks for a [`ChainRun`].
//!
//! Both scratch buffers live in a thread-local pool, so a grid cell's
//! steady state allocates nothing per block and nothing per run after
//! warm-up.
//!
//! # Equivalence contract
//!
//! Every TX-side primitive is window-invariant (absolute-index phasor
//! anchors, positional AWGN sub-seeding, absolute mixer grid), so the
//! fused stream is **bit-identical** to the staged oracle
//! ([`Chain::run_trace_staged`]) for every block size and thread
//! count. The tests in `tests/tests/streaming.rs` pin this at block
//! sizes {1, 7, 4096, whole} × `EMSC_THREADS` ∈ {1, 3}.

use std::cell::RefCell;

use emsc_emfield::synth::samples_for;
use emsc_pmu::trace::PowerTrace;
use emsc_sdr::iq::Complex;
use emsc_sdr::simd::peak_abs;
use emsc_sdr::{Capture, Frontend};
use emsc_vrm::buck::Buck;
use emsc_vrm::train::SwitchingTrain;

use crate::chain::{Chain, ChainRun};

/// Default fused block: 8192 complex samples = 128 KiB, sized so one
/// block plus the synthesis LUT and the mixer tables sit inside L2
/// while each stage streams over it. The `perf_report` sweep over
/// {1k, 2k, 4k, 8k, 16k, 64k} put the optimum here, with a flat ±2 %
/// plateau from 2k to 16k.
pub const FUSED_BLOCK: usize = 8192;

/// Reusable buffers for one chain run: the analog arena (pass 1) and
/// the digitised block (pass 2). Pooled per thread so repeated runs —
/// a BER grid's cells, a service's capture loop — reach a zero-
/// allocation steady state.
#[derive(Debug, Default)]
struct ChainScratch {
    analog: Vec<Complex>,
    block: Vec<Complex>,
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<ChainScratch>> = const { RefCell::new(Vec::new()) };
}

fn take_scratch() -> ChainScratch {
    SCRATCH_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

fn recycle_scratch(scratch: ChainScratch) {
    SCRATCH_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        // A couple of arenas covers every nesting the experiments use
        // (an outer run streaming while an inner oracle runs); beyond
        // that, dropping is cheaper than hoarding capacity.
        if pool.len() < 2 {
            pool.push(scratch);
        }
    });
}

/// A blockwise producer of digitised capture samples for one chain
/// run. Created by [`Chain::stream_trace`]; drained by
/// [`ChainStream::next_block`] into a streaming consumer, or collected
/// whole by [`ChainStream::into_run`].
#[derive(Debug)]
pub struct ChainStream {
    trace: PowerTrace,
    train: SwitchingTrain,
    frontend: Frontend,
    gain: f64,
    block_samples: usize,
    cursor: usize,
    scratch: ChainScratch,
}

impl ChainStream {
    /// Renders the chain's analog waveform blockwise (the fused pass 1)
    /// and readies the digitise cursor. Blinking, VRM conversion and
    /// seeding match [`Chain::run_trace_staged`] exactly.
    pub fn new(chain: &Chain, trace: PowerTrace, seed: u64) -> Self {
        ChainStream::with_block_samples(chain, trace, seed, FUSED_BLOCK)
    }

    /// [`ChainStream::new`] with an explicit block size (in complex
    /// samples). Output is bit-identical for every block size; the
    /// size only moves the cache/working-set trade-off.
    pub fn with_block_samples(
        chain: &Chain,
        trace: PowerTrace,
        seed: u64,
        block_samples: usize,
    ) -> Self {
        let block_samples = block_samples.max(1);
        let trace = match chain.blinking {
            Some(b) => trace.with_blinking(b.period_s, b.duty, b.level_a),
            None => trace,
        };
        let train = Buck::new(chain.vrm.clone()).convert(&trace);
        let n = samples_for(&train, chain.scene.synth);

        let mut scratch = take_scratch();
        scratch.analog.clear();
        scratch.analog.reserve(n);
        // Probes the train's pulse ordering once for the whole run, so
        // each block pays only binary-search + phasor-warm-up overhead.
        let renderer = chain.scene.window_renderer(&train, seed);
        let mut peak = 0.0f64;
        let mut start = 0;
        while start < n {
            let len = block_samples.min(n - start);
            scratch.analog.resize(start + len, Complex::ZERO);
            renderer.render_into(start, &mut scratch.analog[start..start + len]);
            // `peak_abs` is an order-independent max fold, so folding
            // block peaks reproduces the whole-buffer AGC scan bit for
            // bit while the block is still in cache.
            peak = peak.max(peak_abs(&scratch.analog[start..start + len]));
            start += len;
        }

        let frontend = Frontend::new(chain.frontend.clone());
        let gain = frontend.agc_gain(peak);
        ChainStream { trace, train, frontend, gain, block_samples, cursor: 0, scratch }
    }

    /// Ground-truth power-state trace (blinking applied).
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// The VRM's switching activity.
    pub fn train(&self) -> &SwitchingTrain {
        &self.train
    }

    /// Total capture length in samples.
    pub fn total_samples(&self) -> usize {
        self.scratch.analog.len()
    }

    /// Number of blocks [`ChainStream::next_block`] will yield.
    pub fn blocks_total(&self) -> usize {
        self.total_samples().div_ceil(self.block_samples)
    }

    /// Digitises and returns the next block of capture samples, or
    /// `None` once the run is fully consumed. The returned slice
    /// aliases an internal buffer that the next call overwrites —
    /// push it into a consumer before advancing.
    ///
    /// Concatenating every block reproduces
    /// `Chain::run_trace_staged(..).capture.samples` bit for bit.
    pub fn next_block(&mut self) -> Option<&[Complex]> {
        let ChainScratch { analog, block } = &mut self.scratch;
        if self.cursor >= analog.len() {
            return None;
        }
        let len = self.block_samples.min(analog.len() - self.cursor);
        self.frontend.digitize_window_into(
            &analog[self.cursor..self.cursor + len],
            self.cursor,
            self.gain,
            block,
        );
        self.cursor += len;
        Some(block)
    }

    /// Drains the remaining blocks into a full [`ChainRun`] — the
    /// convenience shape for callers that want the materialised
    /// capture. Blocks already taken with [`ChainStream::next_block`]
    /// are re-digitised so the capture is always complete.
    pub fn into_run(mut self) -> ChainRun {
        let n = self.total_samples();
        let mut samples = Vec::with_capacity(n);
        self.cursor = 0;
        while let Some(block) = self.next_block() {
            samples.extend_from_slice(block);
        }
        let cfg = self.frontend.config();
        let capture =
            Capture { samples, sample_rate: cfg.sample_rate, center_freq: cfg.center_freq };
        let ChainStream { trace, train, scratch, .. } = self;
        recycle_scratch(scratch);
        ChainRun { trace, train, capture }
    }

    /// Consumes the stream, returning the ground-truth stages without
    /// materialising a capture — the exit for fully streamed runs
    /// whose samples were already pushed into a receiver.
    pub fn into_trace_train(self) -> (PowerTrace, SwitchingTrain) {
        let ChainStream { trace, train, scratch, .. } = self;
        recycle_scratch(scratch);
        (trace, train)
    }
}

impl Chain {
    /// Starts a fused blockwise run from an externally-built power
    /// trace: the streaming sibling of [`Chain::run_trace`].
    pub fn stream_trace(&self, trace: PowerTrace, seed: u64) -> ChainStream {
        ChainStream::new(self, trace, seed)
    }

    /// [`Chain::stream_trace`] for a program (the streaming sibling of
    /// [`Chain::run_program`]).
    pub fn stream_program(&self, program: &emsc_pmu::workload::Program, seed: u64) -> ChainStream {
        let trace = self.machine.run(program, seed);
        self.stream_trace(trace, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Setup;
    use crate::laptop::Laptop;
    use emsc_pmu::workload::Program;

    #[test]
    fn fused_run_matches_staged_oracle_bitwise() {
        let laptop = Laptop::dell_inspiron();
        let chain = Chain::new(&laptop, Setup::NearField);
        let program = Program::alternating(300e-6, 300e-6, 12, chain.machine.steady_state_ips());
        let trace = chain.machine.run(&program, 7);
        let staged = chain.run_trace_staged(trace.clone(), 7);
        let fused = chain.stream_trace(trace, 7).into_run();
        assert_eq!(staged.capture.samples.len(), fused.capture.samples.len());
        for (i, (a, b)) in staged.capture.samples.iter().zip(&fused.capture.samples).enumerate() {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "sample {i} differs"
            );
        }
        assert_eq!(staged.train.pulses.len(), fused.train.pulses.len());
    }

    #[test]
    fn block_size_is_unobservable() {
        let laptop = Laptop::lenovo_thinkpad();
        let mut chain = Chain::new(&laptop, Setup::ThroughWall);
        chain.blinking =
            Some(crate::chain::BlinkingConfig { period_s: 1e-3, duty: 0.3, level_a: 2.0 });
        let program = Program::alternating(200e-6, 200e-6, 6, chain.machine.steady_state_ips());
        let trace = chain.machine.run(&program, 3);
        let whole =
            ChainStream::with_block_samples(&chain, trace.clone(), 3, usize::MAX).into_run();
        for block in [997usize, 4096] {
            let mut stream = ChainStream::with_block_samples(&chain, trace.clone(), 3, block);
            assert_eq!(stream.blocks_total(), stream.total_samples().div_ceil(block));
            let mut samples = Vec::new();
            while let Some(b) = stream.next_block() {
                samples.extend_from_slice(b);
            }
            assert_eq!(samples, whole.capture.samples, "block size {block}");
            let (trace_out, train) = stream.into_trace_train();
            assert_eq!(trace_out.duration_s(), whole.trace.duration_s());
            assert_eq!(train.pulses.len(), whole.train.pulses.len());
        }
    }

    #[test]
    fn partially_consumed_stream_still_yields_full_run() {
        let laptop = Laptop::dell_inspiron();
        let chain = Chain::new(&laptop, Setup::NearField);
        let program = Program::alternating(250e-6, 250e-6, 8, chain.machine.steady_state_ips());
        let trace = chain.machine.run(&program, 11);
        let reference = chain.run_trace(trace.clone(), 11);
        let mut stream = chain.stream_trace(trace, 11);
        let first = stream.next_block().expect("non-empty run").to_vec();
        assert_eq!(first[..], reference.capture.samples[..first.len()]);
        let run = stream.into_run();
        assert_eq!(run.capture.samples, reference.capture.samples);
    }
}
